//! Golden suite for the multi-kernel tensor-network scheduler
//! (`spttn-net`): every network — CP-ALS sweep, tensor-train, a
//! five-tensor chain, and a network forcing off-spine dense steps —
//! must reproduce the naive whole-network einsum oracle under both
//! order strategies, both engines, and serial + parallel execution;
//! the budgeted exact search must match brute-force order enumeration;
//! and pooled executors must move and reuse workspaces across threads.

use rand::prelude::*;
use spttn::exec::naive_einsum;
use spttn::ir::enumerate_paths;
use spttn::tensor::{random_coo, random_dense, Csf, DenseTensor, SparsityProfile};
use spttn::{Engine, PlanCache, PlanOptions, Shapes, Threads};
use spttn_net::{modeled_path_flops, NetOptions, Network, OrderStrategy};
use std::sync::Arc;

const TOL: f64 = 1e-9;

/// Operands + oracle for a network: seeded random factors (one per
/// dense kernel slot, shared by name) and the naive dense contraction
/// of the whole-network kernel.
struct Fixture {
    net: Network,
    shapes: Shapes,
    csf: Csf,
    factors: Vec<(String, DenseTensor)>,
    want: DenseTensor,
}

impl Fixture {
    fn new(
        expr: &str,
        dims: &[(&str, usize)],
        sparse_dims: &[usize],
        nnz: usize,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let coo = random_coo(sparse_dims, nnz, &mut rng).unwrap();
        let order: Vec<usize> = (0..coo.order()).collect();
        let csf = Csf::from_coo(&coo, &order).unwrap();
        let net = Network::parse(expr).unwrap();
        let shapes = Shapes::new()
            .with_dims(dims)
            .with_profile(SparsityProfile::from_csf(&csf));
        let kernel = net.kernel(&shapes).unwrap();
        let mut factors: Vec<(String, DenseTensor)> = Vec::new();
        for (slot, r) in kernel.inputs.iter().enumerate() {
            if slot == kernel.sparse_input {
                continue;
            }
            let t = match factors.iter().find(|(n, _)| *n == r.name) {
                Some((_, t)) => t.clone(),
                None => random_dense(&kernel.ref_dims(r), &mut rng),
            };
            factors.push((r.name.clone(), t));
        }
        let sparse_dense = coo.to_dense();
        let mut slots: Vec<&DenseTensor> = Vec::new();
        let mut next = 0usize;
        for slot in 0..kernel.inputs.len() {
            if slot == kernel.sparse_input {
                slots.push(&sparse_dense);
            } else {
                slots.push(&factors[next].1);
                next += 1;
            }
        }
        let want = naive_einsum(&kernel, &slots).unwrap();
        Fixture {
            net,
            shapes,
            csf,
            factors,
            want,
        }
    }

    fn named(&self) -> Vec<(&str, &DenseTensor)> {
        let mut named: Vec<(&str, &DenseTensor)> = Vec::new();
        for (name, t) in &self.factors {
            if !named.iter().any(|(n, _)| n == name) {
                named.push((name, t));
            }
        }
        named
    }

    /// Plan + bind + execute under every (strategy × threads × engine)
    /// combination, sharing one `PlanCache`, and compare to the oracle.
    fn check_all(&self, expr: &str) {
        let cache = PlanCache::new();
        for strategy in [OrderStrategy::Greedy, OrderStrategy::Optimal] {
            for threads in [1usize, 4] {
                for engine in [Engine::Tape, Engine::Interp] {
                    let popts = PlanOptions::default()
                        .with_threads(Threads::N(threads))
                        .with_engine(engine)
                        .with_microkernels(spttn::Microkernels::Scalar);
                    let nopts = NetOptions::default()
                        .with_order(strategy)
                        .with_plan_options(popts);
                    let nplan = self
                        .net
                        .plan_cached(&cache, &self.shapes, &nopts)
                        .unwrap_or_else(|e| panic!("plan {expr} ({strategy}): {e}"));
                    let mut exec = nplan.bind(self.csf.clone(), &self.named()).unwrap();
                    let got = exec.execute().unwrap();
                    assert!(
                        got.to_dense().approx_eq(&self.want, TOL),
                        "{expr}: mismatch at {strategy}, {threads} thread(s), {engine:?}\n{}",
                        nplan.describe()
                    );
                }
            }
        }
    }
}

#[test]
fn cp_als_sweep_matches_oracle() {
    // One MTTKRP-shaped network per mode, as a CP-ALS sweep issues them.
    let dims: &[(&str, usize)] = &[("i", 14), ("j", 12), ("k", 10), ("r", 5)];
    for (m, expr) in [
        "T[i,j,k]*B[j,r]*C[k,r] -> A_new[i,r]",
        "T[i,j,k]*A[i,r]*C[k,r] -> B_new[j,r]",
        "T[i,j,k]*A[i,r]*B[j,r] -> C_new[k,r]",
    ]
    .iter()
    .enumerate()
    {
        Fixture::new(expr, dims, &[14, 12, 10], 200, 31 + m as u64).check_all(expr);
    }
}

#[test]
fn tensor_train_matches_oracle() {
    let expr = "T[i,j,k]*G1[i,a]*G2[a,j,b]*G3[b,k,c] -> O[c]";
    let dims: &[(&str, usize)] = &[("i", 13), ("j", 11), ("k", 9), ("a", 4), ("b", 3), ("c", 5)];
    Fixture::new(expr, dims, &[13, 11, 9], 180, 7).check_all(expr);
}

#[test]
fn five_tensor_network_matches_oracle() {
    // A chain hanging off the sparse tensor: the tail contractions
    // D(s,u) and C(r,s) are candidates for off-spine materialization.
    let expr = "T[i,j,k]*A[j,r]*B[k,r]*C[r,s]*D[s,u] -> O[i,u]";
    let dims: &[(&str, usize)] = &[("i", 12), ("j", 10), ("k", 8), ("r", 4), ("s", 5), ("u", 3)];
    Fixture::new(expr, dims, &[12, 10, 8], 150, 11).check_all(expr);
}

#[test]
fn dense_chain_network_matches_oracle() {
    // D1*D2 is far cheaper than touching the sparse tensor first, so
    // this network exercises the materialized dense-step path and the
    // `_net` intermediate feeding the collapsed kernel.
    let expr = "T[i,j]*D1[j,m]*D2[m,r] -> O[i,r]";
    let dims: &[(&str, usize)] = &[("i", 20), ("j", 15), ("m", 4), ("r", 6)];
    let fx = Fixture::new(expr, dims, &[20, 15], 120, 23);
    let nplan = fx.net.plan(&fx.shapes, &NetOptions::default()).unwrap();
    assert!(
        nplan.num_dense_steps() >= 1,
        "expected an off-spine dense step:\n{}",
        nplan.describe()
    );
    fx.check_all(expr);
}

#[test]
fn exact_search_matches_brute_force_enumeration() {
    // The budgeted subset sweep must land on the true minimum over all
    // pairwise contraction orders for every <=5-tensor network here —
    // the same minimum brute-force enumeration finds.
    type Case = (
        &'static str,
        &'static [(&'static str, usize)],
        &'static [usize],
    );
    let cases: [Case; 3] = [
        (
            "T[i,j,k]*B[j,r]*C[k,r] -> A[i,r]",
            &[("i", 14), ("j", 12), ("k", 10), ("r", 5)],
            &[14, 12, 10],
        ),
        (
            "T[i,j,k]*G1[i,a]*G2[a,j,b]*G3[b,k,c] -> O[c]",
            &[("i", 13), ("j", 11), ("k", 9), ("a", 4), ("b", 3), ("c", 5)],
            &[13, 11, 9],
        ),
        (
            "T[i,j,k]*A[j,r]*B[k,r]*C[r,s]*D[s,u] -> O[i,u]",
            &[("i", 12), ("j", 10), ("k", 8), ("r", 4), ("s", 5), ("u", 3)],
            &[12, 10, 8],
        ),
    ];
    for (expr, dims, sparse_dims) in cases {
        let fx = Fixture::new(expr, dims, sparse_dims, 160, 41);
        let nopts = NetOptions::default().with_order(OrderStrategy::Optimal);
        let nplan = fx.net.plan(&fx.shapes, &nopts).unwrap();
        let report = nplan.report();
        assert!(!report.truncated, "{expr}: default budget must suffice");

        let kernel = fx.net.kernel(&fx.shapes).unwrap();
        let profile = fx
            .shapes
            .natural_profile(&fx.net.sparse_index_names())
            .unwrap();
        let brute = enumerate_paths(&kernel)
            .iter()
            .map(|p| modeled_path_flops(&kernel, p, &profile))
            .min()
            .unwrap();
        assert_eq!(
            report.chosen_flops, brute,
            "{expr}: exact sweep disagrees with brute force"
        );
        // The path the plan actually lowered scores the same flops.
        assert_eq!(
            modeled_path_flops(&kernel, nplan.path(), &profile),
            brute,
            "{expr}: lowered path does not achieve the reported cost"
        );
    }
}

#[test]
fn pooled_executors_move_and_reuse_across_threads() {
    let expr = "T[i,j]*D1[j,m]*D2[m,r] -> O[i,r]";
    let dims: &[(&str, usize)] = &[("i", 20), ("j", 15), ("m", 4), ("r", 6)];
    let fx = Fixture::new(expr, dims, &[20, 15], 120, 53);
    let nplan = fx.net.plan(&fx.shapes, &NetOptions::default()).unwrap();
    assert!(
        nplan.num_dense_steps() >= 1,
        "pool must have workspaces to own"
    );
    let pool = Arc::new(nplan.pool());

    // First checkout allocates; dropping the executor checks back in.
    {
        let mut exec = nplan
            .bind_pooled(&pool, fx.csf.clone(), &fx.named())
            .unwrap();
        let got = exec.execute().unwrap();
        assert!(got.to_dense().approx_eq(&fx.want, TOL));
    }
    assert_eq!((pool.created(), pool.reused()), (1, 0));
    assert_eq!(pool.available(), 1);

    // Bind on the main thread, execute on another (the Send contract),
    // with workspaces served from the warm pool.
    let mut exec = nplan
        .bind_pooled(&pool, fx.csf.clone(), &fx.named())
        .unwrap();
    assert_eq!((pool.created(), pool.reused()), (1, 1));
    let got = std::thread::spawn(move || exec.execute().unwrap())
        .join()
        .unwrap();
    assert!(got.to_dense().approx_eq(&fx.want, TOL));
    // The executor dropped on the worker thread; its workspaces are
    // back in the shared pool.
    assert_eq!(pool.available(), 1);

    // A pool from a different plan is rejected at bind.
    let other = Network::parse("T[i,j]*D1[j,m] -> O[i,m]")
        .unwrap()
        .plan(&fx.shapes, &NetOptions::default())
        .unwrap();
    let err = other.bind_pooled(&pool, fx.csf.clone(), &fx.named()[..1]);
    assert!(err.is_err(), "foreign pool must be rejected");
}

#[test]
fn cancelled_execution_never_recycles_dirty_workspaces() {
    // Regression: a pooled executor that errored or was cancelled
    // mid-execution must not check its intermediates back in as clean —
    // the next checkout would receive a partially-written workspace.
    // The drop path scrubs dirty sets to zero.
    let expr = "T[i,j]*D1[j,m]*D2[m,r] -> O[i,r]";
    let dims: &[(&str, usize)] = &[("i", 20), ("j", 15), ("m", 4), ("r", 6)];
    let fx = Fixture::new(expr, dims, &[20, 15], 120, 61);
    let tok = spttn::CancelToken::new();
    let nplan = fx
        .net
        .plan(
            &fx.shapes,
            &NetOptions::default()
                .with_plan_options(PlanOptions::default().with_cancel(tok.clone())),
        )
        .unwrap();
    assert!(
        nplan.num_dense_steps() >= 1,
        "fixture must have intermediates"
    );
    let pool = Arc::new(nplan.pool());

    {
        let mut exec = nplan
            .bind_pooled(&pool, fx.csf.clone(), &fx.named())
            .unwrap();
        // A successful run fills the intermediates with nonzero values…
        let got = exec.execute().unwrap();
        assert!(got.to_dense().approx_eq(&fx.want, TOL));
        // …then a cancelled attempt leaves them (from the cancelled
        // run's perspective) partially written.
        tok.cancel();
        assert!(exec.execute().is_err(), "cancelled run must error");
        // Drop checks the set back into the pool.
    }
    tok.reset();
    assert_eq!(pool.available(), 1, "the set must still be pooled");
    let set = pool.checkout();
    assert!(
        set.iter().all(|t| t.as_slice().iter().all(|&v| v == 0.0)),
        "a workspace recycled after a cancelled execution must be scrubbed to zero"
    );
    pool.checkin(set);

    // Sanity: a fresh pooled bind on the scrubbed set still computes
    // the right answer.
    let mut exec = nplan
        .bind_pooled(&pool, fx.csf.clone(), &fx.named())
        .unwrap();
    assert!(exec.execute().unwrap().to_dense().approx_eq(&fx.want, TOL));
}
