//! End-to-end tests for the CSF mode-order search: `ModeOrderPolicy`
//! on `PlanOptions`, per-order cost reporting on `Plan`, and the
//! bind-time re-sort of written-order CSF tensors into the plan's
//! chosen storage order.

use rand::prelude::*;
use spttn::exec::naive_einsum;
use spttn::tensor::{random_coo, random_dense, skewed_coo, CooTensor, Csf, DenseTensor};
use spttn::{
    Contraction, ContractionOutput, CostModel, ModeOrderPolicy, Plan, PlanCache, PlanOptions,
    Shapes, Threads,
};

const TOL: f64 = 1e-9;

const MTTKRP: &str = "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)";

/// A sparse tensor whose natural order is deliberately bad for MTTKRP:
/// a tiny trailing mode (`|k| = 4`) at 120 nonzeros, so the `(i,k)`
/// prefix partially saturates (~90 distinct pairs over 200 cells)
/// while `(i,j)` stays near-distinct (~117 over 2500). Pulling `k`
/// forward therefore strictly compresses the two-level prefix the
/// factorized MTTKRP schedule's second contraction iterates.
fn lopsided_coo(rng: &mut StdRng) -> CooTensor {
    random_coo(&[50, 50, 4], 120, rng).unwrap()
}

fn mttkrp_shapes(coo: &CooTensor) -> Shapes {
    Shapes::new()
        .with_dims(&[("i", 50), ("j", 50), ("k", 4), ("a", 8)])
        .with_pattern(coo.clone())
}

/// Oracle for a plan bound to `coo` + named factors: densify and run
/// the naive einsum over the natural (written-order) kernel.
fn oracle(plan: &Plan, coo: &CooTensor, factors: &[(&str, &DenseTensor)]) -> DenseTensor {
    let kernel = plan.natural_kernel();
    let sparse_dense = coo.to_dense();
    let mut slots: Vec<&DenseTensor> = Vec::new();
    for (slot, r) in kernel.inputs.iter().enumerate() {
        if slot == kernel.sparse_input {
            slots.push(&sparse_dense);
        } else {
            let (_, t) = factors
                .iter()
                .find(|(n, _)| *n == r.name)
                .expect("factor bound");
            slots.push(t);
        }
    }
    naive_einsum(&kernel, &slots).unwrap()
}

fn max_diff(got: &ContractionOutput, want: &DenseTensor) -> f64 {
    let got = match got {
        ContractionOutput::Dense(d) => d.clone(),
        ContractionOutput::Sparse(c) => c.to_dense(),
    };
    got.as_slice()
        .iter()
        .zip(want.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

#[test]
fn auto_beats_natural_on_lopsided_mttkrp() {
    let mut rng = StdRng::seed_from_u64(11);
    let coo = lopsided_coo(&mut rng);
    let shapes = mttkrp_shapes(&coo);
    let opts = PlanOptions::with_cost_model(CostModel::MaxBufferSize);

    let natural = Contraction::parse(MTTKRP)
        .unwrap()
        .plan(&shapes, &opts)
        .unwrap();
    assert!(natural.is_natural_order());
    assert_eq!(natural.mode_order(), &[0, 1, 2]);
    assert_eq!(natural.order_costs().len(), 1);

    let auto = Contraction::parse(MTTKRP)
        .unwrap()
        .plan(
            &shapes,
            &opts.clone().with_mode_order(ModeOrderPolicy::Auto),
        )
        .unwrap();
    // The acceptance bar: a strictly cheaper modeled cost than the
    // natural order, visible both on the plan and in its search record.
    assert!(
        auto.flops < natural.flops,
        "auto {} !< natural {}",
        auto.flops,
        natural.flops
    );
    assert!(!auto.is_natural_order());
    assert_eq!(auto.order_costs().len(), 6, "3! candidate orders");
    let natural_entry = &auto.order_costs()[0];
    assert_eq!(natural_entry.order, vec![0, 1, 2]);
    assert_eq!(natural_entry.flops, Some(natural.flops));
    let chosen = auto
        .order_costs()
        .iter()
        .find(|oc| oc.order == auto.mode_order())
        .expect("chosen order is in the record");
    assert_eq!(chosen.flops, Some(auto.flops));
    // The chosen order is the minimum of the record.
    let min = auto
        .order_costs()
        .iter()
        .filter_map(|oc| oc.flops)
        .min()
        .unwrap();
    assert_eq!(min, auto.flops);
    // describe() surfaces the non-natural storage order.
    assert!(auto.describe().contains("storage: CSF order"));
}

#[test]
fn auto_plan_executes_correctly_from_written_order_csf() {
    let mut rng = StdRng::seed_from_u64(12);
    let coo = lopsided_coo(&mut rng);
    let shapes = mttkrp_shapes(&coo);
    let b = random_dense(&[50, 8], &mut rng);
    let c = random_dense(&[4, 8], &mut rng);
    let factors: Vec<(&str, &DenseTensor)> = vec![("B", &b), ("C", &c)];

    for threads in [1usize, 4] {
        let plan = Contraction::parse(MTTKRP)
            .unwrap()
            .plan(
                &shapes,
                &PlanOptions::with_cost_model(CostModel::MaxBufferSize)
                    .with_mode_order(ModeOrderPolicy::Auto)
                    .with_threads(Threads::N(threads)),
            )
            .unwrap();
        assert!(!plan.is_natural_order());
        // Bind hands over a *written-order* CSF; the plan re-sorts it.
        let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
        let mut exec = plan.bind(csf, &factors).unwrap();
        // The bound tree really is in the plan's order now.
        assert_eq!(
            exec.csf().mode_order(),
            plan.mode_order(),
            "threads {threads}"
        );
        let got = exec.execute().unwrap();
        let want = oracle(&plan, &coo, &factors);
        let diff = max_diff(&got, &want);
        assert!(diff <= TOL, "threads {threads}: diff {diff}");
    }
}

#[test]
fn fixed_policy_plans_and_executes_the_requested_order() {
    let mut rng = StdRng::seed_from_u64(13);
    let coo = random_coo(&[10, 8, 6], 60, &mut rng).unwrap();
    let shapes = Shapes::new()
        .with_dims(&[("i", 10), ("j", 8), ("k", 6), ("a", 5)])
        .with_pattern(coo.clone());
    let b = random_dense(&[8, 5], &mut rng);
    let c = random_dense(&[6, 5], &mut rng);
    let factors: Vec<(&str, &DenseTensor)> = vec![("B", &b), ("C", &c)];

    for order in [vec![2, 0, 1], vec![1, 2, 0], vec![0, 1, 2]] {
        let plan = Contraction::parse(MTTKRP)
            .unwrap()
            .plan(
                &shapes,
                &PlanOptions::default().with_mode_order(ModeOrderPolicy::Fixed(order.clone())),
            )
            .unwrap();
        assert_eq!(plan.mode_order(), &order[..]);
        assert_eq!(plan.order_costs().len(), 1);
        let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
        let mut exec = plan.bind(csf, &factors).unwrap();
        let got = exec.execute().unwrap();
        let diff = max_diff(&got, &oracle(&plan, &coo, &factors));
        assert!(diff <= TOL, "order {order:?}: diff {diff}");
    }
    // Fixed identity behaves exactly like Natural.
    let plan = Contraction::parse(MTTKRP)
        .unwrap()
        .plan(
            &shapes,
            &PlanOptions::default().with_mode_order(ModeOrderPolicy::Fixed(vec![0, 1, 2])),
        )
        .unwrap();
    assert!(plan.is_natural_order());

    // A bad permutation is an error, not a silent fallback.
    for bad in [vec![0usize, 1], vec![0, 0, 1], vec![0, 1, 3]] {
        let e = Contraction::parse(MTTKRP).unwrap().plan(
            &shapes,
            &PlanOptions::default().with_mode_order(ModeOrderPolicy::Fixed(bad)),
        );
        assert!(e.is_err());
    }
}

#[test]
fn sparse_output_kernel_reorders_correctly() {
    // TTTP: the output shares the sparse pattern; under a non-natural
    // order the entries are enumerated in the plan's leaf order but the
    // dense view must be unchanged.
    let mut rng = StdRng::seed_from_u64(14);
    let coo = skewed_coo(&[12, 9, 5], 70, 1.5, &mut rng).unwrap();
    let expr = "S(i,j,k) = T(i,j,k) * U(i,r) * V(j,r) * W(k,r)";
    let shapes = Shapes::new()
        .with_dims(&[("i", 12), ("j", 9), ("k", 5), ("r", 3)])
        .with_pattern(coo.clone());
    let u = random_dense(&[12, 3], &mut rng);
    let v = random_dense(&[9, 3], &mut rng);
    let w = random_dense(&[5, 3], &mut rng);
    let factors: Vec<(&str, &DenseTensor)> = vec![("U", &u), ("V", &v), ("W", &w)];

    let plan = Contraction::parse(expr)
        .unwrap()
        .plan(
            &shapes,
            &PlanOptions::default().with_mode_order(ModeOrderPolicy::Fixed(vec![2, 1, 0])),
        )
        .unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let mut exec = plan.bind(csf, &factors).unwrap();
    let got = exec.execute().unwrap();
    assert!(matches!(got, ContractionOutput::Sparse(_)));
    let diff = max_diff(&got, &oracle(&plan, &coo, &factors));
    assert!(diff <= TOL, "diff {diff}");
}

#[test]
fn one_shot_compile_uses_exact_pattern_for_auto() {
    let mut rng = StdRng::seed_from_u64(15);
    let coo = lopsided_coo(&mut rng);
    let b = random_dense(&[50, 8], &mut rng);
    let c = random_dense(&[4, 8], &mut rng);
    let mut exec = Contraction::parse(MTTKRP)
        .unwrap()
        .with_sparse_input(Csf::from_coo(&coo, &[0, 1, 2]).unwrap())
        .with_factor("B", b.clone())
        .with_factor("C", c.clone())
        .compile(
            PlanOptions::with_cost_model(CostModel::MaxBufferSize)
                .with_mode_order(ModeOrderPolicy::Auto),
        )
        .unwrap();
    let plan = exec.plan().clone();
    assert!(!plan.is_natural_order());
    let factors: Vec<(&str, &DenseTensor)> = vec![("B", &b), ("C", &c)];
    let got = exec.execute().unwrap();
    let diff = max_diff(&got, &oracle(&plan, &coo, &factors));
    assert!(diff <= TOL, "diff {diff}");
}

#[test]
fn plan_cache_distinguishes_mode_order_policies() {
    let mut rng = StdRng::seed_from_u64(16);
    let coo = lopsided_coo(&mut rng);
    let shapes = mttkrp_shapes(&coo);
    let cache = PlanCache::new();
    let opts = PlanOptions::with_cost_model(CostModel::MaxBufferSize);
    let auto_opts = opts.clone().with_mode_order(ModeOrderPolicy::Auto);

    let p1 = cache
        .plan(Contraction::parse(MTTKRP).unwrap(), &shapes, &opts)
        .unwrap();
    let p2 = cache
        .plan(Contraction::parse(MTTKRP).unwrap(), &shapes, &auto_opts)
        .unwrap();
    // Different policies -> different keys -> both planned.
    assert_eq!((cache.hits(), cache.misses()), (0, 2));
    assert!(p1.is_natural_order());
    assert!(!p2.is_natural_order());
    // Same policy again -> hit, shared Arc.
    let p3 = cache
        .plan(Contraction::parse(MTTKRP).unwrap(), &shapes, &auto_opts)
        .unwrap();
    assert!(std::sync::Arc::ptr_eq(&p2, &p3));
    assert_eq!((cache.hits(), cache.misses()), (1, 2));

    // Two *different patterns* with identical dims/nnz must not share
    // an Auto key (exact per-order counts differ).
    let other = lopsided_coo(&mut rng);
    assert_ne!(coo.coords(), other.coords());
    let other_shapes = mttkrp_shapes(&other);
    let _ = cache
        .plan(
            Contraction::parse(MTTKRP).unwrap(),
            &other_shapes,
            &auto_opts,
        )
        .unwrap();
    assert_eq!(cache.misses(), 3, "distinct pattern must re-plan");
}

#[test]
fn set_sparse_values_respects_callers_leaf_order_under_reorder() {
    // Regression: bind re-sorts the CSF when the plan chose a
    // non-natural order, but set_sparse_values must keep accepting
    // values in the leaf order of the CSF the *caller* bound —
    // scattered through the recorded permutation, not copied blindly.
    let mut rng = StdRng::seed_from_u64(18);
    let coo = lopsided_coo(&mut rng);
    let shapes = mttkrp_shapes(&coo);
    let b = random_dense(&[50, 8], &mut rng);
    let c = random_dense(&[4, 8], &mut rng);
    let factors: Vec<(&str, &DenseTensor)> = vec![("B", &b), ("C", &c)];

    let plan = Contraction::parse(MTTKRP)
        .unwrap()
        .plan(
            &shapes,
            &PlanOptions::with_cost_model(CostModel::MaxBufferSize)
                .with_mode_order(ModeOrderPolicy::Auto),
        )
        .unwrap();
    assert!(!plan.is_natural_order());
    let written_csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let written_leaf_vals: Vec<f64> = written_csf.vals().to_vec();
    let mut exec = plan.bind(written_csf, &factors).unwrap();

    // New values, addressed by the written-order leaf positions: leaf e
    // gets e as its value.
    let new_vals: Vec<f64> = (0..coo.nnz()).map(|e| e as f64 + 1.0).collect();
    exec.set_sparse_values(&new_vals).unwrap();
    let got = exec.execute().unwrap();

    // Oracle: the same value update applied to the written-order COO.
    let mut updated = coo.clone();
    // `coo` is sort_dedup'ed by random_coo, so its entry order == the
    // written-order CSF's leaf order (sanity-checked via vals).
    assert_eq!(updated.vals(), &written_leaf_vals[..]);
    updated.vals_mut().copy_from_slice(&new_vals);
    let want = oracle(&plan, &updated, &factors);
    let diff = max_diff(&got, &want);
    assert!(diff <= TOL, "diff {diff}");
}

#[test]
fn profile_only_auto_degenerates_to_natural() {
    // An exact profile describes one order; Auto must not crown a
    // different order off incomparable uniform-model scores.
    let mut rng = StdRng::seed_from_u64(19);
    let coo = lopsided_coo(&mut rng);
    let profile = spttn::tensor::SparsityProfile::from_coo(&coo, &[0, 1, 2]).unwrap();
    let shapes = Shapes::new()
        .with_dims(&[("i", 50), ("j", 50), ("k", 4), ("a", 8)])
        .with_profile(profile);
    let plan = Contraction::parse(MTTKRP)
        .unwrap()
        .plan(
            &shapes,
            &PlanOptions::with_cost_model(CostModel::MaxBufferSize)
                .with_mode_order(ModeOrderPolicy::Auto),
        )
        .unwrap();
    assert!(plan.is_natural_order());
    assert_eq!(plan.order_costs().len(), 1);
}

#[test]
fn uniform_model_auto_search_still_correct() {
    // Auto with only `with_nnz` (no pattern): orders are scored by the
    // uniform model; whatever wins, execution must stay exact.
    let mut rng = StdRng::seed_from_u64(17);
    let coo = random_coo(&[30, 6, 20], 90, &mut rng).unwrap();
    let shapes = Shapes::new()
        .with_dims(&[("i", 30), ("j", 6), ("k", 20), ("a", 7)])
        .with_nnz(90);
    let b = random_dense(&[6, 7], &mut rng);
    let c = random_dense(&[20, 7], &mut rng);
    let factors: Vec<(&str, &DenseTensor)> = vec![("B", &b), ("C", &c)];
    let plan = Contraction::parse(MTTKRP)
        .unwrap()
        .plan(
            &shapes,
            &PlanOptions::default().with_mode_order(ModeOrderPolicy::Auto),
        )
        .unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let mut exec = plan.bind(csf, &factors).unwrap();
    let got = exec.execute().unwrap();
    let diff = max_diff(&got, &oracle(&plan, &coo, &factors));
    assert!(diff <= TOL, "diff {diff}");
}
