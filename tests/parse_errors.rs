//! Both kernel syntaxes must reject malformed factor lists identically:
//! a trailing, doubled, leading, or lone `*` is an "empty factor" parse
//! error in the paper-style parser (`spttn_ir::parse_kernel`) and in
//! the facade's expression parser (both `=` and `->` syntaxes) — never
//! silently swallowed.

use spttn::ir::{parse_kernel, KernelError};
use spttn::{Contraction, SpttnError};

const DIMS: &[(&str, usize)] = &[("i", 3), ("j", 4)];

fn assert_empty_factor_ir(expr: &str) {
    let e = parse_kernel(expr, DIMS).unwrap_err();
    match e {
        KernelError::Parse(m) => {
            assert!(m.contains("empty factor"), "'{expr}': wrong message '{m}'")
        }
        other => panic!("'{expr}': expected Parse(empty factor), got {other:?}"),
    }
}

fn assert_empty_factor_facade(expr: &str) {
    let e = Contraction::parse(expr).unwrap_err();
    match e {
        SpttnError::Kernel(KernelError::Parse(m)) => {
            assert!(m.contains("empty factor"), "'{expr}': wrong message '{m}'")
        }
        other => panic!("'{expr}': expected Kernel(Parse(empty factor)), got {other:?}"),
    }
}

#[test]
fn paper_syntax_rejects_stray_stars() {
    // Trailing '*' — the regression: this parsed as if the star were
    // absent before the fix.
    assert_empty_factor_ir("A(i) = T(i,j) * B(j) *");
    assert_empty_factor_ir("A(i) = T(i,j) ** B(j)");
    assert_empty_factor_ir("A(i) = *");
    assert_empty_factor_ir("A(i) = * T(i,j) * B(j)");
    assert_empty_factor_ir("A(i) += T(i,j) * B(j) *");
}

#[test]
fn facade_paper_syntax_rejects_stray_stars() {
    assert_empty_factor_facade("A(i) = T(i,j) * B(j) *");
    assert_empty_factor_facade("A(i) = T(i,j) ** B(j)");
    assert_empty_factor_facade("A(i) = *");
    assert_empty_factor_facade("A(i) += T(i,j) * B(j) *");
}

#[test]
fn facade_arrow_syntax_rejects_stray_stars() {
    assert_empty_factor_facade("T[i,j]*B[j]*->A[i]");
    assert_empty_factor_facade("T[i,j]**B[j]->A[i]");
    assert_empty_factor_facade("*->A[i]");
    assert_empty_factor_facade("*T[i,j]*B[j]->A[i]");
}

#[test]
fn facade_rejects_output_only_indices() {
    // An output index no input binds has no loop to produce it; the
    // parser must name the offending index, in both syntaxes.
    for expr in ["A(i,z) = T(i,j) * B(j)", "T[i,j]*B[j,r]->A[i,z]"] {
        let e = Contraction::parse(expr).unwrap_err();
        match e {
            SpttnError::Kernel(KernelError::Parse(m)) => assert!(
                m.contains("output index 'z'"),
                "'{expr}': wrong message '{m}'"
            ),
            other => panic!("'{expr}': expected Parse(output index), got {other:?}"),
        }
    }
}

#[test]
fn well_formed_expressions_still_parse() {
    assert!(parse_kernel("A(i) = T(i,j) * B(j)", DIMS).is_ok());
    assert!(Contraction::parse("A(i) = T(i,j) * B(j)").is_ok());
    assert!(Contraction::parse("T[i,j]*B[j]->A[i]").is_ok());
}
