//! Parallel execution golden tests through the facade: every standard
//! kernel, executed at several thread counts, must match the serial
//! path to ≤ 1e-9; fixed thread counts must be bitwise deterministic;
//! and the degenerate shapes (empty tensor, single root fiber, more
//! threads than roots) must all work.

use rand::prelude::*;
use spttn::ir::{stdkernels, Kernel};
use spttn::tensor::{random_coo, random_dense, CooTensor, Csf, DenseTensor, SparsityProfile};
use spttn::{Contraction, ContractionOutput, CostModel, Executor, PlanOptions, Shapes, Threads};

const TOL: f64 = 1e-9;

/// Random operands for a kernel: CSF in the written index order plus
/// named dense factors.
fn operands(kernel: &Kernel, nnz: usize, seed: u64) -> (Csf, Vec<(String, DenseTensor)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sdims = kernel.ref_dims(kernel.sparse_ref());
    let coo = random_coo(&sdims, nnz, &mut rng).unwrap();
    let order: Vec<usize> = (0..coo.order()).collect();
    let csf = Csf::from_coo(&coo, &order).unwrap();
    let mut factors = Vec::new();
    for (slot, r) in kernel.inputs.iter().enumerate() {
        if slot == kernel.sparse_input {
            continue;
        }
        factors.push((r.name.clone(), random_dense(&kernel.ref_dims(r), &mut rng)));
    }
    (csf, factors)
}

/// Plan (symbolically, at a given thread count) and bind.
fn bind_at(
    kernel: &Kernel,
    csf: &Csf,
    factors: &[(String, DenseTensor)],
    model: CostModel,
    threads: usize,
) -> Executor {
    let plan = Contraction::from_kernel(kernel.clone())
        .plan(
            &Shapes::new().with_profile(SparsityProfile::from_csf(csf)),
            &PlanOptions::with_cost_model(model).with_threads(Threads::N(threads)),
        )
        .unwrap();
    let refs: Vec<(&str, &DenseTensor)> = factors.iter().map(|(n, t)| (n.as_str(), t)).collect();
    plan.bind(csf.clone(), &refs).unwrap()
}

fn execute_at(
    kernel: &Kernel,
    csf: &Csf,
    factors: &[(String, DenseTensor)],
    model: CostModel,
    threads: usize,
) -> ContractionOutput {
    bind_at(kernel, csf, factors, model, threads)
        .execute()
        .unwrap()
}

/// Every stdkernel (dense and pattern-sharing outputs), at thread
/// counts 1/2/4/7, agrees with the serial path to ≤ 1e-9.
#[test]
fn stdkernels_parallel_match_serial() {
    let suite: Vec<(Kernel, usize)> = vec![
        (stdkernels::mttkrp(&[30, 24, 26], 8), 500),
        (stdkernels::ttmc(&[20, 18, 22], &[5, 6]), 400),
        (stdkernels::tttp(&[20, 18, 22], 4), 400),
        (stdkernels::all_mode_ttmc(&[14, 14, 14], &[4, 5, 6]), 300),
    ];
    for (i, (kernel, nnz)) in suite.iter().enumerate() {
        let (csf, factors) = operands(kernel, *nnz, 40 + i as u64);
        let want = execute_at(kernel, &csf, &factors, CostModel::MaxBufferSize, 1).to_dense();
        for threads in [2usize, 4, 7] {
            let got = execute_at(kernel, &csf, &factors, CostModel::MaxBufferSize, threads);
            assert!(
                got.to_dense().approx_eq(&want, TOL),
                "{} at {threads} threads diverged from serial",
                kernel.to_einsum()
            );
        }
    }
}

/// Two executions at the same fixed thread count — on the same executor
/// and on a freshly bound one — are bitwise identical.
#[test]
fn parallel_execution_is_bitwise_deterministic() {
    let kernel = stdkernels::mttkrp(&[40, 20, 24], 8);
    let (csf, factors) = operands(&kernel, 800, 50);
    let mut exec = bind_at(&kernel, &csf, &factors, CostModel::MaxBufferSize, 4);
    assert!(exec.threads() > 1, "tensor should split into several tiles");
    let a = exec.execute().unwrap().to_dense();
    let b = exec.execute().unwrap().to_dense();
    assert_eq!(a.as_slice(), b.as_slice(), "same executor, same bits");
    let mut fresh = bind_at(&kernel, &csf, &factors, CostModel::MaxBufferSize, 4);
    let c = fresh.execute().unwrap().to_dense();
    assert_eq!(a.as_slice(), c.as_slice(), "fresh executor, same bits");
}

/// An empty sparse tensor executes at any thread count and yields zero.
#[test]
fn empty_tensor_runs_at_any_thread_count() {
    let kernel = stdkernels::mttkrp(&[10, 8, 9], 4);
    let coo = CooTensor::new(&[10, 8, 9]).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let mut rng = StdRng::seed_from_u64(60);
    let factors = vec![
        ("F1".to_string(), random_dense(&[8, 4], &mut rng)),
        ("F2".to_string(), random_dense(&[9, 4], &mut rng)),
    ];
    for threads in [1usize, 4] {
        let mut exec = bind_at(&kernel, &csf, &factors, CostModel::MaxBufferSize, threads);
        // One tile (empty), so the engine stays serial.
        assert_eq!(exec.threads(), 1);
        let out = exec.execute().unwrap().to_dense();
        assert_eq!(out.norm(), 0.0);
    }
}

/// A tensor whose nonzeros share one root fiber cannot split; parallel
/// binds fall back to one tile and still match.
#[test]
fn single_root_fiber_and_threads_beyond_roots() {
    let kernel = stdkernels::mttkrp(&[12, 10, 11], 5);
    let mut rng = StdRng::seed_from_u64(61);
    // Single root: every entry has i = 3.
    let mut coo = CooTensor::new(&[12, 10, 11]).unwrap();
    for _ in 0..60 {
        coo.push(
            &[3, rng.gen_range(0..10usize), rng.gen_range(0..11usize)],
            rng.gen_range(0.0..1.0f64),
        )
        .unwrap();
    }
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let factors = vec![
        ("F1".to_string(), random_dense(&[10, 5], &mut rng)),
        ("F2".to_string(), random_dense(&[11, 5], &mut rng)),
    ];
    let want = execute_at(&kernel, &csf, &factors, CostModel::MaxBufferSize, 1).to_dense();
    let mut exec = bind_at(&kernel, &csf, &factors, CostModel::MaxBufferSize, 4);
    assert_eq!(exec.threads(), 1, "one root fiber → one tile");
    let got = exec.execute().unwrap().to_dense();
    assert_eq!(got.as_slice(), want.as_slice());

    // Three roots, seven threads: at most three tiles, same result.
    let mut coo = CooTensor::new(&[12, 10, 11]).unwrap();
    for e in 0..90usize {
        coo.push(&[e % 3, (e * 7) % 10, (e * 5) % 11], 1.0 + e as f64)
            .unwrap();
    }
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let want = execute_at(&kernel, &csf, &factors, CostModel::MaxBufferSize, 1).to_dense();
    let mut exec = bind_at(&kernel, &csf, &factors, CostModel::MaxBufferSize, 7);
    assert!(exec.threads() <= 3);
    let got = exec.execute().unwrap().to_dense();
    assert!(got.approx_eq(&want, TOL));
}

/// `+=` accumulation composes with parallel execution exactly like the
/// serial path: two executions double the output.
#[test]
fn accumulate_semantics_survive_parallelism() {
    let kernel = stdkernels::ttmc(&[24, 14, 16], &[4, 5]);
    let (csf, factors) = operands(&kernel, 350, 70);
    let build = |threads: usize| {
        let plan = Contraction::from_kernel(kernel.clone())
            .with_accumulate(true)
            .plan(
                &Shapes::new().with_profile(SparsityProfile::from_csf(&csf)),
                &PlanOptions::with_cost_model(CostModel::MaxBufferSize)
                    .with_threads(Threads::N(threads)),
            )
            .unwrap();
        let refs: Vec<(&str, &DenseTensor)> =
            factors.iter().map(|(n, t)| (n.as_str(), t)).collect();
        plan.bind(csf.clone(), &refs).unwrap()
    };
    let run_twice = |mut exec: Executor| {
        let mut out = exec.output_template();
        exec.execute_into(&mut out).unwrap();
        exec.execute_into(&mut out).unwrap();
        out.to_dense()
    };
    let serial = run_twice(build(1));
    let parallel = run_twice(build(4));
    assert!(parallel.approx_eq(&serial, TOL));
    // And both really accumulated: one execution is half of two.
    let once = build(4).execute().unwrap().to_dense();
    let mut doubled = once.clone();
    doubled.as_mut_slice().iter_mut().for_each(|v| *v *= 2.0);
    assert!(parallel.approx_eq(&doubled, TOL));
}

/// Per-execution stats: zero before the first run, populated and
/// aggregated across threads afterwards.
#[test]
fn last_stats_reports_per_execution_dispatches() {
    let kernel = stdkernels::mttkrp(&[30, 24, 26], 8);
    let (csf, factors) = operands(&kernel, 500, 80);
    let mut serial = bind_at(
        &kernel,
        &csf,
        &factors,
        CostModel::BlasAware {
            buffer_dim_bound: 2,
        },
        1,
    );
    assert_eq!(serial.last_stats().total(), 0, "no execution yet");
    serial.execute().unwrap();
    let s1 = serial.last_stats();
    assert!(s1.total() > 0, "BLAS-aware MTTKRP must dispatch kernels");
    // Per-execution, not cumulative: a second run reports the same.
    serial.execute().unwrap();
    assert_eq!(serial.last_stats(), s1);

    let mut par = bind_at(
        &kernel,
        &csf,
        &factors,
        CostModel::BlasAware {
            buffer_dim_bound: 2,
        },
        4,
    );
    par.execute().unwrap();
    // Tiling partitions sparse-rooted work and may duplicate work that
    // sits outside every sparse loop; never less than serial.
    assert!(par.last_stats().total() >= s1.total());

    // The process-global compat shim keeps accumulating (other tests
    // in this binary may bump it concurrently, so only a lower bound
    // is asserted).
    let before = spttn::exec::interp::stats::snapshot();
    serial.execute().unwrap();
    let after = spttn::exec::interp::stats::snapshot();
    assert!(after.axpy - before.axpy >= serial.last_stats().axpy);
}

/// `Threads::Auto` resolves to the machine's parallelism and binds.
#[test]
fn threads_auto_binds_and_matches() {
    assert!(Threads::Auto.resolve() >= 1);
    let kernel = stdkernels::mttkrp(&[30, 24, 26], 8);
    let (csf, factors) = operands(&kernel, 500, 90);
    let want = execute_at(&kernel, &csf, &factors, CostModel::MaxBufferSize, 1).to_dense();
    let plan = Contraction::from_kernel(kernel.clone())
        .plan(
            &Shapes::new().with_profile(SparsityProfile::from_csf(&csf)),
            &PlanOptions::with_cost_model(CostModel::MaxBufferSize).with_threads(Threads::Auto),
        )
        .unwrap();
    let refs: Vec<(&str, &DenseTensor)> = factors.iter().map(|(n, t)| (n.as_str(), t)).collect();
    let mut exec = plan.bind(csf.clone(), &refs).unwrap();
    let got = exec.execute().unwrap().to_dense();
    assert!(got.approx_eq(&want, TOL));
}

/// Rebinding values (ALS-style) keeps working under parallel execution.
#[test]
fn rebind_factors_under_parallel_execution() {
    let kernel = stdkernels::mttkrp(&[30, 24, 26], 8);
    let (csf, factors) = operands(&kernel, 500, 95);
    let mut rng = StdRng::seed_from_u64(96);
    let b2 = random_dense(&[24, 8], &mut rng);
    let new_vals: Vec<f64> = csf.vals().iter().map(|v| v * 0.25).collect();

    let mut par = bind_at(&kernel, &csf, &factors, CostModel::MaxBufferSize, 4);
    par.set_factor("F1", &b2).unwrap();
    par.set_sparse_values(&new_vals).unwrap();
    let got = par.execute().unwrap().to_dense();

    let mut serial = bind_at(&kernel, &csf, &factors, CostModel::MaxBufferSize, 1);
    serial.set_factor("F1", &b2).unwrap();
    serial.set_sparse_values(&new_vals).unwrap();
    let want = serial.execute().unwrap().to_dense();
    assert!(got.approx_eq(&want, TOL));
}
