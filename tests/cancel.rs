//! Cancellation determinism: a cancelled-then-retried executor must
//! produce output **bitwise identical** to a fresh, never-cancelled
//! run — cancellation may leave no sticky state in workspaces, pool
//! workers, or outputs. Asserted for the kernel executor at 1 and 4
//! threads (token and deadline variants) and for the network executor.

use rand::prelude::*;
use spttn::tensor::{random_coo, random_dense, Csf, DenseTensor, SparsityProfile};
use spttn::{
    CancelToken, Contraction, ContractionOutput, Microkernels, PlanOptions, Shapes, SpttnError,
    Threads,
};
use spttn_net::{NetOptions, Network};
use std::time::Duration;

const EXPR: &str = "T[i,j,k]*A[j,r]*B[k,r]->O[i,r]";

fn bits(out: &ContractionOutput) -> Vec<u64> {
    match out {
        ContractionOutput::Dense(d) => d.as_slice().iter().map(|v| v.to_bits()).collect(),
        ContractionOutput::Sparse(c) => c.vals().iter().map(|v| v.to_bits()).collect(),
    }
}

#[test]
fn cancelled_then_retried_is_bitwise_identical_to_fresh() {
    let mut rng = StdRng::seed_from_u64(23);
    let coo = random_coo(&[24, 16, 18], 500, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let a = random_dense(&[16, 6], &mut rng);
    let b = random_dense(&[18, 6], &mut rng);
    let factors: Vec<(&str, &DenseTensor)> = vec![("A", &a), ("B", &b)];
    let shapes = Shapes::new()
        .with_dims(&[("i", 24), ("j", 16), ("k", 18), ("r", 6)])
        .with_profile(SparsityProfile::from_csf(&csf));

    for threads in [1usize, 4] {
        let base = PlanOptions::default()
            .with_threads(Threads::N(threads))
            .with_microkernels(Microkernels::Scalar);

        // Fresh, never-cancelled reference at this thread count.
        let plan = Contraction::parse(EXPR)
            .unwrap()
            .plan(&shapes, &base)
            .unwrap();
        let mut fresh = plan.bind(csf.clone(), &factors).unwrap();
        let want = bits(&fresh.execute().unwrap());

        // Token variant: cancel before execute, then reset and retry on
        // the SAME executor.
        let tok = CancelToken::new();
        let plan = Contraction::parse(EXPR)
            .unwrap()
            .plan(&shapes, &base.clone().with_cancel(tok.clone()))
            .unwrap();
        let mut exec = plan.bind(csf.clone(), &factors).unwrap();
        tok.cancel();
        match exec.execute() {
            Err(SpttnError::Cancelled { .. }) => {}
            other => panic!("{threads} thread(s): expected Cancelled, got {other:?}"),
        }
        tok.reset();
        let got = bits(&exec.execute().unwrap());
        assert_eq!(
            got, want,
            "{threads} thread(s): retry after token cancel must be bitwise identical"
        );

        // Deadline variant: an expired deadline cancels; a fresh
        // executor without one reproduces the reference bitwise.
        let plan = Contraction::parse(EXPR)
            .unwrap()
            .plan(&shapes, &base.clone().with_deadline(Duration::ZERO))
            .unwrap();
        let mut exec = plan.bind(csf.clone(), &factors).unwrap();
        assert!(
            matches!(exec.execute(), Err(SpttnError::Cancelled { .. })),
            "{threads} thread(s): zero deadline must cancel"
        );
        let plan = Contraction::parse(EXPR)
            .unwrap()
            .plan(&shapes, &base)
            .unwrap();
        let mut exec = plan.bind(csf.clone(), &factors).unwrap();
        assert_eq!(
            bits(&exec.execute().unwrap()),
            want,
            "{threads} thread(s): run after deadline rejection must be bitwise identical"
        );
    }
}

#[test]
fn network_cancel_then_retry_is_bitwise_identical() {
    let mut rng = StdRng::seed_from_u64(29);
    let coo = random_coo(&[30, 20], 350, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1]).unwrap();
    let d1 = random_dense(&[20, 4], &mut rng);
    let d2 = random_dense(&[4, 5], &mut rng);
    let net = Network::parse("T[i,j]*D1[j,m]*D2[m,r]->O[i,r]").unwrap();
    let shapes = Shapes::new()
        .with_dims(&[("i", 30), ("j", 20), ("m", 4), ("r", 5)])
        .with_profile(SparsityProfile::from_csf(&csf));

    let tok = CancelToken::new();
    let popts = PlanOptions::default()
        .with_microkernels(Microkernels::Scalar)
        .with_cancel(tok.clone());
    let nplan = net
        .plan(&shapes, &NetOptions::default().with_plan_options(popts))
        .unwrap();
    assert!(nplan.num_dense_steps() >= 1, "fixture must exercise steps");
    let mut exec = nplan.bind(csf, &[("D1", &d1), ("D2", &d2)]).unwrap();

    let want = bits(&exec.execute().unwrap());
    tok.cancel();
    match exec.execute() {
        Err(SpttnError::Cancelled { phase, .. }) => assert_eq!(phase, "network"),
        other => panic!("expected network Cancelled, got {other:?}"),
    }
    tok.reset();
    assert_eq!(
        bits(&exec.execute().unwrap()),
        want,
        "network retry after cancel must be bitwise identical"
    );
}
