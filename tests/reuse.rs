//! Plan-reuse golden tests: an `Executor` rebound with new factor
//! values / new sparse values must match a freshly planned-and-executed
//! contraction to ≤ 1e-9, across MTTKRP, TTMc, and TTTP — plus
//! error-path tests for bind-time shape mismatches, `+=` accumulation
//! semantics, parser rejection of empty factors, and `PlanCache`
//! behavior.

use rand::prelude::*;
use spttn::ir::{stdkernels, Kernel};
use spttn::tensor::{random_coo, random_dense, Csf, DenseTensor, SparsityProfile};
use spttn::{Contraction, ContractionOutput, CostModel, PlanCache, PlanOptions, Shapes, Threads};

const TOL: f64 = 1e-9;

/// Thread count for end-to-end executions: CI runs this suite at
/// `SPTTN_TEST_THREADS=1` and `=4` so the serial and parallel engines
/// both stay green.
fn test_threads() -> Threads {
    match std::env::var("SPTTN_TEST_THREADS") {
        Ok(v) => Threads::N(v.parse().expect("SPTTN_TEST_THREADS must be an integer")),
        Err(_) => Threads::N(1),
    }
}

/// Random dense factors for every non-sparse input slot, as
/// `(name, tensor)` pairs in input order.
fn random_factors(kernel: &Kernel, rng: &mut StdRng) -> Vec<(String, DenseTensor)> {
    let mut out = Vec::new();
    for (slot, r) in kernel.inputs.iter().enumerate() {
        if slot == kernel.sparse_input {
            continue;
        }
        out.push((r.name.clone(), random_dense(&kernel.ref_dims(r), rng)));
    }
    out
}

/// Freshly plan-and-execute the kernel on the given operands (the
/// one-shot pipeline the reused executor must agree with).
fn fresh_pipeline(kernel: &Kernel, csf: Csf, factors: &[(String, DenseTensor)]) -> DenseTensor {
    let mut c = Contraction::from_kernel(kernel.clone()).with_sparse_input(csf);
    for (name, t) in factors {
        c = c.with_factor(name, t.clone());
    }
    let mut exec = c
        .compile(
            PlanOptions::with_cost_model(CostModel::MaxBufferSize).with_threads(test_threads()),
        )
        .unwrap();
    exec.execute().unwrap().to_dense()
}

/// Plan once symbolically, bind, execute; then rebind new factor values
/// and new same-pattern sparse values and execute again. Both results
/// must match fresh pipelines on the same operands.
fn check_reuse(kernel: &Kernel, nnz: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sdims = kernel.ref_dims(kernel.sparse_ref());
    let order: Vec<usize> = (0..sdims.len()).collect();
    let coo = random_coo(&sdims, nnz, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &order).unwrap();
    let factors1 = random_factors(kernel, &mut rng);
    let factors2 = random_factors(kernel, &mut rng);

    // Stage 1: symbolic plan from the exact profile — no tensor data.
    let plan = Contraction::from_kernel(kernel.clone())
        .plan(
            &Shapes::new().with_profile(SparsityProfile::from_csf(&csf)),
            &PlanOptions::with_cost_model(CostModel::MaxBufferSize).with_threads(test_threads()),
        )
        .unwrap();

    // Stage 2: bind and execute.
    let refs: Vec<(&str, &DenseTensor)> = factors1.iter().map(|(n, t)| (n.as_str(), t)).collect();
    let mut exec = plan.bind(csf.clone(), &refs).unwrap();
    let got1 = exec.execute().unwrap().to_dense();
    let want1 = fresh_pipeline(kernel, csf.clone(), &factors1);
    assert!(
        got1.approx_eq(&want1, TOL),
        "first execution diverged for {}",
        kernel.to_einsum()
    );

    // Record buffer addresses: rebinding and re-executing must not move
    // any workspace allocation.
    let ptrs: Vec<*const f64> = exec
        .workspace()
        .buffers()
        .iter()
        .map(|b| b.as_slice().as_ptr())
        .collect();

    // Rebind: fresh factor values, fresh same-pattern sparse values.
    for (name, t) in &factors2 {
        exec.set_factor(name, t).unwrap();
    }
    let new_vals: Vec<f64> = csf.vals().iter().map(|v| v * 1.75 - 0.3).collect();
    exec.set_sparse_values(&new_vals).unwrap();
    let got2 = exec.execute().unwrap().to_dense();

    let mut csf2 = csf.clone();
    csf2.vals_mut().copy_from_slice(&new_vals);
    let want2 = fresh_pipeline(kernel, csf2, &factors2);
    assert!(
        got2.approx_eq(&want2, TOL),
        "rebound execution diverged for {}",
        kernel.to_einsum()
    );

    let ptrs_after: Vec<*const f64> = exec
        .workspace()
        .buffers()
        .iter()
        .map(|b| b.as_slice().as_ptr())
        .collect();
    assert_eq!(ptrs, ptrs_after, "workspace buffers were reallocated");
}

#[test]
fn mttkrp_reuse_matches_fresh_pipeline() {
    let k = stdkernels::mttkrp(&[12, 10, 11], 5);
    check_reuse(&k, 150, 41);
}

#[test]
fn ttmc_reuse_matches_fresh_pipeline() {
    let k = stdkernels::ttmc(&[10, 9, 11], &[4, 5]);
    check_reuse(&k, 120, 42);
}

#[test]
fn tttp_reuse_matches_fresh_pipeline() {
    let k = stdkernels::tttp(&[8, 9, 10], 4);
    check_reuse(&k, 100, 43);
}

#[test]
fn executor_execute_into_matches_execute() {
    let mut rng = StdRng::seed_from_u64(50);
    let coo = random_coo(&[12, 10, 11], 150, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let a = random_dense(&[10, 5], &mut rng);
    let b = random_dense(&[11, 5], &mut rng);

    let plan = Contraction::parse("T[i,j,k]*A[j,r]*B[k,r]->O[i,r]")
        .unwrap()
        .plan(
            &Shapes::new()
                .with_dims(&[("i", 12), ("j", 10), ("k", 11), ("r", 5)])
                .with_profile(SparsityProfile::from_csf(&csf)),
            &PlanOptions::default(),
        )
        .unwrap();
    let mut exec = plan.bind(csf, &[("A", &a), ("B", &b)]).unwrap();
    let mut out = exec.output_template();
    exec.execute_into(&mut out).unwrap();
    let direct = exec.execute().unwrap();
    assert!(out.to_dense().approx_eq(&direct.to_dense(), TOL));

    // execute_into with `=` semantics overwrites: running twice into the
    // same output must not double the values.
    exec.execute_into(&mut out).unwrap();
    assert!(out.to_dense().approx_eq(&direct.to_dense(), TOL));
}

#[test]
fn accumulate_expression_adds_into_output() {
    let mut rng = StdRng::seed_from_u64(51);
    let coo = random_coo(&[12, 10, 11], 150, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let a = random_dense(&[10, 5], &mut rng);
    let b = random_dense(&[11, 5], &mut rng);
    let shapes = Shapes::new()
        .with_dims(&[("i", 12), ("j", 10), ("k", 11), ("r", 5)])
        .with_profile(SparsityProfile::from_csf(&csf));

    let plan = Contraction::parse("O(i,r) += T(i,j,k) * A(j,r) * B(k,r)")
        .unwrap()
        .plan(&shapes, &PlanOptions::default())
        .unwrap();
    assert!(plan.accumulate());

    let mut exec = plan.bind(csf, &[("A", &a), ("B", &b)]).unwrap();
    // execute() always materializes from zero — the single-shot result.
    let single = exec.execute().unwrap().to_dense();
    // execute_into accumulates on top of the output's current values.
    let mut out = exec.output_template();
    exec.execute_into(&mut out).unwrap();
    exec.execute_into(&mut out).unwrap();
    let mut doubled = single.clone();
    for (d, s) in doubled
        .as_mut_slice()
        .iter_mut()
        .zip(single.as_slice().iter())
    {
        *d += s;
    }
    assert!(out.to_dense().approx_eq(&doubled, TOL));
}

#[test]
fn bind_rejects_shape_mismatches() {
    let mut rng = StdRng::seed_from_u64(52);
    let coo = random_coo(&[12, 10, 11], 100, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let a = random_dense(&[10, 5], &mut rng);
    let b = random_dense(&[11, 5], &mut rng);
    let shapes = Shapes::new()
        .with_dims(&[("i", 12), ("j", 10), ("k", 11), ("r", 5)])
        .with_nnz(100);
    let plan = Contraction::parse("T[i,j,k]*A[j,r]*B[k,r]->O[i,r]")
        .unwrap()
        .plan(&shapes, &PlanOptions::default())
        .unwrap();

    // Factor with the wrong dims.
    let bad = random_dense(&[10, 6], &mut rng);
    let e = plan.bind(csf.clone(), &[("A", &bad), ("B", &b)]);
    assert!(matches!(e, Err(spttn::SpttnError::Shape(_))), "{e:?}");

    // Missing factor.
    let e = plan.bind(csf.clone(), &[("A", &a)]);
    assert!(matches!(e, Err(spttn::SpttnError::Execution(_))), "{e:?}");

    // Factor name the kernel does not mention.
    let e = plan.bind(csf.clone(), &[("A", &a), ("B", &b), ("Z", &a)]);
    assert!(matches!(e, Err(spttn::SpttnError::Execution(_))), "{e:?}");

    // CSF with the wrong dimensions.
    let wrong = random_coo(&[12, 10, 9], 80, &mut rng).unwrap();
    let wrong_csf = Csf::from_coo(&wrong, &[0, 1, 2]).unwrap();
    let e = plan.bind(wrong_csf, &[("A", &a), ("B", &b)]);
    assert!(matches!(e, Err(spttn::SpttnError::Shape(_))), "{e:?}");

    // Rebinding mismatches surface too.
    let mut exec = plan.bind(csf, &[("A", &a), ("B", &b)]).unwrap();
    let e = exec.set_factor("A", &bad);
    assert!(matches!(e, Err(spttn::SpttnError::Shape(_))), "{e:?}");
    let e = exec.set_factor("nope", &a);
    assert!(matches!(e, Err(spttn::SpttnError::Execution(_))), "{e:?}");
    let e = exec.set_sparse_values(&[1.0, 2.0]);
    assert!(matches!(e, Err(spttn::SpttnError::Shape(_))), "{e:?}");
}

#[test]
fn parser_rejects_empty_factors() {
    for expr in [
        "T(i,j)**A(j) -> O(i)",
        "O(i) = T(i,j)**A(j)",
        "O(i) = T(i,j)*A(j)*",
        "O(i) = *T(i,j)*A(j)",
        "O(i) = T(i,j)* *A(j)",
        "T[i,j]*A[j]*->O[i]",
    ] {
        let e = Contraction::parse(expr);
        let Err(err) = e else {
            panic!("'{expr}' should not parse");
        };
        assert!(
            err.to_string().contains("empty factor"),
            "'{expr}' gave: {err}"
        );
    }
    // Well-formed expressions still parse.
    assert!(Contraction::parse("O(i) = T(i,j) * A(j)").is_ok());
    assert!(Contraction::parse("O(i,r) += T(i,j) * A(j,r)").is_ok());
}

#[test]
fn plan_cache_hits_on_repeat_and_distinguishes_keys() {
    let cache = PlanCache::new();
    let shapes = Shapes::new()
        .with_dims(&[("i", 12), ("j", 10), ("k", 11), ("r", 5)])
        .with_nnz(150);
    let opts = PlanOptions::default();
    let expr = "T[i,j,k]*A[j,r]*B[k,r]->O[i,r]";

    let p1 = cache
        .plan(Contraction::parse(expr).unwrap(), &shapes, &opts)
        .unwrap();
    let p2 = cache
        .plan(Contraction::parse(expr).unwrap(), &shapes, &opts)
        .unwrap();
    assert!(std::sync::Arc::ptr_eq(&p1, &p2));
    assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));

    // A different rank is a different key.
    let shapes_r8 = Shapes::new()
        .with_dims(&[("i", 12), ("j", 10), ("k", 11), ("r", 8)])
        .with_nnz(150);
    let p3 = cache
        .plan(Contraction::parse(expr).unwrap(), &shapes_r8, &opts)
        .unwrap();
    assert!(!std::sync::Arc::ptr_eq(&p1, &p3));
    assert_eq!(cache.len(), 2);

    // A different cost model is a different key.
    let opts_dim = PlanOptions::with_cost_model(CostModel::MaxBufferDim);
    cache
        .plan(Contraction::parse(expr).unwrap(), &shapes, &opts_dim)
        .unwrap();
    assert_eq!(cache.len(), 3);

    // Cached plans execute correctly.
    let mut rng = StdRng::seed_from_u64(53);
    let coo = random_coo(&[12, 10, 11], 150, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let a = random_dense(&[10, 5], &mut rng);
    let b = random_dense(&[11, 5], &mut rng);
    let mut exec = p1.bind(csf.clone(), &[("A", &a), ("B", &b)]).unwrap();
    let got = exec.execute().unwrap().to_dense();
    let want = fresh_pipeline(
        &spttn::ir::parse_kernel(
            "O(i,r) = T(i,j,k) * A(j,r) * B(k,r)",
            &[("i", 12), ("j", 10), ("k", 11), ("r", 5)],
        )
        .unwrap(),
        csf,
        &[("A".into(), a.clone()), ("B".into(), b.clone())],
    );
    assert!(got.approx_eq(&want, TOL));

    cache.clear();
    assert!(cache.is_empty());
}

#[test]
fn compile_cached_skips_replanning() {
    let cache = PlanCache::new();
    let mut rng = StdRng::seed_from_u64(54);
    let coo = random_coo(&[12, 10, 11], 150, &mut rng).unwrap();
    let a = random_dense(&[10, 5], &mut rng);
    let b = random_dense(&[11, 5], &mut rng);
    let opts = PlanOptions::default();

    let mut outs = Vec::new();
    for _ in 0..3 {
        let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
        let mut exec = Contraction::parse("T[i,j,k]*A[j,r]*B[k,r]->O[i,r]")
            .unwrap()
            .with_sparse_input(csf)
            .with_factor("A", a.clone())
            .with_factor("B", b.clone())
            .compile_cached(&cache, &opts)
            .unwrap();
        outs.push(exec.execute().unwrap().to_dense());
    }
    assert_eq!((cache.hits(), cache.misses()), (2, 1));
    assert!(outs[0].approx_eq(&outs[1], TOL));
    assert!(outs[1].approx_eq(&outs[2], TOL));
}

#[test]
fn tttp_reused_executor_keeps_sparse_output_pattern() {
    let k = stdkernels::tttp(&[8, 9, 10], 4);
    let mut rng = StdRng::seed_from_u64(55);
    let coo = random_coo(&[8, 9, 10], 100, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let factors = random_factors(&k, &mut rng);
    let refs: Vec<(&str, &DenseTensor)> = factors.iter().map(|(n, t)| (n.as_str(), t)).collect();

    let plan = Contraction::from_kernel(k.clone())
        .plan(
            &Shapes::new().with_profile(SparsityProfile::from_csf(&csf)),
            &PlanOptions::with_cost_model(CostModel::MaxBufferSize).with_threads(test_threads()),
        )
        .unwrap();
    let mut exec = plan.bind(csf.clone(), &refs).unwrap();
    let mut out = exec.output_template();
    exec.execute_into(&mut out).unwrap();
    let ContractionOutput::Sparse(s) = &out else {
        panic!("TTTP output must share the sparse pattern");
    };
    assert_eq!(s.nnz(), csf.nnz());
    let want = fresh_pipeline(&k, csf, &factors);
    assert!(out.to_dense().approx_eq(&want, TOL));
}

#[test]
fn bind_rejects_duplicate_factor_names() {
    let mut rng = StdRng::seed_from_u64(56);
    let coo = random_coo(&[12, 10, 11], 100, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let a = random_dense(&[10, 5], &mut rng);
    let a2 = random_dense(&[10, 5], &mut rng);
    let b = random_dense(&[11, 5], &mut rng);
    let plan = Contraction::parse("T[i,j,k]*A[j,r]*B[k,r]->O[i,r]")
        .unwrap()
        .plan(
            &Shapes::new()
                .with_dims(&[("i", 12), ("j", 10), ("k", 11), ("r", 5)])
                .with_nnz(100),
            &PlanOptions::default(),
        )
        .unwrap();
    let e = plan.bind(csf, &[("A", &a), ("A", &a2), ("B", &b)]);
    assert!(matches!(e, Err(spttn::SpttnError::Execution(_))), "{e:?}");
    let msg = e.unwrap_err().to_string();
    assert!(msg.contains("bound twice"), "{msg}");
}

#[test]
fn execute_into_rejects_foreign_sparse_pattern() {
    let k = stdkernels::tttp(&[8, 9, 10], 4);
    let mut rng = StdRng::seed_from_u64(57);
    let coo = random_coo(&[8, 9, 10], 100, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let factors = random_factors(&k, &mut rng);
    let refs: Vec<(&str, &DenseTensor)> = factors.iter().map(|(n, t)| (n.as_str(), t)).collect();
    let mut exec = Contraction::from_kernel(k)
        .plan(
            &Shapes::new().with_profile(SparsityProfile::from_csf(&csf)),
            &PlanOptions::with_cost_model(CostModel::MaxBufferSize).with_threads(test_threads()),
        )
        .unwrap()
        .bind(csf.clone(), &refs)
        .unwrap();

    // Same dims and nnz, different coordinates: must be rejected, not
    // silently filled with values for the wrong positions.
    let other = random_coo(&[8, 9, 10], csf.nnz(), &mut rng).unwrap();
    let other_csf = Csf::from_coo(&other, &[0, 1, 2]).unwrap();
    if other_csf.nnz() == csf.nnz() && other_csf.to_coo().coords() != csf.to_coo().coords() {
        let mut out = ContractionOutput::Sparse(other_csf.to_coo());
        let e = exec.execute_into(&mut out);
        assert!(matches!(e, Err(spttn::SpttnError::Shape(_))), "{e:?}");
    }

    // The template pattern still works.
    let mut out = exec.output_template();
    exec.execute_into(&mut out).unwrap();
}
