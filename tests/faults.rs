//! Fault-injection acceptance suite for the hardened runtime: injected
//! worker panics fail only the execution they hit (typed as
//! [`SpttnError::WorkerPanic`]) and the pool completes subsequent
//! executions; a dead worker is respawned transparently; deadlines and
//! budgets reject with typed errors; and the recovered pool still
//! honors the zero-allocation execute contract.
//!
//! The fault registry is process-global and the allocation counter
//! needs exclusive windows, so this binary holds exactly one test
//! function (the `no_alloc` suite's idiom).

use rand::prelude::*;
use spttn::exec::faults::{self, Fault};
use spttn::tensor::{random_coo, random_dense, Csf, DenseTensor, SparsityProfile};
use spttn::{
    Contraction, ContractionOutput, Microkernels, Plan, PlanOptions, RunBudget, Shapes, SpttnError,
    Threads,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const EXPR: &str = "T[i,j,k]*A[j,r]*B[k,r]->O[i,r]";

fn mttkrp_plan(threads: usize, csf: &Csf, extra: impl FnOnce(PlanOptions) -> PlanOptions) -> Plan {
    let opts = extra(
        PlanOptions::default()
            .with_threads(Threads::N(threads))
            .with_microkernels(Microkernels::Scalar),
    );
    Contraction::parse(EXPR)
        .unwrap()
        .plan(
            &Shapes::new()
                .with_dims(&[("i", 24), ("j", 16), ("k", 18), ("r", 6)])
                .with_profile(SparsityProfile::from_csf(csf)),
            &opts,
        )
        .unwrap()
}

fn as_dense(out: &ContractionOutput) -> &DenseTensor {
    match out {
        ContractionOutput::Dense(d) => d,
        ContractionOutput::Sparse(_) => panic!("MTTKRP output is dense"),
    }
}

#[test]
fn injected_faults_are_isolated_and_the_pool_recovers() {
    faults::clear();
    let mut rng = StdRng::seed_from_u64(17);
    let coo = random_coo(&[24, 16, 18], 500, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let a = random_dense(&[16, 6], &mut rng);
    let b = random_dense(&[18, 6], &mut rng);
    let factors: Vec<(&str, &DenseTensor)> = vec![("A", &a), ("B", &b)];

    // Baseline: serial reference result every recovered execution must
    // reproduce exactly (scalar microkernels are bitwise-stable).
    let serial = mttkrp_plan(1, &csf, |o| o);
    let want = serial
        .bind(csf.clone(), &factors)
        .unwrap()
        .execute()
        .unwrap();
    let want = as_dense(&want).clone();

    // ---- 4 threads: pool-worker faults ------------------------------
    let plan4 = mttkrp_plan(4, &csf, |o| o);
    let mut exec = plan4.bind(csf.clone(), &factors).unwrap();
    assert!(exec.threads() > 1, "fixture must engage the worker pool");

    // (a) A panicking worker job fails only that execution, typed.
    faults::inject(Fault::WorkerPanic { worker: 0 });
    match exec.execute() {
        Err(SpttnError::WorkerPanic { worker, payload }) => {
            // Pool slot 0 runs tile 1; tile 0 is the calling thread.
            assert_eq!(worker, 1, "slot 0 reports as tile 1");
            assert!(
                payload.contains("injected fault"),
                "payload should carry the panic message, got '{payload}'"
            );
        }
        other => panic!("expected WorkerPanic, got {other:?}"),
    }
    // The same pool completes the next execution, bit-exactly.
    let got = exec.execute().unwrap();
    assert_eq!(
        as_dense(&got).as_slice(),
        want.as_slice(),
        "post-panic execution must match the serial baseline"
    );

    // (b) A worker whose thread dies is respawned before the next run.
    faults::inject(Fault::WorkerDeath { worker: 1 });
    match exec.execute() {
        Err(SpttnError::WorkerPanic { worker, .. }) => assert_eq!(worker, 2),
        other => panic!("expected WorkerPanic from dying worker, got {other:?}"),
    }
    let got = exec.execute().unwrap();
    assert_eq!(
        as_dense(&got).as_slice(),
        want.as_slice(),
        "execution after worker respawn must match the serial baseline"
    );

    // (c) A tile-0 (calling thread) panic is caught and typed too.
    faults::inject(Fault::Tile0Panic);
    match exec.execute() {
        Err(SpttnError::WorkerPanic { worker, .. }) => assert_eq!(worker, 0),
        other => panic!("expected tile-0 WorkerPanic, got {other:?}"),
    }
    let got = exec.execute().unwrap();
    assert_eq!(as_dense(&got).as_slice(), want.as_slice());

    // (d) Zero-allocation contract survives recovery: once the pool is
    // healthy and warm again, executions stay off the heap.
    let mut out = exec.output_template();
    exec.execute_into(&mut out).unwrap();
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..3 {
        exec.execute_into(&mut out).unwrap();
    }
    assert_eq!(
        ALLOCATIONS.load(Ordering::SeqCst) - before,
        0,
        "recovered pool must still execute allocation-free"
    );

    // (e) Repeated death/recovery cycles neither wedge the pool nor
    // corrupt results (leak/stability sweep).
    for cycle in 0..5 {
        faults::inject(Fault::WorkerDeath { worker: cycle % 3 });
        assert!(
            matches!(exec.execute(), Err(SpttnError::WorkerPanic { .. })),
            "cycle {cycle}: armed death must fail the execution"
        );
        let got = exec.execute().unwrap();
        assert_eq!(
            as_dense(&got).as_slice(),
            want.as_slice(),
            "cycle {cycle}: pool must recover"
        );
    }

    // ---- 1 thread: the serial path never claims pool faults ---------
    let mut exec1 = mttkrp_plan(1, &csf, |o| o)
        .bind(csf.clone(), &factors)
        .unwrap();
    assert_eq!(exec1.threads(), 1);
    faults::inject(Fault::WorkerPanic { worker: 0 });
    faults::inject(Fault::Tile0Panic);
    let got = exec1.execute().unwrap();
    assert_eq!(
        as_dense(&got).as_slice(),
        want.as_slice(),
        "serial execution must be untouched by armed pool faults"
    );
    faults::clear();

    // ---- deadlines: prompt cancellation, output untouched -----------
    for threads in [1usize, 4] {
        let plan = mttkrp_plan(threads, &csf, |o| o.with_deadline(Duration::ZERO));
        let mut exec = plan.bind(csf.clone(), &factors).unwrap();
        let mut out = exec.output_template();
        match exec.execute_into(&mut out) {
            Err(SpttnError::Cancelled { phase, .. }) => {
                assert!(
                    phase == "tape" || phase == "interp",
                    "unexpected phase '{phase}'"
                );
            }
            other => panic!("expected Cancelled at {threads} thread(s), got {other:?}"),
        }
        assert!(
            as_dense(&out).as_slice().iter().all(|&v| v == 0.0),
            "a cancelled execution must not leave partial results"
        );
    }

    // ---- budget admission -------------------------------------------
    let probe = mttkrp_plan(4, &csf, |o| o);
    let serial_bytes = u64::try_from(probe.parallel_footprint(1).saturating_mul(8)).unwrap();
    let four_bytes = u64::try_from(probe.parallel_footprint(4).saturating_mul(8)).unwrap();
    assert!(serial_bytes > 0, "MTTKRP must have a nonzero workspace");
    assert!(four_bytes >= 4 * serial_bytes);

    // Exact fit admits all requested threads.
    let plan = mttkrp_plan(4, &csf, |o| {
        o.with_budget(RunBudget::default().with_max_workspace_bytes(four_bytes))
    });
    let mut exec = plan.bind(csf.clone(), &factors).unwrap();
    assert!(exec.threads() > 1, "exact-fit budget must not degrade");
    assert_eq!(
        as_dense(&exec.execute().unwrap()).as_slice(),
        want.as_slice()
    );

    // A budget between the serial and 4-thread footprints degrades the
    // thread count instead of rejecting.
    let plan = mttkrp_plan(4, &csf, |o| {
        o.with_budget(RunBudget::default().with_max_workspace_bytes(four_bytes - 1))
    });
    let mut exec = plan.bind(csf.clone(), &factors).unwrap();
    assert!(
        exec.threads() < 4,
        "budget below the 4-thread footprint must shed threads"
    );
    assert_eq!(
        as_dense(&exec.execute().unwrap()).as_slice(),
        want.as_slice()
    );

    // Below even the serial footprint, bind rejects with the predicted
    // requirement and the allowed limit.
    let plan = mttkrp_plan(4, &csf, |o| {
        o.with_budget(RunBudget::default().with_max_workspace_bytes(serial_bytes - 1))
    });
    match plan.bind(csf.clone(), &factors) {
        Err(SpttnError::BudgetExceeded {
            resource,
            predicted,
            allowed,
        }) => {
            assert_eq!(resource, "workspace bytes");
            assert_eq!(predicted, u128::from(serial_bytes));
            assert_eq!(allowed, u128::from(serial_bytes) - 1);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }

    // Flops gate: one below the modeled count rejects, at it admits.
    let flops = probe.flops;
    let plan = mttkrp_plan(1, &csf, |o| {
        o.with_budget(RunBudget::default().with_max_modeled_flops(flops - 1))
    });
    match plan.bind(csf.clone(), &factors) {
        Err(SpttnError::BudgetExceeded {
            resource,
            predicted,
            allowed,
        }) => {
            assert_eq!(resource, "modeled flops");
            assert_eq!(predicted, flops);
            assert_eq!(allowed, flops - 1);
        }
        other => panic!("expected flops rejection, got {other:?}"),
    }
    let plan = mttkrp_plan(1, &csf, |o| {
        o.with_budget(RunBudget::default().with_max_modeled_flops(flops))
    });
    assert!(plan.bind(csf, &factors).is_ok());
}
