//! PlanCache concurrency: misses are single-flight per key — N threads
//! racing a cold key run the planner once, not N times.

use spttn::{Contraction, ModeOrderPolicy, PlanCache, PlanOptions, Shapes};
use spttn_net::{NetOptions, Network, NetworkPlan};
use std::sync::{Arc, Barrier};

const EXPR: &str = "T[i,j,k]*B[j,r]*C[k,r]->A[i,r]";

fn shapes() -> Shapes {
    Shapes::new()
        .with_dims(&[("i", 40), ("j", 30), ("k", 20), ("r", 8)])
        .with_nnz(1500)
}

#[test]
fn racing_threads_plan_once() {
    let cache = PlanCache::new();
    let opts = PlanOptions::default();
    const THREADS: usize = 8;
    let barrier = Arc::new(Barrier::new(THREADS));

    let plans: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let cache = &cache;
                let opts = &opts;
                scope.spawn(move || {
                    let c = Contraction::parse(EXPR).unwrap();
                    let shapes = shapes();
                    // Line everyone up so all lookups hit the cold key
                    // together — the thundering-herd scenario.
                    barrier.wait();
                    cache.plan(c, &shapes, opts).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // One planner run; everyone else waited on the flight and shares
    // the same Arc.
    assert_eq!(cache.misses(), 1, "planner must run exactly once");
    assert_eq!(cache.hits(), (THREADS - 1) as u64);
    assert_eq!(cache.len(), 1);
    for p in &plans[1..] {
        assert!(Arc::ptr_eq(&plans[0], p));
    }
}

#[test]
fn racing_threads_on_distinct_keys_plan_each() {
    // Sanity check the other direction: different keys never share a
    // flight.
    let cache = PlanCache::new();
    let opts_a = PlanOptions::default();
    let opts_b = PlanOptions::default().with_mode_order(ModeOrderPolicy::Auto);
    std::thread::scope(|scope| {
        let cache = &cache;
        let a = scope.spawn({
            let opts = opts_a.clone();
            move || cache.plan(Contraction::parse(EXPR).unwrap(), &shapes(), &opts)
        });
        let b = scope.spawn({
            let opts = opts_b.clone();
            move || cache.plan(Contraction::parse(EXPR).unwrap(), &shapes(), &opts)
        });
        a.join().unwrap().unwrap();
        b.join().unwrap().unwrap();
    });
    assert_eq!(cache.misses(), 2);
    assert_eq!(cache.len(), 2);
}

#[test]
fn failed_flights_are_not_cached() {
    // max_tiers = 0 guarantees "no feasible loop nest" every time; the
    // error must propagate to the caller but never be pinned in the
    // cache, so a later (fixed) lookup plans fresh.
    let cache = PlanCache::new();
    let broken = PlanOptions {
        max_tiers: 0,
        ..PlanOptions::default()
    };

    for _ in 0..2 {
        let e = cache.plan(Contraction::parse(EXPR).unwrap(), &shapes(), &broken);
        assert!(e.is_err());
    }
    // Each attempt re-ran the planner (no error caching)...
    assert_eq!(cache.misses(), 2);
    // ...and nothing was retained.
    assert_eq!(cache.len(), 0);
    assert!(cache.is_empty());

    // The same key with working options now plans and caches normally.
    let fixed = PlanOptions {
        max_tiers: 16,
        ..broken
    };
    cache
        .plan(Contraction::parse(EXPR).unwrap(), &shapes(), &fixed)
        .unwrap();
    assert_eq!(cache.len(), 1);
}

/// A cache hit must honor the *caller's* execution options, not the
/// flight leader's: the symbolic nest is shared, but engine and thread
/// count are re-applied on mismatch. Matching options keep sharing one
/// `Arc` (no clone).
#[test]
fn cache_hit_reapplies_callers_exec_options() {
    use spttn::{Engine, Threads};
    let cache = PlanCache::new();
    let tape_opts = PlanOptions::default();
    let p1 = cache
        .plan(Contraction::parse(EXPR).unwrap(), &shapes(), &tape_opts)
        .unwrap();
    assert_eq!(p1.exec().engine, Engine::Tape);

    // Same key, different engine: hit, but the returned plan must bind
    // the interpreter (the documented oracle cross-check workflow).
    let interp_opts = PlanOptions::default().with_engine(Engine::Interp);
    let p2 = cache
        .plan(Contraction::parse(EXPR).unwrap(), &shapes(), &interp_opts)
        .unwrap();
    assert_eq!((cache.hits(), cache.misses()), (1, 1));
    assert_eq!(p2.exec().engine, Engine::Interp);
    assert!(!Arc::ptr_eq(&p1, &p2), "mismatched exec needs a new Arc");

    // Different thread count likewise.
    let par_opts = PlanOptions::default().with_threads(Threads::N(4));
    let p3 = cache
        .plan(Contraction::parse(EXPR).unwrap(), &shapes(), &par_opts)
        .unwrap();
    assert_eq!(p3.exec().threads, Threads::N(4));

    // Matching options keep sharing the cached Arc untouched.
    let p4 = cache
        .plan(Contraction::parse(EXPR).unwrap(), &shapes(), &tape_opts)
        .unwrap();
    assert!(Arc::ptr_eq(&p1, &p4));
}

/// Regression: the static-verification flag must survive a cache hit.
/// A release-mode caller asking for `with_verify(true)` on a kernel
/// that some earlier caller already planned without it must still get
/// a plan whose bind runs the tape verifier — the hit path re-applies
/// exec options, and `verify` is one of them.
#[test]
fn cache_hit_honors_verify_flag() {
    let cache = PlanCache::new();
    let p1 = cache
        .plan(
            Contraction::parse(EXPR).unwrap(),
            &shapes(),
            &PlanOptions::default(),
        )
        .unwrap();
    assert!(!p1.exec().verify, "default plans do not opt into verify");

    let verified_opts = PlanOptions::default().with_verify(true);
    let p2 = cache
        .plan(Contraction::parse(EXPR).unwrap(), &shapes(), &verified_opts)
        .unwrap();
    assert_eq!((cache.hits(), cache.misses()), (1, 1), "same key: a hit");
    assert!(p2.exec().verify, "hit must re-apply the caller's verify");
    assert!(!Arc::ptr_eq(&p1, &p2), "mismatched exec needs a new Arc");

    // The cached entry itself is untouched: a third default caller
    // still shares the original unverified Arc.
    let p3 = cache
        .plan(
            Contraction::parse(EXPR).unwrap(),
            &shapes(),
            &PlanOptions::default(),
        )
        .unwrap();
    assert!(Arc::ptr_eq(&p1, &p3));
}

/// Regression: the microkernel policy must survive a cache hit exactly
/// like engine/threads/verify. A bitwise-reproducibility caller forcing
/// `Microkernels::Scalar` on a kernel some earlier caller planned with
/// the default `Auto` must get a plan that binds scalar kernels — not
/// silently inherit the flight leader's SIMD selection.
#[test]
fn cache_hit_reapplies_microkernel_option() {
    use spttn::Microkernels;
    let cache = PlanCache::new();
    let p1 = cache
        .plan(
            Contraction::parse(EXPR).unwrap(),
            &shapes(),
            &PlanOptions::default(),
        )
        .unwrap();
    assert_eq!(p1.exec().microkernels, Microkernels::Auto);

    let scalar_opts = PlanOptions::default().with_microkernels(Microkernels::Scalar);
    let p2 = cache
        .plan(Contraction::parse(EXPR).unwrap(), &shapes(), &scalar_opts)
        .unwrap();
    assert_eq!((cache.hits(), cache.misses()), (1, 1), "same key: a hit");
    assert_eq!(
        p2.exec().microkernels,
        Microkernels::Scalar,
        "hit must re-apply the caller's microkernel policy"
    );
    assert!(!Arc::ptr_eq(&p1, &p2), "mismatched exec needs a new Arc");

    // The cached entry itself is untouched: a third default caller
    // still shares the original Auto Arc.
    let p3 = cache
        .plan(
            Contraction::parse(EXPR).unwrap(),
            &shapes(),
            &PlanOptions::default(),
        )
        .unwrap();
    assert!(Arc::ptr_eq(&p1, &p3));
}

/// One network per CP-ALS mode, planned twice against a shared cache:
/// the cold pass misses once per distinct collapsed kernel, the second
/// pass re-plans nothing — every step is a hit.
#[test]
fn network_sweep_hits_cache_on_second_pass() {
    let cache = PlanCache::new();
    let nopts = NetOptions::default();
    let sweep = [
        "T[i,j,k]*B[j,r]*C[k,r] -> A_new[i,r]",
        "T[i,j,k]*A[i,r]*C[k,r] -> B_new[j,r]",
        "T[i,j,k]*A[i,r]*B[j,r] -> C_new[k,r]",
    ];
    for pass in 0..2 {
        for expr in &sweep {
            Network::parse(expr)
                .unwrap()
                .plan_cached(&cache, &shapes(), &nopts)
                .unwrap();
        }
        if pass == 0 {
            assert_eq!(
                (cache.hits(), cache.misses()),
                (0, 3),
                "cold pass plans each mode exactly once"
            );
        }
    }
    assert_eq!(cache.misses(), 3, "second pass must not re-plan any step");
    assert_eq!(cache.hits(), 3);
    assert_eq!(cache.len(), 3);
}

/// Two distinct networks, two racing planner threads each, one shared
/// cache: single-flight holds per collapsed-kernel key, so each network
/// plans exactly once and the racer on the same key waits and shares
/// the same `Arc<Plan>`.
#[test]
fn racing_networks_share_flights() {
    let cache = PlanCache::new();
    let nopts = NetOptions::default();
    let exprs = [
        "T[i,j,k]*B[j,r]*C[k,r] -> A_new[i,r]",
        "T[i,j,k]*A[i,r]*C[k,r] -> B_new[j,r]",
    ];
    const RACERS: usize = 2;
    let barrier = Arc::new(Barrier::new(exprs.len() * RACERS));
    let plans: Vec<Vec<NetworkPlan>> = std::thread::scope(|scope| {
        let handles: Vec<Vec<_>> = exprs
            .iter()
            .map(|expr| {
                (0..RACERS)
                    .map(|_| {
                        let barrier = Arc::clone(&barrier);
                        let cache = &cache;
                        let nopts = &nopts;
                        scope.spawn(move || {
                            let net = Network::parse(expr).unwrap();
                            let shapes = shapes();
                            barrier.wait();
                            net.plan_cached(cache, &shapes, nopts).unwrap()
                        })
                    })
                    .collect()
            })
            .collect();
        handles
            .into_iter()
            .map(|hs| hs.into_iter().map(|h| h.join().unwrap()).collect())
            .collect()
    });
    assert_eq!(cache.misses(), 2, "one planner run per distinct network");
    assert_eq!(cache.hits(), 2);
    assert_eq!(cache.len(), 2);
    for group in &plans {
        assert!(
            Arc::ptr_eq(group[0].kernel_plan(), group[1].kernel_plan()),
            "racers on one key must share the flight leader's plan"
        );
    }
}
