//! Differential harness: the tape engine vs the oracle interpreter.
//!
//! Every standard kernel (MTTKRP, TTMc, TTTP, all-mode TTMc, SpMV)
//! plus randomized 3-/4-mode expressions, under **all four cost
//! models × threads {1, 4} × engines {Tape, Interp}**: the two engines
//! must agree to ≤1e-9 everywhere, parallel reductions must be
//! bitwise-reproducible run to run, and the `+=` accumulate and
//! rebinding (`set_factor` / `set_sparse_values`) paths must behave
//! identically on both engines.

use rand::prelude::*;
use spttn::ir::{stdkernels, Kernel};
use spttn::tensor::{random_coo, random_dense, Csf, DenseTensor, SparsityProfile};
use spttn::{
    Contraction, ContractionOutput, CostModel, Engine, Executor, PlanOptions, Shapes, Threads,
};

const TOL: f64 = 1e-9;

const MODELS: [CostModel; 4] = [
    CostModel::MaxBufferDim,
    CostModel::MaxBufferSize,
    CostModel::CacheMiss { d: 1 },
    CostModel::BlasAware {
        buffer_dim_bound: 2,
    },
];

fn operands(kernel: &Kernel, nnz: usize, seed: u64) -> (Csf, Vec<(String, DenseTensor)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let dims = kernel.ref_dims(kernel.sparse_ref());
    let coo = random_coo(&dims, nnz, &mut rng).unwrap();
    let order: Vec<usize> = (0..dims.len()).collect();
    let csf = Csf::from_coo(&coo, &order).unwrap();
    let mut factors = Vec::new();
    for (slot, r) in kernel.inputs.iter().enumerate() {
        if slot == kernel.sparse_input {
            continue;
        }
        if factors.iter().any(|(n, _)| *n == r.name) {
            continue;
        }
        factors.push((r.name.clone(), random_dense(&kernel.ref_dims(r), &mut rng)));
    }
    (csf, factors)
}

fn bind_at(
    kernel: &Kernel,
    csf: &Csf,
    factors: &[(String, DenseTensor)],
    model: CostModel,
    threads: usize,
    engine: Engine,
) -> Executor {
    let plan = Contraction::from_kernel(kernel.clone())
        .plan(
            &Shapes::new().with_profile(SparsityProfile::from_csf(csf)),
            &PlanOptions::with_cost_model(model)
                .with_threads(Threads::N(threads))
                .with_engine(engine),
        )
        .expect("planning succeeds");
    if engine == Engine::Tape {
        // Every tape the differential suite runs must also prove out
        // statically (bind re-checks this in debug builds; asserting
        // here keeps the invariant visible in release runs too).
        plan.verify_tape()
            .expect("differential tape verifies clean");
    }
    let refs: Vec<(&str, &DenseTensor)> = factors.iter().map(|(n, t)| (n.as_str(), t)).collect();
    plan.bind(csf.clone(), &refs).expect("bind succeeds")
}

fn bits(out: &ContractionOutput) -> Vec<u64> {
    out.to_dense()
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// The full matrix: kernels × models × threads, tape vs interpreter
/// ≤1e-9 (the engines mirror each other's operation order, so they are
/// bitwise equal in practice) and bitwise run-to-run reproducibility
/// per engine.
fn differential(kernel: &Kernel, nnz: usize, seed: u64) {
    let (csf, factors) = operands(kernel, nnz, seed);
    for model in MODELS {
        for threads in [1usize, 4] {
            let mut interp = bind_at(kernel, &csf, &factors, model, threads, Engine::Interp);
            let mut tape = bind_at(kernel, &csf, &factors, model, threads, Engine::Tape);
            assert_eq!(tape.engine(), Engine::Tape);
            assert_eq!(interp.engine(), Engine::Interp);
            let a = interp.execute().unwrap();
            let b = tape.execute().unwrap();
            assert!(
                a.to_dense().approx_eq(&b.to_dense(), TOL),
                "engines diverged: {} under {model:?} at {threads} threads",
                kernel.to_einsum()
            );
            // Same dispatch decisions on both engines.
            assert_eq!(
                interp.last_stats().total(),
                tape.last_stats().total(),
                "dispatch counts diverged: {} under {model:?}",
                kernel.to_einsum()
            );
            // Bitwise-identical parallel reductions, run to run.
            let b2 = tape.execute().unwrap();
            assert_eq!(bits(&b), bits(&b2), "tape is not run-to-run bitwise stable");
            let a2 = interp.execute().unwrap();
            assert_eq!(
                bits(&a),
                bits(&a2),
                "interp is not run-to-run bitwise stable"
            );
        }
    }
}

#[test]
fn mttkrp_differential() {
    differential(&stdkernels::mttkrp(&[40, 30, 35], 8), 900, 1);
}

#[test]
fn ttmc_differential() {
    differential(&stdkernels::ttmc(&[30, 25, 28], &[5, 6]), 700, 2);
}

#[test]
fn tttp_differential() {
    differential(&stdkernels::tttp(&[18, 20, 22], 5), 600, 3);
}

#[test]
fn all_mode_ttmc_differential() {
    differential(
        &stdkernels::all_mode_ttmc(&[14, 15, 16], &[4, 5, 6]),
        500,
        4,
    );
}

#[test]
fn spmv_differential() {
    // SpMV through the expression front door (order-2 sparse input).
    let kernel = spttn::ir::parse_kernel("y(i) = M(i,j) * x(j)", &[("i", 50), ("j", 60)]).unwrap();
    differential(&kernel, 400, 5);
}

#[test]
fn randomized_3mode_expression_differential() {
    // A tensor-train-style 3-mode contraction (TTTc shape).
    let kernel = stdkernels::tttc(&[16, 17, 18], 4);
    differential(&kernel, 450, 6);
}

#[test]
fn randomized_4mode_expression_differential() {
    // Order-4 TTMc: deeper nests, two intermediate buffers.
    differential(&stdkernels::ttmc(&[12, 10, 11, 9], &[3, 4, 5]), 500, 7);
}

/// `+=` accumulate path: both engines stack two executions on top of
/// the bound output identically.
#[test]
fn accumulate_path_matches_across_engines() {
    let mut rng = StdRng::seed_from_u64(21);
    let coo = random_coo(&[24, 20, 22], 500, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let b = random_dense(&[20, 6], &mut rng);
    let c = random_dense(&[22, 6], &mut rng);
    let shapes = Shapes::new()
        .with_dims(&[("i", 24), ("j", 20), ("k", 22), ("a", 6)])
        .with_profile(SparsityProfile::from_csf(&csf));
    let mut outs = Vec::new();
    for engine in [Engine::Interp, Engine::Tape] {
        for threads in [1usize, 4] {
            let plan = Contraction::parse("A(i,a) += T(i,j,k) * B(j,a) * C(k,a)")
                .unwrap()
                .plan(
                    &shapes,
                    &PlanOptions::with_cost_model(CostModel::BlasAware {
                        buffer_dim_bound: 2,
                    })
                    .with_threads(Threads::N(threads))
                    .with_engine(engine),
                )
                .unwrap();
            assert!(plan.accumulate());
            let mut exec = plan.bind(csf.clone(), &[("B", &b), ("C", &c)]).unwrap();
            let mut out = exec.output_template();
            exec.execute_into(&mut out).unwrap();
            exec.execute_into(&mut out).unwrap(); // accumulates: 2×
            outs.push(out.to_dense());
        }
    }
    for o in &outs[1..] {
        assert!(
            outs[0].approx_eq(o, TOL),
            "accumulate path diverged across engines/threads"
        );
    }
}

/// Rebinding path: `set_factor` + `set_sparse_values` feed both
/// engines identically (ALS-sweep shape).
#[test]
fn rebind_path_matches_across_engines() {
    let kernel = stdkernels::mttkrp(&[30, 24, 26], 7);
    let (csf, factors) = operands(&kernel, 700, 31);
    let mut rng = StdRng::seed_from_u64(32);
    let new_f1 = random_dense(&[24, 7], &mut rng);
    let new_vals: Vec<f64> = csf.vals().iter().map(|v| v * 0.25 + 1.0).collect();
    let mut outs = Vec::new();
    for engine in [Engine::Interp, Engine::Tape] {
        for threads in [1usize, 4] {
            let mut exec = bind_at(
                &kernel,
                &csf,
                &factors,
                CostModel::MaxBufferSize,
                threads,
                engine,
            );
            exec.execute().unwrap(); // stale state to overwrite
            exec.set_factor("F1", &new_f1).unwrap();
            exec.set_sparse_values(&new_vals).unwrap();
            outs.push(exec.execute().unwrap().to_dense());
        }
    }
    for o in &outs[1..] {
        assert!(
            outs[0].approx_eq(o, TOL),
            "rebind path diverged across engines/threads"
        );
    }
}

/// Sparse (pattern-sharing) outputs accumulate and rebind identically
/// on both engines too.
#[test]
fn sparse_output_accumulate_across_engines() {
    let kernel = stdkernels::tttp(&[14, 15, 16], 4);
    let (csf, factors) = operands(&kernel, 350, 41);
    let mut outs = Vec::new();
    for engine in [Engine::Interp, Engine::Tape] {
        for threads in [1usize, 4] {
            let mut exec = bind_at(
                &kernel,
                &csf,
                &factors,
                CostModel::MaxBufferDim,
                threads,
                engine,
            );
            let mut out = exec.output_template();
            exec.execute_into(&mut out).unwrap();
            outs.push(out.to_dense());
        }
    }
    for o in &outs[1..] {
        assert!(outs[0].approx_eq(o, TOL), "sparse outputs diverged");
    }
}
