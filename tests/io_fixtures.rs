//! Reader fixtures: the checked-in `tests/data/small.tns` and
//! `tests/data/small.mtx` must ingest to known tensors, and the `.tns`
//! fixture must drive the full pipeline (the same file the CI smoke job
//! feeds to `spttn run`).

use rand::prelude::*;
use spttn::tensor::{load_coo, random_dense, Csf, DenseTensor};
use spttn::{Contraction, ContractionOutput, ModeOrderPolicy, PlanOptions, Shapes, Threads};
use spttn_exec::naive_einsum;

fn fixture(name: &str) -> String {
    format!("{}/tests/data/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn tns_fixture_ingests() {
    let coo = load_coo(fixture("small.tns")).unwrap();
    assert_eq!(coo.dims(), &[6, 5, 4]);
    // 19 lines, one duplicate pair merged.
    assert_eq!(coo.nnz(), 18);
    let dense = coo.to_dense();
    assert_eq!(dense.get(&[0, 0, 0]), 1.0); // 0.25 + 0.75 summed
    assert_eq!(dense.get(&[1, 2, 3]), 1.25); // 1-based "2 3 4" entry
    assert_eq!(dense.get(&[5, 4, 0]), 2.125);
}

#[test]
fn mtx_fixture_ingests() {
    let coo = load_coo(fixture("small.mtx")).unwrap();
    assert_eq!(coo.dims(), &[5, 4]);
    assert_eq!(coo.nnz(), 7);
    let dense = coo.to_dense();
    assert_eq!(dense.get(&[0, 0]), 2.0);
    assert_eq!(dense.get(&[4, 3]), 0.25);
}

#[test]
fn tns_fixture_runs_mttkrp_end_to_end() {
    // The exact scenario the CI smoke job drives through `spttn run`,
    // in-process: ingest the fixture, auto-order plan, execute at 1 and
    // 4 threads, diff against the naive oracle.
    let coo = load_coo(fixture("small.tns")).unwrap();
    let shapes = Shapes::new()
        .with_dims(&[("i", 6), ("j", 5), ("k", 4), ("a", 8)])
        .with_pattern(coo.clone());
    let mut rng = StdRng::seed_from_u64(7);
    let b = random_dense(&[5, 8], &mut rng);
    let c = random_dense(&[4, 8], &mut rng);

    for threads in [1usize, 4] {
        let plan = Contraction::parse("A(i,a) = T(i,j,k) * B(j,a) * C(k,a)")
            .unwrap()
            .plan(
                &shapes,
                &PlanOptions::default()
                    .with_mode_order(ModeOrderPolicy::Auto)
                    .with_threads(Threads::N(threads)),
            )
            .unwrap();
        let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
        let mut exec = plan.bind(csf, &[("B", &b), ("C", &c)]).unwrap();
        let ContractionOutput::Dense(got) = exec.execute().unwrap() else {
            panic!("MTTKRP output is dense");
        };

        let kernel = plan.natural_kernel();
        let sparse_dense = coo.to_dense();
        let slots: Vec<&DenseTensor> = vec![&sparse_dense, &b, &c];
        let want = naive_einsum(&kernel, &slots).unwrap();
        let diff = got
            .as_slice()
            .iter()
            .zip(want.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(diff <= 1e-9, "threads {threads}: diff {diff}");
    }
}
