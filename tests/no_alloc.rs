//! Acceptance criterion: `Executor::execute_into` performs **zero heap
//! allocations** after construction — on the default tape engine
//! (whose compiled program and driver state are preallocated at bind)
//! as well as the interpreter — and a threaded tape execution performs
//! **zero atomic-stats RMWs on the hot path**: the global stats shim
//! is fed by a bounded per-execution fold, never per-dispatch.
//!
//! A counting global allocator wraps the system allocator; the test
//! binary holds exactly one test function so no concurrent test can
//! perturb the counters between the before/after reads.

use rand::prelude::*;
use spttn::tensor::{random_coo, random_dense, Csf, SparsityProfile};
use spttn::{Contraction, CostModel, PlanOptions, Shapes, Threads};
use spttn_net::{NetOptions, Network};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn execute_into_performs_zero_heap_allocations() {
    let mut rng = StdRng::seed_from_u64(9);

    // Dense-output kernel (MTTKRP).
    let coo = random_coo(&[20, 16, 18], 400, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let a = random_dense(&[16, 6], &mut rng);
    let b = random_dense(&[18, 6], &mut rng);
    let a2 = random_dense(&[16, 6], &mut rng);
    let plan = Contraction::parse("T[i,j,k]*A[j,r]*B[k,r]->O[i,r]")
        .unwrap()
        .plan(
            &Shapes::new()
                .with_dims(&[("i", 20), ("j", 16), ("k", 18), ("r", 6)])
                .with_profile(SparsityProfile::from_csf(&csf)),
            &PlanOptions::with_cost_model(CostModel::BlasAware {
                buffer_dim_bound: 2,
            }),
        )
        .unwrap();
    let mut exec = plan.bind(csf.clone(), &[("A", &a), ("B", &b)]).unwrap();
    let mut out = exec.output_template();
    let new_vals: Vec<f64> = csf.vals().iter().map(|v| v * 0.5).collect();

    // Warm-up outside the counted window.
    exec.execute_into(&mut out).unwrap();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..3 {
        exec.execute_into(&mut out).unwrap();
    }
    exec.set_factor("A", &a2).unwrap();
    exec.set_sparse_values(&new_vals).unwrap();
    exec.execute_into(&mut out).unwrap();
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "dense-output execute_into / rebind allocated on the heap"
    );

    // Sparse-output kernel (TTTP / SDDMM-like).
    let u = random_dense(&[20, 4], &mut rng);
    let v = random_dense(&[16, 4], &mut rng);
    let w = random_dense(&[18, 4], &mut rng);
    let plan = Contraction::parse("S(i,j,k) = T(i,j,k) * U(i,r) * V(j,r) * W(k,r)")
        .unwrap()
        .plan(
            &Shapes::new()
                .with_dims(&[("i", 20), ("j", 16), ("k", 18), ("r", 4)])
                .with_profile(SparsityProfile::from_csf(&csf)),
            &PlanOptions::with_cost_model(CostModel::MaxBufferSize),
        )
        .unwrap();
    let mut exec = plan.bind(csf, &[("U", &u), ("V", &v), ("W", &w)]).unwrap();
    let mut out = exec.output_template();
    exec.execute_into(&mut out).unwrap();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..3 {
        exec.execute_into(&mut out).unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "sparse-output execute_into allocated on the heap"
    );

    // Parallel path: the persistent worker pool, per-thread workspaces,
    // and private partials are all preallocated at bind, so the tiled
    // fan-out + tree reduction must also run allocation-free. The
    // counter is process-global, so worker-thread allocations (if any)
    // are counted too.
    let a3 = random_dense(&[16, 6], &mut rng);
    let b3 = random_dense(&[18, 6], &mut rng);
    let coo = random_coo(&[20, 16, 18], 400, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let plan = Contraction::parse("T[i,j,k]*A[j,r]*B[k,r]->O[i,r]")
        .unwrap()
        .plan(
            &Shapes::new()
                .with_dims(&[("i", 20), ("j", 16), ("k", 18), ("r", 6)])
                .with_profile(SparsityProfile::from_csf(&csf)),
            &PlanOptions::with_cost_model(CostModel::BlasAware {
                buffer_dim_bound: 2,
            })
            .with_threads(Threads::N(4)),
        )
        .unwrap();
    let mut exec = plan.bind(csf, &[("A", &a3), ("B", &b3)]).unwrap();
    assert!(exec.threads() > 1, "parallel engine should engage");
    assert_eq!(
        exec.engine(),
        spttn::Engine::Tape,
        "the tape engine is the default"
    );
    let mut out = exec.output_template();

    // Warm-up: first run lets lazy thread-local/park state initialize.
    exec.execute_into(&mut out).unwrap();
    exec.execute_into(&mut out).unwrap();

    let runs = 3u64;
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let rmw_before = spttn::exec::interp::stats::rmw_ops();
    for _ in 0..runs {
        exec.execute_into(&mut out).unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    let rmw_after = spttn::exec::interp::stats::rmw_ops();
    assert_eq!(
        after - before,
        0,
        "threaded execute_into allocated on the heap"
    );
    // Zero atomic-stats RMWs on the hot path: the only atomics touched
    // are the end-of-run folds into the global compat shim — at most 5
    // counters per tile per execution, independent of how many
    // thousands of microkernels dispatched.
    let rmw = rmw_after - rmw_before;
    let fold_bound = 5 * exec.threads() as u64 * runs;
    assert!(
        rmw <= fold_bound,
        "threaded tape execution performed {rmw} atomic-stats RMWs \
         (fold-only bound is {fold_bound})"
    );
    assert!(
        exec.last_stats().total() > fold_bound,
        "workload too small to distinguish per-op RMWs from folds"
    );

    // Network executor: materialized dense steps feeding a collapsed
    // sparse kernel must also run allocation-free in steady state,
    // including a factor swap that fans out through the routing table.
    // `D1(j,m)*D2(m,r)` is far cheaper than touching the 350-nonzero
    // sparse tensor first, so the planner materializes it off-spine.
    let coo = random_coo(&[30, 20], 350, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1]).unwrap();
    let d1 = random_dense(&[20, 4], &mut rng);
    let d2 = random_dense(&[4, 5], &mut rng);
    let d1_new = random_dense(&[20, 4], &mut rng);
    let net = Network::parse("T[i,j]*D1[j,m]*D2[m,r]->O[i,r]").unwrap();
    let nplan = net
        .plan(
            &Shapes::new()
                .with_dims(&[("i", 30), ("j", 20), ("m", 4), ("r", 5)])
                .with_profile(SparsityProfile::from_csf(&csf)),
            &NetOptions::default(),
        )
        .unwrap();
    assert!(
        nplan.num_dense_steps() >= 1,
        "D1*D2 should materialize off the sparse spine"
    );
    let mut exec = nplan.bind(csf, &[("D1", &d1), ("D2", &d2)]).unwrap();
    let mut out = exec.output_template();
    exec.execute_into(&mut out).unwrap();

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for _ in 0..3 {
        exec.execute_into(&mut out).unwrap();
    }
    exec.set_factor("D1", &d1_new).unwrap();
    exec.execute_into(&mut out).unwrap();
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "network execute_into / set_factor allocated on the heap"
    );
}
