//! Determinism contract of the SIMD microkernel layer, end to end
//! through the facade:
//!
//! - the default (`Microkernels::Auto`) tape agrees with the scalar
//!   interpreter oracle to ≤1e-9 on rank-specialization-friendly
//!   kernels (rank ∈ {8, 16, 32} hits the fixed-trip microkernels);
//! - a parallel SIMD tape is bitwise run-to-run deterministic at a
//!   fixed thread count, both across repeat executions of one bind and
//!   across independent binds of the same plan;
//! - `Microkernels::Scalar` reproduces the interpreter bitwise — the
//!   opt-out knob really does restore the pre-SIMD operation order.
//!
//! Every assertion here also holds when `SPTTN_MICROKERNELS=scalar`
//! forces the whole suite scalar (the CI leg): Auto then resolves to
//! the scalar kernels, and scalar-vs-oracle / determinism claims are
//! only easier.

use rand::prelude::*;
use spttn::ir::{stdkernels, Kernel};
use spttn::tensor::{random_coo, random_dense, Csf, DenseTensor, SparsityProfile};
use spttn::{
    Contraction, ContractionOutput, CostModel, Engine, Microkernels, PlanOptions, Shapes, Threads,
};

const TOL: f64 = 1e-9;

fn operands(kernel: &Kernel, nnz: usize, seed: u64) -> (Csf, Vec<(String, DenseTensor)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let dims = kernel.ref_dims(kernel.sparse_ref());
    let coo = random_coo(&dims, nnz, &mut rng).unwrap();
    let order: Vec<usize> = (0..dims.len()).collect();
    let csf = Csf::from_coo(&coo, &order).unwrap();
    let mut factors = Vec::new();
    for (slot, r) in kernel.inputs.iter().enumerate() {
        if slot == kernel.sparse_input {
            continue;
        }
        if factors.iter().any(|(n, _)| *n == r.name) {
            continue;
        }
        factors.push((r.name.clone(), random_dense(&kernel.ref_dims(r), &mut rng)));
    }
    (csf, factors)
}

fn run(
    kernel: &Kernel,
    csf: &Csf,
    factors: &[(String, DenseTensor)],
    engine: Engine,
    micro: Microkernels,
    threads: usize,
) -> ContractionOutput {
    let plan = Contraction::from_kernel(kernel.clone())
        .plan(
            &Shapes::new().with_profile(SparsityProfile::from_csf(csf)),
            &PlanOptions::with_cost_model(CostModel::BlasAware {
                buffer_dim_bound: 2,
            })
            .with_threads(Threads::N(threads))
            .with_engine(engine)
            .with_microkernels(micro),
        )
        .expect("planning succeeds");
    if engine == Engine::Tape {
        plan.verify_tape().expect("SIMD tape verifies clean");
    }
    let refs: Vec<(&str, &DenseTensor)> = factors.iter().map(|(n, t)| (n.as_str(), t)).collect();
    plan.bind(csf.clone(), &refs)
        .expect("bind succeeds")
        .execute()
        .unwrap()
}

fn bits(out: &ContractionOutput) -> Vec<u64> {
    out.to_dense()
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// Kernels whose dense ranks hit the R8/R16/R32 specializations.
fn specialization_kernels() -> Vec<(Kernel, usize, u64)> {
    vec![
        (stdkernels::mttkrp(&[48, 36, 40], 32), 1200, 71),
        (stdkernels::ttmc(&[36, 30, 28], &[16, 8]), 900, 72),
    ]
}

#[test]
fn simd_tape_matches_interp_oracle() {
    for (kernel, nnz, seed) in specialization_kernels() {
        let (csf, factors) = operands(&kernel, nnz, seed);
        let oracle = run(
            &kernel,
            &csf,
            &factors,
            Engine::Interp,
            Microkernels::Auto, // interp is always scalar; knob is inert
            1,
        );
        for threads in [1usize, 4] {
            let simd = run(
                &kernel,
                &csf,
                &factors,
                Engine::Tape,
                Microkernels::Auto,
                threads,
            );
            assert!(
                oracle.to_dense().approx_eq(&simd.to_dense(), TOL),
                "SIMD tape diverged from interp oracle: {} at {threads} threads",
                kernel.to_einsum()
            );
        }
    }
}

#[test]
fn parallel_simd_tape_is_run_to_run_bitwise_deterministic() {
    for (kernel, nnz, seed) in specialization_kernels() {
        let (csf, factors) = operands(&kernel, nnz, seed);
        let refs: Vec<(&str, &DenseTensor)> =
            factors.iter().map(|(n, t)| (n.as_str(), t)).collect();
        let plan = Contraction::from_kernel(kernel.clone())
            .plan(
                &Shapes::new().with_profile(SparsityProfile::from_csf(&csf)),
                &PlanOptions::with_cost_model(CostModel::BlasAware {
                    buffer_dim_bound: 2,
                })
                .with_threads(Threads::N(4))
                .with_microkernels(Microkernels::Auto),
            )
            .unwrap();
        // Repeat executions of one bind: identical bits.
        let mut exec = plan.bind(csf.clone(), &refs).unwrap();
        let first = exec.execute().unwrap();
        for _ in 0..2 {
            let again = exec.execute().unwrap();
            assert_eq!(
                bits(&first),
                bits(&again),
                "parallel SIMD tape not bitwise stable across executes: {}",
                kernel.to_einsum()
            );
        }
        // A fresh bind of the same plan: still identical bits (the
        // kernel selection is recorded in the tape at bind time, not
        // re-drawn per run).
        let refreshed = plan.bind(csf.clone(), &refs).unwrap().execute().unwrap();
        assert_eq!(
            bits(&first),
            bits(&refreshed),
            "parallel SIMD tape not bitwise stable across binds: {}",
            kernel.to_einsum()
        );
    }
}

#[test]
fn scalar_forced_tape_reproduces_interp_bitwise() {
    for (kernel, nnz, seed) in specialization_kernels() {
        let (csf, factors) = operands(&kernel, nnz, seed);
        let interp = run(
            &kernel,
            &csf,
            &factors,
            Engine::Interp,
            Microkernels::Scalar,
            1,
        );
        let scalar_tape = run(
            &kernel,
            &csf,
            &factors,
            Engine::Tape,
            Microkernels::Scalar,
            1,
        );
        // The scalar-forced tape runs the same generic loops in the
        // same order as the interpreter — bit-for-bit, not just ≤1e-9.
        assert_eq!(
            bits(&interp),
            bits(&scalar_tape),
            "Microkernels::Scalar must restore the pre-SIMD operation order: {}",
            kernel.to_einsum()
        );
    }
}
