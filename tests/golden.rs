//! End-to-end golden tests: the full parse → plan → execute pipeline
//! must reproduce the naive dense einsum reference for the paper's
//! standard kernels, under every cost model.

use rand::prelude::*;
use spttn::ir::stdkernels;
use spttn::ir::Kernel;
use spttn::tensor::{random_coo, random_dense, CooTensor, Csf, DenseTensor};
use spttn::{Contraction, ContractionOutput, CostModel, PlanOptions, Threads};
use spttn_exec::naive_einsum;

const TOL: f64 = 1e-9;

/// Thread count for end-to-end executions: CI runs this suite at
/// `SPTTN_TEST_THREADS=1` and `=4` so the serial and parallel engines
/// both stay green.
fn test_threads() -> Threads {
    match std::env::var("SPTTN_TEST_THREADS") {
        Ok(v) => Threads::N(v.parse().expect("SPTTN_TEST_THREADS must be an integer")),
        Err(_) => Threads::N(1),
    }
}

const ALL_MODELS: [CostModel; 4] = [
    CostModel::MaxBufferDim,
    CostModel::MaxBufferSize,
    CostModel::CacheMiss { d: 1 },
    CostModel::BlasAware {
        buffer_dim_bound: 2,
    },
];

/// Generate random operands for a kernel and compute the oracle output.
fn operands(
    kernel: &Kernel,
    nnz: usize,
    seed: u64,
) -> (CooTensor, Vec<(String, DenseTensor)>, DenseTensor) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sparse_dims = kernel.ref_dims(kernel.sparse_ref());
    let coo = random_coo(&sparse_dims, nnz, &mut rng).unwrap();
    let mut factors = Vec::new();
    for (slot, r) in kernel.inputs.iter().enumerate() {
        if slot == kernel.sparse_input {
            continue;
        }
        factors.push((r.name.clone(), random_dense(&kernel.ref_dims(r), &mut rng)));
    }
    let sparse_dense = coo.to_dense();
    let mut all: Vec<&DenseTensor> = Vec::new();
    let mut next = 0usize;
    for slot in 0..kernel.inputs.len() {
        if slot == kernel.sparse_input {
            all.push(&sparse_dense);
        } else {
            all.push(&factors[next].1);
            next += 1;
        }
    }
    let want = naive_einsum(kernel, &all).unwrap();
    (coo, factors, want)
}

/// Plan and execute a kernel under one cost model, comparing to the
/// oracle.
fn check_kernel(kernel: &Kernel, nnz: usize, seed: u64, model: CostModel) {
    let (coo, factors, want) = operands(kernel, nnz, seed);
    let order: Vec<usize> = (0..coo.order()).collect();
    let csf = Csf::from_coo(&coo, &order).unwrap();
    let mut c = Contraction::from_kernel(kernel.clone()).with_sparse_input(csf);
    for (name, t) in &factors {
        c = c.with_factor(name, t.clone());
    }
    let mut exec = c
        .compile(PlanOptions::with_cost_model(model).with_threads(test_threads()))
        .unwrap_or_else(|e| panic!("planning failed for {model:?}: {e}"));
    let got = exec.execute().unwrap();
    assert!(
        got.to_dense().approx_eq(&want, TOL),
        "mismatch for {} under {model:?}\n{}",
        kernel.to_einsum(),
        exec.describe()
    );
}

#[test]
fn mttkrp_golden_all_cost_models() {
    let k = stdkernels::mttkrp(&[12, 10, 11], 5);
    for (i, model) in ALL_MODELS.into_iter().enumerate() {
        check_kernel(&k, 150, 100 + i as u64, model);
    }
}

#[test]
fn ttmc_golden_all_cost_models() {
    let k = stdkernels::ttmc(&[10, 9, 11], &[4, 5]);
    for (i, model) in ALL_MODELS.into_iter().enumerate() {
        check_kernel(&k, 120, 200 + i as u64, model);
    }
}

#[test]
fn order4_ttmc_golden() {
    let k = stdkernels::ttmc(&[6, 6, 6, 6], &[3, 3, 3]);
    check_kernel(
        &k,
        80,
        300,
        CostModel::BlasAware {
            buffer_dim_bound: 2,
        },
    );
    check_kernel(&k, 80, 301, CostModel::MaxBufferSize);
}

#[test]
fn tttp_golden_sparse_output() {
    let k = stdkernels::tttp(&[8, 9, 10], 4);
    let (coo, factors, want) = operands(&k, 100, 400);
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let mut c = Contraction::from_kernel(k).with_sparse_input(csf);
    for (name, t) in &factors {
        c = c.with_factor(name, t.clone());
    }
    let mut exec = c
        .compile(
            PlanOptions::with_cost_model(CostModel::MaxBufferSize).with_threads(test_threads()),
        )
        .unwrap();
    let got = exec.execute().unwrap();
    let ContractionOutput::Sparse(out) = &got else {
        panic!("TTTP output must share the sparse pattern");
    };
    assert_eq!(out.nnz(), coo.nnz());
    assert!(got.to_dense().approx_eq(&want, TOL));
}

#[test]
fn all_mode_ttmc_golden() {
    let k = stdkernels::all_mode_ttmc(&[8, 8, 8], &[3, 4, 5]);
    check_kernel(&k, 90, 500, CostModel::MaxBufferSize);
}

/// The acceptance-criterion form: arrow-syntax parse, plan, execute.
#[test]
fn parsed_mttkrp_matches_reference() {
    let mut rng = StdRng::seed_from_u64(600);
    let coo = random_coo(&[12, 10, 11], 150, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let a = random_dense(&[10, 5], &mut rng);
    let b = random_dense(&[11, 5], &mut rng);

    let mut exec = Contraction::parse("T[i,j,k]*A[j,r]*B[k,r]->O[i,r]")
        .unwrap()
        .with_sparse_input(csf)
        .with_factor("A", a.clone())
        .with_factor("B", b.clone())
        .compile(PlanOptions::default().with_threads(test_threads()))
        .unwrap();
    let got = exec.execute().unwrap();

    let k = spttn::ir::parse_kernel(
        "O(i,r) = T(i,j,k) * A(j,r) * B(k,r)",
        &[("i", 12), ("j", 10), ("k", 11), ("r", 5)],
    )
    .unwrap();
    let t_dense = coo.to_dense();
    let want = naive_einsum(&k, &[&t_dense, &a, &b]).unwrap();
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// Paper-syntax parse of TTMc with per-mode ranks.
#[test]
fn parsed_ttmc_matches_reference() {
    let mut rng = StdRng::seed_from_u64(700);
    let coo = random_coo(&[10, 9, 11], 120, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let u = random_dense(&[9, 4], &mut rng);
    let v = random_dense(&[11, 5], &mut rng);

    let mut exec = Contraction::parse("S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)")
        .unwrap()
        .with_sparse_input(csf)
        .with_factor("U", u.clone())
        .with_factor("V", v.clone())
        .compile(
            PlanOptions::with_cost_model(CostModel::CacheMiss { d: 1 })
                .with_threads(test_threads()),
        )
        .unwrap();
    let got = exec.execute().unwrap();

    let k = spttn::ir::parse_kernel(
        "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
        &[("i", 10), ("j", 9), ("k", 11), ("r", 4), ("s", 5)],
    )
    .unwrap();
    let t_dense = coo.to_dense();
    let want = naive_einsum(&k, &[&t_dense, &u, &v]).unwrap();
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// Facade error surface: unbound factors, shape conflicts, bad names.
#[test]
fn facade_reports_unified_errors() {
    let mut rng = StdRng::seed_from_u64(800);
    let coo = random_coo(&[6, 7, 8], 40, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();

    // Missing sparse input.
    let e = Contraction::parse("O(i,r) = T(i,j,k) * A(j,r) * B(k,r)")
        .unwrap()
        .compile(PlanOptions::default());
    assert!(matches!(e, Err(spttn::SpttnError::Planning(_))));

    // Missing factor.
    let e = Contraction::parse("O(i,r) = T(i,j,k) * A(j,r) * B(k,r)")
        .unwrap()
        .with_sparse_input(csf.clone())
        .with_factor("A", random_dense(&[7, 3], &mut rng))
        .compile(PlanOptions::default());
    assert!(matches!(e, Err(spttn::SpttnError::Planning(_))));

    // Conflicting dimension for shared index r.
    let e = Contraction::parse("O(i,r) = T(i,j,k) * A(j,r) * B(k,r)")
        .unwrap()
        .with_sparse_input(csf.clone())
        .with_factor("A", random_dense(&[7, 3], &mut rng))
        .with_factor("B", random_dense(&[8, 4], &mut rng))
        .compile(PlanOptions::default());
    assert!(matches!(e, Err(spttn::SpttnError::Shape(_))));

    // Factor name not in the expression.
    let e = Contraction::parse("O(i,r) = T(i,j,k) * A(j,r) * B(k,r)")
        .unwrap()
        .with_sparse_input(csf)
        .with_factor("A", random_dense(&[7, 3], &mut rng))
        .with_factor("B", random_dense(&[8, 3], &mut rng))
        .with_factor("Z", random_dense(&[2, 2], &mut rng))
        .compile(PlanOptions::default());
    assert!(matches!(e, Err(spttn::SpttnError::Planning(_))));

    // Unparseable expressions.
    assert!(Contraction::parse("garbage").is_err());
    assert!(Contraction::parse("O(i) = ").is_err());
}

/// Plan::describe is informative enough for debugging.
#[test]
fn plan_describe_mentions_structure() {
    let k = stdkernels::mttkrp(&[8, 8, 8], 4);
    let (coo, factors, _) = operands(&k, 60, 900);
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let mut c = Contraction::from_kernel(k).with_sparse_input(csf);
    for (name, t) in &factors {
        c = c.with_factor(name, t.clone());
    }
    let exec = c.compile(PlanOptions::default()).unwrap();
    let d = exec.describe();
    assert!(d.contains("kernel: A(i,a)"), "{d}");
    assert!(d.contains("path:"), "{d}");
    assert!(d.contains("nest:"), "{d}");
    assert!(d.contains("for (i, node) in csf_level_0"), "{d}");
}
