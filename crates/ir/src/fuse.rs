//! Fully-fused loop-nest forests via peeling (paper Defs. 4.1–4.3).
//!
//! Given a contraction path and a loop order per term, the fused forest
//! is built by iterated *peeling*: the maximal run of leading terms whose
//! orders share the same first index becomes one loop vertex containing
//! the (recursively fused) remainders; terms whose order is exhausted
//! become leaves (the innermost scalar contraction).
//!
//! Each vertex is classified ([`VertexKind`]): a loop over a sparse mode
//! iterates CSF fibers when the descent is contiguous from the root mode
//! *and* every covered term is prunable at that index (its contributions
//! outside the sparse pattern vanish); otherwise the loop runs densely.
//! A dense loop over a sparse mode is invalid for the term holding the
//! sparse tensor itself — its CSF descent would break — and such
//! combinations are rejected, mirroring the paper's restriction to
//! CSF-consistent iteration.

use crate::index::{IdxSet, IndexId};
use crate::kernel::Kernel;
use crate::order::{order_is_valid, NestSpec};
use crate::path::ContractionPath;

/// How a loop vertex iterates its index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VertexKind {
    /// Iterate the children of the current CSF node at this level.
    Sparse {
        /// CSF tree level of the index.
        level: usize,
    },
    /// Iterate the full dimension `0..dim`.
    Dense,
}

/// Errors when building or validating a fused forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuseError {
    /// Term `term`'s order is not a valid permutation respecting the
    /// CSF-order restriction.
    BadOrder {
        /// Offending term position.
        term: usize,
    },
    /// A loop over sparse index `index` would cover the sparse tensor's
    /// own term while iterating densely (CSF descent broken).
    BrokenDescent {
        /// Offending index.
        index: IndexId,
    },
    /// Spec has the wrong number of orders for the path.
    WrongArity,
}

impl std::fmt::Display for FuseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FuseError::BadOrder { term } => write!(f, "invalid loop order for term {term}"),
            FuseError::BrokenDescent { index } => write!(
                f,
                "sparse index {index} fused densely over the sparse tensor's term"
            ),
            FuseError::WrongArity => write!(f, "spec arity does not match path"),
        }
    }
}

impl std::error::Error for FuseError {}

/// A node of the fused forest.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LoopNode {
    /// A loop vertex.
    Loop(LoopVertex),
    /// A term's innermost contraction.
    Leaf(usize),
}

/// A loop vertex of the fused forest.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LoopVertex {
    /// Index iterated by this loop.
    pub index: IndexId,
    /// Sparse (CSF) or dense iteration.
    pub kind: VertexKind,
    /// Covered terms: path positions `[term_lo, term_hi)`.
    pub term_lo: usize,
    /// Exclusive end of the covered term range.
    pub term_hi: usize,
    /// Ordered children (loops and leaves).
    pub children: Vec<LoopNode>,
}

/// A fully-fused loop-nest forest for one (path, spec) pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LoopForest {
    /// Top-level nodes in execution order.
    pub roots: Vec<LoopNode>,
}

/// Classify the loop vertex for index `q` covering path terms
/// `[lo, hi)` with ancestor indices `removed`.
///
/// Returns an error when the vertex must be dense but covers the sparse
/// tensor's own term. This predicate is shared verbatim by the
/// Algorithm-1 dynamic program so that search and execution agree.
pub fn vertex_kind(
    kernel: &Kernel,
    path: &ContractionPath,
    lo: usize,
    hi: usize,
    removed: IdxSet,
    q: IndexId,
) -> Result<VertexKind, FuseError> {
    let level = match kernel.sparse_level(q) {
        None => return Ok(VertexKind::Dense),
        Some(l) => l,
    };
    // Descent continuity: all shallower CSF modes already iterated.
    let continuous = (0..level).all(|l| removed.contains(kernel.index_at_level(l)));
    // Prunability: every covered term's contributions at coordinates
    // outside the sparse pattern must vanish. A term qualifies if its
    // operands carry lineage at q, or its consumer chain (within the
    // covered range) reaches a term that does.
    let prunable_all = {
        let mut prunable = vec![false; hi - lo];
        for t in (lo..hi).rev() {
            let term = &path.terms[t];
            let own = term.lineage().contains(q);
            let via_chain = match term.consumer {
                Some(c) if c >= lo && c < hi => prunable[c - lo],
                _ => false,
            };
            prunable[t - lo] = own || via_chain;
        }
        prunable.iter().all(|&p| p)
    };
    if continuous && prunable_all {
        Ok(VertexKind::Sparse { level })
    } else if (lo..hi).contains(&path.sparse_term) {
        Err(FuseError::BrokenDescent { index: q })
    } else {
        Ok(VertexKind::Dense)
    }
}

/// Build the fused forest for `(path, spec)`, validating orders and
/// vertex kinds.
pub fn build_forest(
    kernel: &Kernel,
    path: &ContractionPath,
    spec: &NestSpec,
) -> Result<LoopForest, FuseError> {
    if spec.orders.len() != path.len() {
        return Err(FuseError::WrongArity);
    }
    for t in 0..path.len() {
        if !order_is_valid(kernel, path, t, &spec.orders[t]) {
            return Err(FuseError::BadOrder { term: t });
        }
    }
    let items: Vec<(usize, usize)> = (0..path.len()).map(|t| (t, 0usize)).collect();
    let roots = peel(kernel, path, spec, &items, IdxSet::EMPTY)?;
    Ok(LoopForest { roots })
}

/// Recursive peeling: `items` is a list of (term, depth-into-order).
fn peel(
    kernel: &Kernel,
    path: &ContractionPath,
    spec: &NestSpec,
    items: &[(usize, usize)],
    removed: IdxSet,
) -> Result<Vec<LoopNode>, FuseError> {
    let mut nodes = Vec::new();
    let mut pos = 0usize;
    while pos < items.len() {
        let (term, depth) = items[pos];
        let order = &spec.orders[term];
        if depth == order.len() {
            nodes.push(LoopNode::Leaf(term));
            pos += 1;
            continue;
        }
        let q = order[depth];
        // Maximal run of consecutive items whose next index is q.
        let mut end = pos;
        while end < items.len() {
            let (t2, d2) = items[end];
            let o2 = &spec.orders[t2];
            if d2 < o2.len() && o2[d2] == q {
                end += 1;
            } else {
                break;
            }
        }
        let lo = items[pos].0;
        let hi = items[end - 1].0 + 1;
        let kind = vertex_kind(kernel, path, lo, hi, removed, q)?;
        let inner: Vec<(usize, usize)> = items[pos..end].iter().map(|&(t, d)| (t, d + 1)).collect();
        let children = peel(kernel, path, spec, &inner, removed.insert(q))?;
        nodes.push(LoopNode::Loop(LoopVertex {
            index: q,
            kind,
            term_lo: lo,
            term_hi: hi,
            children,
        }));
        pos = end;
    }
    Ok(nodes)
}

impl LoopForest {
    /// Maximum loop depth (longest root-to-leaf vertex chain).
    pub fn max_depth(&self) -> usize {
        fn depth(n: &LoopNode) -> usize {
            match n {
                LoopNode::Leaf(_) => 0,
                LoopNode::Loop(v) => 1 + v.children.iter().map(depth).max().unwrap_or(0),
            }
        }
        self.roots.iter().map(depth).max().unwrap_or(0)
    }

    /// Ancestor index lists per term (root-to-leaf vertex indices) —
    /// equals the term's loop order by construction.
    pub fn ancestors(&self, nterms: usize) -> Vec<Vec<IndexId>> {
        let mut out = vec![Vec::new(); nterms];
        fn walk(n: &LoopNode, trail: &mut Vec<IndexId>, out: &mut Vec<Vec<IndexId>>) {
            match n {
                LoopNode::Leaf(t) => out[*t] = trail.clone(),
                LoopNode::Loop(v) => {
                    trail.push(v.index);
                    for c in &v.children {
                        walk(c, trail, out);
                    }
                    trail.pop();
                }
            }
        }
        let mut trail = Vec::new();
        for r in &self.roots {
            walk(r, &mut trail, &mut out);
        }
        out
    }

    /// Vertex ancestor *identities* per term as (index, position-path)
    /// pairs; used to find common ancestors (Eq. 5): two terms share an
    /// ancestor vertex only when it is the same tree vertex, not merely
    /// the same index.
    pub fn common_ancestor_sets(&self, nterms: usize) -> Vec<Vec<IdxSet>> {
        // For every pair (producer, consumer) we need the shared vertex
        // prefix. Record each term's root-path as vertex ids.
        let mut paths: Vec<Vec<usize>> = vec![Vec::new(); nterms];
        let mut inds: Vec<IndexId> = Vec::new();
        let mut counter = 0usize;
        fn walk(
            n: &LoopNode,
            trail: &mut Vec<usize>,
            inds: &mut Vec<IndexId>,
            counter: &mut usize,
            paths: &mut Vec<Vec<usize>>,
        ) {
            match n {
                LoopNode::Leaf(t) => paths[*t] = trail.clone(),
                LoopNode::Loop(v) => {
                    let id = *counter;
                    *counter += 1;
                    inds.push(v.index);
                    trail.push(id);
                    for c in &v.children {
                        walk(c, trail, inds, counter, paths);
                    }
                    trail.pop();
                }
            }
        }
        let mut trail = Vec::new();
        for r in &self.roots {
            walk(r, &mut trail, &mut inds, &mut counter, &mut paths);
        }
        // common[a][b] as sets of indices shared on the vertex-path prefix.
        let mut out = vec![vec![IdxSet::EMPTY; nterms]; nterms];
        for a in 0..nterms {
            for b in 0..nterms {
                let mut s = IdxSet::EMPTY;
                for (x, y) in paths[a].iter().zip(paths[b].iter()) {
                    if x == y {
                        s = s.insert(inds[*x]);
                    } else {
                        break;
                    }
                }
                out[a][b] = s;
            }
        }
        out
    }

    /// Pretty-print the forest as pseudocode resembling the paper's
    /// listings.
    pub fn render(&self, kernel: &Kernel, path: &ContractionPath) -> String {
        let mut s = String::new();
        fn emit(
            n: &LoopNode,
            depth: usize,
            kernel: &Kernel,
            path: &ContractionPath,
            s: &mut String,
        ) {
            let pad = "  ".repeat(depth);
            match n {
                LoopNode::Leaf(t) => {
                    let term = &path.terms[*t];
                    let fmt = |op: crate::path::Operand| match op {
                        crate::path::Operand::Input(i) => kernel.inputs[i].name.clone(),
                        crate::path::Operand::Inter(x) => format!("X{x}"),
                    };
                    let out = if *t + 1 == path.terms.len() {
                        kernel.output.name.clone()
                    } else {
                        format!("X{t}")
                    };
                    s.push_str(&format!(
                        "{pad}{out} += {} * {}\n",
                        fmt(term.left),
                        fmt(term.right)
                    ));
                }
                LoopNode::Loop(v) => {
                    let name = kernel.index_name(v.index);
                    match v.kind {
                        VertexKind::Sparse { level } => {
                            s.push_str(&format!("{pad}for ({name}, node) in csf_level_{level}:\n"))
                        }
                        VertexKind::Dense => {
                            s.push_str(&format!("{pad}for {name} in 0..{}:\n", kernel.dim(v.index)))
                        }
                    }
                    for c in &v.children {
                        emit(c, depth + 1, kernel, path, s);
                    }
                }
            }
        }
        for r in &self.roots {
            emit(r, 0, kernel, path, &mut s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_kernel;
    use crate::path::path_from_picks;

    fn ttmc3() -> (Kernel, ContractionPath) {
        let k = parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 10), ("j", 10), ("k", 10), ("r", 4), ("s", 4)],
        )
        .unwrap();
        let p = path_from_picks(&k, &[(0, 2), (0, 1)]);
        (k, p)
    }

    /// Listing 3: orders (i,j,k,s) and (i,j,s,r) fuse on (i,j).
    #[test]
    fn listing3_structure() {
        let (k, p) = ttmc3();
        let spec = NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
        };
        let f = build_forest(&k, &p, &spec).unwrap();
        assert_eq!(f.roots.len(), 1);
        let LoopNode::Loop(i) = &f.roots[0] else {
            panic!()
        };
        assert_eq!(i.index, 0);
        assert_eq!(i.kind, VertexKind::Sparse { level: 0 });
        assert_eq!((i.term_lo, i.term_hi), (0, 2));
        let LoopNode::Loop(j) = &i.children[0] else {
            panic!()
        };
        assert_eq!(j.index, 1);
        assert_eq!(j.children.len(), 2); // k-subtree and s-subtree
        let LoopNode::Loop(kv) = &j.children[0] else {
            panic!()
        };
        assert_eq!(kv.index, 2);
        assert_eq!(kv.kind, VertexKind::Sparse { level: 2 });
        assert_eq!((kv.term_lo, kv.term_hi), (0, 1));
        let LoopNode::Loop(sv) = &j.children[1] else {
            panic!()
        };
        assert_eq!(sv.index, 4);
        assert_eq!(sv.kind, VertexKind::Dense);
        assert_eq!(f.max_depth(), 4);
    }

    /// Listing 4: orders (i,j,s,k) and (i,j,s,r) fuse on (i,j,s).
    #[test]
    fn listing4_structure() {
        let (k, p) = ttmc3();
        let spec = NestSpec {
            orders: vec![vec![0, 1, 4, 2], vec![0, 1, 4, 3]],
        };
        let f = build_forest(&k, &p, &spec).unwrap();
        let LoopNode::Loop(i) = &f.roots[0] else {
            panic!()
        };
        let LoopNode::Loop(j) = &i.children[0] else {
            panic!()
        };
        let LoopNode::Loop(s) = &j.children[0] else {
            panic!()
        };
        assert_eq!(s.index, 4);
        assert_eq!(s.children.len(), 2);
        // Sparse loop k nested inside the dense s loop is valid.
        let LoopNode::Loop(kv) = &s.children[0] else {
            panic!()
        };
        assert_eq!(kv.kind, VertexKind::Sparse { level: 2 });
    }

    /// Fig 1a (unfused): different first indices give sibling subtrees,
    /// and the consumer re-descends the CSF on its own.
    #[test]
    fn unfused_pairwise_structure() {
        let (k, p) = ttmc3();
        // Make term 2 start at s so no fusion happens.
        let spec = NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![4, 0, 1, 3]],
        };
        let f = build_forest(&k, &p, &spec).unwrap();
        assert_eq!(f.roots.len(), 2);
        let LoopNode::Loop(s) = &f.roots[1] else {
            panic!()
        };
        assert_eq!(s.index, 4);
        assert_eq!(s.kind, VertexKind::Dense);
        // Inside s, term 2 descends i sparsely (lineage pruning).
        let LoopNode::Loop(iv) = &s.children[0] else {
            panic!()
        };
        assert_eq!(iv.kind, VertexKind::Sparse { level: 0 });
    }

    /// Fig 1d: dense-first path; U*V cannot fuse with the sparse term.
    #[test]
    fn dense_first_path_forest() {
        let (k, _) = ttmc3();
        let p = path_from_picks(&k, &[(1, 2), (0, 1)]);
        // Term 0 = U(j,r)*V(k,s) over {j,k,r,s}; term 1 over all 5.
        let spec = NestSpec {
            orders: vec![vec![1, 3, 2, 4], vec![0, 1, 2, 3, 4]],
        };
        let f = build_forest(&k, &p, &spec).unwrap();
        assert_eq!(f.roots.len(), 2);
        let LoopNode::Loop(j0) = &f.roots[0] else {
            panic!()
        };
        assert_eq!(j0.kind, VertexKind::Dense); // pre-sparse j: dense
        let LoopNode::Loop(i1) = &f.roots[1] else {
            panic!()
        };
        assert_eq!(i1.kind, VertexKind::Sparse { level: 0 });
        assert_eq!(f.max_depth(), 5);
    }

    /// Fusing the sparse term under a dense j (broken descent) errors.
    #[test]
    fn broken_descent_rejected() {
        let (k, _) = ttmc3();
        let p = path_from_picks(&k, &[(1, 2), (0, 1)]);
        // Both terms start with j: j would cover the sparse term densely.
        let spec = NestSpec {
            orders: vec![vec![1, 3, 2, 4], vec![1, 0, 2, 3, 4]],
        };
        // Term 1's order violates CSF order (j before i) — rejected as
        // BadOrder before vertex analysis.
        assert!(matches!(
            build_forest(&k, &p, &spec),
            Err(FuseError::BadOrder { term: 1 })
        ));
    }

    /// TTTP: pre-sparse dense-dense term fuses under the sparse descent.
    #[test]
    fn tttp_pre_sparse_fusion() {
        let k = parse_kernel(
            "S(i,j,k) = T(i,j,k) * U(i,r) * V(j,r) * W(k,r)",
            &[("i", 8), ("j", 8), ("k", 8), ("r", 3)],
        )
        .unwrap();
        // Path: (U*V)->X0(i,j,r); (W*X0)->X1(i,j,k); (T*X1)->S.
        // Index ids: i=0, j=1, k=2, r=3 (r appears first in U).
        let p = path_from_picks(&k, &[(1, 2), (1, 2), (0, 1)]);
        let spec = NestSpec {
            orders: vec![
                vec![0, 1, 3],    // i,j,r
                vec![0, 1, 2, 3], // i,j,k,r
                vec![0, 1, 2],    // i,j,k
            ],
        };
        let f = build_forest(&k, &p, &spec).unwrap();
        let LoopNode::Loop(iv) = &f.roots[0] else {
            panic!()
        };
        // The U*V term is prunable through its consumer chain: sparse.
        assert_eq!(iv.kind, VertexKind::Sparse { level: 0 });
        assert_eq!((iv.term_lo, iv.term_hi), (0, 3));
    }

    /// A pre-sparse term whose chain exits the fused range stays dense.
    #[test]
    fn non_prunable_stays_dense() {
        let (k, p) = ttmc3();
        // vertex_kind directly: range covering only the dense-first term
        // of the U*V path, probing sparse index j.
        let p2 = path_from_picks(&k, &[(1, 2), (0, 1)]);
        let kind = vertex_kind(&k, &p2, 0, 1, IdxSet::EMPTY, 1).unwrap();
        assert_eq!(kind, VertexKind::Dense);
        // And for the fused TTMc path term 0 alone, i is prunable.
        let kind = vertex_kind(&k, &p, 0, 1, IdxSet::EMPTY, 0).unwrap();
        assert_eq!(kind, VertexKind::Sparse { level: 0 });
        // k without i,j removed: discontinuous descent, but term 0 covers
        // the sparse term, so it cannot run densely either.
        assert!(vertex_kind(&k, &p, 0, 1, IdxSet::EMPTY, 2).is_err());
    }

    #[test]
    fn render_mentions_loops() {
        let (k, p) = ttmc3();
        let spec = NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
        };
        let f = build_forest(&k, &p, &spec).unwrap();
        let txt = f.render(&k, &p);
        assert!(txt.contains("for (i, node) in csf_level_0"), "{txt}");
        assert!(txt.contains("for s in 0..4"), "{txt}");
        assert!(txt.contains("S += U * X0"), "{txt}");
    }

    #[test]
    fn common_ancestors_listing3_vs_listing4() {
        let (k, p) = ttmc3();
        let spec3 = NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
        };
        let f3 = build_forest(&k, &p, &spec3).unwrap();
        let ca3 = f3.common_ancestor_sets(2);
        assert_eq!(ca3[0][1].to_vec(), vec![0, 1]); // {i,j}

        let spec4 = NestSpec {
            orders: vec![vec![0, 1, 4, 2], vec![0, 1, 4, 3]],
        };
        let f4 = build_forest(&k, &p, &spec4).unwrap();
        let ca4 = f4.common_ancestor_sets(2);
        assert_eq!(ca4[0][1].to_vec(), vec![0, 1, 4]); // {i,j,s}
    }

    #[test]
    fn ancestors_equal_loop_orders() {
        let (k, p) = ttmc3();
        let spec = NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
        };
        let f = build_forest(&k, &p, &spec).unwrap();
        assert_eq!(f.ancestors(2), spec.orders);
    }
}
