//! SpTTN kernel specification.
//!
//! An SpTTN kernel (paper Sec. 3) contracts one sparse tensor with a set
//! of dense tensors; the output is dense, or shares the sparse input's
//! sparsity pattern exactly (e.g. TTTP). The [`Kernel`] captures the
//! index structure: every distinct index has a dimension, and the sparse
//! input's indices additionally carry their CSF tree level — the storage
//! order that loop orders must respect.

use crate::index::{IdxSet, IndexId, IndexInfo, MAX_INDICES};

/// A tensor operand or output reference: a name plus its ordered indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TensorRef {
    /// Tensor name (as written in the einsum expression).
    pub name: String,
    /// Indices in written order (e.g. `T(i,j,k)` → `[i, j, k]`).
    pub indices: Vec<IndexId>,
}

impl TensorRef {
    /// Index set of this reference.
    pub fn index_set(&self) -> IdxSet {
        IdxSet::from_iter(self.indices.iter().copied())
    }
}

/// Validation errors for kernel construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// More indices than the bitset width supports.
    TooManyIndices(usize),
    /// An output index does not appear in any input.
    UnboundOutputIndex(String),
    /// The declared sparse input id is out of range.
    BadSparseInput(usize),
    /// An index appears twice in one tensor reference (unsupported).
    RepeatedIndex(String, String),
    /// The kernel has no inputs.
    NoInputs,
    /// A sparse-pattern output must have exactly the sparse input's
    /// index set.
    BadSparseOutput,
    /// Parse error with message.
    Parse(String),
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::TooManyIndices(n) => {
                write!(f, "kernel has {n} indices; at most {MAX_INDICES} supported")
            }
            KernelError::UnboundOutputIndex(s) => {
                write!(f, "output index '{s}' does not appear in any input")
            }
            KernelError::BadSparseInput(i) => write!(f, "sparse input id {i} out of range"),
            KernelError::RepeatedIndex(t, i) => {
                write!(f, "index '{i}' repeated within tensor '{t}'")
            }
            KernelError::NoInputs => write!(f, "kernel has no input tensors"),
            KernelError::BadSparseOutput => write!(
                f,
                "a sparse-pattern output must use exactly the sparse input's indices"
            ),
            KernelError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for KernelError {}

/// An SpTTN kernel: `output = Σ sparse_input · dense_1 · ... · dense_n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// All distinct indices; `IndexId` indexes this table.
    pub indices: Vec<IndexInfo>,
    /// Output tensor reference.
    pub output: TensorRef,
    /// Input tensors; `inputs[sparse_input]` is the sparse one.
    pub inputs: Vec<TensorRef>,
    /// Which input is the sparse tensor.
    pub sparse_input: usize,
    /// True when the output shares the sparse input's pattern (TTTP-like).
    pub output_sparse: bool,
}

impl Kernel {
    /// Construct and validate a kernel from raw parts.
    ///
    /// `indices[id].sparse_level` is filled in from the sparse input's
    /// written index order (CSF storage order) — any previous value is
    /// overwritten.
    pub fn new(
        mut indices: Vec<IndexInfo>,
        output: TensorRef,
        inputs: Vec<TensorRef>,
        sparse_input: usize,
        output_sparse: bool,
    ) -> Result<Self, KernelError> {
        if indices.len() > MAX_INDICES {
            return Err(KernelError::TooManyIndices(indices.len()));
        }
        if inputs.is_empty() {
            return Err(KernelError::NoInputs);
        }
        if sparse_input >= inputs.len() {
            return Err(KernelError::BadSparseInput(sparse_input));
        }
        // No repeated index within a single tensor reference.
        for t in inputs.iter().chain(std::iter::once(&output)) {
            let mut seen = IdxSet::EMPTY;
            for &i in &t.indices {
                if seen.contains(i) {
                    return Err(KernelError::RepeatedIndex(
                        t.name.clone(),
                        indices[i].name.clone(),
                    ));
                }
                seen = seen.insert(i);
            }
        }
        // Output indices must be bound by some input.
        let all_inputs: IdxSet = inputs
            .iter()
            .fold(IdxSet::EMPTY, |s, t| s.union(t.index_set()));
        for &i in &output.indices {
            if !all_inputs.contains(i) {
                return Err(KernelError::UnboundOutputIndex(indices[i].name.clone()));
            }
        }
        // Fill sparse levels from the sparse input's written order.
        for info in indices.iter_mut() {
            info.sparse_level = None;
        }
        for (level, &i) in inputs[sparse_input].indices.iter().enumerate() {
            indices[i].sparse_level = Some(level);
        }
        // Sparse-pattern outputs must match the sparse input exactly.
        if output_sparse && output.index_set() != inputs[sparse_input].index_set() {
            return Err(KernelError::BadSparseOutput);
        }
        Ok(Kernel {
            indices,
            output,
            inputs,
            sparse_input,
            output_sparse,
        })
    }

    /// Number of distinct indices.
    #[inline]
    pub fn num_indices(&self) -> usize {
        self.indices.len()
    }

    /// Dimension of an index.
    #[inline]
    pub fn dim(&self, i: IndexId) -> usize {
        self.indices[i].dim
    }

    /// Name of an index.
    #[inline]
    pub fn index_name(&self, i: IndexId) -> &str {
        &self.indices[i].name
    }

    /// CSF level of an index, if it is a sparse mode.
    #[inline]
    pub fn sparse_level(&self, i: IndexId) -> Option<usize> {
        self.indices[i].sparse_level
    }

    /// Set of all indices.
    pub fn all_indices(&self) -> IdxSet {
        IdxSet::from_iter(0..self.indices.len())
    }

    /// Set of sparse-mode indices (the sparse input's indices).
    pub fn sparse_indices(&self) -> IdxSet {
        self.inputs[self.sparse_input].index_set()
    }

    /// Index set of the output.
    pub fn output_indices(&self) -> IdxSet {
        self.output.index_set()
    }

    /// Contracted (summed) indices: appear in inputs but not the output.
    pub fn contracted_indices(&self) -> IdxSet {
        self.all_indices().minus(self.output_indices())
    }

    /// The sparse input reference.
    pub fn sparse_ref(&self) -> &TensorRef {
        &self.inputs[self.sparse_input]
    }

    /// CSF mode order: `id` of the sparse index at each level.
    pub fn csf_index_order(&self) -> &[IndexId] {
        &self.inputs[self.sparse_input].indices
    }

    /// The sparse index at CSF level `l`.
    #[inline]
    pub fn index_at_level(&self, l: usize) -> IndexId {
        self.inputs[self.sparse_input].indices[l]
    }

    /// Dimensions of a tensor reference, in its written index order.
    pub fn ref_dims(&self, r: &TensorRef) -> Vec<usize> {
        r.indices.iter().map(|&i| self.dim(i)).collect()
    }

    /// Row-major strides of a tensor reference's dense layout (the
    /// layout bound `DenseTensor`s are validated against). Bind-time
    /// compilers use this to lower operand addressing to precomputed
    /// base-offset + stride pairs without consulting tensor data.
    pub fn ref_strides(&self, r: &TensorRef) -> Vec<usize> {
        crate::buffer::row_major_strides(&self.ref_dims(r))
    }

    /// The same kernel with the sparse input's modes stored in a
    /// different CSF order: level `l` of the result holds the index at
    /// level `perm[l]` of `self`. Every index's `sparse_level` is
    /// refilled from the permuted order; all other structure (output,
    /// dense inputs, dimensions) is untouched.
    ///
    /// This is the symbolic half of a CSF transpose — the planner's
    /// mode-order search plans each candidate order against the
    /// permuted kernel, and `spttn_tensor::Csf::reordered` is the data
    /// half applied at bind time. `perm` must be a permutation of
    /// `0..sparse order`.
    pub fn permute_sparse_modes(&self, perm: &[usize]) -> Result<Kernel, KernelError> {
        let d = self.csf_index_order().len();
        let valid = perm.len() == d && {
            let mut seen = vec![false; d];
            perm.iter()
                .all(|&l| l < d && !std::mem::replace(&mut seen[l], true))
        };
        if !valid {
            return Err(KernelError::Parse(format!(
                "mode order {perm:?} is not a permutation of 0..{d}"
            )));
        }
        let mut inputs = self.inputs.clone();
        let old = &self.inputs[self.sparse_input].indices;
        inputs[self.sparse_input].indices = perm.iter().map(|&l| old[l]).collect();
        Kernel::new(
            self.indices.clone(),
            self.output.clone(),
            inputs,
            self.sparse_input,
            self.output_sparse,
        )
    }

    /// Human-readable einsum form of the kernel.
    pub fn to_einsum(&self) -> String {
        let fmt_ref = |r: &TensorRef| {
            let idx: Vec<&str> = r.indices.iter().map(|&i| self.index_name(i)).collect();
            format!("{}({})", r.name, idx.join(","))
        };
        let rhs: Vec<String> = self.inputs.iter().map(fmt_ref).collect();
        format!("{} = {}", fmt_ref(&self.output), rhs.join(" * "))
    }
}

/// Builder for constructing kernels programmatically.
#[derive(Debug, Default)]
pub struct KernelBuilder {
    names: Vec<(String, usize)>,
    output: Option<(String, Vec<String>)>,
    inputs: Vec<(String, Vec<String>)>,
    sparse_input: usize,
    output_sparse: bool,
}

impl KernelBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare an index with its dimension.
    pub fn index(mut self, name: &str, dim: usize) -> Self {
        self.names.push((name.to_string(), dim));
        self
    }

    /// Set the output tensor (dense unless [`Self::sparse_output`]).
    pub fn output(mut self, name: &str, indices: &[&str]) -> Self {
        self.output = Some((
            name.to_string(),
            indices.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Add an input tensor; the first added input is the sparse tensor
    /// unless [`Self::sparse`] selects another.
    pub fn input(mut self, name: &str, indices: &[&str]) -> Self {
        self.inputs.push((
            name.to_string(),
            indices.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Select which input (by insertion order) is the sparse tensor.
    pub fn sparse(mut self, input: usize) -> Self {
        self.sparse_input = input;
        self
    }

    /// Mark the output as sharing the sparse input's pattern.
    pub fn sparse_output(mut self) -> Self {
        self.output_sparse = true;
        self
    }

    /// Finish and validate.
    pub fn build(self) -> Result<Kernel, KernelError> {
        let mut indices: Vec<IndexInfo> = Vec::new();
        let mut lookup = std::collections::HashMap::new();
        for (name, dim) in &self.names {
            if !lookup.contains_key(name) {
                lookup.insert(name.clone(), indices.len());
                indices.push(IndexInfo {
                    name: name.clone(),
                    dim: *dim,
                    sparse_level: None,
                });
            }
        }
        let resolve = |names: &[String]| -> Result<Vec<IndexId>, KernelError> {
            names
                .iter()
                .map(|n| {
                    lookup
                        .get(n)
                        .copied()
                        .ok_or_else(|| KernelError::Parse(format!("undeclared index '{n}'")))
                })
                .collect()
        };
        let (oname, oinds) = self
            .output
            .ok_or_else(|| KernelError::Parse("no output set".into()))?;
        let output = TensorRef {
            name: oname,
            indices: resolve(&oinds)?,
        };
        let mut inputs = Vec::new();
        for (name, inds) in &self.inputs {
            inputs.push(TensorRef {
                name: name.clone(),
                indices: resolve(inds)?,
            });
        }
        Kernel::new(
            indices,
            output,
            inputs,
            self.sparse_input,
            self.output_sparse,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ttmc3() -> Kernel {
        // S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)
        KernelBuilder::new()
            .index("i", 30)
            .index("j", 20)
            .index("k", 25)
            .index("r", 8)
            .index("s", 9)
            .output("S", &["i", "r", "s"])
            .input("T", &["i", "j", "k"])
            .input("U", &["j", "r"])
            .input("V", &["k", "s"])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_builds_ttmc() {
        let k = ttmc3();
        assert_eq!(k.num_indices(), 5);
        assert_eq!(k.sparse_indices().len(), 3);
        assert_eq!(k.contracted_indices().to_vec(), vec![1, 2]); // j, k
        assert_eq!(k.to_einsum(), "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)");
    }

    #[test]
    fn sparse_levels_follow_written_order() {
        let k = ttmc3();
        assert_eq!(k.sparse_level(0), Some(0)); // i
        assert_eq!(k.sparse_level(1), Some(1)); // j
        assert_eq!(k.sparse_level(2), Some(2)); // k
        assert_eq!(k.sparse_level(3), None); // r
        assert_eq!(k.csf_index_order(), &[0, 1, 2]);
        assert_eq!(k.index_at_level(2), 2);
    }

    #[test]
    fn permute_sparse_modes_reorders_levels() {
        let k = ttmc3();
        let p = k.permute_sparse_modes(&[2, 0, 1]).unwrap();
        // Written order of T becomes (k, i, j).
        assert_eq!(p.to_einsum(), "S(i,r,s) = T(k,i,j) * U(j,r) * V(k,s)");
        assert_eq!(p.csf_index_order(), &[2, 0, 1]);
        assert_eq!(p.sparse_level(2), Some(0)); // k now at root
        assert_eq!(p.sparse_level(0), Some(1)); // i at level 1
        assert_eq!(p.sparse_level(1), Some(2)); // j at level 2
                                                // Dense structure untouched.
        assert_eq!(p.output, k.output);
        assert_eq!(p.inputs[1], k.inputs[1]);
        // Identity permutation round-trips.
        assert_eq!(k.permute_sparse_modes(&[0, 1, 2]).unwrap(), k);
        // Non-permutations rejected.
        assert!(k.permute_sparse_modes(&[0, 1]).is_err());
        assert!(k.permute_sparse_modes(&[0, 0, 1]).is_err());
        assert!(k.permute_sparse_modes(&[0, 1, 3]).is_err());
    }

    #[test]
    fn unbound_output_index_rejected() {
        let e = KernelBuilder::new()
            .index("i", 4)
            .index("z", 4)
            .output("A", &["z"])
            .input("T", &["i"])
            .build();
        assert!(matches!(e, Err(KernelError::UnboundOutputIndex(_))));
    }

    #[test]
    fn repeated_index_rejected() {
        let e = KernelBuilder::new()
            .index("i", 4)
            .output("A", &["i"])
            .input("T", &["i", "i"])
            .build();
        assert!(matches!(e, Err(KernelError::RepeatedIndex(..))));
    }

    #[test]
    fn sparse_output_must_match_pattern() {
        // TTTP-style: S(i,j,k) = T(i,j,k)*U(i,r)*V(j,r)*W(k,r)
        let ok = KernelBuilder::new()
            .index("i", 5)
            .index("j", 6)
            .index("k", 7)
            .index("r", 3)
            .output("S", &["i", "j", "k"])
            .input("T", &["i", "j", "k"])
            .input("U", &["i", "r"])
            .input("V", &["j", "r"])
            .input("W", &["k", "r"])
            .sparse_output()
            .build();
        assert!(ok.is_ok());
        let bad = KernelBuilder::new()
            .index("i", 5)
            .index("j", 6)
            .index("k", 7)
            .output("S", &["i", "j"])
            .input("T", &["i", "j", "k"])
            .sparse_output()
            .build();
        assert!(matches!(bad, Err(KernelError::BadSparseOutput)));
    }

    #[test]
    fn ref_dims_in_written_order() {
        let k = ttmc3();
        assert_eq!(k.ref_dims(&k.inputs[0]), vec![30, 20, 25]);
        assert_eq!(k.ref_dims(&k.output), vec![30, 8, 9]);
    }

    #[test]
    fn ref_strides_are_row_major() {
        let k = ttmc3();
        assert_eq!(k.ref_strides(&k.inputs[0]), vec![20 * 25, 25, 1]);
        assert_eq!(k.ref_strides(&k.output), vec![8 * 9, 9, 1]);
        // A matrix factor and a scalar-free edge: single index → [1].
        assert_eq!(k.ref_strides(&k.inputs[1]), vec![8, 1]);
    }

    #[test]
    fn no_inputs_rejected() {
        let e = KernelBuilder::new().index("i", 2).output("A", &[]).build();
        assert!(matches!(e, Err(KernelError::NoInputs)));
    }
}
