//! Contraction paths (paper Def. 3.1).
//!
//! A contraction path for `N+1` tensors is a depth-first postordering of
//! a binary contraction tree: an ordered list of *terms*, each
//! contracting two inputs/intermediates. The loop-nest search operates on
//! one path at a time; [`enumerate_paths`] produces every ordered path
//! (the paper's Sec. 4.1.1 recursion, `T(n) = C(n,2)·T(n-1)`).
//!
//! Each term tracks its *sparse lineage*: the sparse-mode indices along
//! which an operand inherits the sparse tensor's pattern. Lineage
//! determines which loops may iterate CSF fibers instead of full
//! dimensions, which is what gives SpTTN kernels their data-independent
//! cost model ([`ContractionPath::flops`]).

use crate::index::IdxSet;
use crate::kernel::Kernel;
use spttn_tensor::SparsityProfile;

/// Operand of a contraction term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// One of the kernel's input tensors.
    Input(usize),
    /// The intermediate produced by an earlier term of this path.
    Inter(usize),
}

/// One pairwise contraction (`L_i` in the paper: a 3-tuple of index sets
/// plus operand identities).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Term {
    /// Left operand.
    pub left: Operand,
    /// Right operand.
    pub right: Operand,
    /// Index set of the left operand.
    pub left_inds: IdxSet,
    /// Index set of the right operand.
    pub right_inds: IdxSet,
    /// Index set of the produced intermediate (or the kernel output for
    /// the final term).
    pub out_inds: IdxSet,
    /// Sparse-mode indices along which the left operand carries the
    /// sparse tensor's pattern.
    pub left_lineage: IdxSet,
    /// Sparse lineage of the right operand.
    pub right_lineage: IdxSet,
    /// The later term that consumes this term's output (`None` for the
    /// final term).
    pub consumer: Option<usize>,
}

impl Term {
    /// All indices iterated by this term (union of operand indices).
    #[inline]
    pub fn iter_inds(&self) -> IdxSet {
        self.left_inds.union(self.right_inds)
    }

    /// Combined sparse lineage of both operands.
    #[inline]
    pub fn lineage(&self) -> IdxSet {
        self.left_lineage.union(self.right_lineage)
    }

    /// Sparse lineage surviving into the output.
    #[inline]
    pub fn out_lineage(&self) -> IdxSet {
        self.lineage().intersect(self.out_inds)
    }

    /// Indices summed away by this term.
    #[inline]
    pub fn contracted(&self) -> IdxSet {
        self.iter_inds().minus(self.out_inds)
    }
}

/// An ordered contraction path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractionPath {
    /// Terms in execution (postorder) order.
    pub terms: Vec<Term>,
    /// Position of the term that takes the sparse input directly.
    pub sparse_term: usize,
}

impl ContractionPath {
    /// Number of terms (`N` for an `N+1`-tensor contraction).
    #[inline]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the path has no terms.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Maximum loop depth over terms (number of distinct indices of the
    /// deepest term) — the paper's asymptotic-complexity proxy.
    pub fn max_loop_depth(&self) -> usize {
        self.terms
            .iter()
            .map(|t| t.iter_inds().len())
            .max()
            .unwrap_or(0)
    }

    /// Leading-order scalar-operation count of this path on a tensor with
    /// the given sparsity profile, assuming maximal fusion (paper
    /// Sec. 2.4 / Sec. 7 examples).
    ///
    /// Each term costs `2 · nnz_prefix(ℓ) · ∏ dims(remaining indices)`,
    /// where `ℓ` is the longest CSF prefix the term can iterate sparsely:
    /// prefix indices must be in the term's index set and either belong
    /// to the term's sparse lineage or (for pre-sparse terms, which can
    /// be fused under the sparse descent) merely be present.
    pub fn flops(&self, kernel: &Kernel, profile: &SparsityProfile) -> u128 {
        self.terms
            .iter()
            .enumerate()
            .map(|(t, _)| self.term_flops(t, kernel, profile))
            .sum()
    }

    /// Leading-order op count of one term (see [`ContractionPath::flops`]).
    pub fn term_flops(&self, t: usize, kernel: &Kernel, profile: &SparsityProfile) -> u128 {
        let term = &self.terms[t];
        let inds = term.iter_inds();
        let ell = self.sparse_prefix_len(t, kernel);
        let mut prefix = IdxSet::EMPTY;
        for l in 0..ell {
            prefix = prefix.insert(kernel.index_at_level(l));
        }
        let mut cost: u128 = 2 * profile.prefix_nnz(ell) as u128;
        for i in inds.minus(prefix).iter() {
            cost = cost.saturating_mul(kernel.dim(i) as u128);
        }
        cost
    }

    /// Longest CSF prefix term `t` can iterate sparsely (see
    /// [`ContractionPath::flops`] for the validity rule).
    pub fn sparse_prefix_len(&self, t: usize, kernel: &Kernel) -> usize {
        let term = &self.terms[t];
        let inds = term.iter_inds();
        let lineage = term.lineage();
        let pre_sparse = lineage.is_empty() && t < self.sparse_term;
        let nlevels = kernel.csf_index_order().len();
        let mut ell = 0;
        for l in 0..nlevels {
            let idx = kernel.index_at_level(l);
            let ok = inds.contains(idx) && (lineage.contains(idx) || pre_sparse);
            if ok {
                ell += 1;
            } else {
                break;
            }
        }
        ell
    }

    /// Total dense size of all materialized intermediates (the memory an
    /// *unfused* pairwise execution needs; the fused executor allocates
    /// only the much smaller buffers of Eq. 5).
    pub fn materialized_intermediate_size(&self, kernel: &Kernel) -> u128 {
        self.terms
            .iter()
            .take(self.terms.len().saturating_sub(1))
            .map(|t| {
                t.out_inds
                    .iter()
                    .map(|i| kernel.dim(i) as u128)
                    .product::<u128>()
            })
            .sum()
    }

    /// Render the path as `T(i,j,k)*V(k,s) -> X(i,j,s) ; ...`.
    pub fn describe(&self, kernel: &Kernel) -> String {
        let name_of = |op: Operand| match op {
            Operand::Input(i) => kernel.inputs[i].name.clone(),
            Operand::Inter(t) => format!("X{t}"),
        };
        let inds_of = |s: IdxSet| {
            let v: Vec<&str> = s.iter().map(|i| kernel.index_name(i)).collect();
            v.join(",")
        };
        self.terms
            .iter()
            .enumerate()
            .map(|(t, term)| {
                let out_name = if t + 1 == self.terms.len() {
                    kernel.output.name.clone()
                } else {
                    format!("X{t}")
                };
                format!(
                    "{}({})*{}({}) -> {}({})",
                    name_of(term.left),
                    inds_of(term.left_inds),
                    name_of(term.right),
                    inds_of(term.right_inds),
                    out_name,
                    inds_of(term.out_inds),
                )
            })
            .collect::<Vec<_>>()
            .join(" ; ")
    }
}

/// Item tracked during path enumeration.
#[derive(Debug, Clone, Copy)]
struct Item {
    op: Operand,
    inds: IdxSet,
    lineage: IdxSet,
}

/// Enumerate every ordered contraction path for the kernel
/// (Sec. 4.1.1): recursively contract all unordered pairs of remaining
/// tensors, appending the intermediate to the working list. Each ordered
/// term sequence is produced exactly once.
pub fn enumerate_paths(kernel: &Kernel) -> Vec<ContractionPath> {
    let n = kernel.inputs.len();
    if n == 1 {
        // Degenerate single-input "contraction": represent as one term
        // multiplying the sparse tensor by a scalar identity is not
        // meaningful; SpTTN kernels have >= 2 inputs in practice.
        return Vec::new();
    }
    let items: Vec<Item> = kernel
        .inputs
        .iter()
        .enumerate()
        .map(|(i, t)| Item {
            op: Operand::Input(i),
            inds: t.index_set(),
            lineage: if i == kernel.sparse_input {
                t.index_set()
            } else {
                IdxSet::EMPTY
            },
        })
        .collect();
    let mut out = Vec::new();
    let mut terms: Vec<Term> = Vec::with_capacity(n - 1);
    recurse(kernel, &items, &mut terms, &mut out);
    for p in &mut out {
        finalize(p);
    }
    out
}

fn recurse(kernel: &Kernel, items: &[Item], terms: &mut Vec<Term>, out: &mut Vec<ContractionPath>) {
    if items.len() == 1 {
        let sparse_term = terms
            .iter()
            .position(|t| {
                t.left == Operand::Input(kernel.sparse_input)
                    || t.right == Operand::Input(kernel.sparse_input)
            })
            .expect("every path contracts the sparse input");
        out.push(ContractionPath {
            terms: terms.clone(),
            sparse_term,
        });
        return;
    }
    for a in 0..items.len() {
        for b in a + 1..items.len() {
            let (ia, ib) = (items[a], items[b]);
            // Indices needed by the output or any other remaining item.
            let mut needed = kernel.output_indices();
            for (k, it) in items.iter().enumerate() {
                if k != a && k != b {
                    needed = needed.union(it.inds);
                }
            }
            let union = ia.inds.union(ib.inds);
            let out_inds = union.intersect(needed);
            let lineage_out = ia.lineage.union(ib.lineage).intersect(out_inds);
            let term_id = terms.len();
            terms.push(Term {
                left: ia.op,
                right: ib.op,
                left_inds: ia.inds,
                right_inds: ib.inds,
                out_inds,
                left_lineage: ia.lineage,
                right_lineage: ib.lineage,
                consumer: None,
            });
            let mut rest: Vec<Item> = Vec::with_capacity(items.len() - 1);
            for (k, it) in items.iter().enumerate() {
                if k != a && k != b {
                    rest.push(*it);
                }
            }
            rest.push(Item {
                op: Operand::Inter(term_id),
                inds: out_inds,
                lineage: lineage_out,
            });
            recurse(kernel, &rest, terms, out);
            terms.pop();
        }
    }
}

/// Fill consumer links after the term list is complete.
fn finalize(path: &mut ContractionPath) {
    let n = path.terms.len();
    for t in 0..n {
        for u in t + 1..n {
            if path.terms[u].left == Operand::Inter(t) || path.terms[u].right == Operand::Inter(t) {
                path.terms[t].consumer = Some(u);
                break;
            }
        }
    }
    for (t, term) in path.terms.iter().enumerate() {
        debug_assert!(
            term.consumer.is_some() || t + 1 == n,
            "non-final term without consumer"
        );
    }
}

/// Build a specific path from an explicit pick sequence (testing and
/// baseline schedules): each pick names two positions in the working
/// item list (inputs first, intermediates appended in creation order).
pub fn path_from_picks(kernel: &Kernel, picks: &[(usize, usize)]) -> ContractionPath {
    let n = kernel.inputs.len();
    assert_eq!(picks.len(), n - 1, "need exactly n-1 picks");
    let mut items: Vec<Item> = kernel
        .inputs
        .iter()
        .enumerate()
        .map(|(i, t)| Item {
            op: Operand::Input(i),
            inds: t.index_set(),
            lineage: if i == kernel.sparse_input {
                t.index_set()
            } else {
                IdxSet::EMPTY
            },
        })
        .collect();
    let mut terms = Vec::new();
    for &(a, b) in picks {
        assert!(a < items.len() && b < items.len() && a != b, "bad pick");
        let (ia, ib) = (items[a], items[b]);
        let mut needed = kernel.output_indices();
        for (k, it) in items.iter().enumerate() {
            if k != a && k != b {
                needed = needed.union(it.inds);
            }
        }
        let union = ia.inds.union(ib.inds);
        let out_inds = union.intersect(needed);
        let lineage_out = ia.lineage.union(ib.lineage).intersect(out_inds);
        let term_id = terms.len();
        terms.push(Term {
            left: ia.op,
            right: ib.op,
            left_inds: ia.inds,
            right_inds: ib.inds,
            out_inds,
            left_lineage: ia.lineage,
            right_lineage: ib.lineage,
            consumer: None,
        });
        let mut rest: Vec<Item> = Vec::with_capacity(items.len() - 1);
        for (k, it) in items.iter().enumerate() {
            if k != a && k != b {
                rest.push(*it);
            }
        }
        rest.push(Item {
            op: Operand::Inter(term_id),
            inds: out_inds,
            lineage: lineage_out,
        });
        items = rest;
    }
    let sparse_term = terms
        .iter()
        .position(|t: &Term| {
            t.left == Operand::Input(kernel.sparse_input)
                || t.right == Operand::Input(kernel.sparse_input)
        })
        .expect("path must contract the sparse input");
    let mut p = ContractionPath { terms, sparse_term };
    finalize(&mut p);
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelBuilder;
    use crate::parse_kernel;

    fn ttmc3() -> Kernel {
        parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 100), ("j", 80), ("k", 90), ("r", 8), ("s", 9)],
        )
        .unwrap()
    }

    #[test]
    fn enumeration_count_matches_recurrence() {
        // T(n) = C(n,2) * T(n-1), T(2) = 1.
        assert_eq!(enumerate_paths(&ttmc3()).len(), 3); // n=3: C(3,2)*1 = 3
        let k4 = parse_kernel(
            "S(i,j,k) = T(i,j,k) * U(i,r) * V(j,r) * W(k,r)",
            &[("i", 10), ("j", 10), ("k", 10), ("r", 4)],
        )
        .unwrap();
        assert_eq!(enumerate_paths(&k4).len(), 18); // 6*3*1
    }

    #[test]
    fn consumer_links_are_set() {
        for p in enumerate_paths(&ttmc3()) {
            let n = p.terms.len();
            for (t, term) in p.terms.iter().enumerate() {
                if t + 1 == n {
                    assert!(term.consumer.is_none());
                } else {
                    let c = term.consumer.unwrap();
                    assert!(c > t);
                    assert!(
                        p.terms[c].left == Operand::Inter(t)
                            || p.terms[c].right == Operand::Inter(t)
                    );
                }
            }
        }
    }

    #[test]
    fn lineage_propagates_through_intermediates() {
        // Path (T*V) then (*U): intermediate X(i,j,s) has lineage {i,j}.
        let k = ttmc3();
        let p = path_from_picks(&k, &[(0, 2), (0, 1)]);
        assert_eq!(p.sparse_term, 0);
        let x = &p.terms[0];
        // T(i,j,k)*V(k,s) -> X(i,j,s): k contracted.
        assert_eq!(x.out_inds.to_vec(), vec![0, 1, 4]); // i, j, s
        assert_eq!(x.out_lineage().to_vec(), vec![0, 1]); // i, j
                                                          // The intermediate is appended at the end of the item list, so it
                                                          // is the *right* operand of the final term.
        let last = &p.terms[1];
        assert_eq!(last.right, Operand::Inter(0));
        assert_eq!(last.right_lineage.to_vec(), vec![0, 1]);
    }

    #[test]
    fn ttmc_flops_match_paper_formulas() {
        // Paper Sec. 2.4.2: T*V then *U costs 2 nnz(T) S + 2 nnz_IJ S R.
        let k = ttmc3();
        let profile = SparsityProfile::from_coo(&toy_tensor(), &[0, 1, 2]).unwrap();
        let p = path_from_picks(&k, &[(0, 2), (0, 1)]);
        let nnz = profile.prefix_nnz(3) as u128;
        let nnz_ij = profile.prefix_nnz(2) as u128;
        let expect = 2 * nnz * 9 + 2 * nnz_ij * 9 * 8;
        assert_eq!(p.flops(&k, &profile), expect);

        // Dense-first path (U*V then *T): J*R*K*S + 2 nnz R S.
        let p2 = path_from_picks(&k, &[(1, 2), (0, 1)]);
        let expect2 = 2u128 * 80 * 8 * 90 * 9 + 2 * nnz * 8 * 9;
        assert_eq!(p2.flops(&k, &profile), expect2);
        assert_eq!(p2.max_loop_depth(), 5);
    }

    fn toy_tensor() -> spttn_tensor::CooTensor {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        spttn_tensor::random_coo(&[100, 80, 90], 500, &mut rng).unwrap()
    }

    #[test]
    fn mttkrp_pairwise_cheaper_than_unfactorized() {
        // Paper Sec. 2.4.2: pairwise MTTKRP saves up to a third of ops —
        // when fibers are dense enough that nnz_IJ << nnz.
        use rand::prelude::*;
        let k = parse_kernel(
            "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)",
            &[("i", 40), ("j", 40), ("k", 40), ("a", 16)],
        )
        .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let fibrous = spttn_tensor::random_coo(&[40, 40, 40], 4000, &mut rng).unwrap();
        let profile = SparsityProfile::from_coo(&fibrous, &[0, 1, 2]).unwrap();
        let best = enumerate_paths(&k)
            .iter()
            .map(|p| p.flops(&k, &profile))
            .min()
            .unwrap();
        let nnz = profile.prefix_nnz(3) as u128;
        let nnz_ij = profile.prefix_nnz(2) as u128;
        assert_eq!(best, 2 * nnz * 16 + 2 * nnz_ij * 16);
        assert!(best < 3 * nnz * 16);
    }

    #[test]
    fn pre_sparse_term_gets_prefix_pruning() {
        // TTTP: U(i,r)*V(j,r) fused under the sparse descent iterates
        // nnz_IJ, not I*J.
        let k = parse_kernel(
            "S(i,j,k) = T(i,j,k) * U(i,r) * V(j,r) * W(k,r)",
            &[("i", 50), ("j", 50), ("k", 50), ("r", 4)],
        )
        .unwrap();
        // Path: (U*V) -> X(i,j,r); (X*W) -> Y(i,j,k,r); (Y*T) -> S.
        let p = path_from_picks(&k, &[(1, 2), (1, 2), (0, 1)]);
        assert_eq!(p.sparse_term, 2);
        assert_eq!(p.sparse_prefix_len(0, &k), 2); // pre-sparse, {i,j}
        assert_eq!(p.sparse_prefix_len(1, &k), 3); // pre-sparse, {i,j,k}
        assert_eq!(p.sparse_prefix_len(2, &k), 3);
    }

    #[test]
    fn dense_only_term_without_prefix_is_dense() {
        // Fig 1d: U(j,r)*V(k,s) has no i, so no sparse prefix.
        let k = ttmc3();
        let p = path_from_picks(&k, &[(1, 2), (0, 1)]);
        assert_eq!(p.sparse_prefix_len(0, &k), 0);
    }

    #[test]
    fn materialized_sizes() {
        let k = ttmc3();
        let p = path_from_picks(&k, &[(0, 2), (0, 1)]);
        // X(i,j,s): 100*80*9.
        assert_eq!(p.materialized_intermediate_size(&k), 100 * 80 * 9);
    }

    #[test]
    fn describe_is_readable() {
        let k = ttmc3();
        let p = path_from_picks(&k, &[(0, 2), (0, 1)]);
        let s = p.describe(&k);
        assert!(s.contains("T(i,j,k)*V(k,s) -> X0(i,j,s)"), "{s}");
        assert!(s.contains("-> S(i,r,s)"), "{s}");
    }

    #[test]
    fn builder_kernel_paths() {
        // Order-4 TTMc from the paper's Fig. 5/6.
        let k = KernelBuilder::new()
            .index("i", 20)
            .index("j", 20)
            .index("k", 20)
            .index("l", 20)
            .index("r", 4)
            .index("s", 4)
            .index("t", 4)
            .output("S", &["i", "r", "s", "t"])
            .input("T", &["i", "j", "k", "l"])
            .input("U", &["j", "r"])
            .input("V", &["k", "s"])
            .input("W", &["l", "t"])
            .build()
            .unwrap();
        let paths = enumerate_paths(&k);
        assert_eq!(paths.len(), 18);
        // The paper's Fig. 5 path: T*W, then *V, then *U.
        let p = path_from_picks(&k, &[(0, 3), (0, 1), (0, 1)]);
        assert_eq!(p.terms[0].out_inds.len(), 4); // i,j,k,t
        assert_eq!(p.terms[1].out_inds.len(), 4); // i,j,s,t
        assert_eq!(p.terms[2].out_inds.len(), 4); // i,r,s,t
    }
}
