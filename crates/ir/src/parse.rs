//! Einsum-style kernel parser.
//!
//! Parses expressions like
//! `"S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)"` into a [`Kernel`]. By
//! convention the **first input on the right-hand side is the sparse
//! tensor** (the paper writes every SpTTN with the sparse tensor first).
//! When the output's index set equals the sparse input's index set
//! exactly, the output is marked as pattern-sharing (TTTP-like): with a
//! multiplicative sparse factor, such an output is identically zero
//! outside the sparse pattern, which is the paper's definition of a
//! valid SpTTN output.

use crate::index::IndexInfo;
use crate::kernel::{Kernel, KernelError, TensorRef};
use std::collections::HashMap;

/// One parsed tensor reference: name plus index names.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RawRef {
    name: String,
    indices: Vec<String>,
}

fn parse_ref(s: &str) -> Result<RawRef, KernelError> {
    let s = s.trim();
    let open = s
        .find('(')
        .ok_or_else(|| KernelError::Parse(format!("expected '(' in tensor reference '{s}'")))?;
    if !s.ends_with(')') {
        return Err(KernelError::Parse(format!(
            "expected ')' at end of tensor reference '{s}'"
        )));
    }
    let name = s[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(KernelError::Parse(format!("bad tensor name in '{s}'")));
    }
    let inner = &s[open + 1..s.len() - 1];
    let indices: Vec<String> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(|x| x.trim().to_string()).collect()
    };
    for i in &indices {
        if i.is_empty() || !i.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(KernelError::Parse(format!("bad index name '{i}' in '{s}'")));
        }
    }
    Ok(RawRef {
        name: name.to_string(),
        indices,
    })
}

/// Parse an einsum-style SpTTN kernel.
///
/// `dims` maps index names to dimension sizes; every index appearing in
/// the expression must be present. `=` and `+=` are both accepted.
///
/// ```
/// use spttn_ir::parse_kernel;
/// let k = parse_kernel(
///     "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)",
///     &[("i", 100), ("j", 80), ("k", 90), ("a", 16)],
/// )
/// .unwrap();
/// assert_eq!(k.sparse_indices().len(), 3);
/// assert_eq!(k.inputs.len(), 3);
/// ```
pub fn parse_kernel(expr: &str, dims: &[(&str, usize)]) -> Result<Kernel, KernelError> {
    let (lhs, rhs) = split_equation(expr)?;
    let out_raw = parse_ref(lhs)?;
    let mut in_raw = Vec::new();
    for part in split_top_level(rhs, '*') {
        // Reject empty segments (trailing, doubled, or lone '*') with a
        // pointed message instead of silently dropping them — the same
        // contract as the facade's arrow-syntax parser.
        if part.trim().is_empty() {
            return Err(KernelError::Parse(format!(
                "empty factor in '{}' (stray or doubled '*'?)",
                rhs.trim()
            )));
        }
        in_raw.push(parse_ref(&part)?);
    }
    if in_raw.is_empty() {
        return Err(KernelError::NoInputs);
    }

    let dim_map: HashMap<&str, usize> = dims.iter().copied().collect();
    let mut lookup: HashMap<String, usize> = HashMap::new();
    let mut indices: Vec<IndexInfo> = Vec::new();
    let mut resolve = |names: &[String]| -> Result<Vec<usize>, KernelError> {
        let mut out = Vec::with_capacity(names.len());
        for n in names {
            let id = match lookup.get(n) {
                Some(&id) => id,
                None => {
                    let dim = *dim_map.get(n.as_str()).ok_or_else(|| {
                        KernelError::Parse(format!("no dimension given for index '{n}'"))
                    })?;
                    let id = indices.len();
                    lookup.insert(n.clone(), id);
                    indices.push(IndexInfo {
                        name: n.clone(),
                        dim,
                        sparse_level: None,
                    });
                    id
                }
            };
            out.push(id);
        }
        Ok(out)
    };

    // Resolve the sparse input (first RHS tensor) before the output so
    // index ids follow the paper's convention of listing T's modes first.
    let mut inputs = Vec::with_capacity(in_raw.len());
    for r in &in_raw {
        inputs.push(TensorRef {
            name: r.name.clone(),
            indices: resolve(&r.indices)?,
        });
    }
    let output = TensorRef {
        name: out_raw.name.clone(),
        indices: resolve(&out_raw.indices)?,
    };

    let sparse_input = 0;
    let output_sparse = output
        .indices
        .iter()
        .copied()
        .collect::<std::collections::BTreeSet<_>>()
        == inputs[sparse_input]
            .indices
            .iter()
            .copied()
            .collect::<std::collections::BTreeSet<_>>();

    Kernel::new(indices, output, inputs, sparse_input, output_sparse)
}

fn split_equation(expr: &str) -> Result<(&str, &str), KernelError> {
    if let Some(pos) = expr.find("+=") {
        Ok((&expr[..pos], &expr[pos + 2..]))
    } else if let Some(pos) = expr.find('=') {
        Ok((&expr[..pos], &expr[pos + 1..]))
    } else {
        Err(KernelError::Parse(
            "expected '=' in kernel expression".into(),
        ))
    }
}

/// Split on `sep` outside parentheses. Every segment is kept — including
/// empty ones from doubled or trailing separators — so the caller can
/// reject them with a pointed message instead of silently dropping them.
fn split_top_level(s: &str, sep: char) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            c if c == sep && depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mttkrp() {
        let k = parse_kernel(
            "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)",
            &[("i", 10), ("j", 11), ("k", 12), ("a", 4)],
        )
        .unwrap();
        assert_eq!(k.to_einsum(), "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)");
        assert_eq!(k.dim(0), 10);
        assert!(!k.output_sparse);
        assert_eq!(k.sparse_input, 0);
    }

    #[test]
    fn parses_plus_equals() {
        let k = parse_kernel("A(i) += T(i,j) * B(j)", &[("i", 3), ("j", 4)]).unwrap();
        assert_eq!(k.inputs.len(), 2);
    }

    #[test]
    fn detects_tttp_sparse_output() {
        let k = parse_kernel(
            "S(i,j,k) = T(i,j,k) * U(i,r) * V(j,r) * W(k,r)",
            &[("i", 5), ("j", 6), ("k", 7), ("r", 3)],
        )
        .unwrap();
        assert!(k.output_sparse);
    }

    #[test]
    fn output_index_order_differs_from_pattern_still_sparse() {
        let k = parse_kernel(
            "S(k,j,i) = T(i,j,k) * U(i,r) * V(j,r) * W(k,r)",
            &[("i", 5), ("j", 6), ("k", 7), ("r", 3)],
        )
        .unwrap();
        assert!(k.output_sparse);
    }

    #[test]
    fn missing_dim_is_error() {
        let e = parse_kernel("A(i) = T(i,j) * B(j)", &[("i", 3)]);
        assert!(matches!(e, Err(KernelError::Parse(_))));
    }

    #[test]
    fn malformed_expressions_rejected() {
        assert!(parse_kernel("A(i) T(i)", &[("i", 2)]).is_err());
        assert!(parse_kernel("A(i = T(i)", &[("i", 2)]).is_err());
        assert!(parse_kernel("A(i) = ", &[("i", 2)]).is_err());
        assert!(parse_kernel("A(i!) = T(i!)", &[("i!", 2)]).is_err());
    }

    #[test]
    fn stray_stars_rejected_as_empty_factor() {
        let dims: &[(&str, usize)] = &[("i", 3), ("j", 4)];
        // Trailing '*' (previously swallowed silently).
        let e = parse_kernel("A(i) = T(i,j) * B(j) *", dims).unwrap_err();
        assert!(
            matches!(&e, KernelError::Parse(m) if m.contains("empty factor")),
            "{e:?}"
        );
        // Doubled '*'.
        let e = parse_kernel("A(i) = T(i,j) ** B(j)", dims).unwrap_err();
        assert!(
            matches!(&e, KernelError::Parse(m) if m.contains("empty factor")),
            "{e:?}"
        );
        // Lone '*'.
        let e = parse_kernel("A(i) = *", dims).unwrap_err();
        assert!(
            matches!(&e, KernelError::Parse(m) if m.contains("empty factor")),
            "{e:?}"
        );
        // Leading '*'.
        let e = parse_kernel("A(i) = * T(i,j) * B(j)", dims).unwrap_err();
        assert!(
            matches!(&e, KernelError::Parse(m) if m.contains("empty factor")),
            "{e:?}"
        );
        // A '*' inside parentheses is not a separator and still errors
        // as a bad index, not an empty factor.
        assert!(parse_kernel("A(i) = T(i,j*) * B(j)", dims).is_err());
    }

    #[test]
    fn whitespace_tolerant() {
        let k = parse_kernel(
            "  S( i , r )   =  T( i , j )*U( j , r ) ",
            &[("i", 4), ("j", 5), ("r", 2)],
        )
        .unwrap();
        assert_eq!(k.to_einsum(), "S(i,r) = T(i,j) * U(j,r)");
    }

    #[test]
    fn index_ids_list_sparse_modes_first() {
        let k = parse_kernel(
            "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)",
            &[("i", 10), ("j", 11), ("k", 12), ("a", 4)],
        )
        .unwrap();
        // T's modes get ids 0,1,2 in CSF order; 'a' gets 3.
        assert_eq!(k.csf_index_order(), &[0, 1, 2]);
        assert_eq!(k.index_name(3), "a");
    }
}
