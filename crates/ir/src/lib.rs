//! # spttn-ir
//!
//! Intermediate representation for SpTTN kernels — the formal core of
//! *"Minimum Cost Loop Nests for Contraction of a Sparse Tensor with a
//! Tensor Network"* (SPAA 2024):
//!
//! - [`Kernel`]: an einsum-style SpTTN specification (one sparse input,
//!   dense factors, dense or pattern-sharing output) — Sec. 3.
//! - [`ContractionPath`] / [`enumerate_paths`]: ordered pairwise
//!   contraction sequences with sparse-lineage tracking — Def. 3.1,
//!   Sec. 4.1.1.
//! - [`NestSpec`] / [`NestSpecIter`]: per-term loop orders restricted to
//!   CSF storage order — Def. 3.2, Sec. 4.1.2.
//! - [`LoopForest`] / [`build_forest`]: fully-fused loop-nest forests
//!   via peeling, with sparse/dense vertex classification — Defs.
//!   4.1–4.3.
//! - [`BufferSpec`] / [`buffers_for_forest`]: intermediate tensors from
//!   Eq. 5.

// The IR is pure symbolic manipulation: no unsafe code, ever.
#![forbid(unsafe_code)]

pub mod buffer;
pub mod fuse;
pub mod index;
pub mod kernel;
pub mod order;
pub mod parse;
pub mod path;
pub mod stdkernels;

pub use buffer::{
    buffers_for_forest, max_buffer_dim, max_buffer_size, tiled_workspace_footprint,
    total_buffer_size, BufferSpec,
};
pub use fuse::{
    build_forest, vertex_kind, FuseError, LoopForest, LoopNode, LoopVertex, VertexKind,
};
pub use index::{IdxSet, IndexId, IndexInfo, MAX_INDICES};
pub use kernel::{Kernel, KernelBuilder, KernelError, TensorRef};
pub use order::{
    count_orders, lineage_in_csf_order, order_is_valid, orders_for_term, LoopOrder, NestSpec,
    NestSpecIter,
};
pub use parse::parse_kernel;
pub use path::{enumerate_paths, path_from_picks, ContractionPath, Operand, Term};
