//! The paper's standard SpTTN kernels (Sec. 2.3), parameterized by
//! tensor order, dimensions and factor ranks.

use crate::kernel::{Kernel, KernelBuilder};

const MODE_NAMES: [&str; 8] = ["i", "j", "k", "l", "m", "n", "o", "p"];
const RANK_NAMES: [&str; 8] = ["r", "s", "t", "u", "v", "w", "x", "y"];

/// MTTKRP (Eq. 1), generalized to order-`d`:
/// `A(i, a) = Σ T(i, j, ..) · B(j, a) · C(k, a) · ...`
/// (mode-0 matricization; one factor per non-output mode).
pub fn mttkrp(dims: &[usize], rank: usize) -> Kernel {
    let d = dims.len();
    assert!((2..=8).contains(&d), "order 2..=8 supported");
    let mut b = KernelBuilder::new();
    for (m, &dim) in dims.iter().enumerate() {
        b = b.index(MODE_NAMES[m], dim);
    }
    b = b.index("a", rank);
    b = b.output("A", &[MODE_NAMES[0], "a"]);
    b = b.input("T", &MODE_NAMES[..d]);
    for (m, &mode) in MODE_NAMES.iter().enumerate().take(d).skip(1) {
        b = b.input(&format!("F{m}"), &[mode, "a"]);
    }
    b.build().expect("mttkrp kernel is valid")
}

/// TTMc (Eq. 2), generalized to order-`d`:
/// `S(i, r1, .., r_{d-1}) = Σ T(i, j, ..) · U(j, r1) · V(k, r2) · ...`
pub fn ttmc(dims: &[usize], ranks: &[usize]) -> Kernel {
    let d = dims.len();
    assert!((2..=8).contains(&d));
    assert_eq!(ranks.len(), d - 1, "one rank per contracted mode");
    let mut b = KernelBuilder::new();
    for (m, &dim) in dims.iter().enumerate() {
        b = b.index(MODE_NAMES[m], dim);
    }
    for (x, &r) in ranks.iter().enumerate() {
        b = b.index(RANK_NAMES[x], r);
    }
    let mut out = vec![MODE_NAMES[0]];
    out.extend_from_slice(&RANK_NAMES[..d - 1]);
    b = b.output("S", &out);
    b = b.input("T", &MODE_NAMES[..d]);
    for m in 1..d {
        b = b.input(&format!("F{m}"), &[MODE_NAMES[m], RANK_NAMES[m - 1]]);
    }
    b.build().expect("ttmc kernel is valid")
}

/// All-mode TTMc (Sec. 7 "Impact of intermediate tensor dimension"):
/// `S(r1..rd) = Σ T(i, j, ..) · U(i, r1) · V(j, r2) · ...`
/// — every sparse mode is contracted.
pub fn all_mode_ttmc(dims: &[usize], ranks: &[usize]) -> Kernel {
    let d = dims.len();
    assert!((2..=8).contains(&d));
    assert_eq!(ranks.len(), d);
    let mut b = KernelBuilder::new();
    for (m, &dim) in dims.iter().enumerate() {
        b = b.index(MODE_NAMES[m], dim);
    }
    for (x, &r) in ranks.iter().enumerate() {
        b = b.index(RANK_NAMES[x], r);
    }
    b = b.output("S", &RANK_NAMES[..d]);
    b = b.input("T", &MODE_NAMES[..d]);
    for m in 0..d {
        b = b.input(&format!("F{m}"), &[MODE_NAMES[m], RANK_NAMES[m]]);
    }
    b.build().expect("all-mode ttmc kernel is valid")
}

/// TTTP (Eq. 3), generalized to order-`d`:
/// `S(i,j,..) = Σ_r T(i,j,..) · U(i,r) · V(j,r) · ...`
/// — output shares the sparse pattern (SDDMM generalization).
pub fn tttp(dims: &[usize], rank: usize) -> Kernel {
    let d = dims.len();
    assert!((2..=8).contains(&d));
    let mut b = KernelBuilder::new();
    for (m, &dim) in dims.iter().enumerate() {
        b = b.index(MODE_NAMES[m], dim);
    }
    b = b.index("r", rank);
    b = b.output("S", &MODE_NAMES[..d]);
    b = b.input("T", &MODE_NAMES[..d]);
    for (m, &mode) in MODE_NAMES.iter().enumerate().take(d) {
        b = b.input(&format!("F{m}"), &[mode, "r"]);
    }
    b = b.sparse_output();
    b.build().expect("tttp kernel is valid")
}

/// TTTc (Eq. 4): the tensor-train gradient contraction. For an order-`d`
/// sparse tensor with train ranks `r`, contracts all but the last train
/// core:
/// `Z(e, n) = Σ T(i,j,..,n) · A(i,a) · B(a,j,b) · C(b,k,c) · ...`
/// where the output keeps the last sparse mode and the last bond index.
pub fn tttc(dims: &[usize], rank: usize) -> Kernel {
    let d = dims.len();
    assert!((3..=7).contains(&d), "order 3..=7 supported");
    let mut b = KernelBuilder::new();
    for (m, &dim) in dims.iter().enumerate() {
        b = b.index(MODE_NAMES[m], dim);
    }
    // Bond indices a, b, c, ... (d-1 of them; the last appears in the output).
    let bonds: Vec<String> = (0..d - 1).map(|x| format!("b{x}")).collect();
    for bond in &bonds {
        b = b.index(bond, rank);
    }
    b = b.output("Z", &[MODE_NAMES[d - 1], bonds[d - 2].as_str()]);
    b = b.input("T", &MODE_NAMES[..d]);
    // First core: A(i, b0).
    b = b.input("A", &[MODE_NAMES[0], bonds[0].as_str()]);
    // Middle cores: G_m(b_{m-1}, mode_m, b_m).
    for m in 1..d - 1 {
        b = b.input(
            &format!("G{m}"),
            &[bonds[m - 1].as_str(), MODE_NAMES[m], bonds[m].as_str()],
        );
    }
    b.build().expect("tttc kernel is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mttkrp_matches_eq1() {
        let k = mttkrp(&[10, 11, 12], 4);
        assert_eq!(k.to_einsum(), "A(i,a) = T(i,j,k) * F1(j,a) * F2(k,a)");
        assert!(!k.output_sparse);
        assert_eq!(k.num_indices(), 4);
    }

    #[test]
    fn ttmc_matches_eq2() {
        let k = ttmc(&[10, 11, 12], &[4, 5]);
        assert_eq!(k.to_einsum(), "S(i,r,s) = T(i,j,k) * F1(j,r) * F2(k,s)");
        let k4 = ttmc(&[6, 6, 6, 6], &[2, 3, 4]);
        assert_eq!(
            k4.to_einsum(),
            "S(i,r,s,t) = T(i,j,k,l) * F1(j,r) * F2(k,s) * F3(l,t)"
        );
    }

    #[test]
    fn all_mode_ttmc_contracts_everything() {
        let k = all_mode_ttmc(&[10, 11, 12], &[4, 5, 6]);
        assert_eq!(
            k.to_einsum(),
            "S(r,s,t) = T(i,j,k) * F0(i,r) * F1(j,s) * F2(k,t)"
        );
        assert_eq!(k.contracted_indices().len(), 3);
    }

    #[test]
    fn tttp_matches_eq3() {
        let k = tttp(&[10, 11, 12], 4);
        assert_eq!(
            k.to_einsum(),
            "S(i,j,k) = T(i,j,k) * F0(i,r) * F1(j,r) * F2(k,r)"
        );
        assert!(k.output_sparse);
    }

    #[test]
    fn tttc_matches_eq4_shape() {
        // Order-6 train like the paper's Eq. 4.
        let k = tttc(&[8, 8, 8, 8, 8, 8], 3);
        assert_eq!(k.inputs.len(), 6); // T + A + 4 middle cores
        assert_eq!(k.output.indices.len(), 2); // Z(n, b4)
        assert!(!k.output_sparse);
        assert_eq!(k.num_indices(), 6 + 5);
        // Output keeps the last sparse mode and last bond.
        assert_eq!(k.index_name(k.output.indices[0]), "n");
        assert_eq!(k.index_name(k.output.indices[1]), "b4");
    }

    #[test]
    fn order2_kernels() {
        // SpMM-like degenerate cases still validate.
        let k = mttkrp(&[10, 11], 4);
        assert_eq!(k.to_einsum(), "A(i,a) = T(i,j) * F1(j,a)");
        let t = tttp(&[10, 11], 4); // SDDMM
        assert_eq!(t.to_einsum(), "S(i,j) = T(i,j) * F0(i,r) * F1(j,r)");
    }
}
