//! Index identifiers and small index sets.
//!
//! Every distinct index letter of an SpTTN kernel (e.g. `i, j, k, r, s`
//! in the order-3 TTMc `S(i,r,s) = T(i,j,k)·U(j,r)·V(k,s)`) gets a small
//! integer [`IndexId`]. Sets of indices are bitsets ([`IdxSet`]), which
//! keeps the Algorithm-1 dynamic program's memo keys compact: the paper's
//! subproblems are (term subsequence, set of already-iterated indices).

/// Identifier of a kernel index (position in [`crate::Kernel::indices`]).
pub type IndexId = usize;

/// Maximum number of distinct indices per kernel (bitset width).
pub const MAX_INDICES: usize = 64;

/// A set of [`IndexId`]s as a 64-bit bitset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct IdxSet(pub u64);

impl IdxSet {
    /// The empty set.
    pub const EMPTY: IdxSet = IdxSet(0);

    /// Singleton set.
    #[inline]
    pub fn single(i: IndexId) -> IdxSet {
        debug_assert!(i < MAX_INDICES);
        IdxSet(1u64 << i)
    }

    /// True when `i` is in the set.
    #[inline]
    pub fn contains(self, i: IndexId) -> bool {
        debug_assert!(i < MAX_INDICES);
        self.0 & (1u64 << i) != 0
    }

    /// Set with `i` added.
    #[inline]
    #[must_use]
    pub fn insert(self, i: IndexId) -> IdxSet {
        debug_assert!(i < MAX_INDICES);
        IdxSet(self.0 | (1u64 << i))
    }

    /// Set with `i` removed.
    #[inline]
    #[must_use]
    pub fn remove(self, i: IndexId) -> IdxSet {
        debug_assert!(i < MAX_INDICES);
        IdxSet(self.0 & !(1u64 << i))
    }

    /// Union.
    #[inline]
    #[must_use]
    pub fn union(self, other: IdxSet) -> IdxSet {
        IdxSet(self.0 | other.0)
    }

    /// Intersection.
    #[inline]
    #[must_use]
    pub fn intersect(self, other: IdxSet) -> IdxSet {
        IdxSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    #[inline]
    #[must_use]
    pub fn minus(self, other: IdxSet) -> IdxSet {
        IdxSet(self.0 & !other.0)
    }

    /// True when the intersection is non-empty.
    #[inline]
    pub fn intersects(self, other: IdxSet) -> bool {
        self.0 & other.0 != 0
    }

    /// True when `self ⊆ other`.
    #[inline]
    pub fn is_subset(self, other: IdxSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of elements.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterate members in ascending id order.
    pub fn iter(self) -> impl Iterator<Item = IndexId> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }

    /// Members as a vector in ascending id order.
    pub fn to_vec(self) -> Vec<IndexId> {
        self.iter().collect()
    }
}

impl FromIterator<IndexId> for IdxSet {
    /// Build from an iterator of ids.
    fn from_iter<T: IntoIterator<Item = IndexId>>(ids: T) -> IdxSet {
        let mut s = IdxSet::EMPTY;
        for i in ids {
            s = s.insert(i);
        }
        s
    }
}

impl std::fmt::Display for IdxSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

/// Metadata for one kernel index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexInfo {
    /// Human-readable name (the einsum letter).
    pub name: String,
    /// Dimension size.
    pub dim: usize,
    /// `Some(level)` when this index is a mode of the sparse tensor,
    /// giving its CSF tree level (position in the sparse tensor's stored
    /// mode order). `None` for dense-only indices.
    pub sparse_level: Option<usize>,
}

impl IndexInfo {
    /// True when the index is a mode of the sparse input tensor.
    #[inline]
    pub fn is_sparse(&self) -> bool {
        self.sparse_level.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_basic_ops() {
        let s = IdxSet::from_iter([1, 3, 5]);
        assert!(s.contains(3));
        assert!(!s.contains(2));
        assert_eq!(s.len(), 3);
        assert_eq!(s.to_vec(), vec![1, 3, 5]);
        assert_eq!(s.insert(2).len(), 4);
        assert_eq!(s.remove(3).to_vec(), vec![1, 5]);
    }

    #[test]
    fn set_algebra() {
        let a = IdxSet::from_iter([0, 1, 2]);
        let b = IdxSet::from_iter([2, 3]);
        assert_eq!(a.union(b).to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(a.intersect(b).to_vec(), vec![2]);
        assert_eq!(a.minus(b).to_vec(), vec![0, 1]);
        assert!(a.intersects(b));
        assert!(!a.intersects(IdxSet::from_iter([4])));
        assert!(IdxSet::from_iter([1]).is_subset(a));
        assert!(!a.is_subset(b));
    }

    #[test]
    fn empty_set() {
        assert!(IdxSet::EMPTY.is_empty());
        assert_eq!(IdxSet::EMPTY.len(), 0);
        assert_eq!(IdxSet::EMPTY.iter().count(), 0);
    }

    #[test]
    fn display_format() {
        assert_eq!(IdxSet::from_iter([0, 2]).to_string(), "{0,2}");
        assert_eq!(IdxSet::EMPTY.to_string(), "{}");
    }
}
