//! Intermediate-buffer inference (paper Eq. 5).
//!
//! Every non-final term writes a dense buffer consumed by exactly one
//! later term. Its stored indices are the producer's output indices
//! minus the *common ancestors* of producer and consumer leaves in the
//! fused forest — ancestor loops position the buffer, so only the inner
//! indices need storage. This is what shrinks the order-3 TTMc
//! intermediate from `I×J×S` (unfused, Listing 2) to `S` (Listing 3) to
//! a scalar (Listing 4).

use crate::fuse::LoopForest;
use crate::index::{IdxSet, IndexId};
use crate::kernel::Kernel;
use crate::path::ContractionPath;

/// A dense intermediate buffer of a fused loop nest.
///
/// Sized purely from the kernel's index dimensions — no operand data is
/// consulted — so buffer specs can be computed for a symbolic plan and
/// turned into allocations only when data is bound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BufferSpec {
    /// Term producing the buffer.
    pub producer: usize,
    /// Term consuming the buffer.
    pub consumer: usize,
    /// Stored indices, ordered by producer loop-order position (so the
    /// producer's innermost loop writes contiguously).
    pub inds: Vec<IndexId>,
    /// Dimensions matching `inds`.
    pub dims: Vec<usize>,
}

impl BufferSpec {
    /// Number of stored dimensions (the paper's buffer-dimension metric).
    #[inline]
    pub fn ndim(&self) -> usize {
        self.inds.len()
    }

    /// Total element count.
    #[inline]
    pub fn size(&self) -> u128 {
        self.dims.iter().map(|&d| d as u128).product()
    }

    /// Index set of the stored indices.
    pub fn index_set(&self) -> IdxSet {
        IdxSet::from_iter(self.inds.iter().copied())
    }

    /// Row-major strides matching [`BufferSpec::dims`] — the layout the
    /// executor's `DenseTensor` allocation of this buffer uses. Exposed
    /// so bind-time compilers can lower buffer addressing to
    /// base-offset + stride arithmetic without materializing tensors.
    pub fn strides(&self) -> Vec<usize> {
        row_major_strides(&self.dims)
    }

    /// Innermost (contiguous) extent when it is a common small rank —
    /// the compile-time hint bind-time compilers use to pick
    /// rank-specialized microkernel variants. Returns the last stored
    /// dimension iff it is one of the supported specialization ranks
    /// (8, 16, 32); any other shape gets the generic kernels.
    pub fn rank_hint(&self) -> Option<usize> {
        match self.dims.last() {
            Some(&n @ (8 | 16 | 32)) => Some(n),
            _ => None,
        }
    }
}

/// Row-major strides for a dimension list (last mode contiguous) —
/// shared by [`BufferSpec::strides`] and
/// [`crate::Kernel::ref_strides`] so the two layouts cannot drift.
pub(crate) fn row_major_strides(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for k in (0..dims.len().saturating_sub(1)).rev() {
        strides[k] = strides[k + 1] * dims[k + 1];
    }
    strides
}

/// Compute the buffer of every non-final term for a fused forest.
pub fn buffers_for_forest(
    kernel: &Kernel,
    path: &ContractionPath,
    forest: &LoopForest,
) -> Vec<BufferSpec> {
    let n = path.len();
    let common = forest.common_ancestor_sets(n);
    let ancestors = forest.ancestors(n);
    let mut out = Vec::with_capacity(n.saturating_sub(1));
    for (t, term) in path.terms.iter().enumerate() {
        let Some(c) = term.consumer else { continue };
        let shared = common[t][c];
        let kept = term.out_inds.minus(shared);
        // Order by position in the producer's loop order; indices of the
        // buffer not iterated by the producer cannot occur (buffer inds ⊆
        // producer inds), so every kept index has a position.
        let order = &ancestors[t];
        let mut inds: Vec<IndexId> = kept.to_vec();
        inds.sort_by_key(|i| order.iter().position(|x| x == i).unwrap_or(usize::MAX));
        let dims = inds.iter().map(|&i| kernel.dim(i)).collect();
        out.push(BufferSpec {
            producer: t,
            consumer: c,
            inds,
            dims,
        });
    }
    out
}

/// Maximum buffer dimensionality of a fused nest (Def. 4.5's metric).
pub fn max_buffer_dim(buffers: &[BufferSpec]) -> usize {
    buffers.iter().map(BufferSpec::ndim).max().unwrap_or(0)
}

/// Maximum single-buffer element count.
pub fn max_buffer_size(buffers: &[BufferSpec]) -> u128 {
    buffers.iter().map(BufferSpec::size).max().unwrap_or(0)
}

/// Total element count over all buffers.
pub fn total_buffer_size(buffers: &[BufferSpec]) -> u128 {
    buffers.iter().map(BufferSpec::size).sum()
}

/// Workspace element count of a nest executed as `n_workers` parallel
/// root tiles.
///
/// Buffer specs are data-independent, so tiling the CSF root level does
/// not change any buffer's shape — but each worker needs a private
/// replica of every Eq.-5 buffer (plus, for dense outputs, a private
/// partial of the output itself; not counted here since its size comes
/// from the kernel, not the specs). The parallel executor uses this to
/// report the memory cost of a thread count before committing to it.
pub fn tiled_workspace_footprint(buffers: &[BufferSpec], n_workers: usize) -> u128 {
    total_buffer_size(buffers) * n_workers.max(1) as u128
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuse::build_forest;
    use crate::order::NestSpec;
    use crate::parse_kernel;
    use crate::path::path_from_picks;

    fn ttmc3() -> (Kernel, ContractionPath) {
        let k = parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 10), ("j", 11), ("k", 12), ("r", 4), ("s", 5)],
        )
        .unwrap();
        let p = path_from_picks(&k, &[(0, 2), (0, 1)]);
        (k, p)
    }

    #[test]
    fn listing2_full_buffer() {
        // Unfused: no shared vertices; buffer keeps (i,j,s).
        let (k, p) = ttmc3();
        let spec = NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![4, 0, 1, 3]],
        };
        let f = build_forest(&k, &p, &spec).unwrap();
        let bufs = buffers_for_forest(&k, &p, &f);
        assert_eq!(bufs.len(), 1);
        assert_eq!(bufs[0].ndim(), 3);
        assert_eq!(bufs[0].size(), 10 * 11 * 5);
        // Row-major layout: last stored mode contiguous.
        assert_eq!(bufs[0].strides(), vec![11 * 5, 5, 1]);
    }

    #[test]
    fn listing3_buffer_is_s() {
        let (k, p) = ttmc3();
        let spec = NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
        };
        let f = build_forest(&k, &p, &spec).unwrap();
        let bufs = buffers_for_forest(&k, &p, &f);
        assert_eq!(bufs[0].inds, vec![4]); // s
        assert_eq!(bufs[0].dims, vec![5]);
        assert_eq!(max_buffer_dim(&bufs), 1);
    }

    #[test]
    fn listing4_buffer_is_scalar() {
        let (k, p) = ttmc3();
        let spec = NestSpec {
            orders: vec![vec![0, 1, 4, 2], vec![0, 1, 4, 3]],
        };
        let f = build_forest(&k, &p, &spec).unwrap();
        let bufs = buffers_for_forest(&k, &p, &f);
        assert_eq!(bufs[0].ndim(), 0);
        assert_eq!(bufs[0].size(), 1);
        assert_eq!(total_buffer_size(&bufs), 1);
    }

    #[test]
    fn order4_ttmc_paper_buffers() {
        // Fig. 6: X of size T(dim t), Y of size S×T under loops (i,j).
        let k = parse_kernel(
            "S(i,r,s,t) = T(i,j,k,l) * U(j,r) * V(k,s) * W(l,t)",
            &[
                ("i", 9),
                ("j", 9),
                ("k", 9),
                ("l", 9),
                ("r", 3),
                ("s", 4),
                ("t", 5),
            ],
        )
        .unwrap();
        // Items after T*W: [U, V, X0]; contract V*X0 then U*X1.
        let p = path_from_picks(&k, &[(0, 3), (1, 2), (0, 1)]);
        // Orders from Fig. 6: (i,j,k,l,t), (i,j,k,s,t), (i,j,r,s,t).
        let spec = NestSpec {
            orders: vec![
                vec![0, 1, 2, 3, 6],
                vec![0, 1, 2, 5, 6],
                vec![0, 1, 4, 5, 6],
            ],
        };
        let f = build_forest(&k, &p, &spec).unwrap();
        let bufs = buffers_for_forest(&k, &p, &f);
        assert_eq!(bufs.len(), 2);
        // X consumed by term 1 under shared (i,j,k): keeps {t}.
        assert_eq!(bufs[0].dims, vec![5]);
        // Y consumed by term 2 under shared (i,j): keeps {s,t}.
        assert_eq!(bufs[1].dims, vec![4, 5]);
        assert_eq!(max_buffer_dim(&bufs), 2);
        assert_eq!(max_buffer_size(&bufs), 20);
    }

    #[test]
    fn tiled_footprint_scales_with_workers() {
        let (k, p) = ttmc3();
        let spec = NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
        };
        let f = build_forest(&k, &p, &spec).unwrap();
        let bufs = buffers_for_forest(&k, &p, &f);
        let one = total_buffer_size(&bufs);
        assert_eq!(tiled_workspace_footprint(&bufs, 1), one);
        assert_eq!(tiled_workspace_footprint(&bufs, 4), 4 * one);
        // Zero workers is clamped to one (the serial path).
        assert_eq!(tiled_workspace_footprint(&bufs, 0), one);
    }

    #[test]
    fn buffer_index_order_follows_producer() {
        let (k, p) = ttmc3();
        // Producer order (i, s, j, k) keeps (s) — trivially ordered; use
        // the unfused case with multi-index buffer instead.
        let spec = NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![4, 0, 1, 3]],
        };
        let f = build_forest(&k, &p, &spec).unwrap();
        let bufs = buffers_for_forest(&k, &p, &f);
        // Producer order (i,j,k,s): kept {i,j,s} ordered i,j,s.
        assert_eq!(bufs[0].inds, vec![0, 1, 4]);
    }
}
