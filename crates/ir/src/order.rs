//! Loop orders (paper Def. 3.2) and their enumeration.
//!
//! A loop order assigns each contraction term a permutation of its
//! indices. The paper restricts enumeration to orders where a term's
//! sparse-lineage indices appear in CSF storage order, which cuts the
//! per-term count from `|I|!` to `|I|!/k!` (Sec. 4.1.2) and guarantees
//! the sparse descent can follow the CSF tree.

use crate::index::{IdxSet, IndexId};
use crate::kernel::Kernel;
use crate::path::ContractionPath;

/// Loop order for a single term: a permutation of its index set.
pub type LoopOrder = Vec<IndexId>;

/// A complete loop-order assignment for a contraction path (the paper's
/// `A = (A_1, ..., A_N)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NestSpec {
    /// One loop order per path term, in path order.
    pub orders: Vec<LoopOrder>,
}

impl NestSpec {
    /// Render as `(i,j,k,s),(i,j,s,r)` using kernel index names.
    pub fn describe(&self, kernel: &Kernel) -> String {
        self.orders
            .iter()
            .map(|o| {
                let names: Vec<&str> = o.iter().map(|&i| kernel.index_name(i)).collect();
                format!("({})", names.join(","))
            })
            .collect::<Vec<_>>()
            .join(",")
    }
}

/// Sparse-lineage indices of term `t`, in CSF level order — the
/// subsequence that must stay fixed in any enumerated loop order.
pub fn lineage_in_csf_order(kernel: &Kernel, path: &ContractionPath, t: usize) -> Vec<IndexId> {
    let lineage = path.terms[t].lineage();
    kernel
        .csf_index_order()
        .iter()
        .copied()
        .filter(|&i| lineage.contains(i))
        .collect()
}

/// Check a single term's order: must be a permutation of the term's
/// index set with lineage indices in CSF relative order.
pub fn order_is_valid(
    kernel: &Kernel,
    path: &ContractionPath,
    t: usize,
    order: &[IndexId],
) -> bool {
    let inds = path.terms[t].iter_inds();
    if order.len() != inds.len() {
        return false;
    }
    let mut seen = IdxSet::EMPTY;
    for &i in order {
        if !inds.contains(i) || seen.contains(i) {
            return false;
        }
        seen = seen.insert(i);
    }
    let want = lineage_in_csf_order(kernel, path, t);
    let got: Vec<IndexId> = order.iter().copied().filter(|i| want.contains(i)).collect();
    got == want
}

/// All valid loop orders for term `t` (`|I|!/k!` of them).
pub fn orders_for_term(kernel: &Kernel, path: &ContractionPath, t: usize) -> Vec<LoopOrder> {
    let inds = path.terms[t].iter_inds().to_vec();
    let fixed = lineage_in_csf_order(kernel, path, t);
    let free: Vec<IndexId> = inds
        .iter()
        .copied()
        .filter(|i| !fixed.contains(i))
        .collect();
    let mut out = Vec::new();
    let mut perm = free.clone();
    permute(&mut perm, 0, &mut |p: &[IndexId]| {
        // Interleave the fixed subsequence into every gap arrangement.
        interleave(&fixed, p, &mut |order: &[IndexId]| {
            out.push(order.to_vec());
        });
    });
    out.sort();
    out.dedup();
    out
}

/// Heap-like recursive permutation generator.
fn permute(v: &mut [IndexId], k: usize, f: &mut impl FnMut(&[IndexId])) {
    if k == v.len() {
        f(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute(v, k + 1, f);
        v.swap(k, i);
    }
}

/// Emit every interleaving of `fixed` (order preserved) with `free`
/// (order preserved).
fn interleave(fixed: &[IndexId], free: &[IndexId], f: &mut impl FnMut(&[IndexId])) {
    let mut buf = Vec::with_capacity(fixed.len() + free.len());
    fn rec(
        fixed: &[IndexId],
        free: &[IndexId],
        buf: &mut Vec<IndexId>,
        f: &mut impl FnMut(&[IndexId]),
    ) {
        if fixed.is_empty() && free.is_empty() {
            f(buf);
            return;
        }
        if let Some((&h, rest)) = fixed.split_first() {
            buf.push(h);
            rec(rest, free, buf, f);
            buf.pop();
        }
        if let Some((&h, rest)) = free.split_first() {
            buf.push(h);
            rec(fixed, rest, buf, f);
            buf.pop();
        }
    }
    rec(fixed, free, &mut buf, f);
}

/// Number of loop orders per term and in total (product), without
/// materializing them: the paper's `Π |I_i|!/k_i!` bound from Sec. 4.1.2.
pub fn count_orders(kernel: &Kernel, path: &ContractionPath) -> (Vec<u128>, u128) {
    let per: Vec<u128> = (0..path.len())
        .map(|t| {
            let n = path.terms[t].iter_inds().len() as u128;
            let k = lineage_in_csf_order(kernel, path, t).len() as u128;
            factorial(n) / factorial(k)
        })
        .collect();
    let total = per.iter().product();
    (per, total)
}

fn factorial(n: u128) -> u128 {
    (1..=n).product::<u128>().max(1)
}

/// Iterator over the cartesian product of per-term loop orders: every
/// [`NestSpec`] for the path (the paper's exhaustive search space).
pub struct NestSpecIter {
    per_term: Vec<Vec<LoopOrder>>,
    cursor: Vec<usize>,
    done: bool,
}

impl NestSpecIter {
    /// Build the iterator for a path.
    pub fn new(kernel: &Kernel, path: &ContractionPath) -> Self {
        let per_term: Vec<Vec<LoopOrder>> = (0..path.len())
            .map(|t| orders_for_term(kernel, path, t))
            .collect();
        let done = per_term.iter().any(|v| v.is_empty());
        NestSpecIter {
            cursor: vec![0; per_term.len()],
            per_term,
            done,
        }
    }

    /// Per-term order lists (useful for random sampling).
    pub fn per_term(&self) -> &[Vec<LoopOrder>] {
        &self.per_term
    }
}

impl Iterator for NestSpecIter {
    type Item = NestSpec;

    fn next(&mut self) -> Option<NestSpec> {
        if self.done {
            return None;
        }
        let spec = NestSpec {
            orders: self
                .cursor
                .iter()
                .zip(&self.per_term)
                .map(|(&c, v)| v[c].clone())
                .collect(),
        };
        // Advance odometer.
        let mut k = self.cursor.len();
        loop {
            if k == 0 {
                self.done = true;
                break;
            }
            k -= 1;
            self.cursor[k] += 1;
            if self.cursor[k] < self.per_term[k].len() {
                break;
            }
            self.cursor[k] = 0;
        }
        Some(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_kernel;
    use crate::path::path_from_picks;

    fn ttmc3() -> (Kernel, ContractionPath) {
        let k = parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 10), ("j", 10), ("k", 10), ("r", 4), ("s", 4)],
        )
        .unwrap();
        let p = path_from_picks(&k, &[(0, 2), (0, 1)]);
        (k, p)
    }

    #[test]
    fn order_counts_match_formula() {
        let (k, p) = ttmc3();
        // Term 0: T*V over {i,j,k,s}, lineage {i,j,k}: 4!/3! = 4 orders.
        let o0 = orders_for_term(&k, &p, 0);
        assert_eq!(o0.len(), 4);
        // Term 1: X*U over {i,j,s,r}, lineage {i,j}: 4!/2! = 12 orders.
        let o1 = orders_for_term(&k, &p, 1);
        assert_eq!(o1.len(), 12);
        let (per, total) = count_orders(&k, &p);
        assert_eq!(per, vec![4, 12]);
        assert_eq!(total, 48);
        assert_eq!(NestSpecIter::new(&k, &p).count(), 48);
    }

    #[test]
    fn lineage_subsequence_preserved() {
        let (k, p) = ttmc3();
        for o in orders_for_term(&k, &p, 0) {
            assert!(order_is_valid(&k, &p, 0, &o), "{o:?}");
            let spots: Vec<usize> = [0usize, 1, 2]
                .iter()
                .map(|&idx| o.iter().position(|&x| x == idx).unwrap())
                .collect();
            assert!(spots[0] < spots[1] && spots[1] < spots[2], "{o:?}");
        }
    }

    #[test]
    fn invalid_orders_rejected() {
        let (k, p) = ttmc3();
        assert!(!order_is_valid(&k, &p, 0, &[1, 0, 2, 4])); // j before i
        assert!(!order_is_valid(&k, &p, 0, &[0, 1, 2])); // missing s
        assert!(!order_is_valid(&k, &p, 0, &[0, 1, 2, 3])); // r not in term
        assert!(!order_is_valid(&k, &p, 0, &[0, 0, 1, 2])); // repeat
        assert!(order_is_valid(&k, &p, 0, &[0, 1, 4, 2])); // Listing 4 order
    }

    #[test]
    fn dense_only_term_unrestricted() {
        let k = parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 10), ("j", 10), ("k", 10), ("r", 4), ("s", 4)],
        )
        .unwrap();
        // Path contracting U*V first: term 0 has no lineage.
        let p = path_from_picks(&k, &[(1, 2), (0, 1)]);
        let o0 = orders_for_term(&k, &p, 0);
        assert_eq!(o0.len(), 24); // 4! over {j,k,r,s}
    }

    #[test]
    fn nestspec_iter_unique_and_complete() {
        let (k, p) = ttmc3();
        let all: Vec<NestSpec> = NestSpecIter::new(&k, &p).collect();
        let mut dedup = all.clone();
        dedup.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }

    #[test]
    fn describe_shows_names() {
        let (k, _p) = ttmc3();
        let spec = NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
        };
        assert_eq!(spec.describe(&k), "(i,j,k,s),(i,j,s,r)");
    }
}
