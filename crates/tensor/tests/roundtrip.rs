//! COO → CSF → COO round-trips under **every** permutation of the mode
//! order, on randomized 3- and 4-mode tensors — the invariant the
//! planner's mode-order search and `Plan::bind`'s re-sort path depend
//! on: whatever storage order a tree uses, the set of (coordinate,
//! value) entries it represents is unchanged.

use rand::prelude::*;
use spttn_tensor::{random_coo, skewed_coo, CooTensor, Csf, SparsityProfile};

/// All permutations of `0..d` (d ≤ 4 here, so at most 24).
fn permutations(d: usize) -> Vec<Vec<usize>> {
    fn go(perm: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
        if k == perm.len() {
            out.push(perm.clone());
            return;
        }
        for i in k..perm.len() {
            perm.swap(k, i);
            go(perm, k + 1, out);
            perm.swap(k, i);
        }
    }
    let mut out = Vec::new();
    let mut base: Vec<usize> = (0..d).collect();
    go(&mut base, 0, &mut out);
    out
}

/// Canonical form of a COO tensor: entries sorted in natural order.
fn canonical(coo: &CooTensor) -> CooTensor {
    let mut c = coo.clone();
    let natural: Vec<usize> = (0..c.order()).collect();
    c.sort_dedup(&natural).unwrap();
    c
}

fn assert_roundtrips(coo: &CooTensor, label: &str) {
    let want = canonical(coo);
    for order in permutations(coo.order()) {
        let csf = Csf::from_coo(coo, &order).unwrap();
        assert_eq!(csf.nnz(), want.nnz(), "{label}: nnz under {order:?}");
        // Exact entry-set equality, not just dense closeness: the
        // rebuilt COO re-sorted to natural order must be identical.
        let back = canonical(&csf.to_coo());
        assert_eq!(back, want, "{label}: round-trip under {order:?}");
        // The CSF's own profile must agree with the profile computed
        // directly from the COO under the same order (the quantity the
        // order search scores with).
        let from_csf = SparsityProfile::from_csf(&csf);
        let from_coo = SparsityProfile::from_coo(coo, &order).unwrap();
        assert_eq!(from_csf, from_coo, "{label}: profile under {order:?}");
        // reordered() from this tree to every other order must equal a
        // direct build in that order.
        for other in permutations(coo.order()) {
            let re = csf.reordered(&other).unwrap();
            assert_eq!(
                re,
                Csf::from_coo(coo, &other).unwrap(),
                "{label}: reorder {order:?} -> {other:?}"
            );
        }
    }
}

#[test]
fn random_3mode_all_permutations() {
    let mut rng = StdRng::seed_from_u64(101);
    for (dims, nnz) in [([7usize, 5, 9], 60), ([12, 3, 12], 100), ([2, 2, 2], 7)] {
        let coo = random_coo(&dims, nnz, &mut rng).unwrap();
        assert_roundtrips(&coo, &format!("random {dims:?}"));
    }
}

#[test]
fn random_4mode_all_permutations() {
    let mut rng = StdRng::seed_from_u64(202);
    for (dims, nnz) in [([5usize, 4, 6, 3], 80), ([9, 2, 3, 7], 50)] {
        let coo = random_coo(&dims, nnz, &mut rng).unwrap();
        assert_roundtrips(&coo, &format!("random {dims:?}"));
    }
}

#[test]
fn skewed_3mode_all_permutations() {
    // Power-law skew concentrates entries in low coordinates, stressing
    // unbalanced fibers and repeated prefixes.
    let mut rng = StdRng::seed_from_u64(303);
    let coo = skewed_coo(&[30, 20, 10], 120, 2.5, &mut rng).unwrap();
    assert!(coo.nnz() > 0);
    assert_roundtrips(&coo, "skewed [30,20,10]");
}

#[test]
fn duplicates_merge_identically_under_every_order() {
    // Duplicate coordinates must collapse to the same sums whichever
    // level order the tree is built in.
    let coo = CooTensor::from_entries(
        &[4, 3, 5],
        vec![
            (vec![1, 2, 0], 1.0),
            (vec![1, 2, 0], 2.0),
            (vec![0, 0, 4], -1.0),
            (vec![1, 2, 0], 0.5),
            (vec![3, 1, 1], 4.0),
            (vec![0, 0, 4], 1.0),
        ],
    )
    .unwrap();
    for order in permutations(3) {
        let csf = Csf::from_coo(&coo, &order).unwrap();
        assert_eq!(csf.nnz(), 3, "order {order:?}");
        let dense = csf.to_coo().to_dense();
        assert_eq!(dense.get(&[1, 2, 0]), 3.5, "order {order:?}");
        assert_eq!(dense.get(&[0, 0, 4]), 0.0, "order {order:?}");
        assert_eq!(dense.get(&[3, 1, 1]), 4.0, "order {order:?}");
    }
}
