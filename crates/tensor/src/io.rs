//! Text readers for standard sparse-tensor interchange formats.
//!
//! Two formats cover the datasets the paper evaluates on and the wider
//! sparse-tensor ecosystem:
//!
//! - **FROSTT `.tns`** ([`read_tns`]): whitespace-separated lines of
//!   `c1 c2 ... cd value` with 1-based coordinates; `#` starts a
//!   comment. The mode count is taken from the first data line and the
//!   dimensions are either declared by the caller or inferred as the
//!   per-mode coordinate maxima.
//! - **MatrixMarket coordinate** ([`read_mtx`]): the `%%MatrixMarket
//!   matrix coordinate <field> <symmetry>` header, `%` comments, a
//!   `rows cols nnz` size line, then `i j [value]` entries. `real`,
//!   `integer`, and `pattern` fields are supported (pattern entries get
//!   value 1.0), with `general` or `symmetric` symmetry (symmetric
//!   off-diagonal entries are mirrored).
//!
//! Both readers stream line by line from any [`BufRead`], validate as
//! they go, and finish with the canonical ingest step the rest of the
//! stack expects: entries sorted lexicographically in natural mode
//! order with duplicate coordinates summed
//! ([`CooTensor::sort_dedup`]). [`load_coo`] dispatches on a file
//! path's extension.

use crate::{CooTensor, TensorError};
use std::io::BufRead;
use std::path::Path;

/// Errors produced while reading a tensor from text.
#[derive(Debug)]
pub enum IoError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The text does not conform to the format (line number, message).
    Parse {
        /// 1-based line number the error was detected on.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed entries failed tensor validation (bounds, shape).
    Tensor(TensorError),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<TensorError> for IoError {
    fn from(e: TensorError) -> Self {
        IoError::Tensor(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        message: message.into(),
    }
}

/// Raw entries accumulated while streaming, before bounds are known.
struct RawEntries {
    order: usize,
    /// Flat 0-based coordinates, `order` per entry.
    coords: Vec<usize>,
    vals: Vec<f64>,
    /// Per-mode maximum coordinate seen (for dimension inference).
    max_coord: Vec<usize>,
}

impl RawEntries {
    fn new(order: usize) -> Self {
        RawEntries {
            order,
            coords: Vec::new(),
            vals: Vec::new(),
            max_coord: vec![0; order],
        }
    }

    fn push(&mut self, coord: &[usize], v: f64) {
        for (m, &c) in coord.iter().enumerate() {
            self.max_coord[m] = self.max_coord[m].max(c);
        }
        self.coords.extend_from_slice(coord);
        self.vals.push(v);
    }

    /// Build the COO tensor: declared dims (validated to cover every
    /// entry) or inferred dims (per-mode maximum + 1), then the
    /// canonical sort/dedup ingest step.
    fn finish(self, declared: Option<&[usize]>) -> Result<CooTensor, IoError> {
        let dims: Vec<usize> = match declared {
            Some(d) => {
                if d.len() != self.order {
                    return Err(IoError::Tensor(TensorError::OrderMismatch {
                        expected: self.order,
                        actual: d.len(),
                    }));
                }
                d.to_vec()
            }
            None => self.max_coord.iter().map(|&m| m + 1).collect(),
        };
        let mut coo = CooTensor::new(&dims)?;
        for (e, &v) in self.vals.iter().enumerate() {
            coo.push(&self.coords[e * self.order..(e + 1) * self.order], v)?;
        }
        let natural: Vec<usize> = (0..self.order).collect();
        coo.sort_dedup(&natural)?;
        Ok(coo)
    }
}

/// Read a FROSTT `.tns` tensor: one `c1 ... cd value` entry per line,
/// 1-based coordinates, `#` comments and blank lines skipped.
///
/// The mode count comes from the first data line; every later line must
/// match it. `dims` declares the dimensions (entries are validated
/// against them); `None` infers each dimension as the largest
/// coordinate seen in that mode. Entries are sorted in natural mode
/// order and duplicate coordinates are summed on ingest.
///
/// An input with no data lines errors: a tensor's mode count cannot be
/// inferred from nothing (declare dims and build an empty
/// [`CooTensor`] directly if that is what you mean).
pub fn read_tns<R: BufRead>(reader: R, dims: Option<&[usize]>) -> Result<CooTensor, IoError> {
    let mut entries: Option<RawEntries> = None;
    let mut coord: Vec<usize> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line?;
        let data = line.split('#').next().unwrap_or("").trim();
        if data.is_empty() {
            continue;
        }
        let fields: Vec<&str> = data.split_whitespace().collect();
        if fields.len() < 2 {
            return Err(parse_err(
                lineno,
                format!("expected 'c1 ... cd value', got '{data}'"),
            ));
        }
        let order = fields.len() - 1;
        let entries = entries.get_or_insert_with(|| RawEntries::new(order));
        if order != entries.order {
            return Err(parse_err(
                lineno,
                format!(
                    "entry has {order} coordinates, previous entries have {}",
                    entries.order
                ),
            ));
        }
        coord.clear();
        for f in &fields[..order] {
            let c: usize = f
                .parse()
                .map_err(|_| parse_err(lineno, format!("bad coordinate '{f}'")))?;
            if c == 0 {
                return Err(parse_err(lineno, "coordinates are 1-based; got 0"));
            }
            coord.push(c - 1);
        }
        let v: f64 = fields[order]
            .parse()
            .map_err(|_| parse_err(lineno, format!("bad value '{}'", fields[order])))?;
        entries.push(&coord, v);
    }
    let entries = entries.ok_or_else(|| parse_err(0, "no tensor entries in input"))?;
    entries.finish(dims)
}

/// Read a MatrixMarket coordinate file as a 2-mode [`CooTensor`].
///
/// Supports the `matrix coordinate` object with `real`, `integer`, or
/// `pattern` fields (pattern entries get value 1.0) and `general` or
/// `symmetric` symmetry (symmetric entries below the diagonal are
/// mirrored). Coordinates are 1-based; the declared `rows cols` size
/// line fixes the dimensions, and the declared nonzero count must match
/// the number of entry lines. Duplicates are summed on ingest, matching
/// [`read_tns`].
pub fn read_mtx<R: BufRead>(reader: R) -> Result<CooTensor, IoError> {
    let mut lines = reader.lines().enumerate();

    // Header: %%MatrixMarket matrix coordinate <field> <symmetry>
    let (hline, header) = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty MatrixMarket file"))
        .and_then(|(n, l)| Ok((n + 1, l?)))?;
    let head: Vec<String> = header.split_whitespace().map(str::to_lowercase).collect();
    if head.len() < 5 || head[0] != "%%matrixmarket" || head[1] != "matrix" {
        return Err(parse_err(
            hline,
            "expected '%%MatrixMarket matrix coordinate <field> <symmetry>' header",
        ));
    }
    if head[2] != "coordinate" {
        return Err(parse_err(
            hline,
            format!("unsupported storage '{}'; only 'coordinate' is", head[2]),
        ));
    }
    let pattern = match head[3].as_str() {
        "real" | "integer" => false,
        "pattern" => true,
        other => {
            return Err(parse_err(
                hline,
                format!("unsupported field '{other}'; use real, integer, or pattern"),
            ))
        }
    };
    let symmetric = match head[4].as_str() {
        "general" => false,
        "symmetric" => true,
        other => {
            return Err(parse_err(
                hline,
                format!("unsupported symmetry '{other}'; use general or symmetric"),
            ))
        }
    };

    // Size line: rows cols nnz (after % comments).
    let mut size: Option<(usize, usize, usize)> = None;
    let mut entries = RawEntries::new(2);
    let mut declared_nnz = 0usize;
    let mut seen = 0usize;
    for (lineno, line) in lines {
        let lineno = lineno + 1;
        let line = line?;
        let data = line.trim();
        if data.is_empty() || data.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = data.split_whitespace().collect();
        match size {
            None => {
                if fields.len() != 3 {
                    return Err(parse_err(lineno, "expected size line 'rows cols nnz'"));
                }
                let mut it = fields.iter().map(|f| {
                    f.parse::<usize>()
                        .map_err(|_| parse_err(lineno, format!("bad size field '{f}'")))
                });
                let (r, c, n) = (
                    it.next().unwrap()?,
                    it.next().unwrap()?,
                    it.next().unwrap()?,
                );
                declared_nnz = n;
                size = Some((r, c, n));
            }
            Some((rows, cols, _)) => {
                let want = if pattern { 2 } else { 3 };
                if fields.len() != want {
                    return Err(parse_err(
                        lineno,
                        format!("expected {want} fields per entry, got {}", fields.len()),
                    ));
                }
                let i: usize = fields[0]
                    .parse()
                    .map_err(|_| parse_err(lineno, format!("bad row index '{}'", fields[0])))?;
                let j: usize = fields[1]
                    .parse()
                    .map_err(|_| parse_err(lineno, format!("bad column index '{}'", fields[1])))?;
                if i == 0 || j == 0 {
                    return Err(parse_err(lineno, "indices are 1-based; got 0"));
                }
                if i > rows || j > cols {
                    return Err(parse_err(
                        lineno,
                        format!("entry ({i}, {j}) outside declared {rows} x {cols}"),
                    ));
                }
                let v: f64 = if pattern {
                    1.0
                } else {
                    fields[2]
                        .parse()
                        .map_err(|_| parse_err(lineno, format!("bad value '{}'", fields[2])))?
                };
                entries.push(&[i - 1, j - 1], v);
                if symmetric && i != j {
                    entries.push(&[j - 1, i - 1], v);
                }
                seen += 1;
            }
        }
    }
    let Some((rows, cols, _)) = size else {
        return Err(parse_err(0, "missing size line 'rows cols nnz'"));
    };
    if seen != declared_nnz {
        return Err(parse_err(
            0,
            format!("size line declares {declared_nnz} entries, file has {seen}"),
        ));
    }
    entries.finish(Some(&[rows, cols]))
}

/// Load a sparse tensor from a file path, dispatching on the extension:
/// `.tns` → [`read_tns`] (dimensions inferred), `.mtx` → [`read_mtx`].
pub fn load_coo(path: impl AsRef<Path>) -> Result<CooTensor, IoError> {
    let path = path.as_ref();
    let ext = path
        .extension()
        .and_then(|e| e.to_str())
        .map(str::to_lowercase);
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    match ext.as_deref() {
        Some("tns") => read_tns(reader, None),
        Some("mtx") => read_mtx(reader),
        _ => Err(parse_err(
            0,
            format!(
                "unrecognized tensor file extension in '{}'; expected .tns or .mtx",
                path.display()
            ),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tns_basic_with_comments_and_dedup() {
        let text = "\
# FROSTT-style fixture
1 1 1 1.0
3 2 1 2.5   # trailing comment

1 1 1 0.5
2 3 4 -1.0
";
        let coo = read_tns(text.as_bytes(), None).unwrap();
        assert_eq!(coo.dims(), &[3, 3, 4]);
        assert_eq!(coo.nnz(), 3); // (1,1,1) duplicates merged
        assert_eq!(coo.to_dense().get(&[0, 0, 0]), 1.5);
        assert_eq!(coo.to_dense().get(&[2, 1, 0]), 2.5);
        assert_eq!(coo.to_dense().get(&[1, 2, 3]), -1.0);
        // Sorted in natural order on ingest.
        assert_eq!(coo.coord(0), &[0, 0, 0]);
        assert_eq!(coo.coord(1), &[1, 2, 3]);
    }

    #[test]
    fn tns_declared_dims_validated() {
        let text = "2 2 1.0\n";
        let coo = read_tns(text.as_bytes(), Some(&[5, 5])).unwrap();
        assert_eq!(coo.dims(), &[5, 5]);
        let e = read_tns(text.as_bytes(), Some(&[1, 5])).unwrap_err();
        assert!(matches!(
            e,
            IoError::Tensor(TensorError::CoordOutOfBounds { .. })
        ));
        let e = read_tns(text.as_bytes(), Some(&[5, 5, 5])).unwrap_err();
        assert!(matches!(
            e,
            IoError::Tensor(TensorError::OrderMismatch { .. })
        ));
    }

    #[test]
    fn tns_rejects_malformed() {
        // Zero coordinate (1-based format).
        assert!(read_tns("0 1 1.0\n".as_bytes(), None).is_err());
        // Ragged arity.
        assert!(read_tns("1 1 1.0\n1 1 1 1.0\n".as_bytes(), None).is_err());
        // Non-numeric value.
        assert!(read_tns("1 1 x\n".as_bytes(), None).is_err());
        // Lone field.
        assert!(read_tns("7\n".as_bytes(), None).is_err());
        // Empty input: mode count unknowable.
        assert!(read_tns("# only comments\n".as_bytes(), None).is_err());
        // Error carries the offending line number.
        let e = read_tns("1 1 1.0\n1 bad 2.0\n".as_bytes(), None).unwrap_err();
        assert!(matches!(e, IoError::Parse { line: 2, .. }), "{e}");
    }

    #[test]
    fn mtx_general_real() {
        let text = "\
%%MatrixMarket matrix coordinate real general
% comment
3 4 3
1 1 2.0
3 4 -1.5
2 2 4.0
";
        let coo = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(coo.dims(), &[3, 4]);
        assert_eq!(coo.nnz(), 3);
        assert_eq!(coo.to_dense().get(&[2, 3]), -1.5);
    }

    #[test]
    fn mtx_symmetric_and_pattern() {
        let text = "\
%%MatrixMarket matrix coordinate pattern symmetric
3 3 2
2 1
3 3
";
        let coo = read_mtx(text.as_bytes()).unwrap();
        // (2,1) mirrors to (1,2); diagonal (3,3) does not.
        assert_eq!(coo.nnz(), 3);
        assert_eq!(coo.to_dense().get(&[1, 0]), 1.0);
        assert_eq!(coo.to_dense().get(&[0, 1]), 1.0);
        assert_eq!(coo.to_dense().get(&[2, 2]), 1.0);
    }

    #[test]
    fn mtx_rejects_malformed() {
        // Missing header.
        assert!(read_mtx("3 3 1\n1 1 2.0\n".as_bytes()).is_err());
        // Unsupported field.
        assert!(read_mtx(
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 2 3\n".as_bytes()
        )
        .is_err());
        // nnz mismatch.
        assert!(read_mtx(
            "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n".as_bytes()
        )
        .is_err());
        // Out-of-bounds entry.
        assert!(read_mtx(
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n".as_bytes()
        )
        .is_err());
        // Array storage unsupported.
        assert!(
            read_mtx("%%MatrixMarket matrix array real general\n2 2\n1.0\n".as_bytes()).is_err()
        );
    }
}
