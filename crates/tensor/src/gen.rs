//! Synthetic workload generators.
//!
//! The paper evaluates on FROSTT tensors plus randomly generated sparse
//! tensors of various dimensions and sparsities. The FROSTT datasets are
//! not redistributable here, so [`frostt_like`] generates random tensors
//! with the *published shapes and nonzero counts* of those datasets
//! (optionally scaled down), preserving the op counts and memory
//! behaviour of each kernel — SpTTN costs are data-independent given the
//! pattern. [`skewed_coo`] additionally provides power-law fiber-density
//! skew for sensitivity studies.

use crate::{CooTensor, DenseTensor, TensorError};
use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use std::collections::HashSet;

/// Generate a dense tensor with i.i.d. uniform values in `[-1, 1)`.
pub fn random_dense<R: Rng + ?Sized>(dims: &[usize], rng: &mut R) -> DenseTensor {
    let dist = Uniform::new(-1.0f64, 1.0);
    let mut t = DenseTensor::zeros(dims);
    for v in t.as_mut_slice() {
        *v = dist.sample(rng);
    }
    t
}

/// Generate a flat vector of i.i.d. uniform values in `[-1, 1)` (raw
/// buffer fixture for microkernel tests and benches).
pub fn random_vec<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<f64> {
    let dist = Uniform::new(-1.0f64, 1.0);
    (0..n).map(|_| dist.sample(rng)).collect()
}

fn pack(coord: &[usize], dims: &[usize]) -> u128 {
    let mut key = 0u128;
    for (c, d) in coord.iter().zip(dims) {
        key = key * (*d as u128) + *c as u128;
    }
    key
}

/// Generate a sparse COO tensor with exactly `nnz` distinct uniformly
/// random coordinates and uniform values in `[-1, 1)`.
///
/// Errors if `nnz` exceeds the number of cells or the coordinate space
/// does not fit in 128 bits.
pub fn random_coo<R: Rng + ?Sized>(
    dims: &[usize],
    nnz: usize,
    rng: &mut R,
) -> Result<CooTensor, TensorError> {
    let mut cells = 1u128;
    for &d in dims {
        if d == 0 {
            return Err(TensorError::ZeroDim);
        }
        cells = cells.saturating_mul(d as u128);
    }
    if (nnz as u128) > cells {
        return Err(TensorError::CoordOutOfBounds {
            mode: 0,
            coord: nnz,
            dim: cells.min(usize::MAX as u128) as usize,
        });
    }
    let vdist = Uniform::new(-1.0f64, 1.0);
    let mut seen: HashSet<u128> = HashSet::with_capacity(nnz * 2);
    let mut coo = CooTensor::new(dims)?;
    let mut coord = vec![0usize; dims.len()];
    while seen.len() < nnz {
        for (k, &d) in dims.iter().enumerate() {
            coord[k] = rng.gen_range(0..d);
        }
        if seen.insert(pack(&coord, dims)) {
            coo.push(&coord, vdist.sample(rng))?;
        }
    }
    coo.sort_dedup(&identity_order(dims.len()))?;
    Ok(coo)
}

/// Generate a sparse COO tensor whose coordinates follow a power-law
/// distribution per mode: coordinate `c = floor(dim * u^alpha)` for
/// uniform `u`, so larger `alpha` concentrates nonzeros in low indices
/// (dense fibers near the origin, long sparse tail — typical of
/// real-world FROSTT tensors).
///
/// At most `nnz` entries are returned; heavy skew may produce fewer
/// distinct coordinates, in which case generation stops after a bounded
/// number of attempts.
pub fn skewed_coo<R: Rng + ?Sized>(
    dims: &[usize],
    nnz: usize,
    alpha: f64,
    rng: &mut R,
) -> Result<CooTensor, TensorError> {
    if dims.contains(&0) {
        return Err(TensorError::ZeroDim);
    }
    let vdist = Uniform::new(-1.0f64, 1.0);
    let mut seen: HashSet<u128> = HashSet::with_capacity(nnz * 2);
    let mut coo = CooTensor::new(dims)?;
    let mut coord = vec![0usize; dims.len()];
    let max_attempts = nnz.saturating_mul(64).max(1024);
    let mut attempts = 0usize;
    while seen.len() < nnz && attempts < max_attempts {
        attempts += 1;
        for (k, &d) in dims.iter().enumerate() {
            let u: f64 = rng.gen_range(0.0..1.0);
            coord[k] = ((d as f64) * u.powf(alpha)).floor().min((d - 1) as f64) as usize;
        }
        if seen.insert(pack(&coord, dims)) {
            coo.push(&coord, vdist.sample(rng))?;
        }
    }
    coo.sort_dedup(&identity_order(dims.len()))?;
    Ok(coo)
}

fn identity_order(d: usize) -> Vec<usize> {
    (0..d).collect()
}

/// Published shape/nnz statistics of the datasets used in the paper's
/// evaluation (FROSTT repository plus the 1998 DARPA intrusion-detection
/// tensor). Values are the publicly documented dataset statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrosttPreset {
    /// NELL-2: 12092 x 9184 x 28818, ~76.9M nonzeros.
    Nell2,
    /// NIPS publications: 2482 x 2862 x 14036 x 17, ~3.1M nonzeros.
    Nips,
    /// Enron emails: 6066 x 5699 x 244268 x 1176, ~54.2M nonzeros.
    Enron,
    /// VAST 2015 Mini-Challenge 1 (3-d): 165427 x 11374 x 2, ~26M nonzeros.
    Vast3d,
    /// 1998 DARPA intrusion detection: 22476 x 22476 x 23776223, ~28.4M.
    Darpa,
}

impl FrosttPreset {
    /// Published dimensions of the dataset.
    pub fn dims(self) -> Vec<usize> {
        match self {
            FrosttPreset::Nell2 => vec![12092, 9184, 28818],
            FrosttPreset::Nips => vec![2482, 2862, 14036, 17],
            FrosttPreset::Enron => vec![6066, 5699, 244268, 1176],
            FrosttPreset::Vast3d => vec![165427, 11374, 2],
            FrosttPreset::Darpa => vec![22476, 22476, 23776223],
        }
    }

    /// Published nonzero count of the dataset.
    pub fn nnz(self) -> usize {
        match self {
            FrosttPreset::Nell2 => 76_879_419,
            FrosttPreset::Nips => 3_101_609,
            FrosttPreset::Enron => 54_202_099,
            FrosttPreset::Vast3d => 26_021_945,
            FrosttPreset::Darpa => 28_436_033,
        }
    }

    /// Dataset name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            FrosttPreset::Nell2 => "nell-2",
            FrosttPreset::Nips => "nips",
            FrosttPreset::Enron => "enron",
            FrosttPreset::Vast3d => "vast-3d",
            FrosttPreset::Darpa => "darpa",
        }
    }

    /// All presets, in the order the paper lists them.
    pub fn all() -> [FrosttPreset; 5] {
        [
            FrosttPreset::Nell2,
            FrosttPreset::Nips,
            FrosttPreset::Enron,
            FrosttPreset::Vast3d,
            FrosttPreset::Darpa,
        ]
    }
}

/// Generate a random tensor with the shape of a FROSTT dataset, scaled.
///
/// `scale` in `(0, 1]` multiplies every dimension; the nonzero count is
/// scaled to preserve the dataset's density (`nnz * scale^order`), with
/// a floor of 1. `scale = 1.0` reproduces the full published shape.
pub fn frostt_like<R: Rng + ?Sized>(
    preset: FrosttPreset,
    scale: f64,
    rng: &mut R,
) -> Result<CooTensor, TensorError> {
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let dims: Vec<usize> = preset
        .dims()
        .iter()
        .map(|&d| ((d as f64 * scale).ceil() as usize).max(1))
        .collect();
    let order = dims.len();
    let nnz = ((preset.nnz() as f64) * scale.powi(order as i32))
        .round()
        .max(1.0) as usize;
    let mut cells = 1u128;
    for &d in &dims {
        cells = cells.saturating_mul(d as u128);
    }
    let nnz = nnz.min(cells.min(usize::MAX as u128) as usize);
    random_coo(&dims, nnz, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    #[test]
    fn random_dense_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = random_dense(&[4, 5], &mut rng);
        assert!(t.as_slice().iter().all(|v| (-1.0..1.0).contains(v)));
        assert!(t.norm() > 0.0);
    }

    #[test]
    fn random_coo_exact_nnz_distinct() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = random_coo(&[10, 10, 10], 200, &mut rng).unwrap();
        assert_eq!(t.nnz(), 200);
        // Distinctness: dedup is a no-op.
        let mut t2 = t.clone();
        t2.sort_dedup(&[0, 1, 2]).unwrap();
        assert_eq!(t2.nnz(), 200);
    }

    #[test]
    fn random_coo_full_density() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = random_coo(&[3, 3], 9, &mut rng).unwrap();
        assert_eq!(t.nnz(), 9);
        assert!(random_coo(&[3, 3], 10, &mut rng).is_err());
    }

    #[test]
    fn skewed_concentrates_low_indices() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = skewed_coo(&[1000, 1000], 2000, 3.0, &mut rng).unwrap();
        assert!(t.nnz() > 0);
        let low = t.iter().filter(|(c, _)| c[0] < 200).count();
        // u^3 < 0.2 for u < 0.585: well over half the mass below index 200.
        assert!(
            low * 2 > t.nnz(),
            "expected most coordinates below 200, got {low}/{}",
            t.nnz()
        );
    }

    #[test]
    fn frostt_like_scaled_shape() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = frostt_like(FrosttPreset::Nips, 0.01, &mut rng).unwrap();
        assert_eq!(t.dims().len(), 4);
        assert_eq!(t.dims()[0], 25); // ceil(2482 * 0.01)
        assert!(t.nnz() > 0);
    }

    #[test]
    fn presets_expose_paper_stats() {
        assert_eq!(FrosttPreset::Nell2.dims(), vec![12092, 9184, 28818]);
        assert_eq!(FrosttPreset::Darpa.nnz(), 28_436_033);
        assert_eq!(FrosttPreset::all().len(), 5);
        for p in FrosttPreset::all() {
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = random_coo(&[20, 20, 20], 50, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = random_coo(&[20, 20, 20], 50, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
