//! Compressed Sparse Fiber (CSF) storage.
//!
//! CSF stores a sparse tensor as a tree with one level per mode (paper
//! Sec. 2.2, following Smith & Karypis). Level `k` holds one node per
//! distinct coordinate prefix of length `k+1`; the node count at level
//! `k` is exactly `nnz_{I1..I(k+1)}(T)`, the quantity the paper's cost
//! model is built on. The executor iterates the tree with *sparse loops*:
//! a loop at level `k` enumerates the children of the current level-`k-1`
//! node.
//!
//! The mode order of the tree is configurable (`mode_order[level]` is the
//! original tensor mode stored at that level); the paper restricts loop
//! orders to iterate sparse indices in this storage order.

use crate::coo::is_permutation;
use crate::{CooTensor, TensorError};

/// One level of the CSF tree.
#[derive(Debug, Clone, PartialEq)]
pub struct CsfLevel {
    /// Coordinate value (in the level's mode) of each node.
    pub idx: Vec<usize>,
    /// Child ranges into the next level: node `n` owns
    /// `idx[ptr[n]..ptr[n+1]]` of level `k+1`. Empty for the last level.
    pub ptr: Vec<usize>,
}

/// A sparse tensor in CSF format.
#[derive(Debug, Clone, PartialEq)]
pub struct Csf {
    /// Dimensions in *original* mode numbering.
    dims: Vec<usize>,
    /// `mode_order[level]` = original mode stored at tree level `level`.
    mode_order: Vec<usize>,
    levels: Vec<CsfLevel>,
    /// Nonzero values, parallel with the last level's `idx`.
    vals: Vec<f64>,
}

impl Csf {
    /// Build a CSF tree from a COO tensor under the given mode order.
    ///
    /// The input is copied, sorted lexicographically in `mode_order`, and
    /// deduplicated (duplicate coordinates are summed).
    pub fn from_coo(coo: &CooTensor, mode_order: &[usize]) -> Result<Self, TensorError> {
        let d = coo.order();
        if !is_permutation(mode_order, d) {
            return Err(TensorError::InvalidPermutation);
        }
        let mut sorted = coo.clone();
        sorted.sort_dedup(mode_order)?;
        let n = sorted.nnz();

        // Permuted coordinate accessor: coordinate at tree level k of entry e.
        let pc = |e: usize, k: usize| sorted.coord(e)[mode_order[k]];

        // prefix_change[e]: smallest level at which entry e differs from
        // entry e-1 (0 for the first entry).
        let mut prefix_change = vec![0usize; n];
        for (e, slot) in prefix_change.iter_mut().enumerate().skip(1) {
            let mut ell = d; // identical prefixes cannot happen after dedup
            for k in 0..d {
                if pc(e, k) != pc(e - 1, k) {
                    ell = k;
                    break;
                }
            }
            debug_assert!(ell < d, "duplicate coordinates after dedup");
            *slot = ell;
        }

        let mut levels: Vec<CsfLevel> = (0..d)
            .map(|_| CsfLevel {
                idx: Vec::new(),
                ptr: Vec::new(),
            })
            .collect();

        for (e, &ell) in prefix_change.iter().enumerate() {
            for (k, level) in levels.iter_mut().enumerate().skip(ell) {
                level.idx.push(pc(e, k));
            }
        }

        // Child pointers for levels 0..d-1.
        for k in 0..d.saturating_sub(1) {
            let mut ptr = Vec::with_capacity(levels[k].idx.len() + 1);
            ptr.push(0usize);
            let mut children = 0usize;
            let mut started = false;
            for &ell in &prefix_change {
                if ell <= k {
                    if started {
                        ptr.push(children);
                    }
                    started = true;
                }
                if ell <= k + 1 {
                    children += 1;
                }
            }
            if started {
                ptr.push(children);
            }
            debug_assert_eq!(ptr.len(), levels[k].idx.len() + 1);
            debug_assert_eq!(*ptr.last().unwrap_or(&0), levels[k + 1].idx.len());
            levels[k].ptr = ptr;
        }

        let vals = sorted.vals().to_vec();
        debug_assert_eq!(vals.len(), levels.last().map_or(0, |l| l.idx.len()));

        Ok(Csf {
            dims: coo.dims().to_vec(),
            mode_order: mode_order.to_vec(),
            levels,
            vals,
        })
    }

    /// Dimensions in original mode numbering.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Tree mode order (`mode_order[level]` = original mode of that level).
    #[inline]
    pub fn mode_order(&self) -> &[usize] {
        &self.mode_order
    }

    /// Total nonzero count.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of CSF nodes at tree level `k`; equals
    /// `nnz_{I1..I(k+1)}(T)` in the paper's notation (Sec. 2.2).
    #[inline]
    pub fn level_nnz(&self, k: usize) -> usize {
        self.levels[k].idx.len()
    }

    /// `nnz` of the length-`k` prefix: `prefix_nnz(0) == 1` (the virtual
    /// root), `prefix_nnz(order()) == nnz()`.
    #[inline]
    pub fn prefix_nnz(&self, k: usize) -> usize {
        if k == 0 {
            1
        } else {
            self.level_nnz(k - 1)
        }
    }

    /// Range of root nodes (level 0).
    #[inline]
    pub fn root_range(&self) -> std::ops::Range<usize> {
        0..self.levels.first().map_or(0, |l| l.idx.len())
    }

    /// Children of node `node` at level `level` (range into level+1).
    #[inline]
    pub fn children(&self, level: usize, node: usize) -> std::ops::Range<usize> {
        let ptr = &self.levels[level].ptr;
        ptr[node]..ptr[node + 1]
    }

    /// Coordinate (in the level's mode) of a node.
    #[inline]
    pub fn node_coord(&self, level: usize, node: usize) -> usize {
        self.levels[level].idx[node]
    }

    /// Value of leaf `node` (a node of the last level).
    #[inline]
    pub fn leaf_val(&self, node: usize) -> f64 {
        self.vals[node]
    }

    /// All values in leaf order (for pattern-sharing outputs).
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable values (for writing outputs that share this pattern).
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Direct level access (read-only).
    #[inline]
    pub fn level(&self, k: usize) -> &CsfLevel {
        &self.levels[k]
    }

    /// Reconstruct the COO representation (entries in tree order, with
    /// coordinates in *original* mode numbering).
    pub fn to_coo(&self) -> CooTensor {
        let d = self.order();
        let mut out = CooTensor::new(&self.dims).expect("dims validated at construction");
        let mut coord = vec![0usize; d];
        self.walk_rec(0, self.root_range(), &mut coord, &mut out);
        out
    }

    fn walk_rec(
        &self,
        level: usize,
        range: std::ops::Range<usize>,
        coord: &mut Vec<usize>,
        out: &mut CooTensor,
    ) {
        for node in range {
            coord[self.mode_order[level]] = self.node_coord(level, node);
            if level + 1 == self.order() {
                let c = coord.clone();
                out.push(&c, self.leaf_val(node))
                    .expect("in-bounds by construction");
            } else {
                let ch = self.children(level, node);
                self.walk_rec(level + 1, ch, coord, out);
            }
        }
    }

    /// A leaf-order iterator over `(original-mode coordinates, value)`.
    pub fn iter_entries(&self) -> Vec<(Vec<usize>, f64)> {
        let coo = self.to_coo();
        coo.iter().map(|(c, v)| (c.to_vec(), v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor {
        // 3x3x3 tensor with 5 nonzeros.
        CooTensor::from_entries(
            &[3, 3, 3],
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 2], 2.0),
                (vec![0, 1, 0], 3.0),
                (vec![2, 0, 1], 4.0),
                (vec![2, 2, 2], 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_identity_order() {
        let csf = Csf::from_coo(&sample(), &[0, 1, 2]).unwrap();
        assert_eq!(csf.nnz(), 5);
        // Level 0: distinct i in {0, 2}.
        assert_eq!(csf.level(0).idx, vec![0, 2]);
        // Level 1: (0,0), (0,1), (2,0), (2,2).
        assert_eq!(csf.level(1).idx, vec![0, 1, 0, 2]);
        assert_eq!(csf.level(0).ptr, vec![0, 2, 4]);
        // Level 2 leaves in sorted order.
        assert_eq!(csf.level(2).idx, vec![0, 2, 0, 1, 2]);
        assert_eq!(csf.level(1).ptr, vec![0, 2, 3, 4, 5]);
        assert_eq!(csf.vals(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn prefix_nnz_counts() {
        let csf = Csf::from_coo(&sample(), &[0, 1, 2]).unwrap();
        assert_eq!(csf.prefix_nnz(0), 1);
        assert_eq!(csf.prefix_nnz(1), 2); // distinct i
        assert_eq!(csf.prefix_nnz(2), 4); // distinct (i,j)
        assert_eq!(csf.prefix_nnz(3), 5); // nnz
    }

    #[test]
    fn permuted_mode_order() {
        // Order modes as (k, i, j).
        let csf = Csf::from_coo(&sample(), &[2, 0, 1]).unwrap();
        // Distinct k values: 0, 1, 2.
        assert_eq!(csf.level(0).idx, vec![0, 1, 2]);
        assert_eq!(csf.nnz(), 5);
        // Round-trip back to dense must match.
        let back = csf.to_coo().to_dense();
        assert!(back.approx_eq(&sample().to_dense(), 1e-12));
    }

    #[test]
    fn roundtrip_coo_csf_coo() {
        let coo = sample();
        for order in [[0usize, 1, 2], [1, 2, 0], [2, 1, 0]] {
            let csf = Csf::from_coo(&coo, &order).unwrap();
            let dense = csf.to_coo().to_dense();
            assert!(dense.approx_eq(&coo.to_dense(), 1e-12), "order {order:?}");
        }
    }

    #[test]
    fn duplicates_are_merged() {
        let coo = CooTensor::from_entries(
            &[2, 2],
            vec![(vec![1, 1], 1.0), (vec![1, 1], 2.5), (vec![0, 0], 1.0)],
        )
        .unwrap();
        let csf = Csf::from_coo(&coo, &[0, 1]).unwrap();
        assert_eq!(csf.nnz(), 2);
        assert_eq!(csf.to_coo().to_dense().get(&[1, 1]), 3.5);
    }

    #[test]
    fn children_ranges_consistent() {
        let csf = Csf::from_coo(&sample(), &[0, 1, 2]).unwrap();
        let mut total = 0;
        for root in csf.root_range() {
            for mid in csf.children(0, root) {
                total += csf.children(1, mid).len();
            }
        }
        assert_eq!(total, csf.nnz());
    }

    #[test]
    fn bad_mode_order_rejected() {
        assert!(Csf::from_coo(&sample(), &[0, 1]).is_err());
        assert!(Csf::from_coo(&sample(), &[0, 0, 1]).is_err());
    }

    #[test]
    fn single_mode_tensor() {
        let coo = CooTensor::from_entries(&[5], vec![(vec![4], 2.0), (vec![1], 1.0)]).unwrap();
        let csf = Csf::from_coo(&coo, &[0]).unwrap();
        assert_eq!(csf.level(0).idx, vec![1, 4]);
        assert_eq!(csf.vals(), &[1.0, 2.0]);
        assert_eq!(csf.prefix_nnz(1), 2);
    }
}
