//! Compressed Sparse Fiber (CSF) storage.
//!
//! CSF stores a sparse tensor as a tree with one level per mode (paper
//! Sec. 2.2, following Smith & Karypis). Level `k` holds one node per
//! distinct coordinate prefix of length `k+1`; the node count at level
//! `k` is exactly `nnz_{I1..I(k+1)}(T)`, the quantity the paper's cost
//! model is built on. The executor iterates the tree with *sparse loops*:
//! a loop at level `k` enumerates the children of the current level-`k-1`
//! node.
//!
//! The mode order of the tree is configurable (`mode_order[level]` is the
//! original tensor mode stored at that level); the paper restricts loop
//! orders to iterate sparse indices in this storage order.

use crate::coo::is_permutation;
use crate::{CooTensor, TensorError};
use std::ops::Range;

/// A contiguous slice of a CSF tree: a subrange of root fibers together
/// with the per-level node ranges (and leaf/value range) those roots
/// span.
///
/// Because CSF stores the children of consecutive nodes consecutively,
/// the subtrees hanging off a root subrange `[r0, r1)` occupy one
/// contiguous node range at *every* level — a tile is pure metadata
/// (one `Range` per level) over the unmodified tree. Tiles partition
/// the tensor by complete root subtrees, which is exactly the unit of
/// independent work the parallel executor fans out: the contraction is
/// linear in the sparse tensor, so executing each tile separately and
/// summing the partial outputs reproduces the full result.
///
/// Build tiles with [`Csf::partition`] (leaf-nnz-balanced),
/// [`Csf::tile_of_roots`] (explicit root range), or [`Csf::full_tile`]
/// (the whole tree, used by the serial path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsfTile {
    /// `ranges[k]` is the node range this tile spans at tree level `k`;
    /// `ranges[0]` is the root subrange and the last entry is the
    /// leaf/value range.
    ranges: Vec<Range<usize>>,
}

impl CsfTile {
    /// Root-node subrange (level 0) of the tile.
    #[inline]
    pub fn root_range(&self) -> Range<usize> {
        self.ranges[0].clone()
    }

    /// Node range the tile spans at tree level `k`.
    #[inline]
    pub fn level_range(&self, k: usize) -> Range<usize> {
        self.ranges[k].clone()
    }

    /// Leaf/value range the tile spans (last level). Pattern-sharing
    /// sparse outputs reduce across tiles by these disjoint ranges.
    #[inline]
    pub fn leaf_range(&self) -> Range<usize> {
        self.ranges.last().expect("tiles span >= 1 level").clone()
    }

    /// Number of nonzeros (leaves) in the tile.
    #[inline]
    pub fn leaf_nnz(&self) -> usize {
        self.leaf_range().len()
    }

    /// Number of root fibers in the tile.
    #[inline]
    pub fn num_roots(&self) -> usize {
        self.root_range().len()
    }

    /// True when the tile covers no root fibers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.root_range().is_empty()
    }

    /// Number of tree levels the tile describes.
    #[inline]
    pub fn depth(&self) -> usize {
        self.ranges.len()
    }
}

/// One level of the CSF tree.
#[derive(Debug, Clone, PartialEq)]
pub struct CsfLevel {
    /// Coordinate value (in the level's mode) of each node.
    pub idx: Vec<usize>,
    /// Child ranges into the next level: node `n` owns
    /// `idx[ptr[n]..ptr[n+1]]` of level `k+1`. Empty for the last level.
    pub ptr: Vec<usize>,
}

/// A sparse tensor in CSF format.
#[derive(Debug, Clone, PartialEq)]
pub struct Csf {
    /// Dimensions in *original* mode numbering.
    dims: Vec<usize>,
    /// `mode_order[level]` = original mode stored at tree level `level`.
    mode_order: Vec<usize>,
    levels: Vec<CsfLevel>,
    /// Nonzero values, parallel with the last level's `idx`.
    vals: Vec<f64>,
}

impl Csf {
    /// Build a CSF tree from a COO tensor under the given mode order.
    ///
    /// The input is copied, sorted lexicographically in `mode_order`, and
    /// deduplicated (duplicate coordinates are summed).
    pub fn from_coo(coo: &CooTensor, mode_order: &[usize]) -> Result<Self, TensorError> {
        let d = coo.order();
        if !is_permutation(mode_order, d) {
            return Err(TensorError::InvalidPermutation);
        }
        let mut sorted = coo.clone();
        sorted.sort_dedup(mode_order)?;
        let n = sorted.nnz();

        // Permuted coordinate accessor: coordinate at tree level k of entry e.
        let pc = |e: usize, k: usize| sorted.coord(e)[mode_order[k]];

        // prefix_change[e]: smallest level at which entry e differs from
        // entry e-1 (0 for the first entry).
        let mut prefix_change = vec![0usize; n];
        for (e, slot) in prefix_change.iter_mut().enumerate().skip(1) {
            let mut ell = d; // identical prefixes cannot happen after dedup
            for k in 0..d {
                if pc(e, k) != pc(e - 1, k) {
                    ell = k;
                    break;
                }
            }
            debug_assert!(ell < d, "duplicate coordinates after dedup");
            *slot = ell;
        }

        let mut levels: Vec<CsfLevel> = (0..d)
            .map(|_| CsfLevel {
                idx: Vec::new(),
                ptr: Vec::new(),
            })
            .collect();

        for (e, &ell) in prefix_change.iter().enumerate() {
            for (k, level) in levels.iter_mut().enumerate().skip(ell) {
                level.idx.push(pc(e, k));
            }
        }

        // Child pointers for levels 0..d-1.
        for k in 0..d.saturating_sub(1) {
            let mut ptr = Vec::with_capacity(levels[k].idx.len() + 1);
            ptr.push(0usize);
            let mut children = 0usize;
            let mut started = false;
            for &ell in &prefix_change {
                if ell <= k {
                    if started {
                        ptr.push(children);
                    }
                    started = true;
                }
                if ell <= k + 1 {
                    children += 1;
                }
            }
            if started {
                ptr.push(children);
            }
            debug_assert_eq!(ptr.len(), levels[k].idx.len() + 1);
            debug_assert_eq!(*ptr.last().unwrap_or(&0), levels[k + 1].idx.len());
            levels[k].ptr = ptr;
        }

        let vals = sorted.vals().to_vec();
        debug_assert_eq!(vals.len(), levels.last().map_or(0, |l| l.idx.len()));

        Ok(Csf {
            dims: coo.dims().to_vec(),
            mode_order: mode_order.to_vec(),
            levels,
            vals,
        })
    }

    /// Dimensions in original mode numbering.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Tree mode order (`mode_order[level]` = original mode of that level).
    #[inline]
    pub fn mode_order(&self) -> &[usize] {
        &self.mode_order
    }

    /// Total nonzero count.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Number of CSF nodes at tree level `k`; equals
    /// `nnz_{I1..I(k+1)}(T)` in the paper's notation (Sec. 2.2).
    #[inline]
    pub fn level_nnz(&self, k: usize) -> usize {
        self.levels[k].idx.len()
    }

    /// `nnz` of the length-`k` prefix: `prefix_nnz(0) == 1` (the virtual
    /// root), `prefix_nnz(order()) == nnz()`.
    #[inline]
    pub fn prefix_nnz(&self, k: usize) -> usize {
        if k == 0 {
            1
        } else {
            self.level_nnz(k - 1)
        }
    }

    /// Range of root nodes (level 0).
    #[inline]
    pub fn root_range(&self) -> std::ops::Range<usize> {
        0..self.levels.first().map_or(0, |l| l.idx.len())
    }

    /// Children of node `node` at level `level` (range into level+1).
    #[inline]
    pub fn children(&self, level: usize, node: usize) -> std::ops::Range<usize> {
        let ptr = &self.levels[level].ptr;
        ptr[node]..ptr[node + 1]
    }

    /// Coordinate (in the level's mode) of a node.
    #[inline]
    pub fn node_coord(&self, level: usize, node: usize) -> usize {
        self.levels[level].idx[node]
    }

    /// Value of leaf `node` (a node of the last level).
    #[inline]
    pub fn leaf_val(&self, node: usize) -> f64 {
        self.vals[node]
    }

    /// All values in leaf order (for pattern-sharing outputs).
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable values (for writing outputs that share this pattern).
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Direct level access (read-only).
    #[inline]
    pub fn level(&self, k: usize) -> &CsfLevel {
        &self.levels[k]
    }

    /// The tile covering the entire tree (the serial execution path).
    pub fn full_tile(&self) -> CsfTile {
        let d = self.order().max(1);
        CsfTile {
            ranges: (0..d)
                .map(|k| 0..self.levels.get(k).map_or(0, |l| l.idx.len()))
                .collect(),
        }
    }

    /// The tile spanned by a contiguous root-fiber range, with every
    /// lower level's node range derived by following the child pointers
    /// down from the range boundaries.
    ///
    /// An empty in-bounds range (`r..r`) is valid and yields an empty
    /// tile — the degenerate-input contract shared with
    /// [`Csf::partition`], which clamps instead of erroring because its
    /// argument is a tile *count*, while a root range identifies
    /// specific nodes and so must actually exist.
    ///
    /// # Panics
    /// Panics if `roots` is out of bounds or reversed.
    pub fn tile_of_roots(&self, roots: Range<usize>) -> CsfTile {
        let n_roots = self.root_range().end;
        assert!(
            roots.start <= roots.end && roots.end <= n_roots,
            "root range {roots:?} out of bounds for {n_roots} roots"
        );
        let d = self.order().max(1);
        let mut ranges = Vec::with_capacity(d);
        let (mut lo, mut hi) = (roots.start, roots.end);
        ranges.push(lo..hi);
        for k in 0..self.order().saturating_sub(1) {
            lo = self.levels[k].ptr[lo];
            hi = self.levels[k].ptr[hi];
            ranges.push(lo..hi);
        }
        CsfTile { ranges }
    }

    /// Partition the tree into at most `n_tiles` tiles of complete root
    /// subtrees, balanced by leaf nonzero count.
    ///
    /// Each tile boundary is the first root at or past the ideal
    /// `t·nnz/n_tiles` leaf prefix, so a handful of heavy root fibers
    /// cannot starve the other workers. Empty tiles are dropped, so the
    /// result holds between 1 and `min(n_tiles, #roots)` tiles — except
    /// for an empty tensor, where a single empty tile is returned. The
    /// partition is deterministic: same tree + same `n_tiles` → same
    /// tiles, which the parallel executor's reproducibility guarantee
    /// builds on.
    ///
    /// **Degenerate counts clamp, never error:** `n_tiles = 0` is
    /// treated as 1 (the whole tree in a single tile), mirroring how
    /// counts above the root count saturate at one root per tile. The
    /// result therefore always covers every nonzero exactly once,
    /// whatever the count — callers sizing tiles from a thread count
    /// need no pre-validation. (Contrast [`Csf::tile_of_roots`], whose
    /// argument names concrete nodes and panics when they don't exist.)
    pub fn partition(&self, n_tiles: usize) -> Vec<CsfTile> {
        let n_tiles = n_tiles.max(1);
        let n_roots = self.root_range().end;
        if n_roots == 0 {
            return vec![self.full_tile()];
        }
        // leaf_start[r] = number of leaves in subtrees of roots [0, r):
        // push the boundary array down through each level's pointers.
        let mut leaf_start: Vec<usize> = (0..=n_roots).collect();
        for k in 0..self.order().saturating_sub(1) {
            for b in leaf_start.iter_mut() {
                *b = self.levels[k].ptr[*b];
            }
        }
        let total = self.nnz();
        let mut tiles = Vec::with_capacity(n_tiles.min(n_roots));
        let mut prev = 0usize;
        for t in 1..=n_tiles {
            let end = if t == n_tiles {
                n_roots
            } else {
                // First root boundary at or past the ideal leaf prefix.
                let target = (total as u128 * t as u128 / n_tiles as u128) as usize;
                leaf_start.partition_point(|&s| s < target).min(n_roots)
            };
            if end > prev {
                tiles.push(self.tile_of_roots(prev..end));
                prev = end;
            }
        }
        debug_assert_eq!(tiles.iter().map(CsfTile::leaf_nnz).sum::<usize>(), total);
        tiles
    }

    /// Reconstruct the COO representation (entries in tree order, with
    /// coordinates in *original* mode numbering).
    pub fn to_coo(&self) -> CooTensor {
        let mut out = CooTensor::new(&self.dims).expect("dims validated at construction");
        self.for_each_entry(|coord, v| {
            out.push(coord, v).expect("in-bounds by construction");
        });
        out
    }

    /// Visit every entry in leaf order as `(original-mode coordinates,
    /// value)`, without materializing anything per entry — the
    /// allocation-free counterpart of [`Csf::entries`].
    pub fn for_each_entry(&self, mut f: impl FnMut(&[usize], f64)) {
        let d = self.order();
        if d == 0 || self.nnz() == 0 {
            return;
        }
        let mut coord = vec![0usize; d];
        let mut ranges: Vec<Range<usize>> = vec![0..0; d];
        ranges[0] = self.root_range();
        let mut k = 0usize;
        loop {
            if let Some(node) = next_in(&mut ranges[k]) {
                coord[self.mode_order[k]] = self.node_coord(k, node);
                if k + 1 == d {
                    f(&coord, self.leaf_val(node));
                } else {
                    ranges[k + 1] = self.children(k, node);
                    k += 1;
                }
            } else if k == 0 {
                return;
            } else {
                k -= 1;
            }
        }
    }

    /// A lazy leaf-order iterator over `(original-mode coordinates,
    /// value)` pairs. Walks the tree with O(order) state instead of
    /// materializing all `nnz · order` coordinates up front; each item
    /// allocates only its own coordinate vector (use
    /// [`Csf::for_each_entry`] to avoid even that).
    pub fn entries(&self) -> CsfEntries<'_> {
        let d = self.order();
        let mut ranges: Vec<Range<usize>> = vec![0..0; d];
        if d > 0 {
            ranges[0] = self.root_range();
        }
        CsfEntries {
            csf: self,
            coord: vec![0usize; d],
            ranges,
            level: 0,
        }
    }

    /// Rebuild this tree under a different mode order (the transpose
    /// path the planner's mode-order search relies on).
    ///
    /// `new_mode_order[level]` is the original mode stored at tree level
    /// `level` of the result; it must be a permutation of `0..order`.
    /// Returns `self.clone()` when the order already matches. The values
    /// are preserved exactly (entries are already deduplicated, so the
    /// rebuild is a pure resort): `O(nnz · order)` to extract entries
    /// plus `O(nnz log nnz)` to sort them — no densification.
    pub fn reordered(&self, new_mode_order: &[usize]) -> Result<Self, TensorError> {
        if !is_permutation(new_mode_order, self.order()) {
            return Err(TensorError::InvalidPermutation);
        }
        if new_mode_order == self.mode_order {
            return Ok(self.clone());
        }
        let mut coo = CooTensor::new(&self.dims)?;
        self.for_each_entry(|coord, v| {
            coo.push(coord, v).expect("in-bounds by construction");
        });
        Csf::from_coo(&coo, new_mode_order)
    }
}

/// Pop the front of a range, advancing it.
#[inline]
fn next_in(r: &mut Range<usize>) -> Option<usize> {
    if r.start < r.end {
        let n = r.start;
        r.start += 1;
        Some(n)
    } else {
        None
    }
}

/// Lazy leaf-order entry iterator over a CSF tree; see [`Csf::entries`].
#[derive(Debug, Clone)]
pub struct CsfEntries<'a> {
    csf: &'a Csf,
    /// Current coordinate per original mode (valid for ancestors of the
    /// cursor).
    coord: Vec<usize>,
    /// Unvisited node range per level, valid for `0..=level`.
    ranges: Vec<Range<usize>>,
    /// Deepest level with a live range.
    level: usize,
}

impl Iterator for CsfEntries<'_> {
    type Item = (Vec<usize>, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let d = self.csf.order();
        if d == 0 {
            return None;
        }
        loop {
            if let Some(node) = next_in(&mut self.ranges[self.level]) {
                let k = self.level;
                self.coord[self.csf.mode_order[k]] = self.csf.node_coord(k, node);
                if k + 1 == d {
                    return Some((self.coord.clone(), self.csf.leaf_val(node)));
                }
                self.ranges[k + 1] = self.csf.children(k, node);
                self.level = k + 1;
            } else if self.level == 0 {
                return None;
            } else {
                self.level -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor {
        // 3x3x3 tensor with 5 nonzeros.
        CooTensor::from_entries(
            &[3, 3, 3],
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 2], 2.0),
                (vec![0, 1, 0], 3.0),
                (vec![2, 0, 1], 4.0),
                (vec![2, 2, 2], 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_identity_order() {
        let csf = Csf::from_coo(&sample(), &[0, 1, 2]).unwrap();
        assert_eq!(csf.nnz(), 5);
        // Level 0: distinct i in {0, 2}.
        assert_eq!(csf.level(0).idx, vec![0, 2]);
        // Level 1: (0,0), (0,1), (2,0), (2,2).
        assert_eq!(csf.level(1).idx, vec![0, 1, 0, 2]);
        assert_eq!(csf.level(0).ptr, vec![0, 2, 4]);
        // Level 2 leaves in sorted order.
        assert_eq!(csf.level(2).idx, vec![0, 2, 0, 1, 2]);
        assert_eq!(csf.level(1).ptr, vec![0, 2, 3, 4, 5]);
        assert_eq!(csf.vals(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn prefix_nnz_counts() {
        let csf = Csf::from_coo(&sample(), &[0, 1, 2]).unwrap();
        assert_eq!(csf.prefix_nnz(0), 1);
        assert_eq!(csf.prefix_nnz(1), 2); // distinct i
        assert_eq!(csf.prefix_nnz(2), 4); // distinct (i,j)
        assert_eq!(csf.prefix_nnz(3), 5); // nnz
    }

    #[test]
    fn permuted_mode_order() {
        // Order modes as (k, i, j).
        let csf = Csf::from_coo(&sample(), &[2, 0, 1]).unwrap();
        // Distinct k values: 0, 1, 2.
        assert_eq!(csf.level(0).idx, vec![0, 1, 2]);
        assert_eq!(csf.nnz(), 5);
        // Round-trip back to dense must match.
        let back = csf.to_coo().to_dense();
        assert!(back.approx_eq(&sample().to_dense(), 1e-12));
    }

    #[test]
    fn roundtrip_coo_csf_coo() {
        let coo = sample();
        for order in [[0usize, 1, 2], [1, 2, 0], [2, 1, 0]] {
            let csf = Csf::from_coo(&coo, &order).unwrap();
            let dense = csf.to_coo().to_dense();
            assert!(dense.approx_eq(&coo.to_dense(), 1e-12), "order {order:?}");
        }
    }

    #[test]
    fn duplicates_are_merged() {
        let coo = CooTensor::from_entries(
            &[2, 2],
            vec![(vec![1, 1], 1.0), (vec![1, 1], 2.5), (vec![0, 0], 1.0)],
        )
        .unwrap();
        let csf = Csf::from_coo(&coo, &[0, 1]).unwrap();
        assert_eq!(csf.nnz(), 2);
        assert_eq!(csf.to_coo().to_dense().get(&[1, 1]), 3.5);
    }

    #[test]
    fn children_ranges_consistent() {
        let csf = Csf::from_coo(&sample(), &[0, 1, 2]).unwrap();
        let mut total = 0;
        for root in csf.root_range() {
            for mid in csf.children(0, root) {
                total += csf.children(1, mid).len();
            }
        }
        assert_eq!(total, csf.nnz());
    }

    #[test]
    fn bad_mode_order_rejected() {
        assert!(Csf::from_coo(&sample(), &[0, 1]).is_err());
        assert!(Csf::from_coo(&sample(), &[0, 0, 1]).is_err());
    }

    #[test]
    fn entries_match_coo_lazily() {
        let csf = Csf::from_coo(&sample(), &[0, 1, 2]).unwrap();
        let coo = csf.to_coo();
        let want: Vec<(Vec<usize>, f64)> = coo.iter().map(|(c, v)| (c.to_vec(), v)).collect();
        let got: Vec<(Vec<usize>, f64)> = csf.entries().collect();
        assert_eq!(got, want);
        // Laziness: the first item is available without draining.
        let mut it = csf.entries();
        assert_eq!(it.next(), Some((vec![0, 0, 0], 1.0)));
        // Permuted storage reports original-mode coordinates.
        let csf = Csf::from_coo(&sample(), &[2, 0, 1]).unwrap();
        let mut seen = 0usize;
        csf.for_each_entry(|c, v| {
            assert_eq!(sample().to_dense().get(c), v);
            seen += 1;
        });
        assert_eq!(seen, 5);
    }

    #[test]
    fn full_tile_covers_everything() {
        let csf = Csf::from_coo(&sample(), &[0, 1, 2]).unwrap();
        let t = csf.full_tile();
        assert_eq!(t.root_range(), 0..2);
        assert_eq!(t.level_range(1), 0..4);
        assert_eq!(t.leaf_range(), 0..5);
        assert_eq!(t.leaf_nnz(), 5);
        assert_eq!(t.depth(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn tile_of_roots_follows_pointers() {
        let csf = Csf::from_coo(&sample(), &[0, 1, 2]).unwrap();
        // Root 0 (i = 0) owns mids {(0,0),(0,1)} and leaves {0,1,2}.
        let t0 = csf.tile_of_roots(0..1);
        assert_eq!(t0.level_range(1), 0..2);
        assert_eq!(t0.leaf_range(), 0..3);
        // Root 1 (i = 2) owns the rest.
        let t1 = csf.tile_of_roots(1..2);
        assert_eq!(t1.level_range(1), 2..4);
        assert_eq!(t1.leaf_range(), 3..5);
        // Empty range is a valid empty tile.
        assert!(csf.tile_of_roots(1..1).is_empty());
    }

    #[test]
    fn partition_is_disjoint_and_exhaustive() {
        let mut coo = CooTensor::new(&[40, 6, 6]).unwrap();
        for e in 0..200usize {
            coo.push(&[(e * 7) % 40, (e * 3) % 6, e % 6], e as f64)
                .unwrap();
        }
        let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
        for n in [1, 2, 3, 4, 7, 64] {
            let tiles = csf.partition(n);
            assert!(!tiles.is_empty() && tiles.len() <= n.max(1));
            // Consecutive, disjoint, exhaustive at every level.
            for k in 0..csf.order() {
                let mut pos = 0usize;
                for t in &tiles {
                    assert_eq!(t.level_range(k).start, pos, "gap at level {k}");
                    pos = t.level_range(k).end;
                }
                assert_eq!(pos, csf.level_nnz(k));
            }
            assert_eq!(
                tiles.iter().map(CsfTile::leaf_nnz).sum::<usize>(),
                csf.nnz()
            );
            assert!(tiles.iter().all(|t| !t.is_empty()));
            // Deterministic.
            assert_eq!(tiles, csf.partition(n));
        }
    }

    #[test]
    fn partition_balances_leaf_nnz() {
        // 16 roots with equal leaf counts split evenly.
        let mut coo = CooTensor::new(&[16, 8, 8]).unwrap();
        for i in 0..16usize {
            for j in 0..8usize {
                coo.push(&[i, j, (i + j) % 8], 1.0).unwrap();
            }
        }
        let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
        let tiles = csf.partition(4);
        assert_eq!(tiles.len(), 4);
        for t in &tiles {
            assert_eq!(t.leaf_nnz(), 32);
            assert_eq!(t.num_roots(), 4);
        }
    }

    #[test]
    fn partition_degenerate_cases() {
        // More tiles than roots: one tile per root, none empty.
        let csf = Csf::from_coo(&sample(), &[0, 1, 2]).unwrap();
        let tiles = csf.partition(7);
        assert_eq!(tiles.len(), 2);
        assert!(tiles.iter().all(|t| t.num_roots() == 1));
        // Empty tensor: a single empty tile.
        let empty = Csf::from_coo(&CooTensor::new(&[4, 4]).unwrap(), &[0, 1]).unwrap();
        let tiles = empty.partition(4);
        assert_eq!(tiles.len(), 1);
        assert!(tiles[0].is_empty());
        assert_eq!(tiles[0].leaf_nnz(), 0);
    }

    #[test]
    fn partition_zero_clamps_to_one_tile() {
        let csf = Csf::from_coo(&sample(), &[0, 1, 2]).unwrap();
        let tiles = csf.partition(0);
        assert_eq!(tiles, vec![csf.full_tile()]);
        assert_eq!(tiles[0].leaf_nnz(), csf.nnz());
        // Empty tensor + zero count: still one (empty) tile.
        let empty = Csf::from_coo(&CooTensor::new(&[4, 4]).unwrap(), &[0, 1]).unwrap();
        let tiles = empty.partition(0);
        assert_eq!(tiles.len(), 1);
        assert!(tiles[0].is_empty());
    }

    #[test]
    fn tile_of_roots_empty_ranges_anywhere() {
        let csf = Csf::from_coo(&sample(), &[0, 1, 2]).unwrap();
        for r in 0..=csf.root_range().end {
            let t = csf.tile_of_roots(r..r);
            assert!(t.is_empty());
            assert_eq!(t.leaf_nnz(), 0);
            assert_eq!(t.depth(), csf.order());
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn tile_of_roots_rejects_out_of_range() {
        let csf = Csf::from_coo(&sample(), &[0, 1, 2]).unwrap();
        let _ = csf.tile_of_roots(1..3); // only 2 roots
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn tile_of_roots_rejects_reversed_range() {
        let csf = Csf::from_coo(&sample(), &[0, 1, 2]).unwrap();
        #[allow(clippy::reversed_empty_ranges)]
        let _ = csf.tile_of_roots(2..1);
    }

    #[test]
    fn reordered_matches_rebuild_from_coo() {
        let coo = sample();
        let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
        for order in [[0usize, 1, 2], [2, 0, 1], [1, 2, 0], [2, 1, 0]] {
            let direct = Csf::from_coo(&coo, &order).unwrap();
            let re = csf.reordered(&order).unwrap();
            assert_eq!(re, direct, "order {order:?}");
        }
        // Same order: exact clone.
        assert_eq!(csf.reordered(&[0, 1, 2]).unwrap(), csf);
        // Bad permutations rejected.
        assert!(csf.reordered(&[0, 1]).is_err());
        assert!(csf.reordered(&[0, 0, 1]).is_err());
    }

    #[test]
    fn single_mode_tensor() {
        let coo = CooTensor::from_entries(&[5], vec![(vec![4], 2.0), (vec![1], 1.0)]).unwrap();
        let csf = Csf::from_coo(&coo, &[0]).unwrap();
        assert_eq!(csf.level(0).idx, vec![1, 4]);
        assert_eq!(csf.vals(), &[1.0, 2.0]);
        assert_eq!(csf.prefix_nnz(1), 2);
    }
}
