//! Row-major strided dense tensors.
//!
//! The dense operands of an SpTTN kernel (factor matrices, small core
//! tensors, intermediate buffers) are all instances of [`DenseTensor`].
//! The layout is row-major: the last mode is contiguous, matching the
//! paper's convention that the innermost dense loops stream over
//! contiguous factor rows so they can be offloaded to BLAS-style
//! microkernels.

use crate::TensorError;

/// A dense tensor of `f64` values in row-major layout.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseTensor {
    dims: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<f64>,
}

fn row_major_strides(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for k in (0..dims.len().saturating_sub(1)).rev() {
        strides[k] = strides[k + 1] * dims[k + 1];
    }
    strides
}

impl DenseTensor {
    /// Create a zero-filled tensor with the given dimensions.
    ///
    /// A zero-order tensor (`dims == []`) is a scalar holding one value.
    pub fn zeros(dims: &[usize]) -> Self {
        let len = dims.iter().product::<usize>().max(1);
        DenseTensor {
            dims: dims.to_vec(),
            strides: row_major_strides(dims),
            data: vec![0.0; len],
        }
    }

    /// Create a tensor from an explicit row-major data vector.
    pub fn from_data(dims: &[usize], data: Vec<f64>) -> Result<Self, TensorError> {
        let len = dims.iter().product::<usize>().max(1);
        if data.len() != len {
            return Err(TensorError::OrderMismatch {
                expected: len,
                actual: data.len(),
            });
        }
        Ok(DenseTensor {
            dims: dims.to_vec(),
            strides: row_major_strides(dims),
            data,
        })
    }

    /// Create a tensor by evaluating `f` at every coordinate.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let mut t = DenseTensor::zeros(dims);
        let mut coord = vec![0usize; dims.len()];
        for pos in 0..t.data.len() {
            t.data[pos] = f(&coord);
            // Advance the row-major odometer.
            for k in (0..dims.len()).rev() {
                coord[k] += 1;
                if coord[k] < dims[k] {
                    break;
                }
                coord[k] = 0;
            }
        }
        t
    }

    /// Dimensions of the tensor.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Row-major strides of the tensor.
    #[inline]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Total number of stored elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor stores no elements (never: scalars store one).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major offset of a coordinate.
    #[inline]
    pub fn offset(&self, coord: &[usize]) -> usize {
        debug_assert_eq!(coord.len(), self.dims.len());
        let mut off = 0usize;
        for (k, (&c, &s)) in coord.iter().zip(&self.strides).enumerate() {
            debug_assert!(c < self.dims[k]);
            off += c * s;
        }
        off
    }

    /// Read the value at a coordinate.
    #[inline]
    pub fn get(&self, coord: &[usize]) -> f64 {
        self.data[self.offset(coord)]
    }

    /// Write the value at a coordinate.
    #[inline]
    pub fn set(&mut self, coord: &[usize], v: f64) {
        let off = self.offset(coord);
        self.data[off] = v;
    }

    /// Accumulate into the value at a coordinate.
    #[inline]
    pub fn add(&mut self, coord: &[usize], v: f64) {
        let off = self.offset(coord);
        self.data[off] += v;
    }

    /// Immutable view of the backing storage.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Reset all elements to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: f64) {
        self.data.fill(v);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Squared Frobenius norm.
    pub fn norm_sq(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Maximum absolute elementwise difference with another tensor of the
    /// same shape. Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &DenseTensor) -> f64 {
        assert_eq!(self.dims, other.dims, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// True when all elements differ from `other` by at most `tol`,
    /// relative to the magnitude of the larger operand.
    pub fn approx_eq(&self, other: &DenseTensor, tol: f64) -> bool {
        if self.dims != other.dims {
            return false;
        }
        self.data.iter().zip(other.data.iter()).all(|(a, b)| {
            let scale = a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= tol * scale
        })
    }

    /// Iterate `(coordinate, value)` pairs in row-major order.
    pub fn iter_coords(&self) -> impl Iterator<Item = (Vec<usize>, f64)> + '_ {
        let dims = self.dims.clone();
        self.data.iter().enumerate().map(move |(pos, &v)| {
            let mut coord = vec![0usize; dims.len()];
            let mut rem = pos;
            for k in (0..dims.len()).rev() {
                coord[k] = rem % dims[k];
                rem /= dims[k];
            }
            (coord, v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_len() {
        let t = DenseTensor::zeros(&[2, 3, 4]);
        assert_eq!(t.order(), 3);
        assert_eq!(t.len(), 24);
        assert_eq!(t.strides(), &[12, 4, 1]);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn scalar_tensor() {
        let mut t = DenseTensor::zeros(&[]);
        assert_eq!(t.len(), 1);
        t.add(&[], 2.5);
        assert_eq!(t.get(&[]), 2.5);
    }

    #[test]
    fn from_fn_and_get_set() {
        let t = DenseTensor::from_fn(&[2, 3], |c| (c[0] * 10 + c[1]) as f64);
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert_eq!(t.get(&[1, 2]), 12.0);
        assert_eq!(t.get(&[0, 2]), 2.0);
    }

    #[test]
    fn offset_row_major() {
        let t = DenseTensor::zeros(&[3, 4]);
        assert_eq!(t.offset(&[0, 0]), 0);
        assert_eq!(t.offset(&[0, 3]), 3);
        assert_eq!(t.offset(&[1, 0]), 4);
        assert_eq!(t.offset(&[2, 3]), 11);
    }

    #[test]
    fn from_data_checks_len() {
        assert!(DenseTensor::from_data(&[2, 2], vec![1.0; 4]).is_ok());
        assert!(DenseTensor::from_data(&[2, 2], vec![1.0; 3]).is_err());
    }

    #[test]
    fn iter_coords_roundtrip() {
        let t = DenseTensor::from_fn(&[2, 2, 2], |c| (c[0] * 4 + c[1] * 2 + c[2]) as f64);
        for (coord, v) in t.iter_coords() {
            assert_eq!(t.get(&coord), v);
        }
        assert_eq!(t.iter_coords().count(), 8);
    }

    #[test]
    fn approx_eq_tolerates_roundoff() {
        let a = DenseTensor::from_fn(&[4], |c| c[0] as f64);
        let mut b = a.clone();
        b.add(&[2], 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        b.add(&[2], 1.0);
        assert!(!a.approx_eq(&b, 1e-9));
    }

    #[test]
    fn max_abs_diff_finds_peak() {
        let a = DenseTensor::zeros(&[3]);
        let mut b = DenseTensor::zeros(&[3]);
        b.set(&[1], -4.0);
        assert_eq!(a.max_abs_diff(&b), 4.0);
    }

    #[test]
    fn fill_and_norm() {
        let mut t = DenseTensor::zeros(&[2, 2]);
        t.fill(2.0);
        assert_eq!(t.norm_sq(), 16.0);
        t.fill_zero();
        assert_eq!(t.norm(), 0.0);
    }
}
