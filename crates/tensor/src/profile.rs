//! Data-independent sparsity profiles.
//!
//! An SpTTN kernel has a *fixed* sparsity pattern (the paper's key
//! observation in Sec. 1): the cost of any loop nest depends on the
//! pattern only through the per-level CSF fiber counts
//! `nnz_{I1..Ik}(T)`. A [`SparsityProfile`] captures exactly those
//! counts plus the dimensions, so the planner can rank contraction paths
//! and loop nests without touching the tensor values — and even without
//! the tensor, using the [`SparsityProfile::uniform`] model.

use crate::coo::is_permutation;
use crate::{CooTensor, Csf, TensorError};

/// Dimension sizes plus CSF-prefix nonzero counts for one mode order.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityProfile {
    /// Dimensions in original mode numbering.
    dims: Vec<usize>,
    /// CSF mode order: `mode_order[level]` = original mode at that level.
    mode_order: Vec<usize>,
    /// `prefix_nnz[k]` = number of distinct coordinate prefixes of length
    /// `k` under `mode_order`; `prefix_nnz[0] == 1`,
    /// `prefix_nnz[order] == nnz`.
    prefix_nnz: Vec<u64>,
}

impl SparsityProfile {
    /// Exact profile of a CSF tensor (its stored mode order).
    pub fn from_csf(csf: &Csf) -> Self {
        let d = csf.order();
        let prefix_nnz = (0..=d).map(|k| csf.prefix_nnz(k) as u64).collect();
        SparsityProfile {
            dims: csf.dims().to_vec(),
            mode_order: csf.mode_order().to_vec(),
            prefix_nnz,
        }
    }

    /// Exact profile of a COO tensor under an arbitrary mode order
    /// (sorts a copy; use for CSF mode-order search).
    pub fn from_coo(coo: &CooTensor, mode_order: &[usize]) -> Result<Self, TensorError> {
        let d = coo.order();
        if !is_permutation(mode_order, d) {
            return Err(TensorError::InvalidPermutation);
        }
        let mut sorted = coo.clone();
        sorted.sort_dedup(mode_order)?;
        let n = sorted.nnz();
        let mut prefix_nnz = vec![0u64; d + 1];
        prefix_nnz[0] = 1;
        for e in 0..n {
            let ell = if e == 0 {
                0
            } else {
                let (a, b) = (sorted.coord(e), sorted.coord(e - 1));
                (0..d)
                    .position(|k| a[mode_order[k]] != b[mode_order[k]])
                    .unwrap_or(d)
            };
            // Entry e creates a new node at every level >= ell.
            for k in ell..d {
                prefix_nnz[k + 1] += 1;
            }
        }
        Ok(SparsityProfile {
            dims: coo.dims().to_vec(),
            mode_order: mode_order.to_vec(),
            prefix_nnz,
        })
    }

    /// Modeled profile for a uniformly-random pattern with `nnz` nonzeros:
    /// the expected number of distinct length-`k` prefixes is
    /// `D_k * (1 - (1 - 1/D_k)^nnz)` where `D_k` is the product of the
    /// first `k` (permuted) dimensions.
    pub fn uniform(dims: &[usize], mode_order: &[usize], nnz: u64) -> Result<Self, TensorError> {
        let d = dims.len();
        if !is_permutation(mode_order, d) {
            return Err(TensorError::InvalidPermutation);
        }
        if dims.contains(&0) {
            return Err(TensorError::ZeroDim);
        }
        let mut prefix_nnz = vec![1u64; d + 1];
        let mut cells = 1f64;
        for k in 0..d {
            cells *= dims[mode_order[k]] as f64;
            // Expected occupied cells among `cells` after nnz uniform draws
            // (with replacement; accurate for sparse regimes).
            let expect = if cells <= 1.0 {
                1.0
            } else {
                // ln(1-1/cells) is numerically fragile for huge `cells`;
                // use expm1/ln_1p formulation.
                let per_cell_miss = (nnz as f64) * (-1.0 / cells).ln_1p();
                cells * (-per_cell_miss.exp_m1())
            };
            prefix_nnz[k + 1] = expect.round().max(1.0).min(nnz as f64) as u64;
        }
        prefix_nnz[d] = nnz.max(1);
        Ok(SparsityProfile {
            dims: dims.to_vec(),
            mode_order: mode_order.to_vec(),
            prefix_nnz,
        })
    }

    /// Dimensions in original mode numbering.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// CSF mode order.
    #[inline]
    pub fn mode_order(&self) -> &[usize] {
        &self.mode_order
    }

    /// Total nonzero count.
    #[inline]
    pub fn nnz(&self) -> u64 {
        *self.prefix_nnz.last().expect("non-empty")
    }

    /// Number of distinct coordinate prefixes of length `k`.
    #[inline]
    pub fn prefix_nnz(&self, k: usize) -> u64 {
        self.prefix_nnz[k]
    }

    /// A hashable fingerprint of this profile: dimensions, mode order,
    /// and per-level prefix counts. Two profiles with equal signatures
    /// drive the planner to identical decisions, which is what makes
    /// them honest cache-key material for plan caches.
    pub fn signature(&self) -> (Vec<usize>, Vec<usize>, Vec<u64>) {
        (
            self.dims.clone(),
            self.mode_order.clone(),
            self.prefix_nnz.clone(),
        )
    }

    /// Length of the longest CSF prefix whose modes are all contained in
    /// the set described by `contains` (original mode numbering).
    ///
    /// This is the number of sparse loops a term with that mode set can
    /// share with the CSF descent; the remaining modes must be iterated
    /// densely (the paper restricts loop orders to CSF storage order).
    pub fn max_prefix_len(&self, contains: impl Fn(usize) -> bool) -> usize {
        let mut len = 0;
        for &m in &self.mode_order {
            if contains(m) {
                len += 1;
            } else {
                break;
            }
        }
        len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor {
        CooTensor::from_entries(
            &[3, 3, 3],
            vec![
                (vec![0, 0, 0], 1.0),
                (vec![0, 0, 2], 2.0),
                (vec![0, 1, 0], 3.0),
                (vec![2, 0, 1], 4.0),
                (vec![2, 2, 2], 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn profile_matches_csf() {
        let coo = sample();
        for order in [[0usize, 1, 2], [2, 0, 1], [1, 2, 0]] {
            let csf = Csf::from_coo(&coo, &order).unwrap();
            let p1 = SparsityProfile::from_csf(&csf);
            let p2 = SparsityProfile::from_coo(&coo, &order).unwrap();
            assert_eq!(p1, p2, "order {order:?}");
        }
    }

    #[test]
    fn prefix_counts_identity_order() {
        let p = SparsityProfile::from_coo(&sample(), &[0, 1, 2]).unwrap();
        assert_eq!(p.prefix_nnz(0), 1);
        assert_eq!(p.prefix_nnz(1), 2);
        assert_eq!(p.prefix_nnz(2), 4);
        assert_eq!(p.prefix_nnz(3), 5);
        assert_eq!(p.nnz(), 5);
    }

    #[test]
    fn max_prefix_len_respects_order() {
        let p = SparsityProfile::from_coo(&sample(), &[0, 1, 2]).unwrap();
        assert_eq!(p.max_prefix_len(|m| m == 0), 1);
        assert_eq!(p.max_prefix_len(|m| m <= 1), 2);
        assert_eq!(p.max_prefix_len(|m| m == 1), 0); // j without i: no prefix
        assert_eq!(p.max_prefix_len(|_| true), 3);
        assert_eq!(p.max_prefix_len(|m| m == 0 || m == 2), 1); // i then gap
    }

    #[test]
    fn uniform_model_monotone_and_bounded() {
        let p = SparsityProfile::uniform(&[100, 100, 100], &[0, 1, 2], 5_000).unwrap();
        for k in 0..3 {
            assert!(p.prefix_nnz(k) <= p.prefix_nnz(k + 1));
        }
        assert_eq!(p.nnz(), 5_000);
        // Level 1 should be near-saturated: 100 cells, 5000 draws.
        assert!(p.prefix_nnz(1) >= 99);
        // Level 2: 10^4 cells, 5000 draws -> ~3935 expected distinct.
        let lvl2 = p.prefix_nnz(2);
        assert!((3700..=4100).contains(&lvl2), "lvl2 = {lvl2}");
    }

    #[test]
    fn uniform_model_tracks_exact_counts() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let dims = [64usize, 64, 64];
        let nnz = 4096usize;
        let coo = crate::gen::random_coo(&dims, nnz, &mut rng).unwrap();
        let exact = SparsityProfile::from_coo(&coo, &[0, 1, 2]).unwrap();
        let model = SparsityProfile::uniform(&dims, &[0, 1, 2], nnz as u64).unwrap();
        for k in 1..=3 {
            let e = exact.prefix_nnz(k) as f64;
            let m = model.prefix_nnz(k) as f64;
            assert!((e - m).abs() / e < 0.1, "level {k}: exact {e} model {m}");
        }
    }
}
