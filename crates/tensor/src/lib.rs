//! # spttn-tensor
//!
//! Tensor substrate for the SpTTN loop-nest framework: dense strided
//! tensors, sparse tensors in coordinate (COO) and Compressed Sparse Fiber
//! (CSF) formats, data-independent sparsity profiles, and synthetic
//! workload generators mirroring the datasets of the SPAA 2024 paper
//! *"Minimum Cost Loop Nests for Contraction of a Sparse Tensor with a
//! Tensor Network"*.
//!
//! The CSF format ([`Csf`]) is the storage the paper's runtime iterates
//! over: a tree with one level per tensor mode, where the number of nodes
//! at level `k` equals `nnz_{I1..Ik}(T)` — the nonzero count of the
//! reduced tensor obtained by summing away trailing modes (paper
//! Sec. 2.2). Those per-level counts drive the planner's asymptotic cost
//! model, so they are exposed both from concrete data ([`Csf::prefix_nnz`])
//! and from the data-independent [`SparsityProfile`].
//!
//! For multicore execution the root level of a CSF tree can be split
//! into contiguous tiles of complete root subtrees: [`CsfTile`] is the
//! per-level range view of one such slice and [`Csf::partition`]
//! produces a leaf-nnz-balanced tiling. Each tile is an independent
//! unit of work (the contraction is linear in the sparse tensor), which
//! is what the parallel executor in `spttn-exec` fans out across
//! threads.
//!
//! Real datasets enter through the [`io`] module: streaming readers for
//! FROSTT `.tns` ([`read_tns`]) and MatrixMarket coordinate
//! ([`read_mtx`]) files, both finishing with the canonical
//! sort-and-dedup ingest step, plus [`load_coo`] which dispatches on
//! the file extension. A loaded tensor can be stored under any CSF mode
//! order — [`Csf::reordered`] rebuilds an existing tree under a new
//! order, which is how plans produced by the mode-order search attach
//! to data ingested in natural order.

// All tensor storage is safe Rust: no unsafe code, ever.
#![forbid(unsafe_code)]

pub mod coo;
pub mod csf;
pub mod dense;
pub mod gen;
pub mod io;
pub mod profile;

pub use coo::CooTensor;
pub use csf::{Csf, CsfEntries, CsfLevel, CsfTile};
pub use dense::DenseTensor;
pub use gen::{frostt_like, random_coo, random_dense, random_vec, skewed_coo, FrosttPreset};
pub use io::{load_coo, read_mtx, read_tns, IoError};
pub use profile::SparsityProfile;

/// Errors produced by tensor construction and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// A coordinate lies outside the tensor dimensions.
    CoordOutOfBounds {
        /// Mode in which the violation occurred.
        mode: usize,
        /// Offending coordinate value.
        coord: usize,
        /// Dimension of that mode.
        dim: usize,
    },
    /// Number of coordinates in an entry does not match the tensor order.
    OrderMismatch {
        /// Expected order (number of modes).
        expected: usize,
        /// Actual number of coordinates supplied.
        actual: usize,
    },
    /// A supplied mode permutation is not a permutation of `0..order`.
    InvalidPermutation,
    /// Shape with a zero-sized mode (unsupported).
    ZeroDim,
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::CoordOutOfBounds { mode, coord, dim } => write!(
                f,
                "coordinate {coord} out of bounds for mode {mode} of dimension {dim}"
            ),
            TensorError::OrderMismatch { expected, actual } => {
                write!(f, "expected {expected} coordinates per entry, got {actual}")
            }
            TensorError::InvalidPermutation => write!(f, "invalid mode permutation"),
            TensorError::ZeroDim => write!(f, "tensors with zero-sized modes are unsupported"),
        }
    }
}

impl std::error::Error for TensorError {}
