//! Coordinate-format (COO) sparse tensors.
//!
//! COO is the interchange format: generators produce COO, the distributed
//! layer partitions COO cyclically across the virtual processor grid, and
//! [`crate::Csf`] is built from sorted COO. Coordinates are stored
//! structure-of-arrays style (one flat `Vec` with `order` entries per
//! nonzero) to keep sorting and partitioning cache-friendly.

use crate::{DenseTensor, TensorError};

/// A sparse tensor in coordinate format.
///
/// Invariant maintained by all constructors: coordinates are in-bounds.
/// Sorting/deduplication is explicit via [`CooTensor::sort_dedup`].
#[derive(Debug, Clone, PartialEq)]
pub struct CooTensor {
    dims: Vec<usize>,
    /// Flat coordinates: entry `e` occupies `coords[e*order .. (e+1)*order]`.
    coords: Vec<usize>,
    vals: Vec<f64>,
}

impl CooTensor {
    /// Create an empty COO tensor with the given dimensions.
    pub fn new(dims: &[usize]) -> Result<Self, TensorError> {
        if dims.contains(&0) {
            return Err(TensorError::ZeroDim);
        }
        Ok(CooTensor {
            dims: dims.to_vec(),
            coords: Vec::new(),
            vals: Vec::new(),
        })
    }

    /// Build from parallel coordinate/value lists.
    pub fn from_entries(
        dims: &[usize],
        entries: impl IntoIterator<Item = (Vec<usize>, f64)>,
    ) -> Result<Self, TensorError> {
        let mut t = CooTensor::new(dims)?;
        for (coord, v) in entries {
            t.push(&coord, v)?;
        }
        Ok(t)
    }

    /// Append one nonzero entry.
    pub fn push(&mut self, coord: &[usize], v: f64) -> Result<(), TensorError> {
        if coord.len() != self.dims.len() {
            return Err(TensorError::OrderMismatch {
                expected: self.dims.len(),
                actual: coord.len(),
            });
        }
        for (mode, (&c, &d)) in coord.iter().zip(self.dims.iter()).enumerate() {
            if c >= d {
                return Err(TensorError::CoordOutOfBounds {
                    mode,
                    coord: c,
                    dim: d,
                });
            }
        }
        self.coords.extend_from_slice(coord);
        self.vals.push(v);
        Ok(())
    }

    /// Dimensions of the tensor.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of modes.
    #[inline]
    pub fn order(&self) -> usize {
        self.dims.len()
    }

    /// Number of stored entries (after `sort_dedup`, the nonzero count).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Coordinate of entry `e`.
    #[inline]
    pub fn coord(&self, e: usize) -> &[usize] {
        let d = self.dims.len();
        &self.coords[e * d..(e + 1) * d]
    }

    /// Value of entry `e`.
    #[inline]
    pub fn val(&self, e: usize) -> f64 {
        self.vals[e]
    }

    /// Flat coordinate storage (`order` entries per nonzero, entry
    /// order). Two tensors share a sparsity pattern exactly when their
    /// dims and flat coordinates are equal — a cheap memcmp used to
    /// validate pattern-sharing outputs.
    #[inline]
    pub fn coords(&self) -> &[usize] {
        &self.coords
    }

    /// Values slice, parallel with entry order.
    #[inline]
    pub fn vals(&self) -> &[f64] {
        &self.vals
    }

    /// Mutable values slice (e.g. for filling an output that shares this
    /// tensor's sparsity pattern).
    #[inline]
    pub fn vals_mut(&mut self) -> &mut [f64] {
        &mut self.vals
    }

    /// Iterate `(coordinate, value)` pairs in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (&[usize], f64)> + '_ {
        (0..self.nnz()).map(move |e| (self.coord(e), self.vals[e]))
    }

    /// Sort entries lexicographically by coordinate under the given mode
    /// order and merge duplicates by summation.
    ///
    /// `mode_order[k]` is the original mode compared at position `k`; it
    /// must be a permutation of `0..order`. Entries whose merged value is
    /// exactly zero are retained (the sparsity pattern is fixed, as the
    /// paper assumes: positions, not values, define the structure).
    pub fn sort_dedup(&mut self, mode_order: &[usize]) -> Result<(), TensorError> {
        let d = self.dims.len();
        if !is_permutation(mode_order, d) {
            return Err(TensorError::InvalidPermutation);
        }
        let n = self.nnz();
        let mut perm: Vec<usize> = (0..n).collect();
        let coords = &self.coords;
        perm.sort_unstable_by(|&a, &b| {
            for &m in mode_order {
                let ca = coords[a * d + m];
                let cb = coords[b * d + m];
                match ca.cmp(&cb) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });

        let mut new_coords = Vec::with_capacity(self.coords.len());
        let mut new_vals: Vec<f64> = Vec::with_capacity(n);
        for &e in &perm {
            let c = &self.coords[e * d..(e + 1) * d];
            let dup = !new_vals.is_empty() && {
                let last = &new_coords[new_coords.len() - d..];
                last == c
            };
            if dup {
                let lv = new_vals.last_mut().expect("nonempty");
                *lv += self.vals[e];
            } else {
                new_coords.extend_from_slice(c);
                new_vals.push(self.vals[e]);
            }
        }
        self.coords = new_coords;
        self.vals = new_vals;
        Ok(())
    }

    /// Densify into a [`DenseTensor`] (testing / small-problem oracle).
    pub fn to_dense(&self) -> DenseTensor {
        let mut t = DenseTensor::zeros(&self.dims);
        for (c, v) in self.iter() {
            t.add(c, v);
        }
        t
    }

    /// Squared Frobenius norm of the stored values.
    pub fn norm_sq(&self) -> f64 {
        self.vals.iter().map(|v| v * v).sum()
    }

    /// Retain only the entries for which `keep` returns true (used by the
    /// cyclic partitioner). Preserves relative order.
    pub fn filter(&self, mut keep: impl FnMut(&[usize]) -> bool) -> CooTensor {
        let d = self.dims.len();
        let mut out = CooTensor {
            dims: self.dims.clone(),
            coords: Vec::new(),
            vals: Vec::new(),
        };
        for e in 0..self.nnz() {
            let c = &self.coords[e * d..(e + 1) * d];
            if keep(c) {
                out.coords.extend_from_slice(c);
                out.vals.push(self.vals[e]);
            }
        }
        out
    }

    /// Replace all values, keeping the pattern. Length must match `nnz`.
    pub fn with_vals(&self, vals: Vec<f64>) -> CooTensor {
        assert_eq!(vals.len(), self.nnz(), "value count must match pattern");
        CooTensor {
            dims: self.dims.clone(),
            coords: self.coords.clone(),
            vals,
        }
    }
}

pub(crate) fn is_permutation(p: &[usize], d: usize) -> bool {
    if p.len() != d {
        return false;
    }
    let mut seen = vec![false; d];
    for &m in p {
        if m >= d || seen[m] {
            return false;
        }
        seen[m] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CooTensor {
        CooTensor::from_entries(
            &[3, 4, 5],
            vec![
                (vec![2, 1, 0], 1.0),
                (vec![0, 0, 0], 2.0),
                (vec![2, 1, 0], 3.0),
                (vec![0, 3, 4], 4.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_validates_bounds() {
        let mut t = CooTensor::new(&[2, 2]).unwrap();
        assert!(t.push(&[1, 1], 1.0).is_ok());
        assert!(matches!(
            t.push(&[2, 0], 1.0),
            Err(TensorError::CoordOutOfBounds { mode: 0, .. })
        ));
        assert!(matches!(
            t.push(&[0], 1.0),
            Err(TensorError::OrderMismatch { .. })
        ));
    }

    #[test]
    fn zero_dim_rejected() {
        assert!(matches!(CooTensor::new(&[2, 0]), Err(TensorError::ZeroDim)));
    }

    #[test]
    fn sort_dedup_merges_duplicates() {
        let mut t = sample();
        t.sort_dedup(&[0, 1, 2]).unwrap();
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.coord(0), &[0, 0, 0]);
        assert_eq!(t.coord(1), &[0, 3, 4]);
        assert_eq!(t.coord(2), &[2, 1, 0]);
        assert_eq!(t.val(2), 4.0); // 1.0 + 3.0 merged
    }

    #[test]
    fn sort_dedup_respects_mode_order() {
        let mut t = sample();
        // Sort by mode 2 first: (0,0,0) and (2,1,0) tie on mode 2, then
        // mode 0 breaks the tie.
        t.sort_dedup(&[2, 0, 1]).unwrap();
        assert_eq!(t.coord(0), &[0, 0, 0]);
        assert_eq!(t.coord(1), &[2, 1, 0]);
        assert_eq!(t.coord(2), &[0, 3, 4]);
    }

    #[test]
    fn sort_dedup_rejects_bad_perm() {
        let mut t = sample();
        assert!(t.sort_dedup(&[0, 0, 1]).is_err());
        assert!(t.sort_dedup(&[0, 1]).is_err());
    }

    #[test]
    fn to_dense_accumulates() {
        let t = sample();
        let d = t.to_dense();
        assert_eq!(d.get(&[2, 1, 0]), 4.0);
        assert_eq!(d.get(&[0, 0, 0]), 2.0);
        assert_eq!(d.get(&[1, 1, 1]), 0.0);
    }

    #[test]
    fn filter_partitions() {
        let mut t = sample();
        t.sort_dedup(&[0, 1, 2]).unwrap();
        let even = t.filter(|c| c[0] % 2 == 0);
        assert_eq!(even.nnz(), 3);
        let odd = t.filter(|c| c[0] % 2 == 1);
        assert_eq!(odd.nnz(), 0);
    }

    #[test]
    fn with_vals_keeps_pattern() {
        let mut t = sample();
        t.sort_dedup(&[0, 1, 2]).unwrap();
        let s = t.with_vals(vec![9.0; 3]);
        assert_eq!(s.coord(1), t.coord(1));
        assert_eq!(s.val(0), 9.0);
    }
}
