//! Direct cost evaluation on an explicit fused forest.
//!
//! Mirrors the semantics the Algorithm-1 dynamic program assumes:
//! `f(forest) = ⊕ over siblings`, `f(vertex) = φ(ctx)(f(children))`,
//! with a vertex's `call_hi` equal to the end of its sibling region.
//! Used by the exhaustive search and by the DP cross-check tests.

use crate::tree_cost::{TreeCost, VertexCtx};
use spttn_ir::{ContractionPath, IdxSet, Kernel, LoopForest, LoopNode};
use spttn_tensor::SparsityProfile;

/// Evaluate a tree-separable cost on a fused forest.
pub fn eval_forest<C: TreeCost>(
    kernel: &Kernel,
    path: &ContractionPath,
    profile: &SparsityProfile,
    forest: &LoopForest,
    cost: &C,
) -> C::Value {
    eval_nodes(
        kernel,
        path,
        profile,
        &forest.roots,
        path.len(),
        IdxSet::EMPTY,
        cost,
    )
}

fn eval_nodes<C: TreeCost>(
    kernel: &Kernel,
    path: &ContractionPath,
    profile: &SparsityProfile,
    nodes: &[LoopNode],
    call_hi: usize,
    removed: IdxSet,
    cost: &C,
) -> C::Value {
    let mut acc = cost.empty();
    for n in nodes {
        let v = match n {
            LoopNode::Leaf(_) => cost.empty(),
            LoopNode::Loop(v) => {
                let inner = eval_nodes(
                    kernel,
                    path,
                    profile,
                    &v.children,
                    v.term_hi,
                    removed.insert(v.index),
                    cost,
                );
                let ctx = VertexCtx {
                    kernel,
                    path,
                    profile,
                    lo: v.term_lo,
                    hi: v.term_hi,
                    call_hi,
                    removed,
                    index: v.index,
                    kind: v.kind,
                };
                cost.apply(&ctx, &inner)
            }
        };
        acc = cost.combine(&acc, &v);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree_cost::MaxBufferDim;
    use spttn_ir::{build_forest, parse_kernel, path_from_picks, NestSpec};

    /// call_hi semantics: a buffer consumed by a *sibling* splits at the
    /// producer's vertex; one consumed deeper inside does not.
    #[test]
    fn call_hi_scopes_buffer_splits() {
        let k = parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 10), ("j", 11), ("k", 12), ("r", 4), ("s", 5)],
        )
        .unwrap();
        let p = path_from_picks(&k, &[(0, 2), (0, 1)]);
        let profile = SparsityProfile::uniform(&[10, 11, 12], &[0, 1, 2], 100).unwrap();
        // Listing 3 forest: split happens under (i,j) at the k-vertex.
        let spec = NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
        };
        let f = build_forest(&k, &p, &spec).unwrap();
        // Total = 1 (buffer {s}); the i and j vertices must not re-charge
        // the full {i,j,s} or {s} sizes.
        assert_eq!(eval_forest(&k, &p, &profile, &f, &MaxBufferDim), 1);
    }
}
