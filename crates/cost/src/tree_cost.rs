//! Tree-separable cost functions (paper Def. 4.4).
//!
//! A cost is *tree-separable* when it decomposes along the fused loop
//! nest: `f(T, L, A) = φ_{T,L,r}( f(B₁) ⊕ … ⊕ f(B_k) )` with `φ`
//! nondecreasing and `⊕` an associative, monotone semigroup operator.
//! Both the Algorithm-1 dynamic program and the explicit-forest
//! evaluator call the same [`TreeCost`] implementation, so search and
//! verification cannot drift apart.
//!
//! A vertex's `φ` sees a [`VertexCtx`]: which terms the loop covers,
//! which indices enclosing loops already iterate (`removed`), the loop
//! index, its sparse/dense classification, and the sibling horizon
//! (`call_hi`) — the exclusive end of the term range at the vertex's
//! nesting level. Buffers whose producer lies under the vertex but whose
//! consumer is a *sibling* (within `call_hi`) split exactly here, so
//! their stored size `|out_inds \ removed|` (Eq. 5) is exact at this
//! vertex and charged nowhere else.

use spttn_ir::{ContractionPath, IdxSet, IndexId, Kernel, VertexKind};
use spttn_tensor::SparsityProfile;

/// Everything `φ` may inspect at one loop vertex.
#[derive(Debug, Clone, Copy)]
pub struct VertexCtx<'a> {
    /// Kernel being planned.
    pub kernel: &'a Kernel,
    /// Contraction path being planned.
    pub path: &'a ContractionPath,
    /// Sparsity profile of the sparse input.
    pub profile: &'a SparsityProfile,
    /// First term covered by this loop.
    pub lo: usize,
    /// Exclusive end of the covered term range.
    pub hi: usize,
    /// Exclusive end of the sibling region at this nesting level; buffers
    /// consumed in `[hi, call_hi)` split at this vertex.
    pub call_hi: usize,
    /// Indices iterated by enclosing loops (the paper's set `S`).
    pub removed: IdxSet,
    /// The loop index of this vertex.
    pub index: IndexId,
    /// Sparse (CSF) or dense iteration.
    pub kind: VertexKind,
}

impl<'a> VertexCtx<'a> {
    /// Number of iterations this loop performs, under the profile: the
    /// full dimension for dense loops, the mean CSF branching factor for
    /// sparse loops.
    pub fn iterations(&self) -> f64 {
        match self.kind {
            VertexKind::Dense => self.kernel.dim(self.index) as f64,
            VertexKind::Sparse { level } => {
                let up = self.profile.prefix_nnz(level + 1) as f64;
                let down = self.profile.prefix_nnz(level).max(1) as f64;
                up / down
            }
        }
    }

    /// Buffers that split at this vertex: producer in `[lo, hi)`,
    /// consumer a sibling in `[hi, call_hi)`. Yields the buffer's stored
    /// index set `out_inds \ removed` (Eq. 5 with the common-ancestor set
    /// equal to `removed` at the split point).
    pub fn splitting_buffers(&self) -> impl Iterator<Item = IdxSet> + '_ {
        (self.lo..self.hi).filter_map(move |t| {
            let term = &self.path.terms[t];
            let c = term.consumer?;
            if c >= self.hi && c < self.call_hi {
                Some(term.out_inds.minus(self.removed))
            } else {
                None
            }
        })
    }

    /// Largest dimensionality among buffers splitting at this vertex.
    pub fn max_splitting_buffer_dim(&self) -> usize {
        self.splitting_buffers().map(|s| s.len()).max().unwrap_or(0)
    }

    /// Largest element count among buffers splitting at this vertex.
    pub fn max_splitting_buffer_size(&self) -> u128 {
        self.splitting_buffers()
            .map(|s| {
                s.iter()
                    .map(|i| self.kernel.dim(i) as u128)
                    .product::<u128>()
            })
            .max()
            .unwrap_or(0)
    }
}

/// A tree-separable cost function `(φ, ⊕)` (Def. 4.4).
pub trait TreeCost {
    /// Cost values; compared with `PartialOrd` (smaller is better).
    type Value: Clone + PartialEq + PartialOrd + std::fmt::Debug;

    /// Identity element of `⊕` (cost of an empty forest / a leaf).
    fn empty(&self) -> Self::Value;

    /// The semigroup combine `⊕` across sibling subtrees.
    fn combine(&self, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// `φ_{T,L,r}` applied around a vertex's inner cost.
    fn apply(&self, ctx: &VertexCtx<'_>, inner: &Self::Value) -> Self::Value;

    /// Whether a final value satisfies the model's hard constraints
    /// (e.g. the buffer-dimension bound). Infeasible plans make the
    /// planner fall back to contraction paths of higher asymptotic cost
    /// (paper Sec. 5).
    fn is_feasible(&self, _v: &Self::Value) -> bool {
        true
    }
}

/// Def. 4.5: maximum intermediate-buffer dimensionality.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxBufferDim;

impl TreeCost for MaxBufferDim {
    type Value = usize;

    fn empty(&self) -> usize {
        0
    }

    fn combine(&self, a: &usize, b: &usize) -> usize {
        *a.max(b)
    }

    fn apply(&self, ctx: &VertexCtx<'_>, inner: &usize) -> usize {
        ctx.max_splitting_buffer_dim().max(*inner)
    }
}

/// Def. 4.5 variant: maximum intermediate-buffer element count.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxBufferSize;

impl TreeCost for MaxBufferSize {
    type Value = u128;

    fn empty(&self) -> u128 {
        0
    }

    fn combine(&self, a: &u128, b: &u128) -> u128 {
        *a.max(b)
    }

    fn apply(&self, ctx: &VertexCtx<'_>, inner: &u128) -> u128 {
        ctx.max_splitting_buffer_size().max(*inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_forest;
    use spttn_ir::{build_forest, parse_kernel, path_from_picks, NestSpec};

    fn setup() -> (Kernel, ContractionPath, SparsityProfile) {
        let k = parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 10), ("j", 11), ("k", 12), ("r", 4), ("s", 5)],
        )
        .unwrap();
        let p = path_from_picks(&k, &[(0, 2), (0, 1)]);
        let profile = SparsityProfile::uniform(&[10, 11, 12], &[0, 1, 2], 200).unwrap();
        (k, p, profile)
    }

    #[test]
    fn buffer_dim_cost_matches_listings() {
        let (k, p, prof) = setup();
        let eval = |orders: Vec<Vec<usize>>| {
            let spec = NestSpec { orders };
            let f = build_forest(&k, &p, &spec).unwrap();
            eval_forest(&k, &p, &prof, &f, &MaxBufferDim)
        };
        // Listing 2 (unfused): buffer (i,j,s) -> dim 3.
        assert_eq!(eval(vec![vec![0, 1, 2, 4], vec![4, 0, 1, 3]]), 3);
        // Listing 3: buffer (s) -> dim 1.
        assert_eq!(eval(vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]]), 1);
        // Listing 4: scalar buffer -> dim 0.
        assert_eq!(eval(vec![vec![0, 1, 4, 2], vec![0, 1, 4, 3]]), 0);
    }

    #[test]
    fn buffer_size_cost_matches_listings() {
        let (k, p, prof) = setup();
        let eval = |orders: Vec<Vec<usize>>| {
            let spec = NestSpec { orders };
            let f = build_forest(&k, &p, &spec).unwrap();
            eval_forest(&k, &p, &prof, &f, &MaxBufferSize)
        };
        assert_eq!(eval(vec![vec![0, 1, 2, 4], vec![4, 0, 1, 3]]), 10 * 11 * 5);
        assert_eq!(eval(vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]]), 5);
        assert_eq!(eval(vec![vec![0, 1, 4, 2], vec![0, 1, 4, 3]]), 1);
    }

    #[test]
    fn iterations_sparse_vs_dense() {
        let (k, p, prof) = setup();
        let ctx = VertexCtx {
            kernel: &k,
            path: &p,
            profile: &prof,
            lo: 0,
            hi: 2,
            call_hi: 2,
            removed: IdxSet::EMPTY,
            index: 0,
            kind: VertexKind::Sparse { level: 0 },
        };
        // Root sparse loop: prefix_nnz(1)/prefix_nnz(0) iterations.
        assert!((ctx.iterations() - prof.prefix_nnz(1) as f64).abs() < 1e-9);
        let dense = VertexCtx {
            index: 3,
            kind: VertexKind::Dense,
            ..ctx
        };
        assert_eq!(dense.iterations(), 4.0);
    }
}
