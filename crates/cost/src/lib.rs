//! # spttn-cost
//!
//! Cost models and search algorithms for SpTTN loop nests (paper
//! Sec. 4):
//!
//! - [`TreeCost`]: tree-separable cost functions `(φ, ⊕)` — Def. 4.4.
//! - [`MaxBufferDim`] / [`MaxBufferSize`]: Def. 4.5 buffer metrics.
//! - [`CacheMiss`]: Def. 4.6 cache-miss model.
//! - [`BlasAware`]: the Sec. 5 evaluation metric (max independent dense
//!   loops under a buffer-dimension bound).
//! - [`optimal_order`]: Algorithm 1 — `O(N³·2^m·m)` dynamic program.
//! - [`exhaustive_search`] / [`all_nest_costs`]: the factorial-size
//!   enumeration, for autotuning and cross-checking.
//! - [`plan`]: the full Sec. 5 pipeline (path ranking + DP + tier
//!   fallback).
//! - [`plan_mode_orders`]: the CSF storage-order search layered on top
//!   of [`plan`] — one pipeline run per candidate order
//!   ([`candidate_orders`]), winners compared by `(flops, cost value)`;
//!   [`ModeOrderPolicy`] is the knob the facade exposes.

// Cost modeling and search are pure computation: no unsafe code, ever.
#![forbid(unsafe_code)]

pub mod blas;
pub mod cache;
pub mod dp;
pub mod eval;
pub mod exhaustive;
pub mod orders;
pub mod planner;
pub mod tree_cost;

pub use blas::{BlasAware, BlasValue};
pub use cache::CacheMiss;
pub use dp::{optimal_order, SearchResult};
pub use eval::eval_forest;
pub use exhaustive::{all_nest_costs, exhaustive_search, ExhaustiveResult};
pub use orders::{
    candidate_orders, plan_mode_orders, ModeOrderPolicy, OrderCost, OrderSearch,
    EXHAUSTIVE_ORDER_LIMIT,
};
pub use planner::{plan, PlanOptions, PlannedNest};
pub use tree_cost::{MaxBufferDim, MaxBufferSize, TreeCost, VertexCtx};
