//! Algorithm 1: dynamic program for cost-optimal loop orders.
//!
//! Finds, for a fixed contraction path and any tree-separable cost, the
//! loop order minimizing the cost — in `O(N³·2^m·m)` instead of the
//! `O((m!)^N)` of exhaustive enumeration. Subproblems are
//! (contiguous term range, set of already-iterated indices); each
//! subproblem returns both the best loop order and the best one whose
//! first loop has a *different* root index, which the parent needs when
//! its own root would otherwise fuse with the suffix forest (the paper's
//! lines 16–20).
//!
//! The search honors the same restrictions as enumeration: per-term
//! sparse-lineage indices stay in CSF order, and a root choice whose
//! vertex classification is invalid (dense loop covering the sparse
//! tensor's own term) is skipped — [`spttn_ir::vertex_kind`] is shared
//! with forest construction so the DP and the executor agree exactly.

use crate::tree_cost::{TreeCost, VertexCtx};
use spttn_ir::{vertex_kind, ContractionPath, IdxSet, IndexId, Kernel, NestSpec};
use spttn_tensor::SparsityProfile;
use std::collections::HashMap;

/// Result of the DP: optimal value and the loop orders achieving it.
#[derive(Debug, Clone)]
pub struct SearchResult<V> {
    /// Optimal cost value.
    pub value: V,
    /// Loop orders per term (a full [`NestSpec`]).
    pub spec: NestSpec,
    /// Number of memoized subproblems solved.
    pub subproblems: usize,
}

#[derive(Debug, Clone)]
struct Cand<V> {
    value: V,
    orders: Vec<Vec<IndexId>>,
}

#[derive(Debug, Clone)]
struct Entry<V> {
    best: Option<Cand<V>>,
    /// Best candidate whose forest's first loop has a different root.
    second: Option<Cand<V>>,
}

fn root_of(orders: &[Vec<IndexId>]) -> Option<IndexId> {
    orders.first().and_then(|o| o.first().copied())
}

struct Dp<'a, C: TreeCost> {
    kernel: &'a Kernel,
    path: &'a ContractionPath,
    profile: &'a SparsityProfile,
    cost: &'a C,
    memo: HashMap<(usize, usize, IdxSet), Entry<C::Value>>,
}

/// Run Algorithm 1 on a contraction path. Returns `None` only for empty
/// paths.
pub fn optimal_order<C: TreeCost>(
    kernel: &Kernel,
    path: &ContractionPath,
    profile: &SparsityProfile,
    cost: &C,
) -> Option<SearchResult<C::Value>> {
    if path.is_empty() {
        return None;
    }
    let mut dp = Dp {
        kernel,
        path,
        profile,
        cost,
        memo: HashMap::new(),
    };
    let entry = dp.solve(0, path.len(), IdxSet::EMPTY);
    let best = entry.best?;
    Some(SearchResult {
        value: best.value,
        spec: NestSpec {
            orders: best.orders,
        },
        subproblems: dp.memo.len(),
    })
}

impl<'a, C: TreeCost> Dp<'a, C> {
    fn solve(&mut self, lo: usize, hi: usize, removed: IdxSet) -> Entry<C::Value> {
        if lo == hi {
            return Entry {
                best: Some(Cand {
                    value: self.cost.empty(),
                    orders: Vec::new(),
                }),
                second: None,
            };
        }
        let key = (lo, hi, removed);
        if let Some(e) = self.memo.get(&key) {
            return e.clone();
        }

        let remaining_first = self.path.terms[lo].iter_inds().minus(removed);
        let entry = if remaining_first.is_empty() {
            // Line 5: the first term is fully iterated — it becomes a
            // leaf here; recurse on the rest.
            let sub = self.solve(lo + 1, hi, removed);
            let map = |c: Cand<C::Value>| {
                let mut orders = Vec::with_capacity(c.orders.len() + 1);
                orders.push(Vec::new());
                orders.extend(c.orders);
                Cand {
                    value: c.value,
                    orders,
                }
            };
            // A leading leaf means the forest starts with a non-loop
            // node: no root-fusion conflict is possible, so no second
            // candidate is needed.
            Entry {
                best: sub.best.map(map),
                second: None,
            }
        } else {
            let mut best: Option<Cand<C::Value>> = None;
            let mut second: Option<Cand<C::Value>> = None;
            for q in remaining_first.iter() {
                // Line 10: maximal run of leading terms containing q.
                let mut k = 0usize;
                while lo + k < hi && self.path.terms[lo + k].iter_inds().contains(q) {
                    k += 1;
                }
                let q_level = self.kernel.sparse_level(q);
                let mut cbest: Option<Cand<C::Value>> = None;
                let mut order_ok = true;
                for s in 1..=k {
                    // CSF-order restriction: within term lo+s-1, q must
                    // not precede a shallower un-iterated lineage index.
                    let t = lo + s - 1;
                    let term = &self.path.terms[t];
                    if let Some(level) = q_level {
                        if term.lineage().contains(q) {
                            let shallower_remaining = (0..level).any(|l| {
                                let m = self.kernel.index_at_level(l);
                                term.iter_inds().contains(m)
                                    && term.lineage().contains(m)
                                    && !removed.contains(m)
                            });
                            if shallower_remaining {
                                order_ok = false;
                            }
                        }
                    }
                    if !order_ok {
                        break;
                    }
                    let Ok(kind) = vertex_kind(self.kernel, self.path, lo, lo + s, removed, q)
                    else {
                        continue;
                    };
                    let x = self.solve(lo, lo + s, removed.insert(q));
                    let Some(xc) = x.best else { continue };
                    let y = self.solve(lo + s, hi, removed);
                    // Lines 16–20: if the suffix forest would start with
                    // a loop over q, the combined tree would not be
                    // fully fused — take its second-best instead.
                    let yc = match y.best {
                        Some(ref b) if root_of(&b.orders) == Some(q) => y.second,
                        other => other,
                    };
                    let Some(yc) = yc else { continue };
                    let ctx = VertexCtx {
                        kernel: self.kernel,
                        path: self.path,
                        profile: self.profile,
                        lo,
                        hi: lo + s,
                        call_hi: hi,
                        removed,
                        index: q,
                        kind,
                    };
                    let value = self
                        .cost
                        .combine(&self.cost.apply(&ctx, &xc.value), &yc.value);
                    let better = match &cbest {
                        None => true,
                        Some(c) => value < c.value,
                    };
                    if better {
                        let mut orders = Vec::with_capacity(hi - lo);
                        for sub in &xc.orders {
                            let mut o = Vec::with_capacity(sub.len() + 1);
                            o.push(q);
                            o.extend_from_slice(sub);
                            orders.push(o);
                        }
                        orders.extend(yc.orders.iter().cloned());
                        cbest = Some(Cand { value, orders });
                    }
                }
                // Lines 27–30: fold this root's champion into (A, B);
                // roots across iterations of q are distinct, so A and B
                // always differ in root.
                if let Some(c) = cbest {
                    let beats_best = match &best {
                        None => true,
                        Some(b) => c.value < b.value,
                    };
                    if beats_best {
                        second = best.take();
                        best = Some(c);
                    } else {
                        let beats_second = match &second {
                            None => true,
                            Some(b2) => c.value < b2.value,
                        };
                        if beats_second {
                            second = Some(c);
                        }
                    }
                }
            }
            Entry { best, second }
        };
        self.memo.insert(key, entry.clone());
        entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{BlasAware, BlasValue};
    use crate::cache::CacheMiss;
    use crate::eval::eval_forest;
    use crate::exhaustive::exhaustive_search;
    use crate::tree_cost::{MaxBufferDim, MaxBufferSize};
    use spttn_ir::{build_forest, parse_kernel, path_from_picks};

    fn ttmc3() -> (Kernel, ContractionPath, SparsityProfile) {
        let k = parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 10), ("j", 11), ("k", 12), ("r", 4), ("s", 5)],
        )
        .unwrap();
        let p = path_from_picks(&k, &[(0, 2), (0, 1)]);
        let prof = SparsityProfile::uniform(&[10, 11, 12], &[0, 1, 2], 200).unwrap();
        (k, p, prof)
    }

    #[test]
    fn dp_finds_scalar_buffer_for_ttmc() {
        let (k, p, prof) = ttmc3();
        let r = optimal_order(&k, &p, &prof, &MaxBufferDim).unwrap();
        // Listing 4 achieves a scalar buffer: optimal dimension is 0.
        assert_eq!(r.value, 0);
        // The found spec must evaluate to the same value.
        let f = build_forest(&k, &p, &r.spec).unwrap();
        assert_eq!(eval_forest(&k, &p, &prof, &f, &MaxBufferDim), 0);
    }

    #[test]
    fn dp_matches_exhaustive_buffer_dim() {
        let (k, p, prof) = ttmc3();
        let dp = optimal_order(&k, &p, &prof, &MaxBufferDim).unwrap();
        let ex = exhaustive_search(&k, &p, &prof, &MaxBufferDim).unwrap();
        assert_eq!(dp.value, ex.value);
    }

    #[test]
    fn dp_matches_exhaustive_buffer_size() {
        let (k, p, prof) = ttmc3();
        let dp = optimal_order(&k, &p, &prof, &MaxBufferSize).unwrap();
        let ex = exhaustive_search(&k, &p, &prof, &MaxBufferSize).unwrap();
        assert_eq!(dp.value, ex.value);
    }

    #[test]
    fn dp_matches_exhaustive_cache_misses() {
        let (k, p, prof) = ttmc3();
        let cost = CacheMiss { d: 1 };
        let dp = optimal_order(&k, &p, &prof, &cost).unwrap();
        let ex = exhaustive_search(&k, &p, &prof, &cost).unwrap();
        assert!((dp.value - ex.value).abs() < 1e-6 * ex.value.max(1.0));
    }

    #[test]
    fn dp_matches_exhaustive_blas() {
        let (k, p, prof) = ttmc3();
        let cost = BlasAware::default();
        let dp = optimal_order(&k, &p, &prof, &cost).unwrap();
        let ex = exhaustive_search(&k, &p, &prof, &cost).unwrap();
        assert_eq!(dp.value, ex.value);
        assert!(matches!(dp.value, BlasValue::Feasible { .. }));
    }

    #[test]
    fn dp_matches_exhaustive_on_mttkrp() {
        let k = parse_kernel(
            "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)",
            &[("i", 8), ("j", 9), ("k", 10), ("a", 4)],
        )
        .unwrap();
        let prof = SparsityProfile::uniform(&[8, 9, 10], &[0, 1, 2], 100).unwrap();
        for picks in [
            [(0usize, 2usize), (0, 1)],
            [(0, 1), (0, 1)],
            [(1, 2), (0, 1)],
        ] {
            let p = path_from_picks(&k, &picks);
            let dp = optimal_order(&k, &p, &prof, &MaxBufferSize).unwrap();
            let ex = exhaustive_search(&k, &p, &prof, &MaxBufferSize).unwrap();
            assert_eq!(dp.value, ex.value, "picks {picks:?}");
            let f = build_forest(&k, &p, &dp.spec).unwrap();
            assert_eq!(eval_forest(&k, &p, &prof, &f, &MaxBufferSize), dp.value);
        }
    }

    #[test]
    fn dp_specs_always_build() {
        // Every DP result must be constructible and evaluate to its value.
        let (k, p, prof) = ttmc3();
        let r = optimal_order(&k, &p, &prof, &BlasAware::default()).unwrap();
        let f = build_forest(&k, &p, &r.spec).unwrap();
        assert_eq!(
            eval_forest(&k, &p, &prof, &f, &BlasAware::default()),
            r.value
        );
    }

    #[test]
    fn subproblem_count_is_polynomial() {
        let (k, p, prof) = ttmc3();
        let r = optimal_order(&k, &p, &prof, &MaxBufferDim).unwrap();
        // N=2 terms, m=5 indices: far fewer than 48 full enumerations
        // would suggest; bound N^2 * 2^m generously.
        assert!(r.subproblems <= 4 * 32 + 8, "{}", r.subproblems);
    }
}
