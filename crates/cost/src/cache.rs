//! Cache-miss cost model (paper Def. 4.6).
//!
//! The model assumes a cache that holds subtensors of size `I^D`: a loop
//! over index `r` incurs one miss per iteration for every tensor slot
//! (operand or output of a covered term) that is indexed by `r` and
//! still has at least `D` un-iterated indices — each iteration touches
//! at least `I^D` fresh data of that tensor. Misses of inner loops are
//! multiplied by the iteration count:
//! `φ(x) = I(r) · (τ(T,L,r) + x)`, `⊕ = +`.
//!
//! Sparse loops use the mean CSF branching factor for `I(r)`, the
//! extension the paper notes the model admits.

use crate::tree_cost::{TreeCost, VertexCtx};
use spttn_ir::IdxSet;

/// Def. 4.6 cache-miss model with cache-footprint exponent `D`.
#[derive(Debug, Clone, Copy)]
pub struct CacheMiss {
    /// A tensor slot charges a miss while it has ≥ `d` remaining indices.
    pub d: usize,
}

impl Default for CacheMiss {
    fn default() -> Self {
        CacheMiss { d: 1 }
    }
}

impl CacheMiss {
    /// `τ(T, L, r)`: tensor slots of covered terms indexed by the vertex
    /// index with at least `d` remaining indices.
    fn tau(&self, ctx: &VertexCtx<'_>) -> f64 {
        let gone = ctx.removed.insert(ctx.index);
        let mut count = 0usize;
        for t in ctx.lo..ctx.hi {
            let term = &ctx.path.terms[t];
            for slot in [term.left_inds, term.right_inds, term.out_inds] {
                if slot.contains(ctx.index) && remaining(slot, gone) >= self.d {
                    count += 1;
                }
            }
        }
        count as f64
    }
}

fn remaining(slot: IdxSet, gone: IdxSet) -> usize {
    slot.minus(gone).len()
}

impl TreeCost for CacheMiss {
    type Value = f64;

    fn empty(&self) -> f64 {
        0.0
    }

    fn combine(&self, a: &f64, b: &f64) -> f64 {
        a + b
    }

    fn apply(&self, ctx: &VertexCtx<'_>, inner: &f64) -> f64 {
        ctx.iterations() * (self.tau(ctx) + inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_forest;
    use spttn_ir::{build_forest, parse_kernel, path_from_picks, NestSpec};
    use spttn_tensor::SparsityProfile;

    #[test]
    fn misses_penalize_outer_dense_loops() {
        let k = parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 64), ("j", 64), ("k", 64), ("r", 16), ("s", 16)],
        )
        .unwrap();
        let p = path_from_picks(&k, &[(0, 2), (0, 1)]);
        let profile = SparsityProfile::uniform(&[64, 64, 64], &[0, 1, 2], 5000).unwrap();
        let cost = CacheMiss { d: 1 };
        let misses = |orders: Vec<Vec<usize>>| {
            let f = build_forest(&k, &p, &NestSpec { orders }).unwrap();
            eval_forest(&k, &p, &profile, &f, &cost)
        };
        // Listing 3 (sparse loops outermost) vs hoisting the dense s loop
        // to the root: the latter re-traverses the whole sparse structure
        // S times and must model far more misses.
        let good = misses(vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]]);
        let s_outer = misses(vec![vec![4, 0, 1, 2], vec![4, 0, 1, 3]]);
        assert!(good * 1.2 < s_outer, "good {good} vs s-outermost {s_outer}");
        assert!(good > 0.0);
    }

    #[test]
    fn deeper_footprint_reduces_charged_slots() {
        let k = parse_kernel(
            "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)",
            &[("i", 32), ("j", 32), ("k", 32), ("a", 8)],
        )
        .unwrap();
        let p = path_from_picks(&k, &[(0, 2), (0, 1)]);
        let profile = SparsityProfile::uniform(&[32, 32, 32], &[0, 1, 2], 2000).unwrap();
        let spec = NestSpec {
            orders: vec![vec![0, 1, 2, 3], vec![0, 1, 3]],
        };
        let f = build_forest(&k, &p, &spec).unwrap();
        let d1 = eval_forest(&k, &p, &profile, &f, &CacheMiss { d: 1 });
        let d2 = eval_forest(&k, &p, &profile, &f, &CacheMiss { d: 2 });
        // A bigger cached footprint can only reduce the modeled misses.
        assert!(d2 <= d1);
        assert!(d1 > 0.0);
    }
}
