//! The evaluation cost model of paper Sec. 5: "select the loop nest with
//! the maximum number of independent dense loops with bounded buffer
//! dimension".
//!
//! A *BLAS loop* is a dense loop covering a single term with no sparse
//! iteration remaining beneath it — exactly the loops the runtime can
//! hand to AXPY/GER-style microkernels (paper Fig. 6). The value is
//! lexicographic: feasibility (every intermediate buffer within the
//! dimension bound) dominates; then more BLAS loops win; buffer size
//! breaks ties. Infeasible values are absorbing, which is what lets the
//! planner fall back to the next contraction path (Sec. 5).

use crate::tree_cost::{TreeCost, VertexCtx};
use spttn_ir::VertexKind;

/// Cost value for [`BlasAware`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BlasValue {
    /// Some buffer exceeded the dimension bound.
    Infeasible,
    /// Feasible with `blas` offloadable dense loops and `buf_size`
    /// maximum buffer elements.
    Feasible {
        /// Count of BLAS-offloadable dense loops (more is better).
        blas: u64,
        /// Maximum buffer element count (tie-break, less is better).
        buf_size: u128,
    },
}

impl PartialOrd for BlasValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering::*;
        use BlasValue::*;
        match (self, other) {
            (Infeasible, Infeasible) => Some(Equal),
            (Infeasible, Feasible { .. }) => Some(Greater),
            (Feasible { .. }, Infeasible) => Some(Less),
            (
                Feasible {
                    blas: b1,
                    buf_size: s1,
                },
                Feasible {
                    blas: b2,
                    buf_size: s2,
                },
            ) => Some(b2.cmp(b1).then(s1.cmp(s2))), // more blas = smaller cost
        }
    }
}

/// Sec. 5 metric: maximize BLAS-shaped dense loops subject to a bound on
/// intermediate-buffer dimensionality (the paper's experiments use 2).
#[derive(Debug, Clone, Copy)]
pub struct BlasAware {
    /// Maximum allowed buffer dimensionality.
    pub buffer_dim_bound: usize,
}

impl Default for BlasAware {
    fn default() -> Self {
        BlasAware {
            buffer_dim_bound: 2,
        }
    }
}

impl TreeCost for BlasAware {
    type Value = BlasValue;

    fn empty(&self) -> BlasValue {
        BlasValue::Feasible {
            blas: 0,
            buf_size: 0,
        }
    }

    fn combine(&self, a: &BlasValue, b: &BlasValue) -> BlasValue {
        match (a, b) {
            (
                BlasValue::Feasible {
                    blas: b1,
                    buf_size: s1,
                },
                BlasValue::Feasible {
                    blas: b2,
                    buf_size: s2,
                },
            ) => BlasValue::Feasible {
                blas: b1 + b2,
                buf_size: *s1.max(s2),
            },
            _ => BlasValue::Infeasible,
        }
    }

    fn apply(&self, ctx: &VertexCtx<'_>, inner: &BlasValue) -> BlasValue {
        let BlasValue::Feasible { blas, buf_size } = *inner else {
            return BlasValue::Infeasible;
        };
        if ctx.max_splitting_buffer_dim() > self.buffer_dim_bound {
            return BlasValue::Infeasible;
        }
        // BLAS-offloadable: dense loop, single covered term, and no
        // sparse-lineage index of that term left to iterate beneath.
        let offloadable = ctx.kind == VertexKind::Dense && ctx.hi - ctx.lo == 1 && {
            let term = &ctx.path.terms[ctx.lo];
            let below = term.iter_inds().minus(ctx.removed).remove(ctx.index);
            !term.lineage().intersects(below)
        };
        BlasValue::Feasible {
            blas: blas + u64::from(offloadable),
            buf_size: buf_size.max(ctx.max_splitting_buffer_size()),
        }
    }

    fn is_feasible(&self, v: &BlasValue) -> bool {
        !matches!(v, BlasValue::Infeasible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_forest;
    use spttn_ir::{build_forest, parse_kernel, path_from_picks, NestSpec};
    use spttn_tensor::SparsityProfile;

    fn blas_of(v: BlasValue) -> u64 {
        match v {
            BlasValue::Feasible { blas, .. } => blas,
            BlasValue::Infeasible => panic!("unexpected infeasible"),
        }
    }

    /// Fig. 6 (order-4 TTMc): the chosen nest offers 1 + 2 + 3 BLAS loops.
    #[test]
    fn fig6_counts_six_blas_loops() {
        let k = parse_kernel(
            "S(i,r,s,t) = T(i,j,k,l) * U(j,r) * V(k,s) * W(l,t)",
            &[
                ("i", 16),
                ("j", 16),
                ("k", 16),
                ("l", 16),
                ("r", 4),
                ("s", 4),
                ("t", 4),
            ],
        )
        .unwrap();
        let p = path_from_picks(&k, &[(0, 3), (1, 2), (0, 1)]);
        let prof = SparsityProfile::uniform(&[16; 4], &[0, 1, 2, 3], 500).unwrap();
        let spec = NestSpec {
            orders: vec![
                vec![0, 1, 2, 3, 6], // i,j,k,l,t -> t is BLAS (AXPY)
                vec![0, 1, 2, 5, 6], // i,j,k,s,t -> s,t are BLAS (GER)
                vec![0, 1, 4, 5, 6], // i,j,r,s,t -> r,s,t are BLAS
            ],
        };
        let f = build_forest(&k, &p, &spec).unwrap();
        let v = eval_forest(&k, &p, &prof, &f, &BlasAware::default());
        assert_eq!(blas_of(v), 6);
    }

    /// Fig. 9's two nests: bound 1 admits the scalar-buffer nest only.
    #[test]
    fn buffer_bound_infeasibility() {
        let k = parse_kernel(
            "S(r,s,t) = T(i,j,k) * U(i,r) * V(j,s) * W(k,t)",
            &[
                ("i", 32),
                ("j", 32),
                ("k", 32),
                ("r", 8),
                ("s", 8),
                ("t", 8),
            ],
        )
        .unwrap();
        // Path (T*W) -> X(i,j,t,...); then *V; then *U.
        let p = path_from_picks(&k, &[(0, 3), (1, 2), (0, 1)]);
        let prof = SparsityProfile::uniform(&[32; 3], &[0, 1, 2], 2000).unwrap();
        // Loop nest #2 (bound 2): orders (i,j,k,t),(i,j,s,t),(i,r,s,t):
        // buffers X{t} (1-d) and Y{s,t} (2-d).
        let nest2 = NestSpec {
            orders: vec![vec![0, 1, 2, 5], vec![0, 1, 4, 5], vec![0, 3, 4, 5]],
        };
        let f2 = build_forest(&k, &p, &nest2).unwrap();
        let v2_bound2 = eval_forest(
            &k,
            &p,
            &prof,
            &f2,
            &BlasAware {
                buffer_dim_bound: 2,
            },
        );
        assert!(matches!(v2_bound2, BlasValue::Feasible { .. }));
        let v2_bound1 = eval_forest(
            &k,
            &p,
            &prof,
            &f2,
            &BlasAware {
                buffer_dim_bound: 1,
            },
        );
        assert_eq!(v2_bound1, BlasValue::Infeasible);

        // Loop nest #1 (bound 1): orders (i,t,j,k),(i,t,j,s),(i,t,r,s):
        // buffers X{} (scalar) and Y{s} (1-d).
        let nest1 = NestSpec {
            orders: vec![vec![0, 5, 1, 2], vec![0, 5, 1, 4], vec![0, 5, 3, 4]],
        };
        let f1 = build_forest(&k, &p, &nest1).unwrap();
        let v1 = eval_forest(
            &k,
            &p,
            &prof,
            &f1,
            &BlasAware {
                buffer_dim_bound: 1,
            },
        );
        assert!(matches!(v1, BlasValue::Feasible { .. }));
        // Nest #2 offers strictly more BLAS loops than nest #1 at bound 2.
        let v1_b2 = eval_forest(
            &k,
            &p,
            &prof,
            &f1,
            &BlasAware {
                buffer_dim_bound: 2,
            },
        );
        assert!(v2_bound2 < v1_b2, "{v2_bound2:?} vs {v1_b2:?}");
    }

    /// Dense loop above a sparse loop is not BLAS-offloadable.
    #[test]
    fn sparse_below_disqualifies() {
        let k = parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 10), ("j", 10), ("k", 10), ("r", 4), ("s", 4)],
        )
        .unwrap();
        let p = path_from_picks(&k, &[(0, 2), (0, 1)]);
        let prof = SparsityProfile::uniform(&[10; 3], &[0, 1, 2], 100).unwrap();
        // Listing 4: term 0 order (i,j,s,k) — s has sparse k below.
        let f = build_forest(
            &k,
            &p,
            &NestSpec {
                orders: vec![vec![0, 1, 4, 2], vec![0, 1, 4, 3]],
            },
        )
        .unwrap();
        let v = eval_forest(&k, &p, &prof, &f, &BlasAware::default());
        // Only term 1's trailing r counts (s is fused over both terms).
        assert_eq!(blas_of(v), 1);

        // Listing 3: term 0 (i,j,k,s), term 1 (i,j,s,r): s-loop of term 0
        // and (s,r) of term 1 -> 3 BLAS loops.
        let f3 = build_forest(
            &k,
            &p,
            &NestSpec {
                orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
            },
        )
        .unwrap();
        let v3 = eval_forest(&k, &p, &prof, &f3, &BlasAware::default());
        assert_eq!(blas_of(v3), 3);
        assert!(v3 < v, "listing 3 should win the BLAS metric");
    }

    #[test]
    fn ordering_semantics() {
        let a = BlasValue::Feasible {
            blas: 5,
            buf_size: 10,
        };
        let b = BlasValue::Feasible {
            blas: 3,
            buf_size: 1,
        };
        assert!(a < b); // more blas wins despite bigger buffer
        let c = BlasValue::Feasible {
            blas: 5,
            buf_size: 4,
        };
        assert!(c < a); // equal blas: smaller buffer wins
        assert!(a < BlasValue::Infeasible);
        assert!(BlasAware::default().is_feasible(&a));
        assert!(!BlasAware::default().is_feasible(&BlasValue::Infeasible));
    }
}
