//! CSF mode-order search.
//!
//! The paper's planner (Sec. 5) minimizes cost *for a fixed CSF storage
//! order*: every loop nest it considers iterates the sparse modes in
//! the order the tree stores them. But the storage order itself is a
//! free parameter — the per-level fiber counts `nnz_{I1..Ik}` that
//! drive both the asymptotic op count and the tree-separable costs can
//! differ dramatically between orders (a mode with few distinct values
//! compresses the tree when stored near the root). Auto-schedulers in
//! this space (CoNST's format + schedule co-selection, SparseAuto's
//! loop-restructuring search) treat the storage order as part of the
//! plan; [`plan_mode_orders`] does the same here by running the full
//! Sec. 5 pipeline once per candidate order and keeping the winner.
//!
//! Orders are compared by leading-order op count first (the paper's
//! tier criterion), tie-broken by the nest's tree-separable cost value;
//! remaining ties keep the earliest candidate, so the natural order —
//! always listed first — wins when nothing beats it. Candidate sets
//! come from [`candidate_orders`]: exhaustive for up to
//! [`EXHAUSTIVE_ORDER_LIMIT`] modes (4! = 24 planner runs), pruned to a
//! small structured family above that.

use crate::planner::{plan, PlanOptions, PlannedNest};
use crate::tree_cost::TreeCost;
use spttn_ir::Kernel;
use spttn_tensor::SparsityProfile;

/// How the planner chooses the CSF storage order of the sparse input.
///
/// Carried on the facade's `PlanOptions` and — because every variant is
/// structural data — directly usable in plan-cache keys.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub enum ModeOrderPolicy {
    /// Keep the expression's written order (the historical behavior).
    #[default]
    Natural,
    /// Store the sparse tensor under this specific order: level `l` of
    /// the CSF holds the index written at position `order[l]` of the
    /// expression. `Fixed` of the identity permutation equals
    /// [`ModeOrderPolicy::Natural`].
    Fixed(Vec<usize>),
    /// Search candidate orders with [`plan_mode_orders`] and keep the
    /// cheapest: exhaustive for ≤ [`EXHAUSTIVE_ORDER_LIMIT`] modes,
    /// heuristic-pruned above.
    Auto,
}

/// Mode counts up to which [`candidate_orders`] enumerates every
/// permutation (`4! = 24`); above this the pruned family is used.
pub const EXHAUSTIVE_ORDER_LIMIT: usize = 4;

/// Per-candidate-order record of what the search saw, for plan
/// introspection ("why this order?").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderCost {
    /// The candidate order (level `l` holds written position `order[l]`).
    pub order: Vec<usize>,
    /// Leading-order op count of the best nest under this order, or
    /// `None` when no feasible nest exists for it.
    pub flops: Option<u128>,
    /// Debug rendering of the best nest's cost value (empty when
    /// infeasible).
    pub cost: String,
}

/// The winning order of a search: permuted kernel, the profile it was
/// scored on, its planned nest, and the full exploration record.
#[derive(Debug, Clone)]
pub struct OrderSearch<V> {
    /// Chosen order (a permutation of written positions).
    pub order: Vec<usize>,
    /// Kernel with the sparse input's written order permuted to match.
    pub kernel: Kernel,
    /// Sparsity profile the winning nest was planned against.
    pub profile: SparsityProfile,
    /// The winning nest.
    pub planned: PlannedNest<V>,
    /// Every candidate explored, in candidate order (natural first).
    pub explored: Vec<OrderCost>,
}

/// Candidate CSF orders for a sparse input whose written-order level
/// dimensions are `dims`, natural order always first.
///
/// Up to [`EXHAUSTIVE_ORDER_LIMIT`] modes: every permutation. Above:
/// a pruned family of `O(d)` structurally-distinct candidates — the
/// natural order, each single mode rotated to the root (root choice
/// dominates both tree compression and the parallel tiling), and the
/// dimension-sorted orders (ascending ≈ fewest distinct values near
/// the root, maximizing prefix compression; descending as its foil).
pub fn candidate_orders(dims: &[usize]) -> Vec<Vec<usize>> {
    let d = dims.len();
    let natural: Vec<usize> = (0..d).collect();
    if d <= 1 {
        return vec![natural];
    }
    let mut out: Vec<Vec<usize>> = Vec::new();
    let push = |o: Vec<usize>, out: &mut Vec<Vec<usize>>| {
        if !out.contains(&o) {
            out.push(o);
        }
    };
    push(natural.clone(), &mut out);
    if d <= EXHAUSTIVE_ORDER_LIMIT {
        let mut perm = natural.clone();
        permutations(&mut perm, 0, &mut |p| {
            if !out.contains(&p.to_vec()) {
                out.push(p.to_vec());
            }
        });
        return out;
    }
    // Pruned family for high-order tensors.
    for front in 0..d {
        let mut o = vec![front];
        o.extend((0..d).filter(|&m| m != front));
        push(o, &mut out);
    }
    let mut asc = natural.clone();
    asc.sort_by_key(|&l| (dims[l], l));
    push(asc.clone(), &mut out);
    let mut desc = natural;
    desc.sort_by_key(|&l| (std::cmp::Reverse(dims[l]), l));
    push(desc, &mut out);
    out
}

/// Recursive permutation enumeration (d ≤ 4, at most 24 leaves).
fn permutations(perm: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k == perm.len() {
        f(perm);
        return;
    }
    for i in k..perm.len() {
        perm.swap(k, i);
        permutations(perm, k + 1, f);
        perm.swap(k, i);
    }
}

/// Run the Sec. 5 planning pipeline once per candidate order and return
/// the cheapest feasible outcome.
///
/// `kernel` is the kernel in its natural written order; each candidate
/// `σ` plans `kernel.permute_sparse_modes(σ)` against the profile
/// `profile_for(σ)` supplies (exact per-order counts when the caller
/// has the pattern, a model otherwise — returning `None` skips the
/// candidate). Winners are chosen by `(flops, cost value)` with ties
/// keeping the earlier candidate, so the natural order is preferred
/// when equivalent. Returns `None` when no candidate admits a feasible
/// nest.
pub fn plan_mode_orders<C: TreeCost>(
    kernel: &Kernel,
    cost: &C,
    opts: &PlanOptions,
    orders: &[Vec<usize>],
    mut profile_for: impl FnMut(&[usize]) -> Option<SparsityProfile>,
) -> Option<OrderSearch<C::Value>> {
    let mut best: Option<OrderSearch<C::Value>> = None;
    let mut explored: Vec<OrderCost> = Vec::with_capacity(orders.len());
    for order in orders {
        let Ok(permuted) = kernel.permute_sparse_modes(order) else {
            continue;
        };
        let Some(profile) = profile_for(order) else {
            continue;
        };
        let planned = plan(&permuted, &profile, cost, opts);
        explored.push(OrderCost {
            order: order.clone(),
            flops: planned.as_ref().map(|p| p.flops),
            cost: planned
                .as_ref()
                .map(|p| format!("{:?}", p.value))
                .unwrap_or_default(),
        });
        let Some(planned) = planned else { continue };
        let better = match &best {
            None => true,
            Some(b) => {
                planned.flops < b.planned.flops
                    || (planned.flops == b.planned.flops && planned.value < b.planned.value)
            }
        };
        if better {
            best = Some(OrderSearch {
                order: order.clone(),
                kernel: permuted,
                profile,
                planned,
                explored: Vec::new(),
            });
        }
    }
    best.map(|mut b| {
        b.explored = explored;
        b
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree_cost::MaxBufferSize;
    use spttn_ir::parse_kernel;

    fn uniform_for(
        dims: &[usize],
        nnz: u64,
    ) -> impl FnMut(&[usize]) -> Option<SparsityProfile> + '_ {
        move |order: &[usize]| {
            let permuted: Vec<usize> = order.iter().map(|&l| dims[l]).collect();
            let identity: Vec<usize> = (0..dims.len()).collect();
            SparsityProfile::uniform(&permuted, &identity, nnz).ok()
        }
    }

    #[test]
    fn candidates_exhaustive_small_orders() {
        assert_eq!(candidate_orders(&[5]), vec![vec![0]]);
        let c3 = candidate_orders(&[5, 6, 7]);
        assert_eq!(c3.len(), 6);
        assert_eq!(c3[0], vec![0, 1, 2]); // natural first
        let c4 = candidate_orders(&[5, 6, 7, 8]);
        assert_eq!(c4.len(), 24);
        // All distinct.
        for (a, i) in c4.iter().zip(0..) {
            assert!(!c4[i + 1..].contains(a));
        }
    }

    #[test]
    fn candidates_pruned_above_limit() {
        let dims = [50, 3, 40, 2, 60];
        let cands = candidate_orders(&dims);
        assert!(cands.len() < 120, "pruned family, got {}", cands.len());
        assert_eq!(cands[0], vec![0, 1, 2, 3, 4]); // natural first
                                                   // Dimension-ascending order present: dims sorted -> 3, 1, 2, 0, 4.
        assert!(cands.contains(&vec![3, 1, 2, 0, 4]));
        // Every mode appears as a root somewhere.
        for m in 0..dims.len() {
            assert!(cands.iter().any(|c| c[0] == m), "mode {m} never a root");
        }
        for c in &cands {
            let mut s = c.clone();
            s.sort_unstable();
            assert_eq!(s, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn search_prefers_compressing_root() {
        // MTTKRP on a sparse tensor with one tiny mode: pulling that
        // mode toward the root compresses the two-level prefix the
        // factorized schedule's second contraction iterates
        // (`nnz_{ki} < nnz_i · |k|` when the root level is not
        // saturated), so the uniform model gives non-natural orders a
        // strictly smaller op count.
        let dims = [50usize, 50, 4];
        let k = parse_kernel(
            "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)",
            &[("i", 50), ("j", 50), ("k", 4), ("a", 8)],
        )
        .unwrap();
        let orders = candidate_orders(&dims);
        let found = plan_mode_orders(
            &k,
            &MaxBufferSize,
            &PlanOptions::default(),
            &orders,
            uniform_for(&dims, 30),
        )
        .unwrap();
        assert_ne!(found.order, vec![0, 1, 2], "natural order should lose");
        assert_eq!(found.explored.len(), orders.len());
        let natural = &found.explored[0];
        assert_eq!(natural.order, vec![0, 1, 2]);
        assert!(
            found.planned.flops < natural.flops.unwrap(),
            "chosen {} !< natural {}",
            found.planned.flops,
            natural.flops.unwrap()
        );
        // The permuted kernel stores the winning order.
        assert_eq!(found.kernel.csf_index_order().len(), 3);
        let profile_root_dim = found.profile.dims()[found.profile.mode_order()[0]];
        assert_eq!(profile_root_dim, dims[found.order[0]]);
    }

    #[test]
    fn ties_keep_natural_order() {
        // A fully symmetric problem: every order models identically, so
        // the tie-break must keep the natural order.
        let dims = [20usize, 20, 20];
        let k = parse_kernel(
            "S(i,j,k) = T(i,j,k) * U(i,r) * V(j,r) * W(k,r)",
            &[("i", 20), ("j", 20), ("k", 20), ("r", 4)],
        )
        .unwrap();
        let orders = candidate_orders(&dims);
        let found = plan_mode_orders(
            &k,
            &MaxBufferSize,
            &PlanOptions::default(),
            &orders,
            uniform_for(&dims, 500),
        )
        .unwrap();
        assert_eq!(found.order, vec![0, 1, 2]);
    }
}
