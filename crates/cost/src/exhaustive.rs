//! Exhaustive loop-order search (paper Sec. 4.1.2).
//!
//! Enumerates every CSF-consistent loop order combination for a path,
//! builds the fused forest, and evaluates the cost directly. Exponential
//! — `Π |I_i|!/k_i!` nests — but exact; it backs the paper's autotuning
//! story (Fig. 10's loop-order sweep) and cross-checks the DP.

use crate::eval::eval_forest;
use crate::tree_cost::TreeCost;
use spttn_ir::{build_forest, ContractionPath, Kernel, NestSpec, NestSpecIter};
use spttn_tensor::SparsityProfile;

/// Result of an exhaustive search.
#[derive(Debug, Clone)]
pub struct ExhaustiveResult<V> {
    /// Minimal cost value found.
    pub value: V,
    /// A spec achieving it.
    pub spec: NestSpec,
    /// Number of valid nests evaluated.
    pub evaluated: usize,
    /// Number of specs rejected as invalid (broken sparse descent).
    pub invalid: usize,
}

/// Search every valid nest of `path`, returning the minimum.
pub fn exhaustive_search<C: TreeCost>(
    kernel: &Kernel,
    path: &ContractionPath,
    profile: &SparsityProfile,
    cost: &C,
) -> Option<ExhaustiveResult<C::Value>> {
    let mut best: Option<(C::Value, NestSpec)> = None;
    let mut evaluated = 0usize;
    let mut invalid = 0usize;
    for spec in NestSpecIter::new(kernel, path) {
        let Ok(forest) = build_forest(kernel, path, &spec) else {
            invalid += 1;
            continue;
        };
        let v = eval_forest(kernel, path, profile, &forest, cost);
        evaluated += 1;
        let better = match &best {
            None => true,
            Some((bv, _)) => v < *bv,
        };
        if better {
            best = Some((v, spec));
        }
    }
    best.map(|(value, spec)| ExhaustiveResult {
        value,
        spec,
        evaluated,
        invalid,
    })
}

/// Evaluate every valid nest, returning `(spec, value)` pairs — the raw
/// material of the paper's Fig. 10 loop-order sweep.
pub fn all_nest_costs<C: TreeCost>(
    kernel: &Kernel,
    path: &ContractionPath,
    profile: &SparsityProfile,
    cost: &C,
) -> Vec<(NestSpec, C::Value)> {
    let mut out = Vec::new();
    for spec in NestSpecIter::new(kernel, path) {
        if let Ok(forest) = build_forest(kernel, path, &spec) {
            let v = eval_forest(kernel, path, profile, &forest, cost);
            out.push((spec, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree_cost::{MaxBufferDim, MaxBufferSize};
    use spttn_ir::{parse_kernel, path_from_picks};

    #[test]
    fn counts_and_minimum_for_ttmc() {
        let k = parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 10), ("j", 11), ("k", 12), ("r", 4), ("s", 5)],
        )
        .unwrap();
        let p = path_from_picks(&k, &[(0, 2), (0, 1)]);
        let prof = SparsityProfile::uniform(&[10, 11, 12], &[0, 1, 2], 100).unwrap();
        let r = exhaustive_search(&k, &p, &prof, &MaxBufferDim).unwrap();
        // 4 * 12 = 48 specs total; all are valid for this path.
        assert_eq!(r.evaluated + r.invalid, 48);
        assert_eq!(r.value, 0); // Listing 4's scalar buffer
    }

    #[test]
    fn invalid_specs_are_skipped_when_descent_breaks() {
        // A pre-sparse term whose consumer lies *outside* a fused range
        // covering the sparse term is non-prunable: fusing it under the
        // sparse index i breaks the descent and must be rejected.
        let k = parse_kernel(
            "S(i,j) = T(i,j) * A(i,r) * B(i,r) * C(i,r)",
            &[("i", 10), ("j", 10), ("r", 4)],
        )
        .unwrap();
        // Path: (A*B)->X0(i,r) consumed by term 2; (T*C)->X1(i,j,r);
        // (X0*X1)->S. Fusing t0 and t1 at i is invalid because t0's
        // consumer (t2) escapes the covered range.
        let p = path_from_picks(&k, &[(1, 2), (0, 1), (0, 1)]);
        let prof = SparsityProfile::uniform(&[10, 10], &[0, 1], 30).unwrap();
        let r = exhaustive_search(&k, &p, &prof, &MaxBufferSize).unwrap();
        assert!(r.invalid > 0, "expected some invalid specs");
        assert!(r.evaluated > 0);
    }

    #[test]
    fn all_costs_has_spread() {
        let k = parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 10), ("j", 11), ("k", 12), ("r", 4), ("s", 5)],
        )
        .unwrap();
        let p = path_from_picks(&k, &[(0, 2), (0, 1)]);
        let prof = SparsityProfile::uniform(&[10, 11, 12], &[0, 1, 2], 100).unwrap();
        let all = all_nest_costs(&k, &p, &prof, &MaxBufferSize);
        let min = all.iter().map(|(_, v)| *v).min().unwrap();
        let max = all.iter().map(|(_, v)| *v).max().unwrap();
        assert!(min < max, "loop order should matter: {min} vs {max}");
    }
}
