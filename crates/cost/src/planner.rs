//! The SpTTN-Cyclops planning pipeline (paper Sec. 5).
//!
//! 1. Enumerate contraction paths and rank them by leading-order op
//!    count (asymptotic complexity on the kernel's sparsity profile).
//! 2. Within the cheapest tier, run the Algorithm-1 DP per path under
//!    the configured tree-separable cost; keep the best feasible nest.
//! 3. If no nest in the tier satisfies the cost model's constraints
//!    (e.g. the buffer-dimension bound), fall back to the next tier of
//!    asymptotically costlier paths — exactly the paper's fallback rule.

use crate::dp::optimal_order;
use crate::tree_cost::TreeCost;
use spttn_ir::{enumerate_paths, ContractionPath, Kernel, NestSpec};
use spttn_tensor::SparsityProfile;

/// Planner options.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Maximum number of paths to run the DP on per cost tier.
    pub max_paths_per_tier: usize,
    /// Maximum number of tiers to explore before giving up.
    pub max_tiers: usize,
    /// Treat paths whose op count is within this factor of the tier
    /// leader as belonging to the same tier (1.0 = exact ties only).
    pub tier_slack: f64,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            max_paths_per_tier: 64,
            max_tiers: 16,
            tier_slack: 1.0,
        }
    }
}

/// A planned loop nest: path, loop orders, and costs.
#[derive(Debug, Clone)]
pub struct PlannedNest<V> {
    /// Chosen contraction path.
    pub path: ContractionPath,
    /// Chosen loop orders.
    pub spec: NestSpec,
    /// Tree-separable cost value of the nest.
    pub value: V,
    /// Leading-order scalar op count of the path.
    pub flops: u128,
    /// Which tier (0 = asymptotically optimal) the path came from.
    pub tier: usize,
}

/// Plan a kernel: choose contraction path and loop orders minimizing
/// `cost`, with tier fallback on infeasibility.
pub fn plan<C: TreeCost>(
    kernel: &Kernel,
    profile: &SparsityProfile,
    cost: &C,
    opts: &PlanOptions,
) -> Option<PlannedNest<C::Value>> {
    let mut paths: Vec<(u128, ContractionPath)> = enumerate_paths(kernel)
        .into_iter()
        .map(|p| (p.flops(kernel, profile), p))
        .collect();
    if paths.is_empty() {
        return None;
    }
    paths.sort_by_key(|(f, _)| *f);

    let mut tier_start = 0usize;
    for tier in 0..opts.max_tiers {
        if tier_start >= paths.len() {
            break;
        }
        let leader = paths[tier_start].0;
        let limit = (leader as f64 * opts.tier_slack.max(1.0)) as u128;
        let mut tier_end = tier_start;
        while tier_end < paths.len() && paths[tier_end].0 <= limit.max(leader) {
            tier_end += 1;
        }
        let mut best: Option<PlannedNest<C::Value>> = None;
        for (flops, path) in paths[tier_start..tier_end]
            .iter()
            .take(opts.max_paths_per_tier)
        {
            let Some(r) = optimal_order(kernel, path, profile, cost) else {
                continue;
            };
            if !cost.is_feasible(&r.value) {
                continue;
            }
            let better = match &best {
                None => true,
                Some(b) => r.value < b.value || (r.value == b.value && *flops < b.flops),
            };
            if better {
                best = Some(PlannedNest {
                    path: path.clone(),
                    spec: r.spec,
                    value: r.value,
                    flops: *flops,
                    tier,
                });
            }
        }
        if best.is_some() {
            return best;
        }
        tier_start = tier_end;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{BlasAware, BlasValue};
    use crate::tree_cost::{MaxBufferDim, MaxBufferSize};
    use spttn_ir::parse_kernel;

    fn profile(dims: &[usize], nnz: u64) -> SparsityProfile {
        let order: Vec<usize> = (0..dims.len()).collect();
        SparsityProfile::uniform(dims, &order, nnz).unwrap()
    }

    #[test]
    fn ttmc_planner_picks_sparse_first_path() {
        let k = parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 64), ("j", 64), ("k", 64), ("r", 16), ("s", 16)],
        )
        .unwrap();
        let prof = profile(&[64, 64, 64], 4000);
        let plan = plan(&k, &prof, &MaxBufferDim, &PlanOptions::default()).unwrap();
        assert_eq!(plan.tier, 0);
        // The asymptotically optimal path contracts T first.
        assert_eq!(plan.path.sparse_term, 0);
        assert_eq!(plan.value, 0); // scalar buffer achievable
    }

    #[test]
    fn mttkrp_planner_factorizes() {
        // The planner must discover the factorize-and-fuse schedule that
        // beats the unfactorized op count (paper Sec. 2.4.2).
        let k = parse_kernel(
            "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)",
            &[("i", 40), ("j", 40), ("k", 40), ("a", 16)],
        )
        .unwrap();
        let prof = profile(&[40, 40, 40], 4000);
        let plan = plan(&k, &prof, &MaxBufferSize, &PlanOptions::default()).unwrap();
        let nnz = prof.prefix_nnz(3) as u128;
        let nnz_ij = prof.prefix_nnz(2) as u128;
        assert_eq!(plan.flops, 2 * nnz * 16 + 2 * nnz_ij * 16);
        // Buffer for the factorized fused nest is one factor row.
        assert!(plan.value <= 16);
    }

    #[test]
    fn blas_metric_feasible_plan() {
        let k = parse_kernel(
            "S(i,r,s,t) = T(i,j,k,l) * U(j,r) * V(k,s) * W(l,t)",
            &[
                ("i", 16),
                ("j", 16),
                ("k", 16),
                ("l", 16),
                ("r", 8),
                ("s", 8),
                ("t", 8),
            ],
        )
        .unwrap();
        let prof = profile(&[16; 4], 1000);
        let cost = BlasAware {
            buffer_dim_bound: 2,
        };
        let plan = plan(&k, &prof, &cost, &PlanOptions::default()).unwrap();
        let BlasValue::Feasible { blas, .. } = plan.value else {
            panic!("expected feasible plan");
        };
        // Fig. 6's nest offers 6 BLAS loops; the planner must find at
        // least that many.
        assert!(blas >= 6, "blas = {blas}");
    }

    #[test]
    fn infeasible_bound_falls_back_or_fails_cleanly() {
        let k = parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 16), ("j", 16), ("k", 16), ("r", 4), ("s", 4)],
        )
        .unwrap();
        let prof = profile(&[16; 3], 300);
        // Bound 0 forces scalar buffers; TTMc admits one (Listing 4), so
        // the plan stays in tier 0.
        let cost = BlasAware {
            buffer_dim_bound: 0,
        };
        let plan0 = plan(&k, &prof, &cost, &PlanOptions::default()).unwrap();
        assert!(cost.is_feasible(&plan0.value));
    }

    #[test]
    fn tttp_plan_exists_and_prunes() {
        let k = parse_kernel(
            "S(i,j,k) = T(i,j,k) * U(i,r) * V(j,r) * W(k,r)",
            &[("i", 32), ("j", 32), ("k", 32), ("r", 8)],
        )
        .unwrap();
        let prof = profile(&[32; 3], 2000);
        let plan = plan(&k, &prof, &MaxBufferSize, &PlanOptions::default()).unwrap();
        let nnz = prof.prefix_nnz(3) as u128;
        // All terms should run under the sparse descent: op count is
        // O(nnz * R), nowhere near the dense I*J*R.
        assert!(plan.flops <= 8 * nnz * 8, "flops = {}", plan.flops);
    }
}
