//! Contraction-sequence search: greedy ordering and a budgeted,
//! cost-capped exact subset sweep (netcon-style), both scored by one
//! materialization-aware cost model.
//!
//! ## The sequence cost model
//!
//! [`modeled_path_flops`] charges each pairwise term as if its result
//! were materialized (which is exactly how the lowered
//! [`crate::NetworkPlan`] executes dense steps): a term iterating index
//! union `U` with sparse lineage `L` costs
//! `2 · prefix_nnz(ℓ) · ∏_{i ∈ U \ prefix} dim(i)`, where `ℓ` is the
//! longest prefix of the sparse tensor's storage order contained in
//! both `U` and `L`. Dense-dense terms have empty lineage, so `ℓ = 0`
//! and the cost degenerates to the full dense `2·∏ dim` — this is the
//! single-kernel path model of
//! [`ContractionPath::flops`] *minus* its pre-sparse fusion credit,
//! because a sequence planner cannot assume a later kernel will fuse an
//! already-materialized intermediate. (The Sec. 5 planner re-introduces
//! fusion inside the collapsed sparse kernel after lowering.)
//!
//! Crucially the model is *position-independent*: a term's cost depends
//! only on which leaves its two operands cover, never on where the term
//! sits in the sequence. That is what makes the exact search a clean
//! dynamic program over leaf subsets rather than a sweep over ordered
//! paths.

use spttn::ir::{path_from_picks, ContractionPath, IdxSet, Kernel};
use spttn::tensor::SparsityProfile;
use spttn::PlanOptions;

/// How [`crate::Network::plan`] picks the pairwise contraction order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderStrategy {
    /// Each round contracts the cheapest remaining pair (ties broken by
    /// smaller intermediate). `O(n³)` evaluations; no optimality
    /// guarantee.
    Greedy,
    /// Exact minimum over all contraction trees via a subset dynamic
    /// program, pruned by the greedy total (μ-cap) and capped by
    /// [`NetOptions::budget`]; falls back to greedy (reported via
    /// [`SearchReport::truncated`]) when the budget runs out.
    Optimal,
}

impl std::fmt::Display for OrderStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderStrategy::Greedy => write!(f, "greedy"),
            OrderStrategy::Optimal => write!(f, "optimal"),
        }
    }
}

/// Options for network planning (order search + lowering + the
/// [`PlanOptions`] handed to the per-step Sec. 5 planner).
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// Order-search strategy.
    pub order: OrderStrategy,
    /// Maximum number of pair-cost evaluations the exact sweep may
    /// spend before falling back to greedy.
    pub budget: u64,
    /// Maximum number of inputs the collapsed sparse-spine kernel may
    /// have (guards the single-kernel planner's search space).
    pub max_kernel_inputs: usize,
    /// Planner options for the collapsed sparse kernel (cost model,
    /// engine, threads, …).
    pub plan: PlanOptions,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            order: OrderStrategy::Greedy,
            budget: 1_000_000,
            max_kernel_inputs: 8,
            plan: PlanOptions::default(),
        }
    }
}

impl NetOptions {
    /// Set the order-search strategy.
    pub fn with_order(mut self, order: OrderStrategy) -> Self {
        self.order = order;
        self
    }

    /// Set the exact-search evaluation budget.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = budget;
        self
    }

    /// Set the collapsed-kernel input-count guard.
    pub fn with_max_kernel_inputs(mut self, n: usize) -> Self {
        self.max_kernel_inputs = n;
        self
    }

    /// Set the [`PlanOptions`] for the collapsed sparse kernel.
    pub fn with_plan_options(mut self, plan: PlanOptions) -> Self {
        self.plan = plan;
        self
    }
}

/// What the order search did and found.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// Strategy that was requested.
    pub strategy: OrderStrategy,
    /// Pair-cost evaluations spent (greedy rounds + exact-sweep splits).
    pub evaluated_pairs: u64,
    /// True when the exact sweep exhausted its budget (or the network
    /// was too large for the subset table) and the greedy order was
    /// used instead.
    pub truncated: bool,
    /// Modeled flops of the greedy order.
    pub greedy_flops: u128,
    /// Modeled flops of the chosen order (`== greedy_flops` for
    /// [`OrderStrategy::Greedy`], `<=` for a completed exact sweep).
    pub chosen_flops: u128,
}

/// Cost of one pairwise term under the sequence model (see module
/// docs): `union` is the term's iterated index set, `lineage` the
/// sparse-mode indices its operands inherit from the sparse tensor.
fn term_model_flops(
    kernel: &Kernel,
    profile: &SparsityProfile,
    union: IdxSet,
    lineage: IdxSet,
) -> u128 {
    let order = kernel.csf_index_order();
    let mut ell = 0;
    let mut prefix = IdxSet::EMPTY;
    for &idx in order {
        if union.contains(idx) && lineage.contains(idx) {
            ell += 1;
            prefix = prefix.insert(idx);
        } else {
            break;
        }
    }
    let mut cost: u128 = 2u128.saturating_mul(profile.prefix_nnz(ell) as u128);
    for i in union.minus(prefix).iter() {
        cost = cost.saturating_mul(kernel.dim(i) as u128);
    }
    cost
}

/// Modeled flops of a whole contraction path under the sequence cost
/// model — the objective both [`OrderStrategy`] variants minimize.
/// Exposed so external checks (tests, benches) can score brute-force
/// path enumerations with the *identical* model the planner uses.
pub fn modeled_path_flops(
    kernel: &Kernel,
    path: &ContractionPath,
    profile: &SparsityProfile,
) -> u128 {
    path.terms
        .iter()
        .map(|t| term_model_flops(kernel, profile, t.iter_inds(), t.lineage()))
        .fold(0u128, u128::saturating_add)
}

/// Item tracked by the greedy working list.
#[derive(Clone, Copy)]
struct Item {
    inds: IdxSet,
    lineage: IdxSet,
}

fn leaf_items(kernel: &Kernel) -> Vec<Item> {
    kernel
        .inputs
        .iter()
        .enumerate()
        .map(|(i, t)| Item {
            inds: t.index_set(),
            lineage: if i == kernel.sparse_input {
                t.index_set()
            } else {
                IdxSet::EMPTY
            },
        })
        .collect()
}

/// Greedy sweep: repeatedly contract the cheapest pair. Returns the
/// pick sequence (working-list coordinates for
/// [`path_from_picks`]) plus the number of pair evaluations spent.
fn greedy_picks(kernel: &Kernel, profile: &SparsityProfile) -> (Vec<(usize, usize)>, u64) {
    let mut items = leaf_items(kernel);
    let mut picks = Vec::with_capacity(items.len().saturating_sub(1));
    let mut evaluated = 0u64;
    while items.len() > 1 {
        let mut best: Option<(u128, u128, usize, usize)> = None;
        for a in 0..items.len() {
            for b in a + 1..items.len() {
                evaluated += 1;
                let union = items[a].inds.union(items[b].inds);
                let lineage = items[a].lineage.union(items[b].lineage);
                let cost = term_model_flops(kernel, profile, union, lineage);
                let mut needed = kernel.output_indices();
                for (k, it) in items.iter().enumerate() {
                    if k != a && k != b {
                        needed = needed.union(it.inds);
                    }
                }
                let out = union.intersect(needed);
                let size = out
                    .iter()
                    .map(|i| kernel.dim(i) as u128)
                    .fold(1u128, u128::saturating_mul);
                if best.is_none_or(|(bc, bs, _, _)| (cost, size) < (bc, bs)) {
                    best = Some((cost, size, a, b));
                }
            }
        }
        let (_, _, a, b) = best.expect("at least one pair");
        picks.push((a, b));
        // Mirror `path_from_picks`: drop both operands, append the
        // intermediate at the end of the working list.
        let union = items[a].inds.union(items[b].inds);
        let lineage = items[a].lineage.union(items[b].lineage);
        let mut needed = kernel.output_indices();
        for (k, it) in items.iter().enumerate() {
            if k != a && k != b {
                needed = needed.union(it.inds);
            }
        }
        let out = union.intersect(needed);
        let mut rest: Vec<Item> = Vec::with_capacity(items.len() - 1);
        for (k, it) in items.iter().enumerate() {
            if k != a && k != b {
                rest.push(*it);
            }
        }
        rest.push(Item {
            inds: out,
            lineage: lineage.intersect(out),
        });
        items = rest;
    }
    (picks, evaluated)
}

/// Largest network the subset table covers (`2^n` entries).
const MAX_EXACT_TENSORS: usize = 16;

/// Exact minimum over contraction trees: a dynamic program over leaf
/// subsets. Sound because the model is position-independent — the
/// visible index set of a subtree covering leaf set `S` is
/// `raw(S) ∩ (output ∪ raw(!S))` no matter when the subtree is built,
/// and its sparse lineage is `sparse_inds ∩ inds(S)` iff the sparse
/// leaf is in `S`. Splits whose cost already exceeds `mu_cap` (the
/// greedy total) are pruned: the final answer is `min(dp, greedy)`, so
/// nothing better is lost. Returns `None` when the evaluation budget
/// runs out.
fn optimal_picks(
    kernel: &Kernel,
    profile: &SparsityProfile,
    mu_cap: u128,
    budget: u64,
    evaluated: &mut u64,
) -> Option<(u128, Vec<(usize, usize)>)> {
    let n = kernel.inputs.len();
    if n > MAX_EXACT_TENSORS {
        return None;
    }
    let full: u32 = (1u32 << n) - 1;
    let size = 1usize << n;

    // raw(S): union of leaf index sets over S, by lowest-bit recursion.
    let leaves = leaf_items(kernel);
    let mut raw = vec![IdxSet::EMPTY; size];
    for s in 1..size {
        let low = s.trailing_zeros() as usize;
        raw[s] = raw[s & (s - 1)].union(leaves[low].inds);
    }
    let out_set = kernel.output_indices();
    let sparse_bit = 1u32 << kernel.sparse_input;
    let sparse_inds = kernel.sparse_indices();
    let inds_of =
        |s: u32| -> IdxSet { raw[s as usize].intersect(out_set.union(raw[(full & !s) as usize])) };
    let lineage_of = |s: u32| -> IdxSet {
        if s & sparse_bit != 0 {
            sparse_inds.intersect(inds_of(s))
        } else {
            IdxSet::EMPTY
        }
    };

    let mut cost: Vec<Option<u128>> = vec![None; size];
    let mut choice: Vec<(u32, u32)> = vec![(0, 0); size];
    for i in 0..n {
        cost[1usize << i] = Some(0);
    }
    // Ascending numeric order visits every strict subset before its
    // superset, so children are always resolved first.
    for s in 1..size {
        let su = s as u32;
        if su.count_ones() < 2 {
            continue;
        }
        let low = su & su.wrapping_neg();
        let rest = su ^ low;
        let mut best: Option<(u128, u32, u32)> = None;
        // Every split {A, B} of S with the lowest leaf pinned to A.
        let mut m = rest;
        loop {
            m = m.wrapping_sub(1) & rest;
            let a = low | m;
            let b = su ^ a;
            let viable = match (cost[a as usize], cost[b as usize]) {
                (Some(ca), Some(cb)) => {
                    *evaluated += 1;
                    if *evaluated > budget {
                        return None;
                    }
                    let sub = ca.saturating_add(cb);
                    if sub <= mu_cap {
                        let t = term_model_flops(
                            kernel,
                            profile,
                            inds_of(a).union(inds_of(b)),
                            lineage_of(a).union(lineage_of(b)),
                        );
                        Some(sub.saturating_add(t))
                    } else {
                        None
                    }
                }
                _ => None,
            };
            if let Some(total) = viable {
                if total <= mu_cap && best.is_none_or(|(bc, _, _)| total < bc) {
                    best = Some((total, a, b));
                }
            }
            if m == 0 {
                break;
            }
        }
        if let Some((c, a, b)) = best {
            cost[s] = Some(c);
            choice[s] = (a, b);
        }
    }

    let total = cost[full as usize]?;
    // Postorder the chosen tree, then translate subtree pairs into
    // working-list pick coordinates (the `path_from_picks` contract:
    // remove both operands, append the intermediate).
    let mut order: Vec<(u32, u32)> = Vec::with_capacity(n - 1);
    fn post(s: u32, choice: &[(u32, u32)], order: &mut Vec<(u32, u32)>) {
        if s.count_ones() <= 1 {
            return;
        }
        let (a, b) = choice[s as usize];
        post(a, choice, order);
        post(b, choice, order);
        order.push((a, b));
    }
    post(full, &choice, &mut order);
    let mut list: Vec<u32> = (0..n as u32).map(|i| 1u32 << i).collect();
    let mut picks = Vec::with_capacity(n - 1);
    for (a, b) in order {
        let pa = list.iter().position(|&x| x == a).expect("child present");
        let pb = list.iter().position(|&x| x == b).expect("child present");
        picks.push((pa, pb));
        list = list
            .iter()
            .enumerate()
            .filter(|&(k, _)| k != pa && k != pb)
            .map(|(_, &x)| x)
            .collect();
        list.push(a | b);
    }
    Some((total, picks))
}

/// Run the configured order search. The caller guarantees the network
/// has at least two tensors.
pub(crate) fn choose_path(
    kernel: &Kernel,
    profile: &SparsityProfile,
    opts: &NetOptions,
) -> (ContractionPath, SearchReport) {
    let (gpicks, mut evaluated) = greedy_picks(kernel, profile);
    let greedy_path = path_from_picks(kernel, &gpicks);
    let greedy_flops = modeled_path_flops(kernel, &greedy_path, profile);
    match opts.order {
        OrderStrategy::Greedy => {
            let report = SearchReport {
                strategy: OrderStrategy::Greedy,
                evaluated_pairs: evaluated,
                truncated: false,
                greedy_flops,
                chosen_flops: greedy_flops,
            };
            (greedy_path, report)
        }
        OrderStrategy::Optimal => {
            match optimal_picks(kernel, profile, greedy_flops, opts.budget, &mut evaluated) {
                Some((flops, picks)) if flops < greedy_flops => {
                    let path = path_from_picks(kernel, &picks);
                    debug_assert_eq!(modeled_path_flops(kernel, &path, profile), flops);
                    let report = SearchReport {
                        strategy: OrderStrategy::Optimal,
                        evaluated_pairs: evaluated,
                        truncated: false,
                        greedy_flops,
                        chosen_flops: flops,
                    };
                    (path, report)
                }
                Some(_) => {
                    // The sweep completed and greedy was already
                    // optimal (it is one of the trees the DP covers).
                    let report = SearchReport {
                        strategy: OrderStrategy::Optimal,
                        evaluated_pairs: evaluated,
                        truncated: false,
                        greedy_flops,
                        chosen_flops: greedy_flops,
                    };
                    (greedy_path, report)
                }
                None => {
                    let report = SearchReport {
                        strategy: OrderStrategy::Optimal,
                        evaluated_pairs: evaluated,
                        truncated: true,
                        greedy_flops,
                        chosen_flops: greedy_flops,
                    };
                    (greedy_path, report)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spttn::ir::{enumerate_paths, parse_kernel};

    fn profile_for(kernel: &Kernel, nnz: u64) -> SparsityProfile {
        let dims: Vec<usize> = kernel
            .csf_index_order()
            .iter()
            .map(|&i| kernel.dim(i))
            .collect();
        let natural: Vec<usize> = (0..dims.len()).collect();
        SparsityProfile::uniform(&dims, &natural, nnz).unwrap()
    }

    fn brute_force_min(kernel: &Kernel, profile: &SparsityProfile) -> u128 {
        enumerate_paths(kernel)
            .iter()
            .map(|p| modeled_path_flops(kernel, p, profile))
            .min()
            .unwrap()
    }

    #[test]
    fn exact_sweep_matches_brute_force() {
        for (expr, dims) in [
            (
                "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
                vec![("i", 40), ("j", 30), ("k", 20), ("r", 8), ("s", 9)],
            ),
            (
                "O(i,s) = T(i,j,k) * A(j,r) * B(k,r) * C(r,s)",
                vec![("i", 25), ("j", 18), ("k", 12), ("r", 6), ("s", 7)],
            ),
            (
                "O(c) = T(i,j,k) * G1(i,a) * G2(a,j,b) * G3(b,k,c)",
                vec![("i", 12), ("j", 10), ("k", 8), ("a", 4), ("b", 5), ("c", 6)],
            ),
        ] {
            let kernel = parse_kernel(expr, &dims).unwrap();
            let profile = profile_for(&kernel, 700);
            let opts = NetOptions::default().with_order(OrderStrategy::Optimal);
            let (path, report) = choose_path(&kernel, &profile, &opts);
            assert!(!report.truncated);
            let best = brute_force_min(&kernel, &profile);
            assert_eq!(report.chosen_flops, best, "{expr}");
            assert_eq!(modeled_path_flops(&kernel, &path, &profile), best);
            assert!(report.greedy_flops >= best);
        }
    }

    #[test]
    fn exhausted_budget_falls_back_to_greedy() {
        let kernel = parse_kernel(
            "O(i,s) = T(i,j,k) * A(j,r) * B(k,r) * C(r,s)",
            &[("i", 25), ("j", 18), ("k", 12), ("r", 6), ("s", 7)],
        )
        .unwrap();
        let profile = profile_for(&kernel, 300);
        let opts = NetOptions::default()
            .with_order(OrderStrategy::Optimal)
            .with_budget(1);
        let (path, report) = choose_path(&kernel, &profile, &opts);
        assert!(report.truncated);
        assert_eq!(report.chosen_flops, report.greedy_flops);
        assert_eq!(
            modeled_path_flops(&kernel, &path, &profile),
            report.greedy_flops
        );
    }

    #[test]
    fn dense_terms_cost_full_dense_work() {
        // U(j,r)*V(k,s) off the sparse tensor: 2·J·R·K·S, no pruning.
        let kernel = parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 40), ("j", 30), ("k", 20), ("r", 8), ("s", 9)],
        )
        .unwrap();
        let profile = profile_for(&kernel, 500);
        let p = path_from_picks(&kernel, &[(1, 2), (0, 1)]);
        let dense = term_model_flops(
            &kernel,
            &profile,
            p.terms[0].iter_inds(),
            p.terms[0].lineage(),
        );
        assert_eq!(dense, 2 * 30 * 8 * 20 * 9);
        // The sparse term keeps its full-prefix pruning.
        let sparse = term_model_flops(
            &kernel,
            &profile,
            p.terms[1].iter_inds(),
            p.terms[1].lineage(),
        );
        assert_eq!(sparse, 2 * profile.nnz() as u128 * 8 * 9);
    }
}
