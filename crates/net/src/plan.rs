//! Lowering: a chosen contraction path becomes materialized dense
//! steps plus one collapsed sparse-spine kernel, ready to bind.
//!
//! Every term whose subtree contains the sparse tensor sits on the
//! *sparse spine* — the chain from the sparse leaf to the root. Those
//! terms are not executed pairwise: they collapse back into a single
//! SpTTN kernel (the sparse tensor, the spine's original dense
//! operands, and the materialized off-spine intermediates `_net{t}`),
//! which the Sec. 5 planner then fuses and orders optimally. Off-spine
//! terms are dense-dense contractions with no sparsity to exploit; they
//! lower to precomputed stride-walk loops writing preallocated
//! intermediates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use spttn::ir::{ContractionPath, IndexId, Kernel, KernelBuilder, Operand};
use spttn::tensor::{Csf, DenseTensor};
use spttn::{Contraction, Plan, PlanCache, Result, Shapes, SpttnError};

use crate::exec::NetworkExecutor;
use crate::network::{Network, INTER_PREFIX};
use crate::planner::{choose_path, NetOptions, SearchReport};

/// One loop of a dense step's stride walk: `extent` iterations
/// advancing the left/right/output offsets by the given strides
/// (`0` when the operand does not carry the loop's index).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LoopDim {
    pub extent: usize,
    pub l: usize,
    pub r: usize,
    pub o: usize,
}

/// Where a dense step reads an operand from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepSrc {
    /// `dense_inputs[k]` — an executor-owned copy of a user factor.
    User(usize),
    /// `inters[slot]` — an earlier step's output.
    Inter(usize),
}

/// A materialized dense-dense pairwise contraction, fully resolved to
/// loop extents and strides at plan time.
#[derive(Debug, Clone)]
pub(crate) struct DenseStep {
    pub left: StepSrc,
    pub right: StepSrc,
    /// Output workspace slot (`inters[out_slot]`).
    pub out_slot: usize,
    /// Output loops first (row-major over the intermediate), then
    /// contracted loops.
    pub loops: Vec<LoopDim>,
    /// Modeled flops (`2·∏ extents`).
    pub flops: u128,
    /// Human-readable `A(i,j)*B(j,k) -> _net2(i,k)` form.
    pub desc: String,
}

/// How the collapsed kernel's dense factor slots are fed at bind time.
#[derive(Debug, Clone)]
pub(crate) enum CollapsedInput {
    /// A user-supplied factor, by name.
    User(String),
    /// A materialized intermediate (`inters[slot]`, named `_net{t}`).
    Inter { slot: usize, name: String },
}

/// A planned network: the chosen contraction order, its lowered dense
/// steps, and the Sec. 5 plan for the collapsed sparse-spine kernel.
/// Bind it to operands many times via [`NetworkPlan::bind`] /
/// [`NetworkPlan::bind_pooled`].
#[derive(Debug, Clone)]
pub struct NetworkPlan {
    expr: String,
    kernel: Kernel,
    path: ContractionPath,
    report: SearchReport,
    pub(crate) steps: Vec<DenseStep>,
    /// Dimensions of each intermediate workspace slot.
    pub(crate) inter_dims: Vec<Vec<usize>>,
    /// User factors dense steps read: `(name, dims, network input slot)`,
    /// indexed by [`StepSrc::User`].
    pub(crate) step_users: Vec<(String, Vec<usize>)>,
    /// Dense-factor feed order of the collapsed kernel.
    pub(crate) collapsed_inputs: Vec<CollapsedInput>,
    pub(crate) plan: Arc<Plan>,
}

impl NetworkPlan {
    pub(crate) fn new(
        network: &Network,
        shapes: &Shapes,
        cache: Option<&PlanCache>,
        opts: &NetOptions,
    ) -> Result<Self> {
        let kernel = network.kernel(shapes)?;
        let n = kernel.inputs.len();
        let sparse_names: Vec<String> = network.sparse_index_names();
        let (path, report) = if n == 1 {
            // Degenerate single-tensor "network": nothing to order.
            let empty = ContractionPath {
                terms: Vec::new(),
                sparse_term: 0,
            };
            let report = SearchReport {
                strategy: opts.order,
                evaluated_pairs: 0,
                truncated: false,
                greedy_flops: 0,
                chosen_flops: 0,
            };
            (empty, report)
        } else {
            let profile = shapes.natural_profile(&sparse_names)?;
            choose_path(&kernel, &profile, opts)
        };

        // A term is on the sparse spine iff its subtree contains the
        // sparse leaf; exactly one operand side can be sparse.
        let nterms = path.terms.len();
        let mut on_spine = vec![false; nterms];
        for t in 0..nterms {
            let side = |op: Operand| match op {
                Operand::Input(i) => i == kernel.sparse_input,
                Operand::Inter(u) => on_spine[u],
            };
            on_spine[t] = side(path.terms[t].left) || side(path.terms[t].right);
        }

        // Lower off-spine terms to dense steps, in term (postorder)
        // order — children always precede their consumer.
        let mut inter_slot: Vec<Option<usize>> = vec![None; nterms];
        let mut inter_dims: Vec<Vec<usize>> = Vec::new();
        let mut step_users: Vec<(String, Vec<usize>)> = Vec::new();
        let mut steps: Vec<DenseStep> = Vec::new();
        let op_order = |op: Operand| -> Vec<IndexId> {
            match op {
                Operand::Input(i) => kernel.inputs[i].indices.clone(),
                Operand::Inter(u) => path.terms[u].out_inds.to_vec(),
            }
        };
        let op_desc = |op: Operand| -> String {
            let (name, inds) = match op {
                Operand::Input(i) => (kernel.inputs[i].name.clone(), op_order(op)),
                Operand::Inter(u) => (format!("{INTER_PREFIX}{u}"), op_order(op)),
            };
            let names: Vec<&str> = inds.iter().map(|&i| kernel.index_name(i)).collect();
            format!("{name}({})", names.join(","))
        };
        for t in 0..nterms {
            if on_spine[t] {
                continue;
            }
            let term = &path.terms[t];
            let out_v = term.out_inds.to_vec();
            if out_v.is_empty() {
                return Err(SpttnError::Planning(format!(
                    "dense step {} contracts to a scalar; scalar intermediates \
                     are not supported",
                    op_desc(term.left)
                )));
            }
            let mut resolve = |op: Operand| -> StepSrc {
                match op {
                    Operand::Inter(u) => {
                        StepSrc::Inter(inter_slot[u].expect("child lowered first"))
                    }
                    Operand::Input(i) => {
                        let name = &kernel.inputs[i].name;
                        let dims = kernel.ref_dims(&kernel.inputs[i]);
                        let k = step_users
                            .iter()
                            .position(|(n, d)| n == name && *d == dims)
                            .unwrap_or_else(|| {
                                step_users.push((name.clone(), dims));
                                step_users.len() - 1
                            });
                        StepSrc::User(k)
                    }
                }
            };
            let left = resolve(term.left);
            let right = resolve(term.right);
            let lorder = op_order(term.left);
            let rorder = op_order(term.right);
            let stride_in = |order: &[IndexId], idx: IndexId| -> usize {
                match order.iter().position(|&i| i == idx) {
                    None => 0,
                    Some(p) => order[p + 1..].iter().map(|&i| kernel.dim(i)).product(),
                }
            };
            let con_v = term.contracted().to_vec();
            let mut loops = Vec::with_capacity(out_v.len() + con_v.len());
            let mut flops: u128 = 2;
            for &idx in out_v.iter().chain(con_v.iter()) {
                loops.push(LoopDim {
                    extent: kernel.dim(idx),
                    l: stride_in(&lorder, idx),
                    r: stride_in(&rorder, idx),
                    o: stride_in(&out_v, idx),
                });
                flops = flops.saturating_mul(kernel.dim(idx) as u128);
            }
            let slot = inter_dims.len();
            inter_slot[t] = Some(slot);
            inter_dims.push(out_v.iter().map(|&i| kernel.dim(i)).collect());
            let out_names: Vec<&str> = out_v.iter().map(|&i| kernel.index_name(i)).collect();
            let desc = format!(
                "{} * {} -> {INTER_PREFIX}{t}({})",
                op_desc(term.left),
                op_desc(term.right),
                out_names.join(",")
            );
            steps.push(DenseStep {
                left,
                right,
                out_slot: slot,
                loops,
                flops,
                desc,
            });
        }

        // Collapse the spine into one SpTTN kernel: the sparse tensor
        // plus each spine term's non-sparse operand, bottom-up.
        let mut collapsed_refs: Vec<(String, Vec<IndexId>)> = vec![(
            kernel.inputs[kernel.sparse_input].name.clone(),
            kernel.inputs[kernel.sparse_input].indices.clone(),
        )];
        let mut collapsed_inputs: Vec<CollapsedInput> = Vec::new();
        for t in 0..nterms {
            if !on_spine[t] {
                continue;
            }
            let term = &path.terms[t];
            let sparse_side = |op: Operand| match op {
                Operand::Input(i) => i == kernel.sparse_input,
                Operand::Inter(u) => on_spine[u],
            };
            let other = if sparse_side(term.left) {
                term.right
            } else {
                term.left
            };
            match other {
                Operand::Input(i) => {
                    collapsed_refs.push((
                        kernel.inputs[i].name.clone(),
                        kernel.inputs[i].indices.clone(),
                    ));
                    collapsed_inputs.push(CollapsedInput::User(kernel.inputs[i].name.clone()));
                }
                Operand::Inter(u) => {
                    let name = format!("{INTER_PREFIX}{u}");
                    collapsed_refs.push((name.clone(), path.terms[u].out_inds.to_vec()));
                    collapsed_inputs.push(CollapsedInput::Inter {
                        slot: inter_slot[u].expect("off-spine root lowered"),
                        name,
                    });
                }
            }
        }
        if collapsed_refs.len() > opts.max_kernel_inputs {
            return Err(SpttnError::Planning(format!(
                "the chosen order keeps {} tensors on the sparse spine, above the \
                 collapsed-kernel limit of {} (NetOptions::max_kernel_inputs); \
                 raise the limit or restructure the network",
                collapsed_refs.len(),
                opts.max_kernel_inputs
            )));
        }

        // Build the collapsed kernel with a fresh, compact index table
        // (only the indices the spine still sees).
        let mut b = KernelBuilder::new();
        for (_, inds) in &collapsed_refs {
            for &idx in inds {
                b = b.index(kernel.index_name(idx), kernel.dim(idx));
            }
        }
        let out_names: Vec<&str> = kernel
            .output
            .indices
            .iter()
            .map(|&i| kernel.index_name(i))
            .collect();
        b = b.output(&kernel.output.name, &out_names);
        for (name, inds) in &collapsed_refs {
            let names: Vec<&str> = inds.iter().map(|&i| kernel.index_name(i)).collect();
            b = b.input(name, &names);
        }
        if kernel.output_sparse {
            b = b.sparse_output();
        }
        let collapsed = b.build()?;

        let contraction =
            Contraction::from_kernel(collapsed).with_accumulate(network.is_accumulate());
        let plan = match cache {
            Some(c) => c.plan(contraction, shapes, &opts.plan)?,
            None => Arc::new(contraction.plan(shapes, &opts.plan)?),
        };

        Ok(NetworkPlan {
            expr: network.expr().to_string(),
            kernel,
            path,
            report,
            steps,
            inter_dims,
            step_users,
            collapsed_inputs,
            plan,
        })
    }

    /// The whole-network kernel (index table, operands, output).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The chosen contraction path over the network kernel.
    pub fn path(&self) -> &ContractionPath {
        &self.path
    }

    /// What the order search did and found.
    pub fn report(&self) -> &SearchReport {
        &self.report
    }

    /// The Sec. 5 plan of the collapsed sparse-spine kernel.
    pub fn kernel_plan(&self) -> &Arc<Plan> {
        &self.plan
    }

    /// Number of materialized dense-dense steps (zero when every factor
    /// sits on the sparse spine, e.g. MTTKRP/TTMc-shaped networks).
    pub fn num_dense_steps(&self) -> usize {
        self.steps.len()
    }

    /// Modeled flops of each dense step, in execution order.
    pub fn dense_step_flops(&self) -> Vec<u128> {
        self.steps.iter().map(|s| s.flops).collect()
    }

    /// A [`WorkspacePool`] shaped for this plan's intermediates. Share
    /// one pool (behind an `Arc`) across executors and threads to reuse
    /// workspace allocations via [`NetworkPlan::bind_pooled`].
    pub fn pool(&self) -> WorkspacePool {
        WorkspacePool {
            dims: self.inter_dims.clone(),
            free: Mutex::new(Vec::new()),
            created: AtomicU64::new(0),
            reused: AtomicU64::new(0),
        }
    }

    /// **Stage 2 — bind.** Attach the sparse tensor and named dense
    /// factors, allocating fresh intermediate workspaces. The returned
    /// executor's `execute_into` is allocation-free after the first
    /// call.
    pub fn bind(&self, csf: Csf, factors: &[(&str, &DenseTensor)]) -> Result<NetworkExecutor> {
        NetworkExecutor::bind(self, None, csf, factors)
    }

    /// Like [`NetworkPlan::bind`], but intermediate workspaces are
    /// checked out of `pool` (and checked back in when the executor
    /// drops), so repeated bind/drop cycles stop allocating once the
    /// pool is warm.
    pub fn bind_pooled(
        &self,
        pool: &Arc<WorkspacePool>,
        csf: Csf,
        factors: &[(&str, &DenseTensor)],
    ) -> Result<NetworkExecutor> {
        if pool.dims != self.inter_dims {
            return Err(SpttnError::Execution(
                "workspace pool was created for a different network plan".into(),
            ));
        }
        NetworkExecutor::bind(self, Some(Arc::clone(pool)), csf, factors)
    }

    /// Human-readable summary: order search, per-step lowering, and the
    /// collapsed kernel's plan.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("network: {}\n", self.expr));
        s.push_str(&format!(
            "order:   {} — modeled flops {} (greedy {}){}\n",
            self.report.strategy,
            self.report.chosen_flops,
            self.report.greedy_flops,
            if self.report.truncated {
                " [budget exhausted; greedy order used]"
            } else {
                ""
            }
        ));
        if !self.path.is_empty() {
            s.push_str(&format!("path:    {}\n", self.path.describe(&self.kernel)));
        }
        for (i, st) in self.steps.iter().enumerate() {
            s.push_str(&format!(
                "step {i}:  dense {} [{} flops]\n",
                st.desc, st.flops
            ));
        }
        s.push_str(&format!(
            "kernel:  {} tensors collapsed onto the sparse spine\n",
            self.collapsed_inputs.len() + 1
        ));
        s.push_str(&self.plan.describe());
        s
    }
}

/// A checkout/checkin pool of intermediate workspace sets, shaped for
/// one [`NetworkPlan`]. Thread-safe: wrap it in an `Arc` and hand it to
/// [`NetworkPlan::bind_pooled`] from any thread.
#[derive(Debug)]
pub struct WorkspacePool {
    dims: Vec<Vec<usize>>,
    free: Mutex<Vec<Vec<DenseTensor>>>,
    created: AtomicU64,
    reused: AtomicU64,
}

impl WorkspacePool {
    /// Lock the free list, recovering from poisoning: the list holds
    /// only complete workspace sets (push/pop are atomic with respect
    /// to the lock), so a thread that panicked while holding it cannot
    /// have left a half-updated invariant behind.
    fn free_list(&self) -> MutexGuard<'_, Vec<Vec<DenseTensor>>> {
        self.free.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Check a full workspace set out of the pool, allocating fresh
    /// tensors only when the free list is empty.
    pub fn checkout(&self) -> Vec<DenseTensor> {
        if let Some(set) = self.free_list().pop() {
            self.reused.fetch_add(1, Ordering::Relaxed);
            return set;
        }
        self.created.fetch_add(1, Ordering::Relaxed);
        self.dims.iter().map(|d| DenseTensor::zeros(d)).collect()
    }

    /// Return a workspace set for reuse. Sets whose shapes do not match
    /// the pool (from a different plan) are dropped instead of pooled.
    pub fn checkin(&self, set: Vec<DenseTensor>) {
        let matches = set.len() == self.dims.len()
            && set.iter().zip(&self.dims).all(|(t, d)| t.dims() == &d[..]);
        if matches {
            self.free_list().push(set);
        }
    }

    /// Workspace sets allocated fresh (pool misses).
    pub fn created(&self) -> u64 {
        self.created.load(Ordering::Relaxed)
    }

    /// Workspace sets served from the free list (pool hits).
    pub fn reused(&self) -> u64 {
        self.reused.load(Ordering::Relaxed)
    }

    /// Sets currently available for checkout.
    pub fn available(&self) -> usize {
        self.free_list().len()
    }
}

// Pools are shared across binding threads by design.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<WorkspacePool>();
};
