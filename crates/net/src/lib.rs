//! Tensor-network contraction sequencing over the SpTTN planner.
//!
//! The core `spttn` crate plans and executes *one* SpTTN kernel: a
//! sparse tensor times a set of dense factors. Real workloads (CP-ALS
//! sweeps, Tucker/tensor-train contractions, quantum-circuit-shaped
//! networks) are *sequences* of pairwise contractions over many
//! tensors. This crate adds that layer:
//!
//! 1. [`Network::parse`] accepts an einsum expression with arbitrarily
//!    many tensors sharing indices (first input sparse, rest dense).
//! 2. [`Network::plan`] searches pairwise contraction orders — greedy,
//!    or a budgeted cost-capped exact subset sweep in the style of
//!    Pfeifer et al.'s netcon ([`OrderStrategy::Optimal`]) — under the
//!    materialization-aware cost model of [`modeled_path_flops`].
//! 3. The chosen order is lowered ([`NetworkPlan`]): pairwise steps
//!    that do not involve the sparse operand become materialized dense
//!    loops, while every step along the sparse *spine* collapses into a
//!    single SpTTN kernel that the Sec. 5 planner re-optimizes (loop
//!    nest, mode order, buffers) — optionally through a shared
//!    [`spttn::PlanCache`].
//! 4. [`NetworkPlan::bind`] produces a [`NetworkExecutor`] whose
//!    steady-state `execute_into` is allocation-free; intermediate
//!    workspaces can be checked out of a [`WorkspacePool`] shared by
//!    many executors across threads.
//!
//! ```
//! use spttn::{Shapes, Threads};
//! use spttn_net::{NetOptions, Network, OrderStrategy};
//!
//! // One CP-ALS factor update: T contracted with two factor matrices
//! // and a dense mixing matrix.
//! let net = Network::parse("T[i,j,k]*B[j,r]*C[k,r]*M[r,s] -> A[i,s]").unwrap();
//! let shapes = Shapes::new()
//!     .with_dims(&[("i", 30), ("j", 20), ("k", 25), ("r", 8), ("s", 8)])
//!     .with_nnz(500);
//! let opts = NetOptions::default().with_order(OrderStrategy::Optimal);
//! let plan = net.plan(&shapes, &opts).unwrap();
//! assert!(plan.report().chosen_flops <= plan.report().greedy_flops);
//! # let _ = Threads::Auto;
//! ```

#![forbid(unsafe_code)]

mod exec;
mod network;
mod plan;
mod planner;

pub use exec::NetworkExecutor;
pub use network::Network;
pub use plan::{NetworkPlan, WorkspacePool};
pub use planner::{modeled_path_flops, NetOptions, OrderStrategy, SearchReport};
