//! Bound network execution: dense stride-walk steps feeding a single
//! collapsed SpTTN kernel, allocation-free in steady state.

use std::collections::HashMap;
use std::sync::Arc;

use spttn::tensor::{Csf, DenseTensor};
use spttn::{ContractionOutput, ExecStats, Executor, Result, RunGuard, SpttnError};

use crate::plan::{CollapsedInput, DenseStep, LoopDim, NetworkPlan, StepSrc, WorkspacePool};

/// Where a user factor's data flows on [`NetworkExecutor::set_factor`].
#[derive(Debug, Clone, Default)]
struct Route {
    /// The factor feeds the collapsed kernel directly.
    kernel: bool,
    /// Executor-owned copies consumed by dense steps.
    dense: Vec<usize>,
}

/// A [`NetworkPlan`] bound to operands, ready for repeated execution.
///
/// `execute_into` runs every dense step into its preallocated
/// intermediate, pushes the spine-feeding intermediates into the inner
/// kernel executor's factor slots (a copy, no allocation), and executes
/// the collapsed kernel — zero heap allocations after the first call.
/// Executors are `Send`: bind on one thread, execute on another, and
/// pool the intermediate workspaces across threads via
/// [`NetworkPlan::bind_pooled`].
#[derive(Debug)]
pub struct NetworkExecutor {
    exec: Executor,
    steps: Vec<DenseStep>,
    inters: Vec<DenseTensor>,
    dense_inputs: Vec<DenseTensor>,
    /// `(workspace slot, kernel factor name)` pairs pushed into the
    /// inner executor before every kernel run.
    feeds: Vec<(usize, String)>,
    routes: HashMap<String, Route>,
    pool: Option<Arc<WorkspacePool>>,
    dense_flops: u128,
    /// True while an execution is in flight (set on entry, cleared on
    /// success): an early exit — error or cancellation — leaves the
    /// intermediates partially written, and [`Drop`] must scrub them
    /// before any pool checkin so a later checkout never receives a
    /// half-computed workspace as clean.
    dirty: bool,
}

impl NetworkExecutor {
    pub(crate) fn bind(
        plan: &NetworkPlan,
        pool: Option<Arc<WorkspacePool>>,
        csf: Csf,
        factors: &[(&str, &DenseTensor)],
    ) -> Result<Self> {
        let mut fmap: HashMap<&str, &DenseTensor> = HashMap::new();
        for (name, t) in factors {
            fmap.insert(name, t);
        }
        // Validate every network factor up front, whether it feeds a
        // dense step, the collapsed kernel, or both.
        let kernel = plan.kernel();
        let mut routes: HashMap<String, Route> = HashMap::new();
        for (slot, r) in kernel.inputs.iter().enumerate() {
            if slot == kernel.sparse_input {
                continue;
            }
            let t = fmap.get(r.name.as_str()).ok_or_else(|| {
                SpttnError::Execution(format!(
                    "network factor '{}' was not supplied at bind",
                    r.name
                ))
            })?;
            let want = kernel.ref_dims(r);
            if t.dims() != want.as_slice() {
                return Err(SpttnError::Shape(format!(
                    "factor '{}' has dims {:?}, the network needs {:?}",
                    r.name,
                    t.dims(),
                    want
                )));
            }
            routes.entry(r.name.clone()).or_default();
        }

        // Bind-time admission of the network-wide budget (carried by
        // the collapsed kernel's `ExecOptions`). Flops are the dense
        // steps plus the kernel's modeled count; workspace bytes are
        // the intermediates plus the kernel's serial one-thread floor
        // (the inner `Plan::bind` degrades its own thread count below
        // that bound). Both gates run before any workspace is checked
        // out of the pool, so a rejected bind touches nothing.
        let opts = plan.plan.exec();
        let dense_flops = plan
            .steps
            .iter()
            .map(|s| s.flops)
            .fold(0u128, u128::saturating_add);
        if let Some(max) = opts.budget.max_modeled_flops {
            let predicted = dense_flops.saturating_add(plan.plan.flops);
            if predicted > max {
                return Err(SpttnError::BudgetExceeded {
                    resource: "modeled flops",
                    predicted,
                    allowed: max,
                });
            }
        }
        if let Some(max) = opts.budget.max_workspace_bytes {
            let inter_bytes: u128 = plan
                .inter_dims
                .iter()
                .map(|d| {
                    d.iter()
                        .map(|&x| x as u128)
                        .product::<u128>()
                        .saturating_mul(8)
                })
                .fold(0, u128::saturating_add);
            let predicted =
                inter_bytes.saturating_add(plan.plan.parallel_footprint(1).saturating_mul(8));
            if predicted > u128::from(max) {
                return Err(SpttnError::BudgetExceeded {
                    resource: "workspace bytes",
                    predicted,
                    allowed: u128::from(max),
                });
            }
        }

        // Dense-step-only factors never reach the collapsed kernel, so
        // the input-slot validation above does not cover them — resolve
        // with a typed error, not an assumption.
        let mut dense_inputs: Vec<DenseTensor> = Vec::with_capacity(plan.step_users.len());
        for (name, _) in &plan.step_users {
            let t = fmap.get(name.as_str()).ok_or_else(|| {
                SpttnError::Execution(format!("network factor '{name}' was not supplied at bind"))
            })?;
            dense_inputs.push((*t).clone());
        }
        for (k, (name, _)) in plan.step_users.iter().enumerate() {
            routes.entry(name.clone()).or_default().dense.push(k);
        }

        let inters: Vec<DenseTensor> = match &pool {
            Some(p) => p.checkout(),
            None => plan
                .inter_dims
                .iter()
                .map(|d| DenseTensor::zeros(d))
                .collect(),
        };

        let mut feeds: Vec<(usize, String)> = Vec::new();
        let mut refs: Vec<(&str, &DenseTensor)> = Vec::new();
        for ci in &plan.collapsed_inputs {
            match ci {
                CollapsedInput::User(name) => {
                    routes.entry(name.clone()).or_default().kernel = true;
                    if !refs.iter().any(|(n, _)| *n == name.as_str()) {
                        refs.push((name.as_str(), fmap[name.as_str()]));
                    }
                }
                CollapsedInput::Inter { slot, name } => {
                    feeds.push((*slot, name.clone()));
                    refs.push((name.as_str(), &inters[*slot]));
                }
            }
        }
        let exec = plan.plan.bind(csf, &refs)?;
        Ok(NetworkExecutor {
            exec,
            steps: plan.steps.clone(),
            inters,
            dense_inputs,
            feeds,
            routes,
            pool,
            dense_flops,
            dirty: false,
        })
    }

    /// Run the full network into a caller-owned output (start from
    /// [`NetworkExecutor::output_template`]). Allocation-free after the
    /// first call.
    ///
    /// A cancel token or deadline on the collapsed kernel's
    /// [`spttn::ExecOptions`] guards the whole network run: the shared
    /// deadline clock starts here, execution checks it before every
    /// dense step and at the kernel's root-subtree boundaries, and an
    /// expiry returns [`SpttnError::Cancelled`] with phase `"network"`
    /// (between steps) or the kernel's own phase. On any early exit the
    /// intermediates are marked dirty and scrubbed before pool checkin.
    pub fn execute_into(&mut self, out: &mut ContractionOutput) -> Result<()> {
        let opts = self.exec.plan().exec();
        // One guard for the whole network execution: the kernel run at
        // the end shares the same deadline instant as the dense steps.
        let guard = RunGuard::new(opts.cancel, opts.deadline);
        self.dirty = true;
        for step in &self.steps {
            guard.check("network")?;
            // Split the output workspace out of `inters` so the borrows
            // of an `Inter` operand and the output never alias: a
            // step's operands occupy strictly earlier slots (postorder
            // lowering), so they sit left of the split.
            let (before, rest) = self.inters.split_at_mut(step.out_slot);
            let dst = rest[0].as_mut_slice();
            dst.fill(0.0);
            let l = match step.left {
                StepSrc::User(k) => self.dense_inputs[k].as_slice(),
                StepSrc::Inter(s) => before[s].as_slice(),
            };
            let r = match step.right {
                StepSrc::User(k) => self.dense_inputs[k].as_slice(),
                StepSrc::Inter(s) => before[s].as_slice(),
            };
            run_loops(&step.loops, l, r, dst, 0, 0, 0);
        }
        guard.check("network")?;
        for (slot, name) in &self.feeds {
            self.exec.set_factor(name, &self.inters[*slot])?;
        }
        self.exec.execute_into_guarded(out, Some(&guard))?;
        self.dirty = false;
        Ok(())
    }

    /// Convenience wrapper: allocate a fresh output and execute.
    pub fn execute(&mut self) -> Result<ContractionOutput> {
        let mut out = self.output_template();
        self.execute_into(&mut out)?;
        Ok(out)
    }

    /// An output container shaped for this network (dense zeros, or the
    /// sparse pattern for pattern-sharing outputs).
    pub fn output_template(&self) -> ContractionOutput {
        self.exec.output_template()
    }

    /// Replace a dense factor's values by name, copying into every
    /// consumer (dense steps and/or the collapsed kernel) without
    /// allocating. Dimensions must match the bind.
    pub fn set_factor(&mut self, name: &str, tensor: &DenseTensor) -> Result<()> {
        let route = self.routes.get(name).ok_or_else(|| {
            SpttnError::Execution(format!("'{name}' is not a dense factor of this network"))
        })?;
        for &k in &route.dense {
            if self.dense_inputs[k].dims() != tensor.dims() {
                return Err(SpttnError::Shape(format!(
                    "factor '{}' has dims {:?}, the network needs {:?}",
                    name,
                    tensor.dims(),
                    self.dense_inputs[k].dims()
                )));
            }
            self.dense_inputs[k]
                .as_mut_slice()
                .copy_from_slice(tensor.as_slice());
        }
        if route.kernel {
            self.exec.set_factor(name, tensor)?;
        }
        Ok(())
    }

    /// Replace the sparse tensor's values in place (same pattern).
    pub fn set_sparse_values(&mut self, vals: &[f64]) -> Result<()> {
        self.exec.set_sparse_values(vals)
    }

    /// Execution statistics of the collapsed kernel's last run.
    pub fn kernel_stats(&self) -> ExecStats {
        self.exec.last_stats()
    }

    /// Modeled flops of the dense steps per execution (the kernel's
    /// measured ops come from [`NetworkExecutor::kernel_stats`]).
    pub fn dense_step_flops(&self) -> u128 {
        self.dense_flops
    }

    /// Number of materialized dense steps per execution.
    pub fn num_dense_steps(&self) -> usize {
        self.steps.len()
    }

    /// Worker threads the collapsed kernel executes on.
    pub fn threads(&self) -> usize {
        self.exec.threads()
    }

    /// Human-readable summary of the bound plan.
    pub fn describe(&self) -> String {
        self.exec.describe()
    }
}

impl Drop for NetworkExecutor {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            let mut set = std::mem::take(&mut self.inters);
            // An execution that erred or was cancelled left these
            // partially written; zero them so the pool never hands a
            // half-computed workspace to the next checkout as clean.
            if self.dirty {
                for t in &mut set {
                    t.fill_zero();
                }
            }
            pool.checkin(set);
        }
    }
}

/// Recursive stride walk: outer loops advance precomputed offsets, the
/// innermost level does `out[o] += l[lo] * r[ro]`. No temporaries, no
/// allocation, no data-dependent control flow.
fn run_loops(
    loops: &[LoopDim],
    l: &[f64],
    r: &[f64],
    out: &mut [f64],
    lo: usize,
    ro: usize,
    oo: usize,
) {
    match loops.split_first() {
        None => out[oo] += l[lo] * r[ro],
        Some((d, rest)) => {
            let (mut lo, mut ro, mut oo) = (lo, ro, oo);
            for _ in 0..d.extent {
                run_loops(rest, l, r, out, lo, ro, oo);
                lo += d.l;
                ro += d.r;
                oo += d.o;
            }
        }
    }
}

// The pooling contract: bind on one thread, execute on another.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<NetworkExecutor>();
};
