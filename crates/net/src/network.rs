//! Network description: parsing and structural validation.

use spttn::ir::{Kernel, KernelBuilder, KernelError, MAX_INDICES};
use spttn::{Contraction, PlanCache, Result, Shapes, SpttnError};

use crate::plan::NetworkPlan;
use crate::planner::NetOptions;

/// Name prefix reserved for materialized intermediates (`_net{t}` for
/// the intermediate produced by path term `t`).
pub(crate) const INTER_PREFIX: &str = "_net";

/// A parsed tensor-network contraction: one sparse tensor (the first
/// right-hand-side factor) times arbitrarily many dense tensors with
/// shared indices, reduced to a single output.
///
/// Structure only — dimensions and sparsity arrive at [`Network::plan`]
/// time through [`Shapes`], mirroring the two-stage [`Contraction`]
/// API.
#[derive(Debug, Clone)]
pub struct Network {
    expr: String,
    /// `(name, written index names)`; entry 0 is the sparse tensor.
    inputs: Vec<(String, Vec<String>)>,
    output: (String, Vec<String>),
    accumulate: bool,
}

impl Network {
    /// Parse an einsum-style network expression, e.g.
    /// `"T[i,j,k]*A[j,r]*B[k,r]*C[r,s] -> O[i,s]"` (or the `O[..] = ..`
    /// form). The first factor is the sparse tensor; every other factor
    /// is dense. Unlike [`Contraction`], the dense factors may share
    /// indices among themselves that never touch the sparse tensor
    /// (chains, trees, rings).
    pub fn parse(expr: &str) -> Result<Self> {
        let c = Contraction::parse(expr)?;
        let inputs = c.input_refs();
        let output = c.output_ref().expect("parse always sets an output");
        for (name, _) in inputs.iter().chain(std::iter::once(&output)) {
            if name.starts_with(INTER_PREFIX) {
                return Err(SpttnError::Kernel(KernelError::Parse(format!(
                    "tensor name '{name}' uses the reserved intermediate prefix '{INTER_PREFIX}'"
                ))));
            }
        }
        // The same name written twice with the same indices is one
        // shared operand (legal); with different indices it would make
        // by-name binding ambiguous.
        for (i, (name, inds)) in inputs.iter().enumerate() {
            for (other, oinds) in &inputs[i + 1..] {
                if name == other && inds != oinds {
                    return Err(SpttnError::Kernel(KernelError::Parse(format!(
                        "tensor '{name}' appears twice with different indices \
                         ({inds:?} vs {oinds:?})"
                    ))));
                }
            }
        }
        let distinct = c.all_index_names().len();
        if distinct > MAX_INDICES {
            return Err(KernelError::TooManyIndices(distinct).into());
        }
        Ok(Network {
            expr: expr.to_string(),
            inputs,
            output,
            accumulate: c.is_accumulate(),
        })
    }

    /// The original expression string.
    pub fn expr(&self) -> &str {
        &self.expr
    }

    /// Number of input tensors in the network.
    pub fn num_tensors(&self) -> usize {
        self.inputs.len()
    }

    /// True when execution accumulates into the bound output (`+=`).
    pub fn is_accumulate(&self) -> bool {
        self.accumulate
    }

    /// Input references as `(name, written index names)`; entry 0 is
    /// the sparse tensor.
    pub fn input_refs(&self) -> &[(String, Vec<String>)] {
        &self.inputs
    }

    /// The output reference as `(name, written index names)`.
    pub fn output_ref(&self) -> &(String, Vec<String>) {
        &self.output
    }

    /// Index names written on the sparse tensor, in written (CSF
    /// storage) order.
    pub fn sparse_index_names(&self) -> Vec<String> {
        self.inputs[0].1.clone()
    }

    /// All distinct index names, inputs first in first-appearance
    /// order. Drivers use this to know which dimensions need declaring.
    pub fn all_index_names(&self) -> Vec<String> {
        let mut seen: Vec<String> = Vec::new();
        for (_, inds) in &self.inputs {
            for n in inds {
                if !seen.contains(n) {
                    seen.push(n.clone());
                }
            }
        }
        seen
    }

    /// Distinct dense factor names (everything except the sparse
    /// tensor), in expression order — the names a bind must supply.
    pub fn dense_factor_names(&self) -> Vec<String> {
        let mut seen: Vec<String> = Vec::new();
        for (name, _) in &self.inputs[1..] {
            if !seen.contains(name) {
                seen.push(name.clone());
            }
        }
        seen
    }

    /// Resolve the whole network into a single validated [`Kernel`]
    /// (every index dimension comes from `shapes`). Path enumeration,
    /// cost modeling, and the naive-einsum oracle all operate on this
    /// kernel; the lowered execution never materializes it as one loop
    /// nest unless the chosen path puts every factor on the sparse
    /// spine.
    pub fn kernel(&self, shapes: &Shapes) -> Result<Kernel> {
        let mut b = KernelBuilder::new();
        for (_, inds) in &self.inputs {
            for idx in inds {
                let dim = shapes.dim(idx).ok_or_else(|| {
                    SpttnError::Planning(format!(
                        "no dimension bound for index '{idx}'; call Shapes::with_dim(\"{idx}\", ...)"
                    ))
                })?;
                b = b.index(idx, dim);
            }
        }
        let oinds: Vec<&str> = self.output.1.iter().map(String::as_str).collect();
        b = b.output(&self.output.0, &oinds);
        for (name, inds) in &self.inputs {
            let iinds: Vec<&str> = inds.iter().map(String::as_str).collect();
            b = b.input(name, &iinds);
        }
        // Pattern-sharing output when its index set equals the sparse
        // tensor's — the same rule the single-kernel facade applies.
        let mut oset: Vec<&String> = self.output.1.iter().collect();
        let mut sset: Vec<&String> = self.inputs[0].1.iter().collect();
        oset.sort();
        oset.dedup();
        sset.sort();
        sset.dedup();
        if oset == sset {
            b = b.sparse_output();
        }
        Ok(b.build()?)
    }

    /// **Stage 1 — symbolic planning.** Search contraction orders under
    /// `opts`, lower the winner, and plan the collapsed sparse kernel
    /// with the Sec. 5 pipeline. The returned [`NetworkPlan`] can be
    /// bound to many operand sets.
    pub fn plan(&self, shapes: &Shapes, opts: &NetOptions) -> Result<NetworkPlan> {
        NetworkPlan::new(self, shapes, None, opts)
    }

    /// Like [`Network::plan`], but the per-step sparse-kernel plan is
    /// looked up in `cache` first (single-flight on a miss) — repeated
    /// sweeps over the same network re-plan nothing.
    pub fn plan_cached(
        &self,
        cache: &PlanCache,
        shapes: &Shapes,
        opts: &NetOptions,
    ) -> Result<NetworkPlan> {
        NetworkPlan::new(self, shapes, Some(cache), opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multi_tensor_networks() {
        let n = Network::parse("T[i,j,k]*A[j,r]*B[k,r]*C[r,s] -> O[i,s]").unwrap();
        assert_eq!(n.num_tensors(), 4);
        assert_eq!(n.sparse_index_names(), vec!["i", "j", "k"]);
        assert_eq!(n.dense_factor_names(), vec!["A", "B", "C"]);
        assert_eq!(n.all_index_names(), vec!["i", "j", "k", "r", "s"]);
        assert!(!n.is_accumulate());
    }

    #[test]
    fn rejects_reserved_intermediate_prefix() {
        let e = Network::parse("T[i,j]*_net0[j,k] -> O[i,k]");
        assert!(e.is_err(), "reserved prefix must be rejected");
    }

    #[test]
    fn rejects_conflicting_duplicate_names() {
        let e = Network::parse("T[i,j]*A[j,k]*A[k] -> O[i]");
        assert!(e.is_err());
        // Identical duplicates are one shared operand.
        assert!(Network::parse("T[i,j]*A[j,r]*A[j,r] -> O[i]").is_ok());
    }

    #[test]
    fn rejects_output_only_index() {
        let e = Network::parse("T[i,j]*A[j,r] -> O[i,z]");
        assert!(e.is_err(), "output index bound by no input");
    }

    #[test]
    fn kernel_requires_all_dims() {
        let n = Network::parse("T[i,j]*A[j,r] -> O[i,r]").unwrap();
        let missing = Shapes::new().with_dims(&[("i", 4), ("j", 5)]);
        assert!(n.kernel(&missing).is_err());
        let full = missing.with_dim("r", 3);
        let k = n.kernel(&full).unwrap();
        assert_eq!(k.inputs.len(), 2);
        assert_eq!(k.sparse_input, 0);
    }
}
