//! # spttn-bench
//!
//! A minimal, self-contained timing harness plus shared fixtures for
//! the workspace benchmarks.
//!
//! The build environment is fully offline, so the usual `criterion`
//! dev-dependency cannot be fetched; [`Harness`] mirrors the small
//! slice of its API the benches need (`bench_function` + `iter`) so the
//! bench sources can be ported to real criterion by swapping one
//! import once a registry is available. Results print as a fixed-width
//! table of per-iteration times (median / mean / min over timed runs).
//!
//! ## Machine-readable output
//!
//! When the `SPTTN_BENCH_JSON` environment variable names a file,
//! [`Harness::finish`] also records the group's results there as JSON —
//! per-bench median/mean/min nanoseconds plus any metadata attached
//! with [`Harness::note`] (benches attach their `ExecStats` this way).
//! The file holds a JSON **array of groups**: each `finish` appends,
//! so a binary (or bench run) with several harness groups loses
//! nothing — delete the file first for a fresh record. CI's
//! `bench-smoke` job uploads this artifact so the perf trajectory is
//! tracked across commits.

use std::time::Instant;

/// One recorded bench row.
struct Row {
    id: String,
    samples_ms: Vec<f64>,
    /// Raw JSON object string attached via [`Harness::note`].
    note: Option<String>,
}

/// Simple benchmark runner: warmup runs, timed runs, table output.
pub struct Harness {
    name: String,
    warmup: usize,
    runs: usize,
    results: Vec<Row>,
}

impl Harness {
    /// Create a harness for a named bench group.
    pub fn new(name: &str) -> Self {
        // Keep wall-clock modest: benches are a perf *baseline*, not a
        // statistics suite.
        Harness {
            name: name.to_string(),
            warmup: 3,
            runs: 10,
            results: Vec::new(),
        }
    }

    /// Override (warmup, timed) run counts.
    pub fn with_runs(mut self, warmup: usize, runs: usize) -> Self {
        self.warmup = warmup;
        self.runs = runs.max(1);
        self
    }

    /// Time one closure; the closure is one full iteration.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut()) {
        for _ in 0..self.warmup {
            f();
        }
        let mut samples = Vec::with_capacity(self.runs);
        for _ in 0..self.runs {
            let t0 = Instant::now();
            f();
            samples.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        self.results.push(Row {
            id: id.to_string(),
            samples_ms: samples,
            note: None,
        });
    }

    /// Attach a machine-readable metadata object (a raw JSON object
    /// string, e.g. serialized `ExecStats`) to an already-recorded
    /// bench id; it is embedded under `"stats"` in the JSON output.
    pub fn note(&mut self, id: &str, json_object: String) {
        if let Some(row) = self.results.iter_mut().rev().find(|r| r.id == id) {
            row.note = Some(json_object);
        }
    }

    /// Print the result table (and write the JSON artifact when
    /// `SPTTN_BENCH_JSON` is set) and return the raw samples.
    pub fn finish(self) -> Vec<(String, Vec<f64>)> {
        println!("\n== {} ==", self.name);
        println!(
            "{:<44} {:>10} {:>10} {:>10}",
            "bench", "median", "mean", "min"
        );
        for row in &self.results {
            let (median, mean, min) = summarize(&row.samples_ms);
            println!(
                "{:<44} {:>8.3}ms {:>8.3}ms {:>8.3}ms",
                row.id, median, mean, min
            );
        }
        if let Ok(path) = std::env::var("SPTTN_BENCH_JSON") {
            if !path.is_empty() {
                match append_group(&path, &self.to_json()) {
                    Ok(()) => println!("recorded group in {path}"),
                    Err(e) => eprintln!("could not write {path}: {e}"),
                }
            }
        }
        self.results
            .into_iter()
            .map(|r| (r.id, r.samples_ms))
            .collect()
    }

    /// Render the group's results as a JSON document.
    fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"group\": \"{}\",\n", escape(&self.name)));
        s.push_str(&format!("  \"runs\": {},\n", self.runs));
        s.push_str("  \"benches\": [\n");
        for (i, row) in self.results.iter().enumerate() {
            let (median, mean, min) = summarize(&row.samples_ms);
            s.push_str("    {");
            s.push_str(&format!("\"id\": \"{}\", ", escape(&row.id)));
            s.push_str(&format!(
                "\"median_ns\": {:.0}, \"mean_ns\": {:.0}, \"min_ns\": {:.0}",
                median * 1e6,
                mean * 1e6,
                min * 1e6
            ));
            if let Some(note) = &row.note {
                s.push_str(&format!(", \"stats\": {note}"));
            }
            s.push('}');
            if i + 1 < self.results.len() {
                s.push(',');
            }
            s.push('\n');
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Append one group object to the JSON array at `path` (creating the
/// array if the file is absent or not already one), so multi-group
/// runs never silently overwrite each other.
fn append_group(path: &str, group: &str) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let trimmed = existing.trim_end();
    let doc = if let Some(body) = trimmed
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .filter(|b| !b.trim().is_empty())
    {
        format!("[{},\n{group}]\n", body.trim_end())
    } else {
        format!("[\n{group}]\n")
    };
    std::fs::write(path, doc)
}

/// (median, mean, min) of a sample list in the list's unit.
fn summarize(samples: &[f64]) -> (f64, f64, f64) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    let mean: f64 = sorted.iter().sum::<f64>() / sorted.len() as f64;
    (median, mean, sorted[0])
}

/// Minimal JSON string escaping (quotes and backslashes; bench ids are
/// plain ASCII).
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Black-box helper: keep the optimizer from eliding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_records_every_bench() {
        let mut h = Harness::new("unit").with_runs(1, 3);
        let mut n = 0u64;
        h.bench_function("count", || n += 1);
        h.bench_function("noop", || {});
        let results = h.finish();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].1.len(), 3);
        assert_eq!(n, 4); // 1 warmup + 3 timed
    }

    #[test]
    fn json_contains_rows_and_notes() {
        let mut h = Harness::new("json \"group\"").with_runs(0, 2);
        h.bench_function("a", || {});
        h.bench_function("b", || {});
        h.note("a", "{\"axpy\": 7}".to_string());
        let json = h.to_json();
        assert!(json.contains("\"group\": \"json \\\"group\\\"\""), "{json}");
        assert!(json.contains("\"id\": \"a\""));
        assert!(json.contains("\"stats\": {\"axpy\": 7}"));
        assert!(json.contains("\"median_ns\""));
        // Two rows, one comma between them.
        assert_eq!(json.matches("\"id\"").count(), 2);
    }

    #[test]
    fn append_group_accumulates_an_array() {
        let dir = std::env::temp_dir().join(format!("spttn-bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        append_group(path, "{\"group\": \"a\"}\n").unwrap();
        append_group(path, "{\"group\": \"b\"}\n").unwrap();
        let doc = std::fs::read_to_string(path).unwrap();
        assert!(doc.trim_start().starts_with('['), "{doc}");
        assert!(doc.trim_end().ends_with(']'), "{doc}");
        assert_eq!(doc.matches("\"group\"").count(), 2, "{doc}");
        std::fs::remove_file(path).unwrap();
    }
}
