//! # spttn-bench
//!
//! A minimal, self-contained timing harness plus shared fixtures for
//! the workspace benchmarks.
//!
//! The build environment is fully offline, so the usual `criterion`
//! dev-dependency cannot be fetched; [`Harness`] mirrors the small
//! slice of its API the benches need (`bench_function` + `iter`) so the
//! bench sources can be ported to real criterion by swapping one
//! import once a registry is available. Results print as a fixed-width
//! table of per-iteration times (median / mean / min over timed runs).

use std::time::Instant;

/// Simple benchmark runner: warmup runs, timed runs, table output.
pub struct Harness {
    name: String,
    warmup: usize,
    runs: usize,
    results: Vec<(String, Vec<f64>)>,
}

impl Harness {
    /// Create a harness for a named bench group.
    pub fn new(name: &str) -> Self {
        // Keep wall-clock modest: benches are a perf *baseline*, not a
        // statistics suite.
        Harness {
            name: name.to_string(),
            warmup: 3,
            runs: 10,
            results: Vec::new(),
        }
    }

    /// Override (warmup, timed) run counts.
    pub fn with_runs(mut self, warmup: usize, runs: usize) -> Self {
        self.warmup = warmup;
        self.runs = runs.max(1);
        self
    }

    /// Time one closure; the closure is one full iteration.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut()) {
        for _ in 0..self.warmup {
            f();
        }
        let mut samples = Vec::with_capacity(self.runs);
        for _ in 0..self.runs {
            let t0 = Instant::now();
            f();
            samples.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        self.results.push((id.to_string(), samples));
    }

    /// Print the result table and return the raw samples.
    pub fn finish(self) -> Vec<(String, Vec<f64>)> {
        println!("\n== {} ==", self.name);
        println!(
            "{:<44} {:>10} {:>10} {:>10}",
            "bench", "median", "mean", "min"
        );
        for (id, samples) in &self.results {
            let mut sorted = samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let median = sorted[sorted.len() / 2];
            let mean: f64 = sorted.iter().sum::<f64>() / sorted.len() as f64;
            println!(
                "{:<44} {:>8.3}ms {:>8.3}ms {:>8.3}ms",
                id, median, mean, sorted[0]
            );
        }
        self.results
    }
}

/// Black-box helper: keep the optimizer from eliding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_records_every_bench() {
        let mut h = Harness::new("unit").with_runs(1, 3);
        let mut n = 0u64;
        h.bench_function("count", || n += 1);
        h.bench_function("noop", || {});
        let results = h.finish();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].1.len(), 3);
        assert_eq!(n, 4); // 1 warmup + 3 timed
    }
}
