//! placeholder
