//! End-to-end kernel execution: plan once, execute repeatedly — the
//! hot path a serving deployment would run, now through the reusable
//! `Executor` (zero per-call allocation).
//!
//! Run with `cargo bench -p spttn-bench --bench kernels`.

use rand::prelude::*;
use spttn::ir::{stdkernels, Kernel};
use spttn::tensor::{random_coo, random_dense, Csf};
use spttn::{Contraction, CostModel, Executor, PlanOptions};
use spttn_bench::{black_box, Harness};

fn executor_for(kernel: &Kernel, nnz: usize, seed: u64) -> Executor {
    let mut rng = StdRng::seed_from_u64(seed);
    let sparse_dims = kernel.ref_dims(kernel.sparse_ref());
    let coo = random_coo(&sparse_dims, nnz, &mut rng).unwrap();
    let order: Vec<usize> = (0..coo.order()).collect();
    let csf = Csf::from_coo(&coo, &order).unwrap();
    let mut c = Contraction::from_kernel(kernel.clone()).with_sparse_input(csf);
    for (slot, r) in kernel.inputs.iter().enumerate() {
        if slot == kernel.sparse_input {
            continue;
        }
        c = c.with_factor(&r.name, random_dense(&kernel.ref_dims(r), &mut rng));
    }
    c.compile(PlanOptions::with_cost_model(CostModel::BlasAware {
        buffer_dim_bound: 2,
    }))
    .expect("compile succeeds")
}

fn main() {
    let suite: Vec<(&str, Kernel, usize)> = vec![
        ("mttkrp-3d-64", stdkernels::mttkrp(&[64, 64, 64], 16), 8000),
        ("ttmc-3d-64", stdkernels::ttmc(&[64, 64, 64], &[8, 8]), 8000),
        ("tttp-3d-64", stdkernels::tttp(&[64, 64, 64], 8), 8000),
    ];
    let mut h = Harness::new("Executor::execute_into (fused nests)");
    for (name, kernel, nnz) in &suite {
        let mut exec = executor_for(kernel, *nnz, 7);
        let mut out = exec.output_template();
        h.bench_function(name, move || {
            exec.execute_into(&mut out).expect("execution succeeds");
            black_box(out.to_dense().sum());
        });
    }
    h.finish();
}
