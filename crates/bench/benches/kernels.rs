fn main() {}
