//! Mode-order search benchmark: `ModeOrderPolicy::Natural` vs `Auto`
//! planning time (the search replans once per candidate order — up to
//! `d!` for `d ≤ 4` sparse modes), plus the modeled-flops win the
//! search buys on a lopsided tensor.
//!
//! Run with `cargo bench -p spttn-bench --bench mode_order`.

use rand::prelude::*;
use spttn::tensor::{random_coo, CooTensor};
use spttn::{Contraction, CostModel, ModeOrderPolicy, PlanOptions, Shapes};
use spttn_bench::{black_box, Harness};

const MTTKRP: &str = "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)";
const TTMC4: &str = "S(i,r,s,t) = T(i,j,k,l) * U(j,r) * V(k,s) * W(l,t)";

fn pattern(dims: &[usize], nnz: usize, seed: u64) -> CooTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    random_coo(dims, nnz, &mut rng).unwrap()
}

fn main() {
    let mut h = Harness::new("ModeOrderPolicy planning cost (pattern-guided)");

    // Lopsided 3-mode MTTKRP: the search's showcase — a tiny trailing
    // mode, sparse enough that the (i,k) prefix compresses while (i,j)
    // stays near-distinct.
    let coo3 = pattern(&[200, 200, 4], 600, 42);
    let shapes3 = Shapes::new()
        .with_dims(&[("i", 200), ("j", 200), ("k", 4), ("a", 16)])
        .with_pattern(coo3);
    // Symmetric 4-mode TTMc: worst-case candidate count (4! = 24 runs).
    let coo4 = pattern(&[24, 24, 24, 24], 4000, 43);
    let shapes4 = Shapes::new()
        .with_dims(&[
            ("i", 24),
            ("j", 24),
            ("k", 24),
            ("l", 24),
            ("r", 6),
            ("s", 6),
            ("t", 6),
        ])
        .with_pattern(coo4);

    let cases: [(&str, &str, &Shapes); 2] = [
        ("mttkrp-3d-lopsided", MTTKRP, &shapes3),
        ("ttmc-4d", TTMC4, &shapes4),
    ];
    let policies = [
        ("natural", ModeOrderPolicy::Natural),
        ("auto", ModeOrderPolicy::Auto),
    ];

    for (cname, expr, shapes) in &cases {
        for (pname, policy) in &policies {
            let shapes = (*shapes).clone();
            let opts = PlanOptions::with_cost_model(CostModel::BlasAware {
                buffer_dim_bound: 2,
            })
            .with_mode_order(policy.clone());
            let expr = expr.to_string();
            h.bench_function(&format!("{cname}/{pname}"), move || {
                let plan = Contraction::parse(&expr)
                    .unwrap()
                    .plan(&shapes, &opts)
                    .expect("plan succeeds");
                black_box(plan.flops);
            });
        }
    }
    h.finish();

    // Report the modeled win the search buys on the lopsided case.
    let base = PlanOptions::with_cost_model(CostModel::BlasAware {
        buffer_dim_bound: 2,
    });
    let natural = Contraction::parse(MTTKRP)
        .unwrap()
        .plan(&shapes3, &base)
        .unwrap();
    let auto = Contraction::parse(MTTKRP)
        .unwrap()
        .plan(
            &shapes3,
            &base.clone().with_mode_order(ModeOrderPolicy::Auto),
        )
        .unwrap();
    println!(
        "mttkrp-3d-lopsided modeled flops: natural {} -> auto {} ({:.1}% cheaper, order {:?})",
        natural.flops,
        auto.flops,
        100.0 * (1.0 - auto.flops as f64 / natural.flops as f64),
        auto.mode_order(),
    );
}
