//! Network contraction-order search: greedy vs the budgeted exact
//! subset sweep on multi-tensor networks, reporting each strategy's
//! modeled flops, search effort, and end-to-end execution wall time
//! through the network executor.
//!
//! Run with `cargo bench -p spttn-bench --bench net_sequence`; set
//! `SPTTN_BENCH_JSON=BENCH_results.json` to append the group to the
//! machine-readable artifact CI uploads.

use rand::prelude::*;
use spttn::tensor::{random_coo, random_dense, Csf, DenseTensor, SparsityProfile};
use spttn::{PlanOptions, Shapes, Threads};
use spttn_bench::{black_box, Harness};
use spttn_net::{NetOptions, Network, OrderStrategy};
use std::time::Instant;

struct Workload {
    name: &'static str,
    expr: &'static str,
    dims: &'static [(&'static str, usize)],
    sparse_dims: &'static [usize],
    nnz: usize,
}

fn main() {
    let workloads = [
        Workload {
            // The CLI smoke network at scale: the tail C(r,s) can leave
            // the sparse spine, so the strategies genuinely disagree.
            name: "krp-chain",
            expr: "T[i,j,k]*A[j,r]*B[k,r]*C[r,s] -> O[i,s]",
            dims: &[("i", 256), ("j", 96), ("k", 96), ("r", 32), ("s", 32)],
            sparse_dims: &[256, 96, 96],
            nnz: 100_000,
        },
        Workload {
            name: "tensor-train",
            expr: "T[i,j,k]*G1[i,a]*G2[a,j,b]*G3[b,k,c] -> O[c]",
            dims: &[
                ("i", 256),
                ("j", 96),
                ("k", 96),
                ("a", 16),
                ("b", 16),
                ("c", 16),
            ],
            sparse_dims: &[256, 96, 96],
            nnz: 100_000,
        },
    ];

    let mut h = Harness::new("net_sequence: greedy vs budgeted-exact network ordering");
    for w in &workloads {
        let mut rng = StdRng::seed_from_u64(29);
        let coo = random_coo(w.sparse_dims, w.nnz, &mut rng).unwrap();
        let order: Vec<usize> = (0..w.sparse_dims.len()).collect();
        let csf = Csf::from_coo(&coo, &order).unwrap();
        let net = Network::parse(w.expr).expect("workload parses");
        let shapes = Shapes::new()
            .with_dims(w.dims)
            .with_profile(SparsityProfile::from_csf(&csf));
        let kernel = net.kernel(&shapes).expect("workload kernel");
        let factors: Vec<(String, DenseTensor)> = kernel
            .inputs
            .iter()
            .enumerate()
            .filter(|(slot, _)| *slot != kernel.sparse_input)
            .map(|(_, r)| (r.name.clone(), random_dense(&kernel.ref_dims(r), &mut rng)))
            .collect();
        let named: Vec<(&str, &DenseTensor)> =
            factors.iter().map(|(n, t)| (n.as_str(), t)).collect();

        for strategy in [OrderStrategy::Greedy, OrderStrategy::Optimal] {
            let nopts = NetOptions::default()
                .with_order(strategy)
                .with_plan_options(PlanOptions::default().with_threads(Threads::N(1)));
            let t_plan = Instant::now();
            let nplan = net.plan(&shapes, &nopts).expect("planning succeeds");
            let plan_ms = t_plan.elapsed().as_secs_f64() * 1e3;
            let mut exec = nplan.bind(csf.clone(), &named).expect("bind succeeds");
            let mut out = exec.output_template();
            let id = format!("{} {strategy:<7} @ 1t", w.name);
            h.bench_function(&id, || {
                exec.execute_into(&mut out).expect("execution succeeds");
                black_box(out.to_dense().sum());
            });
            let r = nplan.report();
            h.note(
                &id,
                format!(
                    "{{\"strategy\": \"{}\", \"chosen_flops\": {}, \"greedy_flops\": {}, \
                     \"evaluated_pairs\": {}, \"truncated\": {}, \"dense_steps\": {}, \
                     \"plan_ms\": {plan_ms:.3}}}",
                    r.strategy,
                    r.chosen_flops,
                    r.greedy_flops,
                    r.evaluated_pairs,
                    r.truncated,
                    nplan.num_dense_steps()
                ),
            );
        }
    }
    let results = h.finish();

    // Headline: the modeled-flops ratio is printed by describe(), the
    // wall-time ratio comes from the recorded samples (greedy row then
    // optimal row per workload).
    println!("\nwall-time greedy/optimal (median):");
    let median = |s: &[f64]| {
        let mut v = s.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    for pair in results.chunks(2) {
        let [(gid, gs), (_oid, os)] = pair else {
            continue;
        };
        println!(
            "{:<40} {:>5.2}x",
            gid.replace("greedy  ", ""),
            median(gs) / median(os)
        );
    }
}
