//! Tape engine vs interpreter vs SIMD microkernels: the same plans,
//! bound once per (engine, microkernel policy, thread-count), executed
//! through the zero-allocation `execute_into` path on large MTTKRP and
//! TTMc workloads whose dense ranks (32 / 16) hit the rank-specialized
//! microkernel variants.
//!
//! Run with `cargo bench -p spttn-bench --bench tape_speedup`; set
//! `SPTTN_BENCH_JSON=BENCH_results.json` to emit the machine-readable
//! artifact CI uploads. Acceptance bars: the scalar tape keeps ≥1.3×
//! over the interpreter at 1 thread, and the SIMD tape shows ≥1.5×
//! over the scalar tape at 1 thread on at least one kernel; the
//! measured speedups print explicitly.

use rand::prelude::*;
use spttn::ir::{stdkernels, Kernel};
use spttn::tensor::{random_coo, random_dense, Csf, DenseTensor, SparsityProfile};
use spttn::{
    Contraction, CostModel, Engine, ExecStats, Executor, Microkernels, PlanOptions, Shapes, Threads,
};
use spttn_bench::{black_box, Harness};

fn stats_json(s: &ExecStats) -> String {
    format!(
        "{{\"axpy\": {}, \"dot\": {}, \"xmul\": {}, \"ger\": {}, \"gemv\": {}, \
         \"axpy_elems\": {}, \"dot_elems\": {}, \"xmul_elems\": {}, \"ger_elems\": {}, \
         \"gemv_elems\": {}, \"elems\": {}, \"flops\": {}, \
         \"node_searches\": {}, \"search_probes\": {}}}",
        s.axpy,
        s.dot,
        s.xmul,
        s.ger,
        s.gemv,
        s.axpy_elems,
        s.dot_elems,
        s.xmul_elems,
        s.ger_elems,
        s.gemv_elems,
        s.elems(),
        s.flops(),
        s.node_searches,
        s.search_probes
    )
}

/// The three legs under comparison, in fixed row order.
#[derive(Clone, Copy, PartialEq)]
enum Leg {
    Interp,
    TapeScalar,
    TapeSimd,
}

impl Leg {
    fn engine(self) -> Engine {
        match self {
            Leg::Interp => Engine::Interp,
            _ => Engine::Tape,
        }
    }
    fn micro(self) -> Microkernels {
        match self {
            Leg::TapeSimd => Microkernels::Auto,
            _ => Microkernels::Scalar,
        }
    }
    fn label(self) -> &'static str {
        match self {
            Leg::Interp => "interp     ",
            Leg::TapeScalar => "tape-scalar",
            Leg::TapeSimd => "tape-simd  ",
        }
    }
}

fn bind_at(
    kernel: &Kernel,
    csf: &Csf,
    factors: &[(String, DenseTensor)],
    leg: Leg,
    threads: usize,
) -> Executor {
    let plan = Contraction::from_kernel(kernel.clone())
        .plan(
            &Shapes::new().with_profile(SparsityProfile::from_csf(csf)),
            &PlanOptions::with_cost_model(CostModel::BlasAware {
                buffer_dim_bound: 2,
            })
            .with_threads(Threads::N(threads))
            .with_engine(leg.engine())
            .with_microkernels(leg.micro()),
        )
        .expect("planning succeeds");
    let refs: Vec<(&str, &DenseTensor)> = factors.iter().map(|(n, t)| (n.as_str(), t)).collect();
    plan.bind(csf.clone(), &refs).expect("bind succeeds")
}

fn operands(
    kernel: &Kernel,
    dims: &[usize],
    nnz: usize,
    seed: u64,
) -> (Csf, Vec<(String, DenseTensor)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let coo = random_coo(dims, nnz, &mut rng).unwrap();
    let order: Vec<usize> = (0..dims.len()).collect();
    let csf = Csf::from_coo(&coo, &order).unwrap();
    let mut factors = Vec::new();
    for (slot, r) in kernel.inputs.iter().enumerate() {
        if slot == kernel.sparse_input {
            continue;
        }
        factors.push((r.name.clone(), random_dense(&kernel.ref_dims(r), &mut rng)));
    }
    (csf, factors)
}

fn main() {
    let workloads: Vec<(&str, Kernel, Vec<usize>, usize)> = vec![
        (
            "mttkrp-large",
            stdkernels::mttkrp(&[512, 96, 96], 32),
            vec![512, 96, 96],
            250_000,
        ),
        (
            "ttmc-large",
            stdkernels::ttmc(&[384, 64, 64], &[32, 32]),
            vec![384, 64, 64],
            120_000,
        ),
    ];
    const LEGS: [Leg; 3] = [Leg::Interp, Leg::TapeScalar, Leg::TapeSimd];

    let mut h = Harness::new("tape_speedup: interpreter vs scalar tape vs SIMD tape");
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for (name, kernel, dims, nnz) in &workloads {
        let (csf, factors) = operands(kernel, dims, *nnz, 17);
        for threads in [1usize, 4] {
            for leg in LEGS {
                let mut exec = bind_at(kernel, &csf, &factors, leg, threads);
                let mut out = exec.output_template();
                let id = format!(
                    "{name} {} @ {threads}t [{} tiles]",
                    leg.label(),
                    exec.threads()
                );
                let mut last_stats = ExecStats::default();
                h.bench_function(&id, || {
                    exec.execute_into(&mut out).expect("execution succeeds");
                    last_stats = exec.last_stats();
                    black_box(out.to_dense().sum());
                });
                let mut note = stats_json(&last_stats);
                if let Some(tape) = exec.tape() {
                    // Record which microkernel implementation the tape
                    // bound, its vector width, and what the host CPU
                    // advertises — so artifacts from different machines
                    // stay comparable.
                    note = format!(
                        "{{\"stats\": {note}, \"microkernels\": \"{}\", \"kernel_width\": {}, \
                         \"superinstructions\": {}, \"specialized\": {}, \"cpu\": \"{}\"}}",
                        tape.microkernels(),
                        tape.kernel_width(),
                        tape.superinstructions(),
                        tape.specialized(),
                        spttn::exec::detected_cpu_features(),
                    );
                }
                h.note(&id, note);
            }
        }
    }
    let results = h.finish();
    rows.extend(results);

    // Speedups per workload+threads triple: scalar tape vs interp, SIMD
    // tape vs interp, and the headline SIMD-vs-scalar-tape ratio.
    // Median is the headline; min (fastest vs fastest) is the
    // least-noise estimator on busy machines.
    let median = |samples: &[f64]| {
        let mut s = samples.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2]
    };
    let minimum = |samples: &[f64]| samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("\nspeedups (median / min):");
    for triple in rows.chunks(3) {
        let [(iid, is), (sid, ss), (vid, vs)] = triple else {
            continue;
        };
        assert!(
            iid.contains("interp") && sid.contains("tape-scalar") && vid.contains("tape-simd"),
            "row order"
        );
        println!(
            "{:<46} tape-scalar/interp {:>5.2}x {:>5.2}x | tape-simd/interp {:>5.2}x {:>5.2}x | tape-simd/tape-scalar {:>5.2}x {:>5.2}x",
            iid.replace("interp      ", ""),
            median(is) / median(ss),
            minimum(is) / minimum(ss),
            median(is) / median(vs),
            minimum(is) / minimum(vs),
            median(ss) / median(vs),
            minimum(ss) / minimum(vs)
        );
    }
}
