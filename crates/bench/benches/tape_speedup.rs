//! Tape engine vs interpreter: the same plans, bound once per
//! (engine, thread-count), executed through the zero-allocation
//! `execute_into` path on large MTTKRP and TTMc workloads.
//!
//! Run with `cargo bench -p spttn-bench --bench tape_speedup`; set
//! `SPTTN_BENCH_JSON=BENCH_results.json` to emit the machine-readable
//! artifact CI uploads. The acceptance bar for the tape engine is
//! ≥1.3× over the interpreter at 1 thread on both kernels, and no
//! regression at 4 threads; the measured speedups print explicitly.

use rand::prelude::*;
use spttn::ir::{stdkernels, Kernel};
use spttn::tensor::{random_coo, random_dense, Csf, DenseTensor, SparsityProfile};
use spttn::{Contraction, CostModel, Engine, ExecStats, Executor, PlanOptions, Shapes, Threads};
use spttn_bench::{black_box, Harness};

fn stats_json(s: &ExecStats) -> String {
    format!(
        "{{\"axpy\": {}, \"dot\": {}, \"xmul\": {}, \"ger\": {}, \"gemv\": {}, \
         \"node_searches\": {}, \"search_probes\": {}}}",
        s.axpy, s.dot, s.xmul, s.ger, s.gemv, s.node_searches, s.search_probes
    )
}

fn bind_at(
    kernel: &Kernel,
    csf: &Csf,
    factors: &[(String, DenseTensor)],
    engine: Engine,
    threads: usize,
) -> Executor {
    let plan = Contraction::from_kernel(kernel.clone())
        .plan(
            &Shapes::new().with_profile(SparsityProfile::from_csf(csf)),
            &PlanOptions::with_cost_model(CostModel::BlasAware {
                buffer_dim_bound: 2,
            })
            .with_threads(Threads::N(threads))
            .with_engine(engine),
        )
        .expect("planning succeeds");
    let refs: Vec<(&str, &DenseTensor)> = factors.iter().map(|(n, t)| (n.as_str(), t)).collect();
    plan.bind(csf.clone(), &refs).expect("bind succeeds")
}

fn operands(
    kernel: &Kernel,
    dims: &[usize],
    nnz: usize,
    seed: u64,
) -> (Csf, Vec<(String, DenseTensor)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let coo = random_coo(dims, nnz, &mut rng).unwrap();
    let order: Vec<usize> = (0..dims.len()).collect();
    let csf = Csf::from_coo(&coo, &order).unwrap();
    let mut factors = Vec::new();
    for (slot, r) in kernel.inputs.iter().enumerate() {
        if slot == kernel.sparse_input {
            continue;
        }
        factors.push((r.name.clone(), random_dense(&kernel.ref_dims(r), &mut rng)));
    }
    (csf, factors)
}

fn main() {
    let workloads: Vec<(&str, Kernel, Vec<usize>, usize)> = vec![
        (
            "mttkrp-large",
            stdkernels::mttkrp(&[512, 96, 96], 32),
            vec![512, 96, 96],
            250_000,
        ),
        (
            "ttmc-large",
            stdkernels::ttmc(&[384, 64, 64], &[16, 16]),
            vec![384, 64, 64],
            200_000,
        ),
    ];

    let mut h = Harness::new("tape_speedup: compiled tape vs interpreter");
    let mut rows: Vec<(String, Vec<f64>)> = Vec::new();
    for (name, kernel, dims, nnz) in &workloads {
        let (csf, factors) = operands(kernel, dims, *nnz, 17);
        for threads in [1usize, 4] {
            for engine in [Engine::Interp, Engine::Tape] {
                let mut exec = bind_at(kernel, &csf, &factors, engine, threads);
                let mut out = exec.output_template();
                let id = format!(
                    "{name} {} @ {threads}t [{} tiles]",
                    match engine {
                        Engine::Tape => "tape  ",
                        Engine::Interp => "interp",
                    },
                    exec.threads()
                );
                let mut last_stats = ExecStats::default();
                h.bench_function(&id, || {
                    exec.execute_into(&mut out).expect("execution succeeds");
                    last_stats = exec.last_stats();
                    black_box(out.to_dense().sum());
                });
                h.note(&id, stats_json(&last_stats));
            }
        }
    }
    let results = h.finish();
    rows.extend(results);

    // Speedups: interpreter row / tape row at the same workload+threads.
    // Median is the headline; min (fastest vs fastest) is the
    // least-noise estimator on busy machines.
    let median = |samples: &[f64]| {
        let mut s = samples.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2]
    };
    let minimum = |samples: &[f64]| samples.iter().cloned().fold(f64::INFINITY, f64::min);
    println!("\ntape speedup vs interpreter (median / min):");
    for pair in rows.chunks(2) {
        let [(iid, is), (tid, ts)] = pair else {
            continue;
        };
        assert!(iid.contains("interp") && tid.contains("tape"), "row order");
        println!(
            "{:<44} {:>6.2}x {:>6.2}x",
            tid,
            median(is) / median(ts),
            minimum(is) / minimum(ts)
        );
    }
}
