//! Planner benchmark: symbolic `Contraction::plan` over the stdkernels
//! suite, per cost model — the perf baseline future planner PRs are
//! measured against. Planning is purely structural (Shapes + sparsity
//! profile); no tensor data is bound.
//!
//! Run with `cargo bench -p spttn-bench --bench planner`.

use rand::prelude::*;
use spttn::ir::{stdkernels, Kernel};
use spttn::tensor::{random_coo, SparsityProfile};
use spttn::{Contraction, CostModel, PlanOptions, Shapes};
use spttn_bench::{black_box, Harness};

/// Exact sparsity profile of a random pattern for the kernel.
fn profile_for(kernel: &Kernel, nnz: usize, seed: u64) -> SparsityProfile {
    let mut rng = StdRng::seed_from_u64(seed);
    let sparse_dims = kernel.ref_dims(kernel.sparse_ref());
    let coo = random_coo(&sparse_dims, nnz, &mut rng).unwrap();
    let order: Vec<usize> = (0..coo.order()).collect();
    SparsityProfile::from_coo(&coo, &order).unwrap()
}

fn main() {
    let suite: Vec<(&str, Kernel)> = vec![
        ("mttkrp-3d", stdkernels::mttkrp(&[64, 64, 64], 16)),
        ("ttmc-3d", stdkernels::ttmc(&[64, 64, 64], &[8, 8])),
        ("ttmc-4d", stdkernels::ttmc(&[16, 16, 16, 16], &[4, 4, 4])),
        ("tttp-3d", stdkernels::tttp(&[64, 64, 64], 8)),
        (
            "all-mode-ttmc-3d",
            stdkernels::all_mode_ttmc(&[32, 32, 32], &[8, 8, 8]),
        ),
        ("tttc-4d", stdkernels::tttc(&[12, 12, 12, 12], 4)),
    ];
    let models = [
        ("bufdim", CostModel::MaxBufferDim),
        ("bufsize", CostModel::MaxBufferSize),
        ("cache", CostModel::CacheMiss { d: 1 }),
        (
            "blas",
            CostModel::BlasAware {
                buffer_dim_bound: 2,
            },
        ),
    ];

    let mut h = Harness::new("Contraction::plan (stdkernels suite, symbolic)");
    for (kname, kernel) in &suite {
        let nnz = 2000.min(
            kernel
                .ref_dims(kernel.sparse_ref())
                .iter()
                .product::<usize>()
                / 4,
        );
        let shapes = Shapes::new().with_profile(profile_for(kernel, nnz, 42));
        for (mname, model) in &models {
            let kernel = kernel.clone();
            let shapes = shapes.clone();
            let opts = PlanOptions::with_cost_model(*model);
            h.bench_function(&format!("{kname}/{mname}"), move || {
                let plan = Contraction::from_kernel(kernel.clone())
                    .plan(&shapes, &opts)
                    .expect("plan succeeds");
                black_box(plan.flops);
            });
        }
    }
    h.finish();
}
