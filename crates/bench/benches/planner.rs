//! Planner benchmark: `spttn::Contraction::plan` over the stdkernels
//! suite, per cost model — the perf baseline future planner PRs are
//! measured against.
//!
//! Run with `cargo bench -p spttn-bench --bench planner`.

use rand::prelude::*;
use spttn::ir::{stdkernels, Kernel};
use spttn::tensor::{random_coo, random_dense, Csf};
use spttn::{Contraction, CostModel, PlanOptions};
use spttn_bench::{black_box, Harness};

/// Build a bound contraction for a kernel with random operands.
fn bound(kernel: &Kernel, nnz: usize, seed: u64) -> Contraction {
    let mut rng = StdRng::seed_from_u64(seed);
    let sparse_dims = kernel.ref_dims(kernel.sparse_ref());
    let coo = random_coo(&sparse_dims, nnz, &mut rng).unwrap();
    let order: Vec<usize> = (0..coo.order()).collect();
    let csf = Csf::from_coo(&coo, &order).unwrap();
    let mut c = Contraction::from_kernel(kernel.clone()).with_sparse_input(csf);
    for (slot, r) in kernel.inputs.iter().enumerate() {
        if slot == kernel.sparse_input {
            continue;
        }
        c = c.with_factor(&r.name, random_dense(&kernel.ref_dims(r), &mut rng));
    }
    c
}

fn main() {
    let suite: Vec<(&str, Kernel)> = vec![
        ("mttkrp-3d", stdkernels::mttkrp(&[64, 64, 64], 16)),
        ("ttmc-3d", stdkernels::ttmc(&[64, 64, 64], &[8, 8])),
        ("ttmc-4d", stdkernels::ttmc(&[16, 16, 16, 16], &[4, 4, 4])),
        ("tttp-3d", stdkernels::tttp(&[64, 64, 64], 8)),
        (
            "all-mode-ttmc-3d",
            stdkernels::all_mode_ttmc(&[32, 32, 32], &[8, 8, 8]),
        ),
        ("tttc-4d", stdkernels::tttc(&[12, 12, 12, 12], 4)),
    ];
    let models = [
        ("bufdim", CostModel::MaxBufferDim),
        ("bufsize", CostModel::MaxBufferSize),
        ("cache", CostModel::CacheMiss { d: 1 }),
        (
            "blas",
            CostModel::BlasAware {
                buffer_dim_bound: 2,
            },
        ),
    ];

    let mut h = Harness::new("Contraction::plan (stdkernels suite)");
    for (kname, kernel) in &suite {
        let c = bound(
            kernel,
            2000.min(
                kernel
                    .ref_dims(kernel.sparse_ref())
                    .iter()
                    .product::<usize>()
                    / 4,
            ),
            42,
        );
        for (mname, model) in &models {
            let c = c.clone();
            h.bench_function(&format!("{kname}/{mname}"), move || {
                let plan = c
                    .clone()
                    .plan(PlanOptions::with_cost_model(*model))
                    .expect("plan succeeds");
                black_box(plan.flops);
            });
        }
    }
    h.finish();
}
