//! Plan reuse vs. re-planning: the economic case for the two-stage API.
//!
//! For each stdkernels workload, one iteration performs N "sweeps"
//! (fresh factor values each sweep, like CP-ALS / HOOI) three ways:
//!
//! - `replan`:   N full pipelines — plan + bind + execute per sweep.
//! - `cached`:   N pipelines through a `PlanCache` — the DP runs once,
//!   later sweeps pay only key lookup + bind + execute.
//! - `plan-once`: one plan + one bind, then N × (`set_factor` +
//!   `execute_into`) — the intended hot path, allocation-free.
//!
//! Run with `cargo bench -p spttn-bench --bench plan_reuse`. The
//! plan-once rows must beat the replan rows; the gap is the planner
//! cost the cache and the executor amortize away.

use rand::prelude::*;
use spttn::ir::{stdkernels, Kernel};
use spttn::tensor::{random_coo, random_dense, CooTensor, Csf, DenseTensor};
use spttn::{Contraction, CostModel, PlanCache, PlanOptions, Shapes};
use spttn_bench::{black_box, Harness};

const SWEEPS: usize = 10;

struct Fixture {
    kernel: Kernel,
    coo: CooTensor,
    /// One factor set per sweep, `(name, tensor)` in input order.
    factor_sets: Vec<Vec<(String, DenseTensor)>>,
}

fn fixture(kernel: Kernel, nnz: usize, seed: u64) -> Fixture {
    let mut rng = StdRng::seed_from_u64(seed);
    let sparse_dims = kernel.ref_dims(kernel.sparse_ref());
    let coo = random_coo(&sparse_dims, nnz, &mut rng).unwrap();
    let factor_sets = (0..SWEEPS)
        .map(|_| {
            kernel
                .inputs
                .iter()
                .enumerate()
                .filter(|&(slot, _)| slot != kernel.sparse_input)
                .map(|(_, r)| (r.name.clone(), random_dense(&kernel.ref_dims(r), &mut rng)))
                .collect()
        })
        .collect();
    Fixture {
        kernel,
        coo,
        factor_sets,
    }
}

fn csf_of(f: &Fixture) -> Csf {
    let order: Vec<usize> = (0..f.coo.order()).collect();
    Csf::from_coo(&f.coo, &order).unwrap()
}

fn opts() -> PlanOptions {
    PlanOptions::with_cost_model(CostModel::BlasAware {
        buffer_dim_bound: 2,
    })
}

/// N full pipelines, optionally through a plan cache.
fn sweeps_replanning(f: &Fixture, cache: Option<&PlanCache>) -> f64 {
    let mut acc = 0.0;
    for factors in &f.factor_sets {
        let mut c = Contraction::from_kernel(f.kernel.clone()).with_sparse_input(csf_of(f));
        for (name, t) in factors {
            c = c.with_factor(name, t.clone());
        }
        let mut exec = match cache {
            Some(cache) => c.compile_cached(cache, &opts()).expect("compile succeeds"),
            None => c.compile(opts()).expect("compile succeeds"),
        };
        acc += exec.execute().expect("execution succeeds").to_dense().sum();
    }
    acc
}

/// One plan + one bind, then N rebound executions.
fn sweeps_plan_once(f: &Fixture) -> f64 {
    let csf = csf_of(f);
    let shapes = Shapes::new().with_profile(spttn::tensor::SparsityProfile::from_csf(&csf));
    let plan = Contraction::from_kernel(f.kernel.clone())
        .plan(&shapes, &opts())
        .expect("plan succeeds");
    let first: Vec<(&str, &DenseTensor)> = f.factor_sets[0]
        .iter()
        .map(|(n, t)| (n.as_str(), t))
        .collect();
    let mut exec = plan.bind(csf, &first).expect("bind succeeds");
    let mut out = exec.output_template();
    let mut acc = 0.0;
    for factors in &f.factor_sets {
        for (name, t) in factors {
            exec.set_factor(name, t).expect("factor shape fixed");
        }
        exec.execute_into(&mut out).expect("execution succeeds");
        acc += out.to_dense().sum();
    }
    acc
}

fn main() {
    let suite: Vec<(&str, Kernel, usize)> = vec![
        ("mttkrp-3d-64", stdkernels::mttkrp(&[64, 64, 64], 16), 8000),
        ("ttmc-3d-64", stdkernels::ttmc(&[64, 64, 64], &[8, 8]), 8000),
        ("tttp-3d-64", stdkernels::tttp(&[64, 64, 64], 8), 8000),
    ];
    let mut h = Harness::new(format!("plan-once vs replan ({SWEEPS} sweeps)").as_str());
    for (name, kernel, nnz) in suite {
        let f = fixture(kernel, nnz, 7);
        h.bench_function(&format!("{name}/replan"), || {
            black_box(sweeps_replanning(&f, None));
        });
        let cache = PlanCache::new();
        h.bench_function(&format!("{name}/cached"), || {
            black_box(sweeps_replanning(&f, Some(&cache)));
        });
        h.bench_function(&format!("{name}/plan-once"), || {
            black_box(sweeps_plan_once(&f));
        });
    }
    h.finish();
}
