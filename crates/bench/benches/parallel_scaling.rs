//! Parallel scaling: the same large MTTKRP plan, bound at 1 / 2 / 4
//! threads, executed through the zero-allocation `execute_into` path.
//!
//! Run with `cargo bench -p spttn-bench --bench parallel_scaling`.
//! The acceptance bar for the parallel engine is ≥1.5× at 4 threads on
//! this workload; the bench prints the measured speedups explicitly.

use rand::prelude::*;
use spttn::ir::stdkernels;
use spttn::tensor::{random_coo, random_dense, Csf, SparsityProfile};
use spttn::{Contraction, CostModel, Executor, PlanOptions, Shapes, Threads};
use spttn_bench::{black_box, Harness};

const DIMS: [usize; 3] = [512, 96, 96];
const RANK: usize = 32;
const NNZ: usize = 250_000;

fn bind_at(
    threads: usize,
    csf: &Csf,
    factors: &[(String, spttn::tensor::DenseTensor)],
) -> Executor {
    let kernel = stdkernels::mttkrp(&DIMS, RANK);
    let plan = Contraction::from_kernel(kernel)
        .plan(
            &Shapes::new().with_profile(SparsityProfile::from_csf(csf)),
            &PlanOptions::with_cost_model(CostModel::BlasAware {
                buffer_dim_bound: 2,
            })
            .with_threads(Threads::N(threads)),
        )
        .expect("planning succeeds");
    let refs: Vec<(&str, &spttn::tensor::DenseTensor)> =
        factors.iter().map(|(n, t)| (n.as_str(), t)).collect();
    plan.bind(csf.clone(), &refs).expect("bind succeeds")
}

fn main() {
    let kernel = stdkernels::mttkrp(&DIMS, RANK);
    let mut rng = StdRng::seed_from_u64(17);
    let coo = random_coo(&DIMS, NNZ, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let mut factors = Vec::new();
    for (slot, r) in kernel.inputs.iter().enumerate() {
        if slot == kernel.sparse_input {
            continue;
        }
        factors.push((r.name.clone(), random_dense(&kernel.ref_dims(r), &mut rng)));
    }

    let mut h = Harness::new(&format!(
        "parallel_scaling: MTTKRP {DIMS:?} rank {RANK}, nnz {NNZ}"
    ));
    for threads in [1usize, 2, 4] {
        let mut exec = bind_at(threads, &csf, &factors);
        let mut out = exec.output_template();
        let label = format!(
            "mttkrp-large @ {threads} thread(s) [{} tiles]",
            exec.threads()
        );
        h.bench_function(&label, move || {
            exec.execute_into(&mut out).expect("execution succeeds");
            black_box(out.to_dense().sum());
        });
    }
    let results = h.finish();

    // Speedups vs the serial row. Median is the headline number; min
    // (fastest run vs fastest run) is the least-noise estimator and the
    // one to trust on busy machines.
    let median = |samples: &Vec<f64>| {
        let mut s = samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        s[s.len() / 2]
    };
    let minimum = |samples: &Vec<f64>| samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let (serial_med, serial_min) = (median(&results[0].1), minimum(&results[0].1));
    println!("\nspeedup vs serial (median / min):");
    for (id, samples) in &results {
        println!(
            "{:<44} {:>6.2}x {:>6.2}x",
            id,
            serial_med / median(samples),
            serial_min / minimum(samples)
        );
    }
}
