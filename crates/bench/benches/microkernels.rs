//! Microkernel throughput: the BLAS-style kernels the executor
//! dispatches innermost dense loops to.
//!
//! Run with `cargo bench -p spttn-bench --bench microkernels`.

use rand::prelude::*;
use spttn::exec::blas;
use spttn::tensor::random_vec as rand_vec;
use spttn_bench::{black_box, Harness};

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let n = 4096usize;
    let x = rand_vec(n, &mut rng);
    let z = rand_vec(n, &mut rng);
    let mut y = vec![0.0; n];

    let mut h = Harness::new("BLAS microkernels").with_runs(5, 20);
    h.bench_function("axpy-4096", || {
        for _ in 0..256 {
            blas::axpy(n, 1.0001, &x, 1, &mut y, 1);
        }
        black_box(y[0]);
    });
    h.bench_function("dot-4096", || {
        let mut acc = 0.0;
        for _ in 0..256 {
            acc += blas::dot(n, &x, 1, &z, 1);
        }
        black_box(acc);
    });
    h.bench_function("xmul-4096", || {
        for _ in 0..256 {
            blas::xmul(n, 1.0, &x, 1, &z, 1, &mut y, 1);
        }
        black_box(y[0]);
    });

    let m = 256usize;
    let k = 256usize;
    let a = rand_vec(m * k, &mut rng);
    let b = rand_vec(k * m, &mut rng);
    let mut c = vec![0.0; m * m];
    h.bench_function("gemm-256", || {
        blas::gemm(m, m, k, 1.0, &a, &b, &mut c);
        black_box(c[0]);
    });
    let xv = rand_vec(k, &mut rng);
    let mut yv = vec![0.0; m];
    h.bench_function("gemv-256", || {
        for _ in 0..64 {
            blas::gemv(m, k, 1.0, &a, k, 1, &xv, 1, &mut yv, 1);
        }
        black_box(yv[0]);
    });
    h.bench_function("ger-256", || {
        for _ in 0..64 {
            blas::ger(m, k, 1.0, &yv, 1, &xv, 1, &mut c, k, 1);
        }
        black_box(c[0]);
    });
    h.finish();
}
