//! `spttn` — end-to-end command-line driver for the SpTTN pipeline.
//!
//! Runs the whole stack on real data: parse an einsum-style contraction,
//! ingest a FROSTT `.tns` or MatrixMarket `.mtx` sparse tensor, plan
//! under a selectable cost model and CSF mode-order policy, bind with
//! seeded random dense factors, execute (serially or on the tiled
//! parallel engine), and report plan and execution statistics — with an
//! optional naive-oracle check.
//!
//! ```text
//! spttn run "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)" --tns tensor.tns \
//!     --rank 16 --threads 4 --cost-model blas-aware --mode-order auto --check
//! spttn plan "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)" --dims 1000x800x900 \
//!     --nnz 50000 --rank 16 --mode-order auto
//! ```
//!
//! Exit codes: 0 success, 1 usage or pipeline error, 2 oracle mismatch,
//! 3 cancelled (deadline expired), 4 budget rejected.

// The CLI only orchestrates the library: no unsafe code, ever.
#![forbid(unsafe_code)]

use rand::prelude::*;
use spttn::exec::naive_einsum;
use spttn::ir::Kernel;
use spttn::tensor::{load_coo, random_dense, read_tns, CooTensor, Csf, DenseTensor};
use spttn::{
    Contraction, ContractionOutput, CostModel, Engine, Microkernels, ModeOrderPolicy, Plan,
    PlanOptions, RunBudget, Shapes, SpttnError, Threads,
};
use spttn_net::{NetOptions, Network, OrderStrategy};
use std::time::{Duration, Instant};

const CHECK_TOL: f64 = 1e-9;

fn usage() -> ! {
    eprintln!(
        "spttn — minimum-cost loop nests for sparse tensor network contraction

USAGE:
    spttn run  <EXPR> (--tns FILE | --mtx FILE) [OPTIONS]
    spttn plan <EXPR> (--tns FILE | --mtx FILE | --dims DxDxD --nnz N) [OPTIONS]
    spttn net  <EXPR> (--tns FILE | --mtx FILE | --dims DxDxD --nnz N) [OPTIONS]

EXPR uses either syntax, first right-hand-side tensor sparse:
    \"A(i,a) = T(i,j,k) * B(j,a) * C(k,a)\"   or   \"T[i,j,k]*B[j,a]*C[k,a]->A[i,a]\"

'spttn net' plans (and, given a tensor file, executes) a multi-tensor
network: the dense factors may share indices among themselves, the
pairwise contraction order is searched (--order), dense-dense steps are
materialized, and the sparse spine collapses into one planned kernel.

INPUT:
    --tns FILE            FROSTT text tensor (1-based coords, '#' comments)
    --mtx FILE            MatrixMarket coordinate matrix
    --dims D1xD2x...      declare sparse dims (validates .tns; enables file-less plan)
    --nnz N               model nonzero count (plan without a file)

OPTIONS:
    --rank N              dimension for every index not on the sparse tensor [16]
    --dim name=N          dimension for one index (overrides --rank)
    --threads N|auto      execution threads (at least 1, or 'auto' for one
                          per hardware core) [1]
    --order O             network contraction order: greedy | optimal
                          (budgeted exact subset sweep; 'spttn net' only) [greedy]
    --budget N            pair-cost evaluation budget for --order optimal
                          [1000000]
    --engine E            tape (bind-time compiled instruction tape) |
                          interp (recursive oracle interpreter)  [tape]
    --microkernels M      auto (explicit-SIMD kernels by CPU detection, fused
                          superinstructions) | scalar (plain scalar kernels,
                          bitwise-stable baseline)  [auto]
    --cost-model M        blas-aware[:BOUND] | max-buffer-dim | max-buffer-size |
                          cache-miss[:D]    [blas-aware:2]
    --mode-order P        natural | auto | L0,L1,... (written positions) [natural]
    --seed S              seed for the random dense factors [42]
    --repeat K            execute K times, report best wall time [1]
    --timeout DUR         wall-clock deadline per execution; suffix ms, s, or m
                          (bare number = seconds). Expiry exits 3.
    --max-mem BYTES       workspace-byte budget checked at bind; suffix K, M,
                          or G (powers of 1024). Rejection exits 4.
    --max-flops N         modeled-flop budget checked at bind. Rejection exits 4.
    --check               compare against the naive dense oracle (exit 2 on mismatch)
    --verify              statically verify the compiled tape and print the
                          proof summary (always on in debug builds)
    -h, --help            this text"
    );
    std::process::exit(1)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

/// Report a pipeline error on one line with the exit code its kind
/// maps to: 3 for cancellation/deadline expiry, 4 for budget
/// rejection, 1 otherwise.
fn fail_stage(stage: &str, e: SpttnError) -> ! {
    let code = match &e {
        SpttnError::Cancelled { .. } => 3,
        SpttnError::BudgetExceeded { .. } => 4,
        _ => 1,
    };
    eprintln!("error: {stage}: {e}");
    std::process::exit(code)
}

#[derive(Debug)]
struct Args {
    cmd: String,
    expr: String,
    tns: Option<String>,
    mtx: Option<String>,
    dims: Option<Vec<usize>>,
    nnz: Option<u64>,
    rank: usize,
    dim_overrides: Vec<(String, usize)>,
    threads: Threads,
    order: OrderStrategy,
    budget: u64,
    engine: Engine,
    microkernels: Microkernels,
    cost_model: CostModel,
    mode_order: ModeOrderPolicy,
    seed: u64,
    repeat: usize,
    timeout: Option<Duration>,
    max_mem: Option<u64>,
    max_flops: Option<u128>,
    check: bool,
    verify: bool,
}

/// Parse a duration with an optional `ms`/`s`/`m` suffix; a bare
/// number means seconds.
fn parse_duration(s: &str) -> Duration {
    let (num, mul_ms) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1u64)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000)
    } else if let Some(n) = s.strip_suffix('m') {
        (n, 60_000)
    } else {
        (s, 1_000)
    };
    let v: u64 = num
        .trim()
        .parse()
        .unwrap_or_else(|_| fail(format!("bad duration '{s}' (e.g. 500ms, 2s, 1m)")));
    Duration::from_millis(v.saturating_mul(mul_ms))
}

/// Parse a byte count with an optional `K`/`M`/`G` suffix (powers of
/// 1024); a bare number means bytes.
fn parse_bytes(s: &str) -> u64 {
    let t = s.trim();
    let (num, shift) = match t.chars().last() {
        Some('K' | 'k') => (&t[..t.len() - 1], 10u32),
        Some('M' | 'm') => (&t[..t.len() - 1], 20),
        Some('G' | 'g') => (&t[..t.len() - 1], 30),
        _ => (t, 0),
    };
    let v: u64 = num
        .trim()
        .parse()
        .unwrap_or_else(|_| fail(format!("bad byte count '{s}' (e.g. 4096, 64K, 16M, 2G)")));
    v.checked_mul(1u64 << shift)
        .unwrap_or_else(|| fail(format!("byte count '{s}' overflows")))
}

fn parse_cost_model(s: &str) -> CostModel {
    let (name, param) = match s.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (s, None),
    };
    let num = |p: Option<&str>, default: usize| -> usize {
        match p {
            None => default,
            Some(p) => p
                .parse()
                .unwrap_or_else(|_| fail(format!("bad cost-model parameter '{p}'"))),
        }
    };
    match name {
        "blas-aware" => CostModel::BlasAware {
            buffer_dim_bound: num(param, 2),
        },
        "max-buffer-dim" => CostModel::MaxBufferDim,
        "max-buffer-size" => CostModel::MaxBufferSize,
        "cache-miss" => CostModel::CacheMiss { d: num(param, 1) },
        other => fail(format!(
            "unknown cost model '{other}' (blas-aware, max-buffer-dim, max-buffer-size, cache-miss)"
        )),
    }
}

fn parse_engine(s: &str) -> Engine {
    match s {
        "tape" => Engine::Tape,
        "interp" => Engine::Interp,
        other => fail(format!("unknown engine '{other}' (tape, interp)")),
    }
}

fn parse_microkernels(s: &str) -> Microkernels {
    match s {
        "auto" => Microkernels::Auto,
        "scalar" => Microkernels::Scalar,
        other => fail(format!(
            "unknown microkernel policy '{other}' (auto, scalar)"
        )),
    }
}

fn parse_mode_order(s: &str) -> ModeOrderPolicy {
    match s {
        "natural" => ModeOrderPolicy::Natural,
        "auto" => ModeOrderPolicy::Auto,
        list => {
            let order: Vec<usize> = list
                .split(',')
                .map(|f| {
                    f.trim()
                        .parse()
                        .unwrap_or_else(|_| fail(format!("bad mode-order position '{f}'")))
                })
                .collect();
            ModeOrderPolicy::Fixed(order)
        }
    }
}

fn parse_dims(s: &str) -> Vec<usize> {
    s.split(['x', 'X'])
        .map(|f| {
            f.trim()
                .parse()
                .unwrap_or_else(|_| fail(format!("bad dimension '{f}' in '{s}'")))
        })
        .collect()
}

fn parse_args() -> Args {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else { usage() };
    if cmd == "-h" || cmd == "--help" || cmd == "help" {
        usage();
    }
    if cmd != "run" && cmd != "plan" && cmd != "net" {
        fail(format!(
            "unknown command '{cmd}' (expected 'run', 'plan', or 'net')"
        ));
    }
    let Some(expr) = argv.next() else {
        fail("missing contraction expression")
    };
    let mut args = Args {
        cmd,
        expr,
        tns: None,
        mtx: None,
        dims: None,
        nnz: None,
        rank: 16,
        dim_overrides: Vec::new(),
        threads: Threads::N(1),
        order: OrderStrategy::Greedy,
        budget: 1_000_000,
        engine: Engine::Tape,
        microkernels: Microkernels::Auto,
        cost_model: CostModel::BlasAware {
            buffer_dim_bound: 2,
        },
        mode_order: ModeOrderPolicy::Natural,
        seed: 42,
        repeat: 1,
        timeout: None,
        max_mem: None,
        max_flops: None,
        check: false,
        verify: false,
    };
    let value = |argv: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        argv.next()
            .unwrap_or_else(|| fail(format!("{flag} needs a value")))
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--tns" => args.tns = Some(value(&mut argv, "--tns")),
            "--mtx" => args.mtx = Some(value(&mut argv, "--mtx")),
            "--dims" => args.dims = Some(parse_dims(&value(&mut argv, "--dims"))),
            "--nnz" => {
                args.nnz = Some(
                    value(&mut argv, "--nnz")
                        .parse()
                        .unwrap_or_else(|_| fail("bad --nnz value")),
                )
            }
            "--rank" => {
                args.rank = value(&mut argv, "--rank")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --rank value"))
            }
            "--dim" => {
                let v = value(&mut argv, "--dim");
                let (name, d) = v
                    .split_once('=')
                    .unwrap_or_else(|| fail(format!("--dim expects name=N, got '{v}'")));
                let d = d
                    .parse()
                    .unwrap_or_else(|_| fail(format!("bad dimension in --dim {v}")));
                args.dim_overrides.push((name.trim().to_string(), d));
            }
            "--threads" => {
                let v = value(&mut argv, "--threads");
                args.threads = if v == "auto" {
                    Threads::Auto
                } else {
                    match v.parse::<usize>() {
                        Ok(0) => fail("--threads must be at least 1 (or 'auto')"),
                        Ok(n) => Threads::N(n),
                        Err(_) => fail(format!(
                            "bad --threads value '{v}' (expected a positive integer or 'auto')"
                        )),
                    }
                }
            }
            "--order" => {
                args.order = match value(&mut argv, "--order").as_str() {
                    "greedy" => OrderStrategy::Greedy,
                    "optimal" => OrderStrategy::Optimal,
                    other => fail(format!("unknown order '{other}' (greedy, optimal)")),
                }
            }
            "--budget" => {
                args.budget = value(&mut argv, "--budget")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --budget value"))
            }
            "--engine" => args.engine = parse_engine(&value(&mut argv, "--engine")),
            "--microkernels" => {
                args.microkernels = parse_microkernels(&value(&mut argv, "--microkernels"))
            }
            "--cost-model" => args.cost_model = parse_cost_model(&value(&mut argv, "--cost-model")),
            "--mode-order" => args.mode_order = parse_mode_order(&value(&mut argv, "--mode-order")),
            "--seed" => {
                args.seed = value(&mut argv, "--seed")
                    .parse()
                    .unwrap_or_else(|_| fail("bad --seed value"))
            }
            "--repeat" => {
                args.repeat = value(&mut argv, "--repeat")
                    .parse::<usize>()
                    .unwrap_or_else(|_| fail("bad --repeat value"))
                    .max(1)
            }
            "--timeout" => args.timeout = Some(parse_duration(&value(&mut argv, "--timeout"))),
            "--max-mem" => args.max_mem = Some(parse_bytes(&value(&mut argv, "--max-mem"))),
            "--max-flops" => {
                args.max_flops = Some(
                    value(&mut argv, "--max-flops")
                        .parse()
                        .unwrap_or_else(|_| fail("bad --max-flops value")),
                )
            }
            "--check" => args.check = true,
            "--verify" => args.verify = true,
            "-h" | "--help" => usage(),
            other => fail(format!("unknown flag '{other}'")),
        }
    }
    args
}

/// Map `--timeout` / `--max-mem` / `--max-flops` onto the execution
/// options the plan carries into bind and execute.
fn apply_limits(mut popts: PlanOptions, args: &Args) -> PlanOptions {
    if let Some(t) = args.timeout {
        popts = popts.with_deadline(t);
    }
    let mut budget = RunBudget::default();
    if let Some(b) = args.max_mem {
        budget = budget.with_max_workspace_bytes(b);
    }
    if let Some(f) = args.max_flops {
        budget = budget.with_max_modeled_flops(f);
    }
    if budget.is_limited() {
        popts = popts.with_budget(budget);
    }
    popts
}

/// Load the sparse input as COO, or `None` for file-less planning.
fn load_input(args: &Args) -> Option<CooTensor> {
    let coo = match (&args.tns, &args.mtx) {
        (Some(_), Some(_)) => fail("pass --tns or --mtx, not both"),
        (Some(path), None) => match &args.dims {
            // Declared dims validate the file's coordinates.
            Some(dims) => {
                let file = std::fs::File::open(path)
                    .unwrap_or_else(|e| fail(format!("cannot open '{path}': {e}")));
                read_tns(std::io::BufReader::new(file), Some(dims))
                    .unwrap_or_else(|e| fail(format!("reading '{path}': {e}")))
            }
            None => load_coo(path).unwrap_or_else(|e| fail(format!("reading '{path}': {e}"))),
        },
        (None, Some(path)) => {
            load_coo(path).unwrap_or_else(|e| fail(format!("reading '{path}': {e}")))
        }
        (None, None) => return None,
    };
    Some(coo)
}

/// Assemble the symbolic shapes: sparse dims from the ingested tensor
/// (or --dims), dense-only dims from --rank/--dim, sparsity from the
/// pattern (or --nnz).
fn build_shapes(
    args: &Args,
    sparse_names: &[String],
    all_names: &[String],
    coo: Option<&CooTensor>,
) -> Shapes {
    let sparse_dims: Vec<usize> = match coo {
        Some(c) => c.dims().to_vec(),
        None => args.dims.clone().unwrap_or_else(|| {
            fail("no sparse input: pass --tns/--mtx, or --dims with --nnz for file-less planning")
        }),
    };
    if sparse_dims.len() != sparse_names.len() {
        fail(format!(
            "sparse tensor has {} modes but '{}' is written with {} indices",
            sparse_dims.len(),
            args.expr,
            sparse_names.len()
        ));
    }
    let mut shapes = Shapes::new();
    for (name, &dim) in sparse_names.iter().zip(&sparse_dims) {
        shapes = shapes.with_dim(name, dim);
    }
    for name in all_names {
        if !sparse_names.contains(name) {
            shapes = shapes.with_dim(name, args.rank);
        }
    }
    for (name, dim) in &args.dim_overrides {
        shapes = shapes.with_dim(name, *dim);
    }
    match (coo, args.nnz) {
        (Some(c), _) => shapes.with_pattern(c.clone()),
        (None, Some(nnz)) => shapes.with_nnz(nnz),
        (None, None) => fail("file-less planning needs --nnz"),
    }
}

fn print_plan(plan: &Plan) {
    print!("{}", plan.describe());
    if plan.order_costs().len() > 1 {
        println!(
            "mode-order search ({} candidates):",
            plan.order_costs().len()
        );
        let natural = plan.natural_kernel();
        let names: Vec<&str> = natural
            .csf_index_order()
            .iter()
            .map(|&i| natural.index_name(i))
            .collect();
        for oc in plan.order_costs() {
            let as_names: Vec<&str> = oc.order.iter().map(|&p| names[p]).collect();
            let marker = if oc.order == plan.mode_order() {
                " <- chosen"
            } else {
                ""
            };
            match oc.flops {
                Some(f) => println!(
                    "  ({}): ~{f} flops, cost {}{marker}",
                    as_names.join(","),
                    oc.cost
                ),
                None => println!("  ({}): infeasible", as_names.join(",")),
            }
        }
    }
    println!(
        "modeled: ~{} flops (tier {}, cost {})",
        plan.flops, plan.tier, plan.cost
    );
}

fn check_against_oracle(
    kernel: &Kernel,
    coo: &CooTensor,
    factors: &[(String, DenseTensor)],
    got: &ContractionOutput,
) -> f64 {
    let sparse_dense = coo.to_dense();
    let mut slots: Vec<&DenseTensor> = Vec::new();
    let mut next = 0usize;
    for slot in 0..kernel.inputs.len() {
        if slot == kernel.sparse_input {
            slots.push(&sparse_dense);
        } else {
            // Factors are generated per input slot below, in order.
            slots.push(&factors[next].1);
            next += 1;
        }
    }
    let want = naive_einsum(kernel, &slots).unwrap_or_else(|e| fail(format!("oracle: {e}")));
    let got_dense = match got {
        ContractionOutput::Dense(d) => d.clone(),
        ContractionOutput::Sparse(c) => c.to_dense(),
    };
    got_dense
        .as_slice()
        .iter()
        .zip(want.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max)
}

/// Print the ingest line and return the loaded COO tensor (if any).
fn ingest(args: &Args) -> Option<CooTensor> {
    let t_ingest = Instant::now();
    let coo = load_input(args);
    if let Some(c) = &coo {
        println!(
            "ingest: {} modes {:?}, {} nonzeros ({:.1} ms)",
            c.order(),
            c.dims(),
            c.nnz(),
            t_ingest.elapsed().as_secs_f64() * 1e3
        );
    }
    coo
}

/// Seeded random dense factors, one per dense input slot of `kernel`
/// (a name filling several slots reuses one tensor, matching the
/// executors' bind-by-name semantics). Returns slot-order `factors`
/// for the oracle and deduplicated `named` views for binding.
fn make_factors(kernel: &Kernel, seed: u64) -> Vec<(String, DenseTensor)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut factors: Vec<(String, DenseTensor)> = Vec::new();
    for (slot, r) in kernel.inputs.iter().enumerate() {
        if slot == kernel.sparse_input {
            continue;
        }
        let t = match factors.iter().find(|(n, _)| *n == r.name) {
            Some((_, t)) => t.clone(),
            None => random_dense(&kernel.ref_dims(r), &mut rng),
        };
        factors.push((r.name.clone(), t));
    }
    factors
}

fn dedup_named(factors: &[(String, DenseTensor)]) -> Vec<(&str, &DenseTensor)> {
    let mut named: Vec<(&str, &DenseTensor)> = Vec::new();
    for (name, t) in factors {
        if !named.iter().any(|(n, _)| n == name) {
            named.push((name, t));
        }
    }
    named
}

fn report_check(diff: f64) {
    println!("check: max |Δ| vs naive oracle = {diff:.3e}");
    if diff.is_nan() || diff > CHECK_TOL {
        eprintln!("error: oracle mismatch exceeds {CHECK_TOL:e}");
        std::process::exit(2);
    }
    println!("check: OK (tolerance {CHECK_TOL:e})");
}

/// `spttn net`: plan (and, given a tensor file, execute) a multi-tensor
/// network through the sequence planner and pooled executor.
fn run_net(args: &Args) {
    let net = Network::parse(&args.expr).unwrap_or_else(|e| fail(format!("parse: {e}")));
    let coo = ingest(args);
    let shapes = build_shapes(
        args,
        &net.sparse_index_names(),
        &net.all_index_names(),
        coo.as_ref(),
    );
    let popts = apply_limits(
        PlanOptions::with_cost_model(args.cost_model)
            .with_mode_order(args.mode_order.clone())
            .with_threads(args.threads)
            .with_engine(args.engine)
            .with_microkernels(args.microkernels)
            .with_verify(args.verify),
        args,
    );
    let nopts = NetOptions::default()
        .with_order(args.order)
        .with_budget(args.budget)
        .with_plan_options(popts);

    let t_plan = Instant::now();
    let nplan = net
        .plan(&shapes, &nopts)
        .unwrap_or_else(|e| fail(format!("plan: {e}")));
    let plan_ms = t_plan.elapsed().as_secs_f64() * 1e3;
    print!("{}", nplan.describe());
    let report = nplan.report();
    println!(
        "search:  {} pair evaluations ({})",
        report.evaluated_pairs, report.strategy
    );
    println!("planned in {plan_ms:.1} ms");
    if args.verify {
        let vr = nplan
            .kernel_plan()
            .verify_tape()
            .unwrap_or_else(|e| fail(format!("verify: {e}")));
        println!("{vr}");
    }
    // Without a tensor file this is a planning run, like 'spttn plan'.
    let Some(coo) = coo else { return };

    let natural_order: Vec<usize> = (0..coo.order()).collect();
    let csf = Csf::from_coo(&coo, &natural_order).unwrap_or_else(|e| fail(format!("csf: {e}")));
    let kernel = nplan.kernel().clone();
    let factors = make_factors(&kernel, args.seed);
    let named = dedup_named(&factors);
    let t_bind = Instant::now();
    let mut exec = nplan
        .bind(csf, &named)
        .unwrap_or_else(|e| fail_stage("bind", e));
    println!(
        "bind: {} thread(s), {} dense step(s) feeding the collapsed kernel ({:.1} ms)",
        exec.threads(),
        exec.num_dense_steps(),
        t_bind.elapsed().as_secs_f64() * 1e3
    );

    let mut out = exec.output_template();
    let mut best = f64::INFINITY;
    for rep in 0..args.repeat {
        if rep > 0 {
            out = exec.output_template();
        }
        let t = Instant::now();
        exec.execute_into(&mut out)
            .unwrap_or_else(|e| fail_stage("execute", e));
        best = best.min(t.elapsed().as_secs_f64());
    }
    println!(
        "execute: best {:.3} ms over {} run(s)",
        best * 1e3,
        args.repeat
    );
    let stats = exec.kernel_stats();
    println!(
        "stats: dense steps ~{} flops; kernel axpy {} dot {} xmul {} ger {} gemv {} \
         ({} dispatches over {} elements)",
        exec.dense_step_flops(),
        stats.axpy,
        stats.dot,
        stats.xmul,
        stats.ger,
        stats.gemv,
        stats.total(),
        stats.elems()
    );

    if args.check {
        // The network kernel is written-order by construction, so it is
        // its own oracle kernel.
        report_check(check_against_oracle(&kernel, &coo, &factors, &out));
    }
}

fn main() {
    let args = parse_args();
    if args.cmd == "net" {
        run_net(&args);
        return;
    }
    let contraction =
        Contraction::parse(&args.expr).unwrap_or_else(|e| fail(format!("parse: {e}")));

    let coo = ingest(&args);
    let sparse_names = contraction
        .sparse_index_names()
        .unwrap_or_else(|| fail("expression has no sparse input"));
    let shapes = build_shapes(
        &args,
        &sparse_names,
        &contraction.all_index_names(),
        coo.as_ref(),
    );
    let opts = apply_limits(
        PlanOptions::with_cost_model(args.cost_model)
            .with_mode_order(args.mode_order.clone())
            .with_threads(args.threads)
            .with_engine(args.engine)
            .with_microkernels(args.microkernels)
            .with_verify(args.verify),
        &args,
    );

    let t_plan = Instant::now();
    let plan = contraction
        .plan(&shapes, &opts)
        .unwrap_or_else(|e| fail(format!("plan: {e}")));
    let plan_ms = t_plan.elapsed().as_secs_f64() * 1e3;
    print_plan(&plan);
    println!("planned in {plan_ms:.1} ms");

    if args.verify {
        // Static proof of the compiled program, before (or without)
        // binding any data: loop structure, cursor bounds, Eq.-5 zero
        // placement, resolver shape.
        let report = plan
            .verify_tape()
            .unwrap_or_else(|e| fail(format!("verify: {e}")));
        println!("{report}");
    }
    if args.cmd == "plan" {
        return;
    }
    let Some(coo) = coo else {
        fail("'spttn run' needs a tensor file (--tns or --mtx)")
    };

    // Bind: written-order CSF (the plan re-sorts it if it chose another
    // order) plus seeded random factors, one per dense input slot name.
    let natural_order: Vec<usize> = (0..coo.order()).collect();
    let csf = Csf::from_coo(&coo, &natural_order).unwrap_or_else(|e| fail(format!("csf: {e}")));
    let factors = make_factors(plan.kernel(), args.seed);
    let named = dedup_named(&factors);
    let t_bind = Instant::now();
    let mut exec = plan
        .bind(csf, &named)
        .unwrap_or_else(|e| fail_stage("bind", e));
    println!(
        "bind: {} thread(s), {} engine{}{} ({:.1} ms)",
        exec.threads(),
        match exec.engine() {
            Engine::Tape => "tape",
            Engine::Interp => "interp",
        },
        exec.tape().map_or(String::new(), |t| {
            format!(
                " ({} instrs, {} cursors, {} fingers; {} kernels ×{}, {} fused, {} specialized)",
                t.num_instrs(),
                t.num_cursors(),
                t.num_fingers(),
                t.microkernels(),
                t.kernel_width(),
                t.superinstructions(),
                t.specialized()
            )
        }),
        if plan.is_natural_order() {
            String::new()
        } else {
            ", CSF re-sorted to plan order".to_string()
        },
        t_bind.elapsed().as_secs_f64() * 1e3
    );

    let mut out = exec.output_template();
    let mut best = f64::INFINITY;
    for rep in 0..args.repeat {
        if rep > 0 {
            // Reset between timed runs so '+=' (accumulate) plans don't
            // pile K contractions into one output and trip --check.
            out = exec.output_template();
        }
        let t = Instant::now();
        exec.execute_into(&mut out)
            .unwrap_or_else(|e| fail_stage("execute", e));
        best = best.min(t.elapsed().as_secs_f64());
    }
    let stats = exec.last_stats();
    println!(
        "execute: best {:.3} ms over {} run(s)",
        best * 1e3,
        args.repeat
    );
    println!(
        "stats: axpy {} dot {} xmul {} ger {} gemv {} ({} dispatches over {} elements)",
        stats.axpy,
        stats.dot,
        stats.xmul,
        stats.ger,
        stats.gemv,
        stats.total(),
        stats.elems()
    );
    println!(
        "search: {} node re-resolutions, {} probes ({})",
        stats.node_searches,
        stats.search_probes,
        match exec.engine() {
            Engine::Tape => "galloping finger search",
            Engine::Interp => "binary search depth",
        }
    );

    if args.check {
        // The oracle contracts written-order dense operands, so check
        // against the kernel with the storage permutation undone.
        report_check(check_against_oracle(
            &plan.natural_kernel(),
            &coo,
            &factors,
            &out,
        ));
    }
}
