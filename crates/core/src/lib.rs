//! # spttn-core
//!
//! Shared vocabulary for the spttn workspace: the unified error type
//! every layer converges to, and the scalar/result aliases the rest of
//! the stack builds on.
//!
//! The lower layers each define precise, local error enums
//! ([`spttn_ir::KernelError`], [`spttn_ir::FuseError`],
//! [`spttn_tensor::TensorError`]); this crate folds them into one
//! [`SpttnError`] so the `spttn` facade presents a single error surface
//! for the whole parse → plan → execute pipeline.

// Pure data and error plumbing: no unsafe code, ever.
#![forbid(unsafe_code)]

use spttn_ir::{FuseError, KernelError};
use spttn_tensor::TensorError;

/// Element type of every tensor in the workspace.
pub type Scalar = f64;

/// Result alias used across the facade and executor.
pub type Result<T> = std::result::Result<T, SpttnError>;

/// Unified error for the parse → plan → execute pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SpttnError {
    /// Kernel specification or einsum parsing failed.
    Kernel(KernelError),
    /// Fused-forest construction rejected the loop orders.
    Fuse(FuseError),
    /// Tensor construction or validation failed.
    Tensor(TensorError),
    /// The planner could not produce a feasible loop nest.
    Planning(String),
    /// Bound operands disagree with the kernel's index structure.
    Shape(String),
    /// The executor was driven with inconsistent inputs.
    Execution(String),
    /// Execution stopped cooperatively before completion — a
    /// `CancelToken` fired or a deadline expired. `phase` names the
    /// checkpoint that observed the stop ("tape", "interp",
    /// "network"); `elapsed` is wall time since the execution started.
    /// The caller-visible output holds no partial results.
    Cancelled {
        phase: &'static str,
        elapsed: std::time::Duration,
    },
    /// A job panicked during parallel execution. Only the execution
    /// that owned the job fails; the worker pool recovers. `worker` is
    /// the tile index (0 = the calling thread), `payload` the panic
    /// message when it was a string.
    WorkerPanic { worker: usize, payload: String },
    /// Admission control rejected the bind: the plan's modeled demand
    /// for `resource` exceeds the configured `RunBudget`, even after
    /// degrading to the cheapest feasible configuration.
    BudgetExceeded {
        resource: &'static str,
        predicted: u128,
        allowed: u128,
    },
}

impl std::fmt::Display for SpttnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpttnError::Kernel(e) => write!(f, "kernel error: {e}"),
            SpttnError::Fuse(e) => write!(f, "fusion error: {e}"),
            SpttnError::Tensor(e) => write!(f, "tensor error: {e}"),
            SpttnError::Planning(m) => write!(f, "planning error: {m}"),
            SpttnError::Shape(m) => write!(f, "shape error: {m}"),
            SpttnError::Execution(m) => write!(f, "execution error: {m}"),
            SpttnError::Cancelled { phase, elapsed } => {
                write!(f, "execution cancelled during {phase} after {elapsed:?}")
            }
            SpttnError::WorkerPanic { worker, payload } => {
                write!(
                    f,
                    "worker {worker} panicked during parallel execution: {payload}"
                )
            }
            SpttnError::BudgetExceeded {
                resource,
                predicted,
                allowed,
            } => {
                write!(
                    f,
                    "budget exceeded: predicted {resource} {predicted} > allowed {allowed}"
                )
            }
        }
    }
}

impl std::error::Error for SpttnError {}

impl From<KernelError> for SpttnError {
    fn from(e: KernelError) -> Self {
        SpttnError::Kernel(e)
    }
}

impl From<FuseError> for SpttnError {
    fn from(e: FuseError) -> Self {
        SpttnError::Fuse(e)
    }
}

impl From<TensorError> for SpttnError {
    fn from(e: TensorError) -> Self {
        SpttnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_payload() {
        let k: SpttnError = KernelError::NoInputs.into();
        assert_eq!(k, SpttnError::Kernel(KernelError::NoInputs));
        let t: SpttnError = TensorError::ZeroDim.into();
        assert!(matches!(t, SpttnError::Tensor(TensorError::ZeroDim)));
        let u: SpttnError = FuseError::WrongArity.into();
        assert!(matches!(u, SpttnError::Fuse(FuseError::WrongArity)));
    }

    #[test]
    fn display_is_prefixed() {
        let e = SpttnError::Planning("no feasible nest".into());
        assert_eq!(e.to_string(), "planning error: no feasible nest");
        let k: SpttnError = KernelError::NoInputs.into();
        assert!(k.to_string().starts_with("kernel error:"));
    }

    #[test]
    fn robustness_variants_display_their_numbers() {
        let c = SpttnError::Cancelled {
            phase: "tape",
            elapsed: std::time::Duration::from_millis(12),
        };
        assert!(c.to_string().contains("cancelled during tape"));
        let w = SpttnError::WorkerPanic {
            worker: 3,
            payload: "index out of bounds".into(),
        };
        assert_eq!(
            w.to_string(),
            "worker 3 panicked during parallel execution: index out of bounds"
        );
        let b = SpttnError::BudgetExceeded {
            resource: "workspace bytes",
            predicted: 4096,
            allowed: 1024,
        };
        assert_eq!(
            b.to_string(),
            "budget exceeded: predicted workspace bytes 4096 > allowed 1024"
        );
    }

    #[test]
    fn question_mark_composes() {
        fn inner() -> Result<()> {
            Err(TensorError::ZeroDim)?;
            Ok(())
        }
        assert!(matches!(inner(), Err(SpttnError::Tensor(_))));
    }
}
