//! # spttn-core
//!
//! Shared vocabulary for the spttn workspace: the unified error type
//! every layer converges to, and the scalar/result aliases the rest of
//! the stack builds on.
//!
//! The lower layers each define precise, local error enums
//! ([`spttn_ir::KernelError`], [`spttn_ir::FuseError`],
//! [`spttn_tensor::TensorError`]); this crate folds them into one
//! [`SpttnError`] so the `spttn` facade presents a single error surface
//! for the whole parse → plan → execute pipeline.

// Pure data and error plumbing: no unsafe code, ever.
#![forbid(unsafe_code)]

use spttn_ir::{FuseError, KernelError};
use spttn_tensor::TensorError;

/// Element type of every tensor in the workspace.
pub type Scalar = f64;

/// Result alias used across the facade and executor.
pub type Result<T> = std::result::Result<T, SpttnError>;

/// Unified error for the parse → plan → execute pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum SpttnError {
    /// Kernel specification or einsum parsing failed.
    Kernel(KernelError),
    /// Fused-forest construction rejected the loop orders.
    Fuse(FuseError),
    /// Tensor construction or validation failed.
    Tensor(TensorError),
    /// The planner could not produce a feasible loop nest.
    Planning(String),
    /// Bound operands disagree with the kernel's index structure.
    Shape(String),
    /// The executor was driven with inconsistent inputs.
    Execution(String),
}

impl std::fmt::Display for SpttnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpttnError::Kernel(e) => write!(f, "kernel error: {e}"),
            SpttnError::Fuse(e) => write!(f, "fusion error: {e}"),
            SpttnError::Tensor(e) => write!(f, "tensor error: {e}"),
            SpttnError::Planning(m) => write!(f, "planning error: {m}"),
            SpttnError::Shape(m) => write!(f, "shape error: {m}"),
            SpttnError::Execution(m) => write!(f, "execution error: {m}"),
        }
    }
}

impl std::error::Error for SpttnError {}

impl From<KernelError> for SpttnError {
    fn from(e: KernelError) -> Self {
        SpttnError::Kernel(e)
    }
}

impl From<FuseError> for SpttnError {
    fn from(e: FuseError) -> Self {
        SpttnError::Fuse(e)
    }
}

impl From<TensorError> for SpttnError {
    fn from(e: TensorError) -> Self {
        SpttnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_payload() {
        let k: SpttnError = KernelError::NoInputs.into();
        assert_eq!(k, SpttnError::Kernel(KernelError::NoInputs));
        let t: SpttnError = TensorError::ZeroDim.into();
        assert!(matches!(t, SpttnError::Tensor(TensorError::ZeroDim)));
        let u: SpttnError = FuseError::WrongArity.into();
        assert!(matches!(u, SpttnError::Fuse(FuseError::WrongArity)));
    }

    #[test]
    fn display_is_prefixed() {
        let e = SpttnError::Planning("no feasible nest".into());
        assert_eq!(e.to_string(), "planning error: no feasible nest");
        let k: SpttnError = KernelError::NoInputs.into();
        assert!(k.to_string().starts_with("kernel error:"));
    }

    #[test]
    fn question_mark_composes() {
        fn inner() -> Result<()> {
            Err(TensorError::ZeroDim)?;
            Ok(())
        }
        assert!(matches!(inner(), Err(SpttnError::Tensor(_))));
    }
}
