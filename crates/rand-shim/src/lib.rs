//! Minimal, dependency-free stand-in for the subset of the `rand` 0.8
//! API this workspace uses.
//!
//! The build environment for this repository is fully offline (no
//! crates.io registry), so the real `rand` crate cannot be fetched. The
//! tensor generators and tests only need seedable, reproducible uniform
//! sampling; this crate provides exactly that surface — [`Rng`],
//! [`SeedableRng`], [`rngs::StdRng`] (xoshiro256++ seeded via
//! splitmix64), and [`distributions::Uniform`] over `f64` — so the rest
//! of the workspace compiles unmodified against `use rand::...` paths.
//! Swapping in the real crate later is a one-line manifest change; seeds
//! will then produce different (but still deterministic) streams, which
//! no test in this workspace depends on.

use std::ops::Range;

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` (53-bit mantissa construction).
    fn next_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }
}

/// User-facing sampling methods (blanket-implemented for every
/// [`RngCore`], mirroring `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that support single-value uniform sampling.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<usize> for Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = (self.end - self.start) as u64;
        // Modulo bias is negligible for the small spans used here.
        self.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Distribution sampling (mirrors `rand::distributions`).
pub mod distributions {
    use super::RngCore;

    /// A sampleable distribution over `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a half-open `f64` interval.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform {
        low: f64,
        high: f64,
    }

    impl Uniform {
        /// Uniform over `[low, high)`.
        pub fn new(low: f64, high: f64) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Uniform { low, high }
        }
    }

    impl Distribution<f64> for Uniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            self.low + rng.next_f64() * (self.high - self.low)
        }
    }
}

/// Concrete generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator, seeded via splitmix64 — the shim's
    /// stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Common imports (mirrors `rand::prelude`).
pub mod prelude {
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::distributions::Uniform;
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_usize_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
        }
    }

    #[test]
    fn uniform_f64_in_bounds_and_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = Uniform::new(-1.0, 1.0);
        let mut lo = 0usize;
        for _ in 0..1000 {
            let v = dist.sample(&mut rng);
            assert!((-1.0..1.0).contains(&v));
            if v < 0.0 {
                lo += 1;
            }
        }
        // Roughly balanced halves.
        assert!((300..700).contains(&lo), "{lo}");
    }

    #[test]
    fn gen_range_f64_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let u = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
