//! Deterministic fault injection for the robustness test suites.
//!
//! Test-only in purpose but always compiled, so the facade's
//! integration tests (`tests/faults.rs`) can arm faults through the
//! public API without a feature flag keeping them out of the default
//! `cargo test` surface. The disarmed cost is a single relaxed atomic
//! load per parallel job — nothing on the per-element hot path.
//!
//! Faults are **one-shot**: arming [`Fault::WorkerPanic`] makes the
//! next job claimed by that pool worker panic exactly once (caught by
//! the pool's `catch_unwind`, surfaced as
//! [`spttn_core::SpttnError::WorkerPanic`]); [`Fault::WorkerDeath`]
//! additionally makes the worker thread exit after failing the job, so
//! the pool's respawn path is exercised; [`Fault::Tile0Panic`] panics
//! the calling thread's tile-0 job (also caught). The registry is
//! process-global — suites that arm faults must not run their armed
//! sections concurrently with other parallel executions (the facade
//! test binary runs them within one test each, and `clear` resets
//! stray state).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// An injectable failure, armed via [`inject`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The next job on pool worker `worker` (0-based slot; slot `w`
    /// runs tile `w + 1`) panics. The pool catches it and the
    /// execution fails with `WorkerPanic`; the worker thread survives.
    WorkerPanic { worker: usize },
    /// Like `WorkerPanic`, but the worker thread also exits after
    /// reporting the failure — simulating thread death so the pool
    /// must respawn the worker before the next execution.
    WorkerDeath { worker: usize },
    /// The calling thread's tile-0 job panics (caught; surfaces as
    /// `WorkerPanic { worker: 0 }`).
    Tile0Panic,
}

/// Fast disarmed check: faults are pending iff this is true.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static PENDING: Mutex<Vec<Fault>> = Mutex::new(Vec::new());

fn pending() -> std::sync::MutexGuard<'static, Vec<Fault>> {
    // A panic can never unwind while this lock is held (the claim
    // functions only mutate the Vec), so poison recovery is sound.
    PENDING
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Arm a one-shot fault. Multiple pending faults are allowed.
pub fn inject(f: Fault) {
    pending().push(f);
    ACTIVE.store(true, Ordering::Release);
}

/// Drop all pending faults (test hygiene between cases).
pub fn clear() {
    let mut p = pending();
    p.clear();
    ACTIVE.store(false, Ordering::Release);
}

/// Remove and return the first pending fault matching `pred`.
fn claim(pred: impl Fn(&Fault) -> bool) -> Option<Fault> {
    if !ACTIVE.load(Ordering::Acquire) {
        return None;
    }
    let mut p = pending();
    let i = p.iter().position(pred)?;
    let f = p.remove(i);
    if p.is_empty() {
        ACTIVE.store(false, Ordering::Release);
    }
    Some(f)
}

/// Pool-worker hook: claim a panic-class fault for `worker`. Returns
/// whether the worker should also exit its thread (`WorkerDeath`).
pub(crate) fn claim_worker_fault(worker: usize) -> Option<bool> {
    claim(|f| {
        matches!(f, Fault::WorkerPanic { worker: w } | Fault::WorkerDeath { worker: w } if *w == worker)
    })
    .map(|f| matches!(f, Fault::WorkerDeath { .. }))
}

/// Caller-thread hook: claim a pending tile-0 panic.
pub(crate) fn claim_tile0_fault() -> bool {
    claim(|f| matches!(f, Fault::Tile0Panic)).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_are_one_shot_and_targeted() {
        clear();
        inject(Fault::WorkerPanic { worker: 1 });
        inject(Fault::Tile0Panic);
        assert_eq!(claim_worker_fault(0), None, "wrong worker must not claim");
        assert_eq!(claim_worker_fault(1), Some(false));
        assert_eq!(claim_worker_fault(1), None, "one-shot");
        assert!(claim_tile0_fault());
        assert!(!claim_tile0_fault());
        assert!(!ACTIVE.load(Ordering::Acquire));

        inject(Fault::WorkerDeath { worker: 2 });
        assert_eq!(claim_worker_fault(2), Some(true));
        clear();
    }
}
