//! Static verification of compiled tapes — an abstract interpreter
//! over [`CompiledTape`] that proves a program well-formed without
//! executing it.
//!
//! A tape is a structured program: `Dense`/`Sparse` headers paired
//! with a trailing `EndLoop`, straight-line `Zero`/`Leaf`/microkernel
//! instructions between them, and no other control flow. The verifier
//! walks that structure once, carrying the stack of open loops and the
//! set of buffers zeroed on every path to the current point, and
//! proves the invariants the paper's Sec.-4/5 lowering is supposed to
//! establish:
//!
//! 1. **Loop structure & frame depth** — every header's `end` jump
//!    lands just past its own `EndLoop`, loops are properly nested,
//!    and the static nesting depth never exceeds the preallocated
//!    frame-stack capacity ([`TapeState`](super::TapeState) indexes
//!    `frames[fp]` unchecked-by-construction, so an overflow here
//!    would be an out-of-bounds write at run time).
//! 2. **Cursor bounds** — every compiled operand address is an
//!    incremental cursor advanced by `Δcoordinate · stride` per
//!    enclosing loop. For each access the verifier sums the worst-case
//!    offset `Σ (extent−1)·stride` over the enclosing loops that
//!    advance the cursor, adds the microkernel's own strided extent
//!    (`(n−1)·inc`, `(m−1)·rs + (n−1)·cs`), and proves the result
//!    inside the backing store's flat length — factor shapes, Eq.-5
//!    buffer sizes, and the dense output extent captured at compile
//!    time. One cursor aliased to two different stores is rejected.
//! 3. **Eq.-5 zero domination** — an intermediate buffer accumulates
//!    with `+=` and is reset by a `Zero` at its split vertex (the
//!    paper's Eq. 5 places the zero where producer and consumer
//!    subtrees meet). Every buffer read *and* every accumulating
//!    write must be dominated by a `Zero` of that buffer: a `Zero`
//!    earlier in the same block or in an enclosing block. Zeros
//!    inside a loop body do not dominate code after the loop — the
//!    loop may run zero times — so the zeroed set is restored at every
//!    loop exit.
//! 4. **Resolver shape** — finger-search resolvers descend consecutive
//!    CSF levels `start..=target`. The verifier proves the target
//!    level exists and matches the use site (parent of a `Sparse`
//!    header at `level` resolves `level−1`; a sparse-value access
//!    resolves the leaf level), that levels marked `Tracked` really
//!    are tracked by an enclosing sparse loop at the use point, that a
//!    descent only starts with a search at level 0 (anything deeper
//!    needs a parent node), and that each searched level looks up the
//!    kernel index actually stored at that level.
//! 5. **Operand ranges** — every slot, buffer, cursor, finger,
//!    resolver, CSF level, and advance-table range referenced by any
//!    instruction is in range, and a `Dense` header's baked-in extent
//!    equals the kernel's declared dimension for that index.
//! 6. **Superinstruction contracts** — a fused `ZeroAxpy`/`ZeroXmul`/
//!    `ZeroGer` replaces an Eq.-5 `Zero`, so it must *assign* the
//!    term's whole buffer: unit target stride, buffer (never output)
//!    target, and extent equal to the buffer length. It then
//!    establishes zero domination exactly like the `Zero` it fused.
//!    Rank-specialized sites (`RankSpec::R8/R16/R32`) must dispatch
//!    with exactly the specialized trip count over unit-stride
//!    operands — the fixed kernels assert this at run time; the
//!    verifier proves it statically.
//!
//! The cost is O(program size · nesting depth) — independent of the
//! tensor data — so `Plan::bind` runs it unconditionally in debug
//! builds; release callers opt in with `PlanOptions::with_verify(true)`
//! or `spttn plan --verify`.

use super::{
    CompiledTape, Instr, MatSrc, MatTgt, NodeRes, ParentLoc, RBuf, Read, ResLevel, VecSrc, VecTgt,
    Write,
};
use crate::simd::RankSpec;
use spttn_core::SpttnError;
use std::fmt;

/// A violated tape invariant: proof that a compiled program is
/// malformed, with enough context to locate the offending instruction.
///
/// Each variant is one corruption *class*; the mutation suite in this
/// module corrupts valid tapes one class at a time and asserts the
/// matching variant comes back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TapeInvariantError {
    /// Loop structure is broken: a header's `end` jump does not land
    /// just past its own `EndLoop`, or an `EndLoop` has no open loop.
    MalformedLoop { pc: usize, detail: String },
    /// Static loop nesting exceeds the preallocated frame-stack
    /// capacity — the driver would write `frames` out of bounds.
    FrameOverflow {
        pc: usize,
        depth: usize,
        capacity: usize,
    },
    /// An instruction operand (term, cursor, finger slot, resolver id,
    /// CSF level, index id, advance-table range) is out of range.
    OperandOutOfRange {
        pc: usize,
        what: &'static str,
        got: usize,
        limit: usize,
    },
    /// A `Dense` header's baked-in extent disagrees with the kernel's
    /// declared dimension for its index.
    ExtentMismatch {
        pc: usize,
        index: usize,
        got: usize,
        expected: usize,
    },
    /// A cursor-addressed access can exceed its backing store under
    /// the declared loop extents.
    CursorOutOfBounds {
        pc: usize,
        cursor: usize,
        store: String,
        max_offset: usize,
        len: usize,
    },
    /// One cursor is used against two different backing stores.
    CursorAliased {
        pc: usize,
        cursor: usize,
        first: String,
        second: String,
    },
    /// A buffer is read or accumulated into without a dominating
    /// `Zero` — the Eq.-5 split-point reset is missing on some path.
    MissingZero { pc: usize, term: usize },
    /// A microkernel sources a buffer at or past its target term; the
    /// driver's read/write split (`buffers[..term]`) cannot serve it.
    ProducerOrderViolation {
        pc: usize,
        source: usize,
        term: usize,
    },
    /// A finger-search resolver's descent is malformed: wrong target
    /// level, empty or non-consecutive levels, a search below an
    /// unresolved parent, or a searched index that is not the one
    /// stored at that CSF level.
    ResolverInvariant {
        pc: usize,
        resolver: usize,
        detail: String,
    },
    /// Sparse-node tracking is inconsistent at a use site: a level
    /// assumed tracked is not tracked by any enclosing loop, a parent
    /// locator points at the wrong level, a sparse access lacks node
    /// resolution, or sparse loops are nested against CSF level order.
    TrackingInvariant { pc: usize, detail: String },
    /// A fused `ZeroAccum` superinstruction does not assign its term's
    /// whole buffer (wrong extent, strided target, or an output
    /// target): elements outside the covered range would keep stale
    /// values instead of the Eq.-5 reset the fusion replaced.
    ZeroAccumCoverage {
        pc: usize,
        term: usize,
        covered: usize,
        len: usize,
    },
    /// A rank-specialized microkernel site whose recorded operands do
    /// not match the specialization — the fixed-rank kernel asserts
    /// its pinned trip count and unit strides at run time, so a
    /// mismatch here is a guaranteed panic (or, without debug asserts,
    /// an out-of-bounds sweep).
    SpecializationMismatch {
        pc: usize,
        rank: usize,
        detail: String,
    },
}

impl fmt::Display for TapeInvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TapeInvariantError::MalformedLoop { pc, detail } => {
                write!(f, "instr {pc}: malformed loop: {detail}")
            }
            TapeInvariantError::FrameOverflow {
                pc,
                depth,
                capacity,
            } => write!(
                f,
                "instr {pc}: loop nesting depth {depth} exceeds the frame-stack capacity {capacity}"
            ),
            TapeInvariantError::OperandOutOfRange {
                pc,
                what,
                got,
                limit,
            } => write!(
                f,
                "instr {pc}: {what} {got} out of range (limit {limit})"
            ),
            TapeInvariantError::ExtentMismatch {
                pc,
                index,
                got,
                expected,
            } => write!(
                f,
                "instr {pc}: dense loop extent {got} disagrees with the declared dimension {expected} of index {index}"
            ),
            TapeInvariantError::CursorOutOfBounds {
                pc,
                cursor,
                store,
                max_offset,
                len,
            } => write!(
                f,
                "instr {pc}: cursor {cursor} can reach offset {max_offset} in {store} of length {len}"
            ),
            TapeInvariantError::CursorAliased {
                pc,
                cursor,
                first,
                second,
            } => write!(
                f,
                "instr {pc}: cursor {cursor} addresses both {first} and {second}"
            ),
            TapeInvariantError::MissingZero { pc, term } => write!(
                f,
                "instr {pc}: buffer of term {term} accessed without a dominating Zero (Eq.-5 split-point reset missing)"
            ),
            TapeInvariantError::ProducerOrderViolation { pc, source, term } => write!(
                f,
                "instr {pc}: microkernel for term {term} sources buffer {source}, which the read/write split cannot serve"
            ),
            TapeInvariantError::ResolverInvariant {
                pc,
                resolver,
                detail,
            } => write!(f, "instr {pc}: resolver {resolver}: {detail}"),
            TapeInvariantError::TrackingInvariant { pc, detail } => {
                write!(f, "instr {pc}: node tracking: {detail}")
            }
            TapeInvariantError::ZeroAccumCoverage {
                pc,
                term,
                covered,
                len,
            } => write!(
                f,
                "instr {pc}: fused zero-accumulate covers {covered} of the {len} elements of term {term}'s buffer"
            ),
            TapeInvariantError::SpecializationMismatch { pc, rank, detail } => write!(
                f,
                "instr {pc}: rank-{rank} specialized kernel {detail}"
            ),
        }
    }
}

impl std::error::Error for TapeInvariantError {}

impl From<TapeInvariantError> for SpttnError {
    fn from(e: TapeInvariantError) -> SpttnError {
        SpttnError::Execution(format!("tape verification failed: {e}"))
    }
}

/// Proof summary returned by a successful [`CompiledTape::verify`]:
/// what was walked and how much was checked.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TapeReport {
    /// Instructions walked.
    pub instrs: usize,
    /// Dense loop headers.
    pub dense_loops: usize,
    /// Sparse loop headers.
    pub sparse_loops: usize,
    /// Deepest static loop nesting encountered.
    pub max_nesting: usize,
    /// Preallocated frame-stack capacity the nesting was checked
    /// against.
    pub frame_capacity: usize,
    /// Eq.-5 `Zero` split points (explicit `Zero` instructions; fused
    /// split points are counted in [`TapeReport::zero_accums`]).
    pub zeros: usize,
    /// Microkernel instructions, fused superinstructions included.
    pub microkernels: usize,
    /// Fused `ZeroAccum` superinstructions proved to assign their
    /// term's whole buffer.
    pub zero_accums: usize,
    /// Rank-specialized microkernel sites proved to match their
    /// pinned trip count and unit strides.
    pub specialized: usize,
    /// Cursor-addressed accesses proved in bounds.
    pub accesses_checked: usize,
    /// Distinct cursors bound to a backing store.
    pub cursors_bound: usize,
    /// Resolver use sites checked.
    pub resolver_sites: usize,
}

impl fmt::Display for TapeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verified {} instrs ({} dense + {} sparse loops, nesting {}/{}), \
             {} zero points, {} microkernels ({} fused, {} rank-specialized), \
             {} accesses in bounds over {} cursors, {} resolver sites",
            self.instrs,
            self.dense_loops,
            self.sparse_loops,
            self.max_nesting,
            self.frame_capacity,
            self.zeros,
            self.microkernels,
            self.zero_accums,
            self.specialized,
            self.accesses_checked,
            self.cursors_bound,
            self.resolver_sites
        )
    }
}

/// Backing store a cursor resolves against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Store {
    Factor(usize),
    Buffer(usize),
    Out,
}

/// One open loop during the structured walk.
struct OpenLoop {
    index: usize,
    /// CSF level for sparse loops.
    level: Option<usize>,
    /// This loop's slice of the advance table.
    adv: (u32, u32),
}

struct Checker<'t> {
    tape: &'t CompiledTape,
    stack: Vec<OpenLoop>,
    /// Terms whose buffer a `Zero` dominates at the current point.
    zeroed: Vec<bool>,
    /// Store each cursor has been bound to (aliasing detector).
    stores: Vec<Option<Store>>,
    report: TapeReport,
}

/// Walk `tape` and prove every invariant; the module docs list them.
pub(crate) fn verify(tape: &CompiledTape) -> Result<TapeReport, TapeInvariantError> {
    // The advance table is shared by all headers; cursors must be in
    // range no matter how ranges are sliced.
    for e in &tape.adv {
        if e.cur >= tape.n_cursors {
            return Err(TapeInvariantError::OperandOutOfRange {
                pc: 0,
                what: "advance-table cursor",
                got: e.cur,
                limit: tape.n_cursors,
            });
        }
    }
    let mut ck = Checker {
        tape,
        stack: Vec::new(),
        zeroed: vec![false; tape.n_terms],
        stores: vec![None; tape.n_cursors],
        report: TapeReport {
            instrs: tape.instrs.len(),
            frame_capacity: tape.max_depth,
            ..TapeReport::default()
        },
    };
    ck.block(0, tape.instrs.len())?;
    ck.report.cursors_bound = ck.stores.iter().filter(|s| s.is_some()).count();
    Ok(ck.report)
}

impl<'t> Checker<'t> {
    /// Check the straight-line block `instrs[lo..hi]`, recursing into
    /// loop bodies.
    fn block(&mut self, lo: usize, hi: usize) -> Result<(), TapeInvariantError> {
        let mut pc = lo;
        while pc < hi {
            match self.tape.instrs[pc] {
                Instr::Zero { term } => {
                    self.in_range(pc, "zeroed term", term, self.tape.n_terms)?;
                    self.zeroed[term] = true;
                    self.report.zeros += 1;
                    pc += 1;
                }
                Instr::Dense {
                    index,
                    dim,
                    adv,
                    end,
                } => {
                    self.in_range(pc, "loop index", index, self.tape.n_indices)?;
                    let expected = self.tape.bounds.index_dims[index];
                    if dim != expected {
                        return Err(TapeInvariantError::ExtentMismatch {
                            pc,
                            index,
                            got: dim,
                            expected,
                        });
                    }
                    self.report.dense_loops += 1;
                    self.loop_body(
                        pc,
                        end,
                        hi,
                        OpenLoop {
                            index,
                            level: None,
                            adv,
                        },
                    )?;
                    pc = end;
                }
                Instr::Sparse {
                    index,
                    level,
                    parent,
                    adv,
                    end,
                } => {
                    self.in_range(pc, "loop index", index, self.tape.n_indices)?;
                    self.in_range(pc, "CSF level", level, self.tape.n_levels)?;
                    if self.tape.bounds.level_index[level] != index {
                        return Err(TapeInvariantError::TrackingInvariant {
                            pc,
                            detail: format!(
                                "sparse loop iterates index {index} but CSF level {level} stores index {}",
                                self.tape.bounds.level_index[level]
                            ),
                        });
                    }
                    // CSF descent order: an enclosing sparse loop must
                    // iterate a strictly shallower level (Def. 3.2
                    // restricts loop orders to the storage order).
                    for l in &self.stack {
                        if let Some(el) = l.level {
                            if el >= level {
                                return Err(TapeInvariantError::TrackingInvariant {
                                    pc,
                                    detail: format!(
                                        "sparse loop at level {level} nested inside level {el} (against CSF storage order)"
                                    ),
                                });
                            }
                        }
                    }
                    match parent {
                        ParentLoc::Root => {
                            if level != 0 {
                                return Err(TapeInvariantError::TrackingInvariant {
                                    pc,
                                    detail: format!(
                                        "level-{level} loop iterates the tile root range (only level 0 may)"
                                    ),
                                });
                            }
                        }
                        ParentLoc::Tracked(l) => {
                            if level == 0 || l != level - 1 {
                                return Err(TapeInvariantError::TrackingInvariant {
                                    pc,
                                    detail: format!(
                                        "level-{level} loop takes its range from tracked level {l} (needs level {})",
                                        level.wrapping_sub(1)
                                    ),
                                });
                            }
                            self.require_tracked(pc, l)?;
                        }
                        ParentLoc::Resolver(r) => {
                            if level == 0 {
                                return Err(TapeInvariantError::TrackingInvariant {
                                    pc,
                                    detail: "level-0 loop resolves a parent (it has none)".into(),
                                });
                            }
                            self.check_resolver(pc, r, level - 1)?;
                        }
                    }
                    self.report.sparse_loops += 1;
                    self.loop_body(
                        pc,
                        end,
                        hi,
                        OpenLoop {
                            index,
                            level: Some(level),
                            adv,
                        },
                    )?;
                    pc = end;
                }
                Instr::EndLoop => {
                    return Err(TapeInvariantError::MalformedLoop {
                        pc,
                        detail: "EndLoop without an open loop".into(),
                    });
                }
                Instr::Leaf {
                    left,
                    right,
                    tgt,
                    res,
                } => {
                    let needs_node = matches!(left, Read::SparseVal)
                        || matches!(right, Read::SparseVal)
                        || matches!(tgt, Write::SparseCell);
                    self.check_read(pc, left)?;
                    self.check_read(pc, right)?;
                    self.check_cell(pc, tgt)?;
                    self.check_node_res(pc, res, needs_node)?;
                    pc += 1;
                }
                Instr::Dot {
                    n,
                    x,
                    y,
                    tgt,
                    res,
                    spec,
                    ..
                } => {
                    let needs_node = matches!(tgt, Write::SparseCell);
                    self.check_spec(pc, spec, n, x.inc == 1 && y.inc == 1)?;
                    self.check_vec_src(pc, x, n, None)?;
                    self.check_vec_src(pc, y, n, None)?;
                    self.check_cell(pc, tgt)?;
                    self.check_node_res(pc, res, needs_node)?;
                    self.report.microkernels += 1;
                    pc += 1;
                }
                Instr::Axpy {
                    n,
                    term,
                    alpha,
                    x,
                    y,
                    res,
                    spec,
                    ..
                } => {
                    self.in_range(pc, "target term", term, self.tape.n_terms)?;
                    let needs_node = matches!(alpha, Read::SparseVal);
                    self.check_spec(pc, spec, n, x.inc == 1 && y.inc == 1)?;
                    self.check_read(pc, alpha)?;
                    self.check_vec_src(pc, x, n, Some(term))?;
                    self.check_vec_tgt(pc, y, n, term)?;
                    self.check_node_res(pc, res, needs_node)?;
                    self.report.microkernels += 1;
                    pc += 1;
                }
                Instr::Xmul {
                    n, term, x, z, y, ..
                } => {
                    self.in_range(pc, "target term", term, self.tape.n_terms)?;
                    self.check_vec_src(pc, x, n, Some(term))?;
                    self.check_vec_src(pc, z, n, Some(term))?;
                    self.check_vec_tgt(pc, y, n, term)?;
                    self.report.microkernels += 1;
                    pc += 1;
                }
                Instr::Ger {
                    m,
                    n,
                    term,
                    x,
                    y,
                    a,
                    spec,
                    ..
                } => {
                    self.in_range(pc, "target term", term, self.tape.n_terms)?;
                    self.check_spec(pc, spec, n, a.cs == 1 && y.inc == 1)?;
                    self.check_vec_src(pc, x, m, Some(term))?;
                    self.check_vec_src(pc, y, n, Some(term))?;
                    self.check_mat_tgt(pc, a, m, n, term)?;
                    self.report.microkernels += 1;
                    pc += 1;
                }
                Instr::Gemv {
                    m,
                    n,
                    term,
                    a,
                    x,
                    y,
                    spec,
                    ..
                } => {
                    self.in_range(pc, "target term", term, self.tape.n_terms)?;
                    self.check_spec(pc, spec, n, a.cs == 1 && x.inc == 1)?;
                    self.check_mat_src(pc, a, m, n, term)?;
                    self.check_vec_src(pc, x, n, Some(term))?;
                    self.check_vec_tgt(pc, y, m, term)?;
                    self.report.microkernels += 1;
                    pc += 1;
                }
                Instr::ZeroAxpy {
                    n,
                    term,
                    alpha,
                    x,
                    y,
                    res,
                    spec,
                    ..
                } => {
                    self.in_range(pc, "target term", term, self.tape.n_terms)?;
                    let needs_node = matches!(alpha, Read::SparseVal);
                    self.check_spec(pc, spec, n, x.inc == 1 && y.inc == 1)?;
                    self.check_read(pc, alpha)?;
                    self.check_vec_src(pc, x, n, Some(term))?;
                    self.check_zero_vec_tgt(pc, y, n, term)?;
                    self.check_node_res(pc, res, needs_node)?;
                    self.report.microkernels += 1;
                    self.report.zero_accums += 1;
                    pc += 1;
                }
                Instr::ZeroXmul {
                    n, term, x, z, y, ..
                } => {
                    self.in_range(pc, "target term", term, self.tape.n_terms)?;
                    self.check_vec_src(pc, x, n, Some(term))?;
                    self.check_vec_src(pc, z, n, Some(term))?;
                    self.check_zero_vec_tgt(pc, y, n, term)?;
                    self.report.microkernels += 1;
                    self.report.zero_accums += 1;
                    pc += 1;
                }
                Instr::ZeroGer {
                    m,
                    n,
                    term,
                    x,
                    y,
                    a,
                    ..
                } => {
                    self.in_range(pc, "target term", term, self.tape.n_terms)?;
                    self.check_vec_src(pc, x, m, Some(term))?;
                    self.check_vec_src(pc, y, n, Some(term))?;
                    self.check_zero_mat_tgt(pc, a, m, n, term)?;
                    self.report.microkernels += 1;
                    self.report.zero_accums += 1;
                    pc += 1;
                }
            }
        }
        Ok(())
    }

    /// Enter a loop at `header` with jump target `end` inside the
    /// enclosing block `..hi`, check its body, and restore the
    /// zero-domination state (a loop may run zero times, so zeros
    /// established inside it prove nothing afterwards).
    fn loop_body(
        &mut self,
        header: usize,
        end: usize,
        hi: usize,
        info: OpenLoop,
    ) -> Result<(), TapeInvariantError> {
        if end <= header + 1 || end > hi {
            return Err(TapeInvariantError::MalformedLoop {
                pc: header,
                detail: format!(
                    "loop end target {end} outside the enclosing block ({}..{hi}]",
                    header + 1
                ),
            });
        }
        if !matches!(self.tape.instrs[end - 1], Instr::EndLoop) {
            return Err(TapeInvariantError::MalformedLoop {
                pc: header,
                detail: format!(
                    "instruction {} before the end target is not EndLoop",
                    end - 1
                ),
            });
        }
        let (a, b) = (info.adv.0 as usize, info.adv.1 as usize);
        if a > b || b > self.tape.adv.len() {
            return Err(TapeInvariantError::OperandOutOfRange {
                pc: header,
                what: "advance-table range end",
                got: b,
                limit: self.tape.adv.len(),
            });
        }
        self.stack.push(info);
        if self.stack.len() > self.tape.max_depth {
            return Err(TapeInvariantError::FrameOverflow {
                pc: header,
                depth: self.stack.len(),
                capacity: self.tape.max_depth,
            });
        }
        self.report.max_nesting = self.report.max_nesting.max(self.stack.len());
        let saved = self.zeroed.clone();
        self.block(header + 1, end - 1)?;
        self.zeroed = saved;
        self.stack.pop();
        Ok(())
    }

    fn in_range(
        &self,
        pc: usize,
        what: &'static str,
        got: usize,
        limit: usize,
    ) -> Result<(), TapeInvariantError> {
        if got >= limit {
            return Err(TapeInvariantError::OperandOutOfRange {
                pc,
                what,
                got,
                limit,
            });
        }
        Ok(())
    }

    /// True when an enclosing sparse loop tracks CSF `level`.
    fn tracked(&self, level: usize) -> bool {
        self.stack.iter().any(|l| l.level == Some(level))
    }

    fn require_tracked(&self, pc: usize, level: usize) -> Result<(), TapeInvariantError> {
        if !self.tracked(level) {
            return Err(TapeInvariantError::TrackingInvariant {
                pc,
                detail: format!("CSF level {level} is not tracked by any enclosing sparse loop"),
            });
        }
        Ok(())
    }

    /// Worst-case offset a cursor reaches at the current point: the
    /// sum of `(extent−1)·stride` over every enclosing loop that
    /// advances it (cursors are restored to 0 on loop exit, so loops
    /// not on the stack contribute nothing).
    fn max_cursor_offset(&self, cur: usize) -> usize {
        let mut off = 0usize;
        for l in &self.stack {
            for e in &self.tape.adv[l.adv.0 as usize..l.adv.1 as usize] {
                if e.cur == cur {
                    let extent = self.tape.bounds.index_dims[l.index];
                    off += extent.saturating_sub(1) * e.stride;
                }
            }
        }
        off
    }

    fn store_len(&self, s: Store) -> usize {
        match s {
            Store::Factor(i) => self.tape.bounds.factor_lens[i],
            Store::Buffer(t) => self.tape.bounds.buffer_lens[t],
            Store::Out => self.tape.bounds.out_len,
        }
    }

    fn store_name(&self, s: Store) -> String {
        match s {
            Store::Factor(i) => format!("factor slot {i}"),
            Store::Buffer(t) => format!("buffer of term {t}"),
            Store::Out => "dense output".into(),
        }
    }

    /// Bind a cursor to its backing store (rejecting aliasing) and
    /// prove its worst-case offset plus the access's own strided
    /// extent inside the store.
    fn check_access(
        &mut self,
        pc: usize,
        cur: usize,
        store: Store,
        extra: usize,
    ) -> Result<(), TapeInvariantError> {
        self.in_range(pc, "cursor", cur, self.tape.n_cursors)?;
        match self.stores[cur] {
            None => self.stores[cur] = Some(store),
            Some(prev) if prev == store => {}
            Some(prev) => {
                return Err(TapeInvariantError::CursorAliased {
                    pc,
                    cursor: cur,
                    first: self.store_name(prev),
                    second: self.store_name(store),
                });
            }
        }
        let len = self.store_len(store);
        let max_offset = self.max_cursor_offset(cur) + extra;
        if max_offset >= len {
            return Err(TapeInvariantError::CursorOutOfBounds {
                pc,
                cursor: cur,
                store: self.store_name(store),
                max_offset,
                len,
            });
        }
        self.report.accesses_checked += 1;
        Ok(())
    }

    fn rbuf_store(&self, pc: usize, buf: RBuf) -> Result<Store, TapeInvariantError> {
        Ok(match buf {
            RBuf::Factor(i) => {
                self.in_range(pc, "factor slot", i, self.tape.bounds.factor_lens.len())?;
                Store::Factor(i)
            }
            RBuf::Inter(u) => {
                self.in_range(pc, "source term", u, self.tape.n_terms)?;
                Store::Buffer(u)
            }
        })
    }

    fn require_zeroed(&self, pc: usize, term: usize) -> Result<(), TapeInvariantError> {
        if !self.zeroed[term] {
            return Err(TapeInvariantError::MissingZero { pc, term });
        }
        Ok(())
    }

    /// Scalar source: bounds plus zero domination for buffer reads.
    fn check_read(&mut self, pc: usize, r: Read) -> Result<(), TapeInvariantError> {
        match r {
            Read::Cursor { buf, cur } => {
                let store = self.rbuf_store(pc, buf)?;
                if let RBuf::Inter(u) = buf {
                    self.require_zeroed(pc, u)?;
                }
                self.check_access(pc, cur, store, 0)
            }
            Read::SparseVal => Ok(()),
        }
    }

    /// Scalar accumulation cell: the output, or a zero-dominated
    /// buffer cell.
    fn check_cell(&mut self, pc: usize, w: Write) -> Result<(), TapeInvariantError> {
        match w {
            Write::Cell { out, term, cur } => {
                self.in_range(pc, "target term", term, self.tape.n_terms)?;
                let store = if out {
                    if self.tape.bounds.output_sparse {
                        return Err(TapeInvariantError::TrackingInvariant {
                            pc,
                            detail: "dense-output write on a pattern-sharing output".into(),
                        });
                    }
                    Store::Out
                } else {
                    self.require_zeroed(pc, term)?;
                    Store::Buffer(term)
                };
                self.check_access(pc, cur, store, 0)
            }
            Write::SparseCell => {
                if !self.tape.bounds.output_sparse {
                    return Err(TapeInvariantError::TrackingInvariant {
                        pc,
                        detail: "sparse-cell write on a dense output".into(),
                    });
                }
                Ok(())
            }
        }
    }

    /// Strided vector source of a microkernel sweeping `n` elements.
    /// `split_term` is the instruction's target term when the driver
    /// serves sources through its read/write buffer split.
    fn check_vec_src(
        &mut self,
        pc: usize,
        v: VecSrc,
        n: usize,
        split_term: Option<usize>,
    ) -> Result<(), TapeInvariantError> {
        let store = self.rbuf_store(pc, v.buf)?;
        if let RBuf::Inter(u) = v.buf {
            if let Some(term) = split_term {
                if u >= term {
                    return Err(TapeInvariantError::ProducerOrderViolation {
                        pc,
                        source: u,
                        term,
                    });
                }
            }
            self.require_zeroed(pc, u)?;
        }
        self.check_access(pc, v.cur, store, n.saturating_sub(1) * v.inc)
    }

    /// Strided matrix source (GEMV's `A`, `m × n`).
    fn check_mat_src(
        &mut self,
        pc: usize,
        a: MatSrc,
        m: usize,
        n: usize,
        split_term: usize,
    ) -> Result<(), TapeInvariantError> {
        let store = self.rbuf_store(pc, a.buf)?;
        if let RBuf::Inter(u) = a.buf {
            if u >= split_term {
                return Err(TapeInvariantError::ProducerOrderViolation {
                    pc,
                    source: u,
                    term: split_term,
                });
            }
            self.require_zeroed(pc, u)?;
        }
        let extra = m.saturating_sub(1) * a.rs + n.saturating_sub(1) * a.cs;
        self.check_access(pc, a.cur, store, extra)
    }

    /// Strided vector target sweeping `n` elements into the output or
    /// `term`'s buffer.
    fn check_vec_tgt(
        &mut self,
        pc: usize,
        y: VecTgt,
        n: usize,
        term: usize,
    ) -> Result<(), TapeInvariantError> {
        let store = if y.out {
            if self.tape.bounds.output_sparse {
                return Err(TapeInvariantError::TrackingInvariant {
                    pc,
                    detail: "dense-output write on a pattern-sharing output".into(),
                });
            }
            Store::Out
        } else {
            self.require_zeroed(pc, term)?;
            Store::Buffer(term)
        };
        self.check_access(pc, y.cur, store, n.saturating_sub(1) * y.inc)
    }

    /// Strided matrix target (GER's `A`, `m × n`).
    fn check_mat_tgt(
        &mut self,
        pc: usize,
        a: MatTgt,
        m: usize,
        n: usize,
        term: usize,
    ) -> Result<(), TapeInvariantError> {
        let store = if a.out {
            if self.tape.bounds.output_sparse {
                return Err(TapeInvariantError::TrackingInvariant {
                    pc,
                    detail: "dense-output write on a pattern-sharing output".into(),
                });
            }
            Store::Out
        } else {
            self.require_zeroed(pc, term)?;
            Store::Buffer(term)
        };
        let extra = m.saturating_sub(1) * a.rs + n.saturating_sub(1) * a.cs;
        self.check_access(pc, a.cur, store, extra)
    }

    /// Rank-specialized sites must dispatch with exactly the pinned
    /// trip count over unit-stride operands (the fixed-rank kernels
    /// assert this at run time; prove it statically instead).
    fn check_spec(
        &mut self,
        pc: usize,
        spec: RankSpec,
        n: usize,
        contig: bool,
    ) -> Result<(), TapeInvariantError> {
        let Some(r) = spec.rank() else {
            return Ok(());
        };
        if n != r || !contig {
            return Err(TapeInvariantError::SpecializationMismatch {
                pc,
                rank: r,
                detail: format!("dispatched with trip count {n}, contiguous = {contig}"),
            });
        }
        self.report.specialized += 1;
        Ok(())
    }

    /// Assigning (fused `ZeroAccum`) vector target: must be the term's
    /// buffer, unit stride, and cover it end to end — the
    /// superinstruction replaced the Eq.-5 `Zero`, so partial coverage
    /// would leave stale elements alive. Establishes zero domination
    /// for the rest of the block, exactly like the fused `Zero`.
    fn check_zero_vec_tgt(
        &mut self,
        pc: usize,
        y: VecTgt,
        n: usize,
        term: usize,
    ) -> Result<(), TapeInvariantError> {
        let len = self.tape.bounds.buffer_lens[term];
        if y.out || y.inc != 1 || n != len {
            return Err(TapeInvariantError::ZeroAccumCoverage {
                pc,
                term,
                covered: if y.out { 0 } else { n },
                len,
            });
        }
        self.check_access(pc, y.cur, Store::Buffer(term), n.saturating_sub(1))?;
        self.zeroed[term] = true;
        Ok(())
    }

    /// Assigning (fused `ZeroGer`) matrix target: row-major dense
    /// coverage of the term's whole buffer.
    fn check_zero_mat_tgt(
        &mut self,
        pc: usize,
        a: MatTgt,
        m: usize,
        n: usize,
        term: usize,
    ) -> Result<(), TapeInvariantError> {
        let len = self.tape.bounds.buffer_lens[term];
        if a.out || a.cs != 1 || a.rs != n || m * n != len {
            return Err(TapeInvariantError::ZeroAccumCoverage {
                pc,
                term,
                covered: if a.out { 0 } else { m * n },
                len,
            });
        }
        let extra = m.saturating_sub(1) * a.rs + n.saturating_sub(1) * a.cs;
        self.check_access(pc, a.cur, Store::Buffer(term), extra)?;
        self.zeroed[term] = true;
        Ok(())
    }

    /// Node resolution at a sparse access: tracked leaf or a resolver
    /// descending to the leaf level.
    fn check_node_res(
        &mut self,
        pc: usize,
        res: NodeRes,
        needs_node: bool,
    ) -> Result<(), TapeInvariantError> {
        let leaf = self.tape.n_levels.saturating_sub(1);
        match res {
            NodeRes::None => {
                if needs_node {
                    return Err(TapeInvariantError::TrackingInvariant {
                        pc,
                        detail: "sparse access without node resolution".into(),
                    });
                }
                Ok(())
            }
            NodeRes::Tracked(l) => {
                if l != leaf {
                    return Err(TapeInvariantError::TrackingInvariant {
                        pc,
                        detail: format!(
                            "sparse access reads tracked level {l} (leaf values live at level {leaf})"
                        ),
                    });
                }
                self.require_tracked(pc, l)
            }
            NodeRes::Resolver(r) => self.check_resolver(pc, r, leaf),
        }
    }

    /// Prove a resolver's descent well-formed for its use site: it
    /// must end exactly at `target`, its `Tracked` levels must be
    /// tracked here, a leading search must start at level 0, and every
    /// searched level must look up that level's stored index.
    fn check_resolver(
        &mut self,
        pc: usize,
        rid: usize,
        target: usize,
    ) -> Result<(), TapeInvariantError> {
        self.in_range(pc, "resolver", rid, self.tape.resolvers.len())?;
        let spec = &self.tape.resolvers[rid];
        if spec.levels.is_empty() {
            return Err(TapeInvariantError::ResolverInvariant {
                pc,
                resolver: rid,
                detail: "empty descent".into(),
            });
        }
        let last = spec.start + spec.levels.len() - 1;
        if last != target || spec.start > target {
            return Err(TapeInvariantError::ResolverInvariant {
                pc,
                resolver: rid,
                detail: format!(
                    "descent covers levels {}..={last} but the use site needs level {target}",
                    spec.start
                ),
            });
        }
        if target >= self.tape.n_levels {
            return Err(TapeInvariantError::ResolverInvariant {
                pc,
                resolver: rid,
                detail: format!(
                    "target level {target} past the CSF depth {}",
                    self.tape.n_levels
                ),
            });
        }
        for (off, lev) in spec.levels.iter().enumerate() {
            let l = spec.start + off;
            match *lev {
                ResLevel::Tracked => self.require_tracked(pc, l)?,
                ResLevel::Search { index, slot } => {
                    self.in_range(pc, "finger slot", slot, self.tape.n_fingers)?;
                    self.in_range(pc, "searched index", index, self.tape.n_indices)?;
                    if off == 0 && l != 0 {
                        return Err(TapeInvariantError::ResolverInvariant {
                            pc,
                            resolver: rid,
                            detail: format!(
                                "descent starts with a search at level {l} without a resolved parent"
                            ),
                        });
                    }
                    if self.tape.bounds.level_index[l] != index {
                        return Err(TapeInvariantError::ResolverInvariant {
                            pc,
                            resolver: rid,
                            detail: format!(
                                "level {l} searched on index {index} but stores index {}",
                                self.tape.bounds.level_index[l]
                            ),
                        });
                    }
                }
            }
        }
        self.report.resolver_sites += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::{AdvEntry, CompiledTape, Instr, ResLevel, ResolverSpec};
    use super::*;
    use crate::simd::KernelSet;
    use spttn_ir::{
        buffers_for_forest, build_forest, parse_kernel, path_from_picks, LoopNode, NestSpec,
        VertexKind,
    };

    /// Listing-3 TTMC nest; with `flip_root_dense` the root sparse
    /// mode is iterated densely, which forces every deeper sparse loop
    /// and leaf read to compile a finger-search resolver (the same
    /// construction the finger-search golden test uses — planner-built
    /// nests always track every level).
    fn compiled(flip_root_dense: bool) -> CompiledTape {
        let k = parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 8), ("j", 9), ("k", 10), ("r", 4), ("s", 5)],
        )
        .unwrap();
        let path = path_from_picks(&k, &[(0, 2), (0, 1)]);
        let spec = NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
        };
        let mut forest = build_forest(&k, &path, &spec).unwrap();
        if flip_root_dense {
            let LoopNode::Loop(iv) = &mut forest.roots[0] else {
                panic!("listing 3 has a root loop");
            };
            assert_eq!(iv.kind, VertexKind::Sparse { level: 0 });
            iv.kind = VertexKind::Dense;
        }
        CompiledTape::from_forest(&k, &path, &forest).unwrap()
    }

    /// Listing-3-style fused nest: all CSF levels tracked.
    fn tracked_tape() -> CompiledTape {
        compiled(false)
    }

    /// Same nest with the root sparse mode iterated densely — compiles
    /// finger-search resolvers.
    fn resolver_tape() -> CompiledTape {
        compiled(true)
    }

    /// Outer-product nest whose Eq.-5 buffer is written by exactly one
    /// GER: compiled with superinstructions pinned on, the `Zero` and
    /// the full-coverage `Ger` fuse into a `ZeroGer`. Uses
    /// `auto_detected` (not `resolve`) so the program shape ignores the
    /// `SPTTN_MICROKERNELS` environment override the scalar-forced CI
    /// leg sets.
    fn fused_ger_tape() -> CompiledTape {
        let k = parse_kernel(
            "S(i) = T(i,r,s) * U(r) * V(s)",
            &[("i", 6), ("r", 4), ("s", 8)],
        )
        .unwrap();
        let path = path_from_picks(&k, &[(1, 2), (0, 1)]);
        let spec = NestSpec {
            orders: vec![vec![1, 2], vec![0, 1, 2]],
        };
        let forest = build_forest(&k, &path, &spec).unwrap();
        let bufs = buffers_for_forest(&k, &path, &forest);
        CompiledTape::compile_with_kernels(&k, &path, &forest, &bufs, KernelSet::auto_detected())
            .unwrap()
    }

    /// Listing-3 nest with the buffer's innermost extent on a
    /// specialization rank (8): compiled with fusion on, its AXPY
    /// sites record `RankSpec::R8`.
    fn specialized_tape() -> CompiledTape {
        let k = parse_kernel(
            "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
            &[("i", 8), ("j", 9), ("k", 10), ("r", 4), ("s", 8)],
        )
        .unwrap();
        let path = path_from_picks(&k, &[(0, 2), (0, 1)]);
        let spec = NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
        };
        let forest = build_forest(&k, &path, &spec).unwrap();
        let bufs = buffers_for_forest(&k, &path, &forest);
        CompiledTape::compile_with_kernels(&k, &path, &forest, &bufs, KernelSet::auto_detected())
            .unwrap()
    }

    #[test]
    fn valid_tapes_verify_clean() {
        for tape in [tracked_tape(), resolver_tape()] {
            let report = tape.verify().expect("compiler output must verify");
            assert_eq!(report.instrs, tape.num_instrs());
            assert!(report.max_nesting <= report.frame_capacity);
            assert!(report.accesses_checked > 0);
            assert!(report.zeros > 0, "Eq.-5 split points placed");
        }
        let r = resolver_tape().verify().unwrap();
        assert!(
            r.resolver_sites > 0,
            "resolver nest exercises check_resolver"
        );
    }

    #[test]
    fn report_displays_counts() {
        let report = tracked_tape().verify().unwrap();
        let text = format!("{report}");
        assert!(text.contains("verified"));
        assert!(text.contains("zero points"));
    }

    // ----- mutation suite: one corruption class per test ------------

    /// Class 1: drop a `Zero` — the Eq.-5 split-point reset vanishes
    /// and the buffer accumulation is no longer dominated.
    #[test]
    fn mutation_dropped_zero_rejected() {
        let mut tape = tracked_tape();
        let zero_at = tape
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Zero { .. }))
            .expect("nest has a split point");
        tape.instrs.remove(zero_at);
        // Patch every loop end past the removal so the structure stays
        // intact and only the zero is missing.
        for ins in &mut tape.instrs {
            match ins {
                Instr::Dense { end, .. } | Instr::Sparse { end, .. } if *end > zero_at => {
                    *end -= 1;
                }
                _ => {}
            }
        }
        match tape.verify() {
            Err(TapeInvariantError::MissingZero { .. }) => {}
            other => panic!("expected MissingZero, got {other:?}"),
        }
    }

    /// Class 2: skew a stride — the cursor's worst-case offset leaves
    /// its backing store.
    #[test]
    fn mutation_skewed_stride_rejected() {
        let mut tape = tracked_tape();
        let e = tape
            .adv
            .iter_mut()
            .max_by_key(|e| e.stride)
            .expect("nest advances cursors");
        e.stride *= 1000;
        match tape.verify() {
            Err(TapeInvariantError::CursorOutOfBounds { .. }) => {}
            other => panic!("expected CursorOutOfBounds, got {other:?}"),
        }
    }

    /// Class 3: shrink the frame stack — nesting overflows the
    /// preallocated capacity.
    #[test]
    fn mutation_frame_overflow_rejected() {
        let mut tape = tracked_tape();
        assert!(tape.max_depth > 1);
        tape.max_depth = 1;
        match tape.verify() {
            Err(TapeInvariantError::FrameOverflow { capacity: 1, .. }) => {}
            other => panic!("expected FrameOverflow, got {other:?}"),
        }
    }

    /// Class 4: dangle a resolver level — the descent no longer ends
    /// at the level its use site needs.
    #[test]
    fn mutation_dangling_resolver_rejected() {
        let mut tape = resolver_tape();
        assert!(!tape.resolvers.is_empty(), "nest compiles resolvers");
        tape.resolvers[0].levels.pop();
        if tape.resolvers[0].levels.is_empty() {
            tape.resolvers[0] = ResolverSpec {
                start: 0,
                levels: Vec::new(),
            };
        }
        match tape.verify() {
            Err(TapeInvariantError::ResolverInvariant { .. }) => {}
            other => panic!("expected ResolverInvariant, got {other:?}"),
        }
    }

    /// Class 5: out-of-range operand — a cursor id past the allocated
    /// cursor count (the advance table is checked up front).
    #[test]
    fn mutation_cursor_out_of_range_rejected() {
        let mut tape = tracked_tape();
        let n = tape.n_cursors;
        tape.adv.push(AdvEntry { cur: n, stride: 1 });
        match tape.verify() {
            Err(TapeInvariantError::OperandOutOfRange { got, limit, .. }) => {
                assert_eq!((got, limit), (n, n));
            }
            other => panic!("expected OperandOutOfRange, got {other:?}"),
        }
    }

    /// Class 6: break the loop structure — a header's end target no
    /// longer lands past its own EndLoop.
    #[test]
    fn mutation_malformed_loop_rejected() {
        let mut tape = tracked_tape();
        let header = tape
            .instrs
            .iter()
            .position(|i| matches!(i, Instr::Dense { .. } | Instr::Sparse { .. }))
            .expect("nest has loops");
        match &mut tape.instrs[header] {
            Instr::Dense { end, .. } | Instr::Sparse { end, .. } => *end = header + 1,
            _ => unreachable!(),
        }
        match tape.verify() {
            Err(TapeInvariantError::MalformedLoop { .. }) => {}
            other => panic!("expected MalformedLoop, got {other:?}"),
        }
    }

    /// Class 7: skew a dense extent — the baked-in trip count
    /// disagrees with the kernel's declared dimension.
    #[test]
    fn mutation_extent_mismatch_rejected() {
        // The flipped-root nest keeps a real Dense header (the fully
        // tracked nest lowers every dense loop to a microkernel).
        let mut tape = resolver_tape();
        let d = tape
            .instrs
            .iter_mut()
            .find_map(|i| match i {
                Instr::Dense { dim, .. } => Some(dim),
                _ => None,
            })
            .expect("nest has dense loops");
        *d += 1;
        match tape.verify() {
            Err(TapeInvariantError::ExtentMismatch { .. }) => {}
            other => panic!("expected ExtentMismatch, got {other:?}"),
        }
    }

    /// Fused and rank-specialized programs are first-class citizens of
    /// the verifier: both compile-time shapes verify clean, establish
    /// zero domination through the superinstruction, and show up in
    /// the report.
    #[test]
    fn fused_tapes_verify_clean() {
        let tape = fused_ger_tape();
        assert!(tape.superinstructions() > 0, "Zero+Ger fused");
        let report = tape.verify().expect("fused tape must verify");
        assert!(report.zero_accums > 0);
        assert_eq!(
            report.zeros, 0,
            "the only split point fused into the superinstruction"
        );

        let tape = specialized_tape();
        assert!(tape.specialized() > 0, "rank-8 buffer pins R8 kernels");
        let report = tape.verify().expect("specialized tape must verify");
        assert!(report.specialized > 0);
        let text = format!("{report}");
        assert!(text.contains("rank-specialized"));
    }

    /// Class 9: shrink a fused superinstruction's extent — it no
    /// longer assigns the whole buffer, so elements past the covered
    /// range would keep stale values.
    #[test]
    fn mutation_partial_zero_accum_rejected() {
        let mut tape = fused_ger_tape();
        let m = tape
            .instrs
            .iter_mut()
            .find_map(|i| match i {
                Instr::ZeroGer { m, .. } => Some(m),
                _ => None,
            })
            .expect("nest fuses a ZeroGer");
        *m -= 1;
        match tape.verify() {
            Err(TapeInvariantError::ZeroAccumCoverage { covered, len, .. }) => {
                assert!(covered < len);
            }
            other => panic!("expected ZeroAccumCoverage, got {other:?}"),
        }
    }

    /// Class 10: retarget a fused superinstruction at the dense output
    /// — only Eq.-5 buffers have a zero point to fuse.
    #[test]
    fn mutation_output_zero_accum_rejected() {
        let mut tape = fused_ger_tape();
        let a = tape
            .instrs
            .iter_mut()
            .find_map(|i| match i {
                Instr::ZeroGer { a, .. } => Some(a),
                _ => None,
            })
            .expect("nest fuses a ZeroGer");
        a.out = true;
        match tape.verify() {
            Err(TapeInvariantError::ZeroAccumCoverage { covered: 0, .. }) => {}
            other => panic!("expected ZeroAccumCoverage with zero coverage, got {other:?}"),
        }
    }

    /// Class 11: skew a rank-specialized site's trip count — the
    /// pinned fixed-rank kernel would assert (or sweep out of bounds)
    /// at run time.
    #[test]
    fn mutation_specialized_trip_count_rejected() {
        let mut tape = specialized_tape();
        let n = tape
            .instrs
            .iter_mut()
            .find_map(|i| match i {
                Instr::Axpy { n, spec, .. } if spec.rank().is_some() => Some(n),
                _ => None,
            })
            .expect("nest records a rank-specialized AXPY");
        *n -= 1;
        match tape.verify() {
            Err(TapeInvariantError::SpecializationMismatch { rank: 8, .. }) => {}
            other => panic!("expected SpecializationMismatch, got {other:?}"),
        }
    }

    /// Class 8: untrack a resolver level — a `Tracked` descent step at
    /// a level no enclosing loop tracks.
    #[test]
    fn mutation_untracked_level_rejected() {
        let mut tape = resolver_tape();
        let spec = tape
            .resolvers
            .iter_mut()
            .find(|s| {
                s.levels
                    .iter()
                    .any(|l| matches!(l, ResLevel::Search { .. }))
            })
            .expect("nest compiles searched resolvers");
        // Turn a searched level into a tracked one: nothing on the
        // stack tracks it at the use site.
        for l in &mut spec.levels {
            if matches!(l, ResLevel::Search { .. }) {
                *l = ResLevel::Tracked;
                break;
            }
        }
        match tape.verify() {
            Err(
                TapeInvariantError::TrackingInvariant { .. }
                | TapeInvariantError::ResolverInvariant { .. },
            ) => {}
            other => panic!("expected a tracking/resolver error, got {other:?}"),
        }
    }
}
