//! Bind-time compilation of loop forests to a flat instruction tape.
//!
//! The [`crate::interp`] module *interprets* a planned [`LoopForest`]:
//! every vertex visit re-matches node variants, re-probes BLAS
//! eligibility (`try_blas` rebuilds operand metadata from index lists),
//! recomputes strided offsets from scratch, and re-resolves densely
//! iterated sparse modes with a cold binary search. All of those
//! decisions depend only on the *plan*, not on the data — so
//! [`CompiledTape::compile`] makes each of them exactly once, lowering
//! `(Kernel, ContractionPath, LoopForest)` into a flat `Vec<Instr>`
//! program that the tile-parametric driver replays per execution.
//!
//! # Instruction set
//!
//! - `Zero { term }` — reset a term's Eq.-5 buffer at its split vertex
//!   (the positions the interpreter derives per sibling list are baked
//!   into the program).
//! - `Dense` / `Sparse` … `EndLoop` — loop headers paired with a
//!   trailing `EndLoop`; iteration state lives on an explicit frame
//!   stack (the driver never recurses). Each header carries a slice of
//!   the *advance table*: `(cursor, stride)` pairs whose running
//!   offsets are incremented by `Δcoordinate · stride` on every step
//!   and restored on exit, replacing the interpreter's per-visit
//!   `offset_in` recomputation. A sparse header also carries how to
//!   locate its parent CSF node: the tile root range, a node tracked by
//!   an enclosing sparse loop, or a finger-search resolver.
//! - `Leaf` — one scalar contraction `tgt += l · r`, with both operand
//!   addresses precompiled to cursors (or the sparse leaf value).
//! - `Dot` / `Axpy` / `Xmul` / `Ger` / `Gemv` — a whole innermost dense
//!   loop (or loop pair) lowered to a single microkernel call. BLAS-1/2
//!   eligibility, operand roles, and every stride are resolved at
//!   compile time; the interpreter's per-visit `src_meta`/`tgt_meta`
//!   probing disappears entirely. Each microkernel instruction carries
//!   the **function pointer** of its implementation, chosen once at
//!   compile time by a [`crate::simd::KernelSet`] (scalar, AVX2+FMA,
//!   NEON, or portable `std::simd` — never re-decided per visit), plus
//!   a [`RankSpec`] recording whether the body is rank-specialized.
//! - `ZeroAxpy` / `ZeroXmul` / `ZeroGer` — **superinstructions** fusing
//!   a term's Eq.-5 zero point with its first accumulation: when the
//!   instruction immediately following `Zero { t }` is a microkernel
//!   that accumulates into term `t`'s *entire* buffer, the pair
//!   collapses into one assigning pass (`y = αx` instead of
//!   `y = 0; y += αx`), halving the memory traffic of the split point.
//!   Emitted only under [`Microkernels::Auto`]; the fused kernels never
//!   skip the write (even for `α == 0`), preserving the zero point.
//!
//! # Finger search
//!
//! When a sparse CSF mode is iterated *densely* above a sparse loop
//! (e.g. Listing 4's `s` above `k`, or an unfused consumer
//! re-descending the tree), the node for the current coordinate must be
//! re-resolved inside the dense loop. The interpreter binary-searches
//! the child range from scratch on every visit. The tape exploits the
//! **monotone traversal invariant**: while the enclosing context (the
//! parent node) is fixed, successive targets of one resolution site are
//! non-decreasing, and CSF child ranges are sorted — so each searched
//! level keeps a *finger* (the last position), and a new target gallops
//! forward from it (exponential steps, then binary search in the
//! bracket). A parent change or a target decrease resets the finger to
//! the range start, so monotonicity is purely an accelerant, never a
//! correctness assumption. Amortized over a full dense sweep this is
//! O(range + dim) instead of O(dim · log range); the probe counts are
//! reported in [`ExecStats::search_probes`] next to the interpreter's
//! binary-search depths.
//!
//! # Contracts
//!
//! The tape mirrors the interpreter's decisions exactly — same loop
//! structure, same microkernel choices, same floating-point operation
//! order — so the two engines are mutually redundant oracles: the
//! differential suite (`tests/tape_vs_interp.rs`) holds them to ≤1e-9
//! (in practice bitwise) agreement. One compiled tape is shared by all
//! worker threads (it is immutable and tile-parametric); the mutable
//! driver state ([`TapeState`]) lives in each [`Workspace`], is
//! preallocated by [`Workspace::prepare_tape`], and the driver performs
//! **zero heap allocations and zero atomic operations** per execution —
//! stats are plain per-workspace `u64`s folded into the global
//! [`crate::interp::stats`] shim once per run.

use crate::guard::RunGuard;
use crate::interp::{
    forest_stamp, stats, validate_operands, validate_output, validate_slots, ContractionOutput,
    ExecStats, OutputMut, Slots, Workspace,
};
use crate::simd::{AxpyFn, DotFn, GemvFn, GerFn, KernelSet, Microkernels, RankSpec, XmulFn};
use spttn_core::{Result, SpttnError};
use spttn_ir::{
    buffers_for_forest, BufferSpec, ContractionPath, IndexId, Kernel, LoopForest, LoopNode,
    LoopVertex, Operand, VertexKind,
};
use spttn_tensor::{Csf, CsfTile, DenseTensor};
use std::ops::Range;

#[path = "tape_verify.rs"]
pub mod verify;

/// Read-side backing store of a precompiled operand address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RBuf {
    /// Dense factor at a kernel input slot.
    Factor(usize),
    /// Intermediate buffer of an earlier term.
    Inter(usize),
}

/// A loop-invariant scalar source.
#[derive(Debug, Clone, Copy)]
enum Read {
    /// `store[cursors[cur]]`.
    Cursor { buf: RBuf, cur: usize },
    /// The sparse tensor's leaf value at the resolved node (0 when the
    /// coordinate prefix is off-pattern — lineage pruning).
    SparseVal,
}

/// An accumulation-cell target.
#[derive(Debug, Clone, Copy)]
enum Write {
    /// `store[cursors[cur]] += v` into the dense output (`term` is the
    /// final term) or the term's buffer.
    Cell { out: bool, term: usize, cur: usize },
    /// Pattern-sharing sparse output: `vals[node - leaf_lo] += v`.
    SparseCell,
}

/// Strided vector source of a microkernel.
#[derive(Debug, Clone, Copy)]
struct VecSrc {
    buf: RBuf,
    cur: usize,
    inc: usize,
}

/// Strided matrix source (GEMV's `A`).
#[derive(Debug, Clone, Copy)]
struct MatSrc {
    buf: RBuf,
    cur: usize,
    rs: usize,
    cs: usize,
}

/// Strided vector target of a microkernel.
#[derive(Debug, Clone, Copy)]
struct VecTgt {
    out: bool,
    cur: usize,
    inc: usize,
}

/// Strided matrix target (GER's `A`).
#[derive(Debug, Clone, Copy)]
struct MatTgt {
    out: bool,
    cur: usize,
    rs: usize,
    cs: usize,
}

/// How an instruction obtains the CSF node its sparse accesses use.
#[derive(Debug, Clone, Copy)]
enum NodeRes {
    /// No sparse access in this instruction.
    None,
    /// Every level up to the leaf is tracked by an enclosing sparse
    /// loop: read `nodes[level]` directly.
    Tracked(usize),
    /// Some level is densely iterated: run the finger-search resolver.
    Resolver(usize),
}

/// How a sparse loop header locates the node range it iterates.
#[derive(Debug, Clone, Copy)]
enum ParentLoc {
    /// Level 0: the executed tile's root range.
    Root,
    /// Parent level is tracked by an enclosing sparse loop.
    Tracked(usize),
    /// Parent must be resolved (finger search); off-pattern skips the
    /// loop — the covered contributions vanish by lineage pruning.
    Resolver(usize),
}

/// Slice of the advance table owned by one loop header.
type AdvRange = (u32, u32);

/// One cursor delta applied when its loop's coordinate advances.
#[derive(Debug, Clone, Copy)]
struct AdvEntry {
    cur: usize,
    stride: usize,
}

/// One tape instruction. All variants are plain `Copy` data; jump
/// targets (`end`) are absolute instruction indices.
#[derive(Debug, Clone, Copy)]
enum Instr {
    /// Zero a term's Eq.-5 buffer (split point).
    Zero { term: usize },
    /// Dense loop header over `index` with extent `dim`.
    Dense {
        index: IndexId,
        dim: usize,
        adv: AdvRange,
        end: usize,
    },
    /// Sparse loop header iterating CSF children at `level`.
    Sparse {
        index: IndexId,
        level: usize,
        parent: ParentLoc,
        adv: AdvRange,
        end: usize,
    },
    /// Advance or exit the innermost open loop.
    EndLoop,
    /// Scalar contraction of one term.
    Leaf {
        left: Read,
        right: Read,
        tgt: Write,
        res: NodeRes,
    },
    /// `tgt += Σ_q x[q]·y[q]` (an innermost dense loop lowered to DOT).
    Dot {
        n: usize,
        x: VecSrc,
        y: VecSrc,
        tgt: Write,
        res: NodeRes,
        kern: DotFn,
        spec: RankSpec,
    },
    /// `y[q] += alpha · x[q]`.
    Axpy {
        n: usize,
        term: usize,
        alpha: Read,
        x: VecSrc,
        y: VecTgt,
        res: NodeRes,
        kern: AxpyFn,
        spec: RankSpec,
    },
    /// `y[q] += x[q] · z[q]`.
    Xmul {
        n: usize,
        term: usize,
        x: VecSrc,
        z: VecSrc,
        y: VecTgt,
        kern: XmulFn,
    },
    /// Rank-1 update `a[q1,q2] += x[q1] · y[q2]`.
    Ger {
        m: usize,
        n: usize,
        term: usize,
        x: VecSrc,
        y: VecSrc,
        a: MatTgt,
        kern: GerFn,
        spec: RankSpec,
    },
    /// `y[i] += Σ_j a[i,j] · x[j]` (call-parameter order baked in).
    Gemv {
        m: usize,
        n: usize,
        term: usize,
        a: MatSrc,
        x: VecSrc,
        y: VecTgt,
        kern: GemvFn,
        spec: RankSpec,
    },
    /// Superinstruction: `Zero { term }` fused with an `Axpy` covering
    /// the whole buffer — one assigning pass `y[q] = alpha · x[q]`.
    ZeroAxpy {
        n: usize,
        term: usize,
        alpha: Read,
        x: VecSrc,
        y: VecTgt,
        res: NodeRes,
        kern: AxpyFn,
        spec: RankSpec,
    },
    /// Superinstruction: `Zero` + full-coverage `Xmul`,
    /// `y[q] = x[q] · z[q]`.
    ZeroXmul {
        n: usize,
        term: usize,
        x: VecSrc,
        z: VecSrc,
        y: VecTgt,
        kern: XmulFn,
    },
    /// Superinstruction: `Zero` + full-coverage `Ger`,
    /// `a[q1,q2] = x[q1] · y[q2]`.
    ZeroGer {
        m: usize,
        n: usize,
        term: usize,
        x: VecSrc,
        y: VecSrc,
        a: MatTgt,
        kern: GerFn,
    },
}

/// One level of a resolver's descent program.
#[derive(Debug, Clone, Copy)]
enum ResLevel {
    /// Node set by an enclosing sparse loop: read `nodes[l]`.
    Tracked,
    /// Finger-search `coords[index]` in the current child range, with
    /// persistent finger state at `slot`.
    Search { index: IndexId, slot: usize },
}

/// Compile-time spec of one sparse-node resolver.
///
/// `levels[i]` describes CSF level `start + i`. Unlike the
/// interpreter's `resolve_node` — which walks from level 0 and
/// searches every untracked level even when a deeper tracked level
/// overrides the result — the compiled descent starts at the deepest
/// tracked level at or below the target, so redundant shallow searches
/// are skipped entirely.
#[derive(Debug, Clone)]
struct ResolverSpec {
    start: usize,
    levels: Vec<ResLevel>,
}

/// Static operand-store extents captured at compile time, making a
/// [`CompiledTape`] self-describing for [`CompiledTape::verify`]: the
/// verifier proves cursor offsets in range against these lengths
/// without needing the kernel or buffer specs back.
#[derive(Debug, Clone)]
struct TapeBounds {
    /// Flat length of each dense factor slot (0 for the sparse slot,
    /// which is never cursor-addressed).
    factor_lens: Vec<usize>,
    /// Flat length of each term's Eq.-5 buffer (0 when the term has
    /// none — the final term writes the output instead).
    buffer_lens: Vec<usize>,
    /// Flat length of the dense output (0 for pattern-sharing sparse
    /// outputs, which are node-addressed).
    out_len: usize,
    /// Declared extent of every kernel index.
    index_dims: Vec<usize>,
    /// Kernel index stored at each CSF level.
    level_index: Vec<IndexId>,
    /// Whether the output shares the sparse pattern (node-addressed
    /// `SparseCell` writes instead of dense cursor writes).
    output_sparse: bool,
}

/// A loop forest lowered to a flat instruction program.
///
/// Immutable once compiled and shared by every executing thread; the
/// per-thread mutable state is a [`TapeState`] held by each
/// [`Workspace`]. Compile once per plan (`Plan::bind` does this), run
/// per tile with [`execute_tape_tile_into`].
#[derive(Debug, Clone)]
pub struct CompiledTape {
    instrs: Vec<Instr>,
    adv: Vec<AdvEntry>,
    resolvers: Vec<ResolverSpec>,
    n_cursors: usize,
    n_fingers: usize,
    n_indices: usize,
    n_levels: usize,
    n_terms: usize,
    max_depth: usize,
    forest_stamp: u64,
    bounds: TapeBounds,
    /// Microkernel selection recorded at compile time (function
    /// pointers inside the instructions were drawn from this set).
    kernels: KernelSet,
}

/// Invalid/uninitialized finger parent marker.
const PARENT_INVALID: usize = usize::MAX;
/// Finger parent marker for level-0 (tile root range) searches.
const PARENT_ROOT: usize = usize::MAX - 1;

/// Per-site finger state of one searched CSF level.
#[derive(Debug, Clone, Copy)]
struct Finger {
    /// Parent node the current range was derived from ([`PARENT_ROOT`]
    /// for level 0, [`PARENT_INVALID`] before first use).
    parent: usize,
    /// Last searched coordinate (monotonicity detector).
    target: usize,
    /// Last search position (the finger).
    pos: usize,
}

impl Default for Finger {
    fn default() -> Self {
        Finger {
            parent: PARENT_INVALID,
            target: 0,
            pos: 0,
        }
    }
}

/// Loop-iteration frame of the driver's explicit stack.
#[derive(Debug, Clone, Copy, Default)]
struct Frame {
    /// Instruction index of the loop header.
    instr: usize,
    /// Dense: current coordinate. Sparse: current node.
    pos: usize,
    /// Dense: unused (extent is in the header). Sparse: node range end.
    end: usize,
    /// Current coordinate (for delta advances and exit restores).
    prev: usize,
}

/// Preallocated mutable driver state for one thread's tape executions.
///
/// Sized purely from the compiled program; build with
/// [`CompiledTape::new_state`] or let [`Workspace::prepare_tape`] store
/// one in the workspace. After that, running the tape allocates
/// nothing.
#[derive(Debug, Clone)]
pub struct TapeState {
    /// Current coordinate per kernel index (0 outside its loop).
    coords: Vec<usize>,
    /// Current CSF node per tracked tree level.
    nodes: Vec<usize>,
    /// Running offsets of every compiled operand address.
    cursors: Vec<usize>,
    /// Fixed-size frame stack (`fp` is the live depth).
    frames: Vec<Frame>,
    fp: usize,
    /// Finger state per searched resolver level.
    fingers: Vec<Finger>,
    /// Forest fingerprint of the tape this state was sized for.
    stamp: u64,
}

impl TapeState {
    /// True when this state was sized for `tape`.
    pub(crate) fn matches(&self, tape: &CompiledTape) -> bool {
        self.stamp == tape.forest_stamp
            && self.coords.len() == tape.n_indices
            && self.nodes.len() == tape.n_levels
            && self.cursors.len() == tape.n_cursors
            && self.frames.len() == tape.max_depth
            && self.fingers.len() == tape.n_fingers
    }

    /// Reset to the start-of-run state (cheap: O(state size), which is
    /// O(program size), independent of the data).
    fn reset(&mut self) {
        self.coords.fill(0);
        self.nodes.fill(usize::MAX);
        self.cursors.fill(0);
        self.fp = 0;
        self.fingers.fill(Finger::default());
    }
}

impl CompiledTape {
    /// Lower a planned nest to a tape. `specs` must be the Eq.-5 buffer
    /// specs of `forest` (the same ones the executing [`Workspace`] was
    /// built from), so compiled buffer strides agree with the allocated
    /// buffers.
    pub fn compile(
        kernel: &Kernel,
        path: &ContractionPath,
        forest: &LoopForest,
        specs: &[BufferSpec],
    ) -> Result<CompiledTape> {
        // Scalar default keeps the free-function tape paths (and every
        // caller that has not opted in) bitwise-identical to the
        // pre-SIMD engine; the facade passes its `Microkernels` option
        // through `compile_with`.
        Self::compile_with_kernels(kernel, path, forest, specs, KernelSet::scalar())
    }

    /// [`CompiledTape::compile`] with a [`Microkernels`] policy: the
    /// policy is resolved against the `SPTTN_MICROKERNELS` environment
    /// override and the host CPU once, here, and the outcome is
    /// recorded in the tape.
    pub fn compile_with(
        kernel: &Kernel,
        path: &ContractionPath,
        forest: &LoopForest,
        specs: &[BufferSpec],
        microkernels: Microkernels,
    ) -> Result<CompiledTape> {
        Self::compile_with_kernels(
            kernel,
            path,
            forest,
            specs,
            KernelSet::resolve(microkernels),
        )
    }

    /// Compile against an explicit, already-resolved [`KernelSet`] —
    /// differential tests and benches use this to pin program shape
    /// independently of the environment override.
    pub fn compile_with_kernels(
        kernel: &Kernel,
        path: &ContractionPath,
        forest: &LoopForest,
        specs: &[BufferSpec],
        kernels: KernelSet,
    ) -> Result<CompiledTape> {
        let n_terms = path.len();
        let mut buffer_inds: Vec<Vec<IndexId>> = vec![Vec::new(); n_terms];
        let mut buffer_strides: Vec<Vec<usize>> = vec![Vec::new(); n_terms];
        let mut buffer_hint: Vec<Option<usize>> = vec![None; n_terms];
        let mut buffer_lens = vec![0usize; n_terms];
        for s in specs {
            buffer_inds[s.producer] = s.inds.clone();
            buffer_strides[s.producer] = s.strides();
            buffer_hint[s.producer] = s.rank_hint();
            buffer_lens[s.producer] = s.dims.iter().product();
        }
        let mut c = Compiler {
            kernel,
            path,
            buffer_inds,
            buffer_strides,
            buffer_hint,
            factor_strides: kernel
                .inputs
                .iter()
                .map(|r| kernel.ref_strides(r))
                .collect(),
            out_strides: kernel.ref_strides(&kernel.output),
            instrs: Vec::new(),
            adv: Vec::new(),
            resolvers: Vec::new(),
            n_cursors: 0,
            n_fingers: 0,
            loops: Vec::new(),
            kernels,
        };
        c.compile_siblings(&forest.roots, n_terms)?;
        if kernels.superinstructions() {
            fuse_zero_accum(&mut c.instrs, &buffer_lens, &kernels);
        }
        let bounds = TapeBounds {
            factor_lens: kernel
                .inputs
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    if i == kernel.sparse_input {
                        0
                    } else {
                        kernel.ref_dims(r).iter().product()
                    }
                })
                .collect(),
            buffer_lens,
            out_len: if kernel.output_sparse {
                0
            } else {
                kernel.ref_dims(&kernel.output).iter().product()
            },
            index_dims: (0..kernel.num_indices()).map(|i| kernel.dim(i)).collect(),
            level_index: kernel.csf_index_order().to_vec(),
            output_sparse: kernel.output_sparse,
        };
        Ok(CompiledTape {
            instrs: c.instrs,
            adv: c.adv,
            resolvers: c.resolvers,
            n_cursors: c.n_cursors,
            n_fingers: c.n_fingers,
            n_indices: kernel.num_indices(),
            n_levels: kernel.csf_index_order().len(),
            n_terms,
            max_depth: forest.max_depth(),
            forest_stamp: forest_stamp(forest),
            bounds,
            kernels,
        })
    }

    /// Convenience: compile with freshly inferred buffer specs.
    pub fn from_forest(
        kernel: &Kernel,
        path: &ContractionPath,
        forest: &LoopForest,
    ) -> Result<CompiledTape> {
        Self::compile(
            kernel,
            path,
            forest,
            &buffers_for_forest(kernel, path, forest),
        )
    }

    /// Build the preallocated mutable driver state for this program.
    pub fn new_state(&self) -> TapeState {
        TapeState {
            coords: vec![0; self.n_indices],
            nodes: vec![usize::MAX; self.n_levels],
            cursors: vec![0; self.n_cursors],
            frames: vec![Frame::default(); self.max_depth],
            fp: 0,
            fingers: vec![Finger::default(); self.n_fingers],
            stamp: self.forest_stamp,
        }
    }

    /// Number of instructions in the program.
    pub fn num_instrs(&self) -> usize {
        self.instrs.len()
    }

    /// Number of precompiled operand addresses (incremental cursors).
    pub fn num_cursors(&self) -> usize {
        self.n_cursors
    }

    /// Number of finger-search sites (searched resolver levels).
    pub fn num_fingers(&self) -> usize {
        self.n_fingers
    }

    /// The microkernel selection recorded at compile time.
    pub fn kernel_set(&self) -> KernelSet {
        self.kernels
    }

    /// Name of the recorded microkernel implementation family
    /// (`"scalar"`, `"avx2+fma"`, `"neon"`, `"portable"`).
    pub fn microkernels(&self) -> &'static str {
        self.kernels.name()
    }

    /// f64 lanes per vector operation of the recorded kernels.
    pub fn kernel_width(&self) -> usize {
        self.kernels.width()
    }

    /// Number of fused `ZeroAccum` superinstructions in the program.
    pub fn superinstructions(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::ZeroAxpy { .. } | Instr::ZeroXmul { .. } | Instr::ZeroGer { .. }
                )
            })
            .count()
    }

    /// Number of rank-specialized microkernel sites in the program.
    pub fn specialized(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::Dot { spec, .. }
                    | Instr::Axpy { spec, .. }
                    | Instr::Ger { spec, .. }
                    | Instr::Gemv { spec, .. }
                    | Instr::ZeroAxpy { spec, .. }
                        if *spec != RankSpec::Gen
                )
            })
            .count()
    }

    /// Statically prove the compiled program well-formed — see the
    /// [`verify`] module for the invariants checked.
    ///
    /// Abstractly interprets every instruction without touching data:
    /// loop structure, frame-stack depth, cursor bounds under declared
    /// extents, Eq.-5 zero-before-accumulate domination, resolver
    /// shape, and operand-index ranges. Cost is O(program size),
    /// independent of the tensors; `Plan::bind` runs it on every debug
    /// build and behind `PlanOptions::with_verify(true)` in release.
    pub fn verify(&self) -> std::result::Result<verify::TapeReport, verify::TapeInvariantError> {
        verify::verify(self)
    }
}

// ---------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------

/// Compile-time operand metadata relative to candidate loop indices
/// `q1`/`q2` — the static mirror of the interpreter's `SrcMeta`.
enum CMeta {
    /// The sparse input: loop-invariant (its value never carries q).
    SparseConst,
    /// Dense source not using q1/q2: loop-invariant scalar.
    Const {
        buf: RBuf,
        inds: Vec<IndexId>,
        strides: Vec<usize>,
    },
    /// Strided source.
    Var {
        buf: RBuf,
        inds: Vec<IndexId>,
        strides: Vec<usize>,
        s1: usize,
        has1: bool,
        s2: usize,
        has2: bool,
    },
}

/// Compile-time target metadata — the static mirror of `TgtMeta`.
enum CTgt {
    /// Scalar cell of the pattern-sharing sparse output.
    CellSparse,
    /// Dense scalar cell (q1/q2 absent from the target's indices).
    CellDense {
        out: bool,
        inds: Vec<IndexId>,
        strides: Vec<usize>,
    },
    /// Strided target.
    Var {
        out: bool,
        inds: Vec<IndexId>,
        strides: Vec<usize>,
        s1: usize,
        has1: bool,
        s2: usize,
        has2: bool,
    },
}

/// One enclosing emitted loop during compilation.
struct LoopCtx {
    index: IndexId,
    /// CSF level for sparse loops (tracked-ness of resolvers).
    level: Option<usize>,
    /// Advance entries collected for this loop's body.
    adv: Vec<AdvEntry>,
}

struct Compiler<'a> {
    kernel: &'a Kernel,
    path: &'a ContractionPath,
    buffer_inds: Vec<Vec<IndexId>>,
    buffer_strides: Vec<Vec<usize>>,
    /// Innermost buffer extent when it is a supported fixed rank
    /// ([`BufferSpec::rank_hint`]) — the pin for rank specialization.
    buffer_hint: Vec<Option<usize>>,
    factor_strides: Vec<Vec<usize>>,
    out_strides: Vec<usize>,
    instrs: Vec<Instr>,
    adv: Vec<AdvEntry>,
    resolvers: Vec<ResolverSpec>,
    n_cursors: usize,
    n_fingers: usize,
    loops: Vec<LoopCtx>,
    /// Microkernel selection the emitted instructions draw their
    /// function pointers from.
    kernels: KernelSet,
}

impl<'a> Compiler<'a> {
    /// Allocate a cursor for a site addressed by `inds`/`strides`,
    /// registering one advance entry with each enclosing loop that
    /// iterates one of the site's indices (`q1`/`q2` are carried as
    /// microkernel strides instead and skipped here).
    fn cursor(
        &mut self,
        inds: &[IndexId],
        strides: &[usize],
        q1: Option<IndexId>,
        q2: Option<IndexId>,
    ) -> Result<usize> {
        let cur = self.n_cursors;
        self.n_cursors += 1;
        for (pos, &ind) in inds.iter().enumerate() {
            if Some(ind) == q1 || Some(ind) == q2 {
                continue;
            }
            let ctx = self
                .loops
                .iter_mut()
                .find(|c| c.index == ind)
                .ok_or_else(|| {
                    SpttnError::Execution(format!(
                        "tape compile: operand index {ind} is not iterated by an enclosing loop"
                    ))
                })?;
            ctx.adv.push(AdvEntry {
                cur,
                stride: strides[pos],
            });
        }
        Ok(cur)
    }

    /// True when CSF `level` is iterated by an enclosing *sparse* loop
    /// at the current compile point.
    fn tracked(&self, level: usize) -> bool {
        self.loops.iter().any(|c| c.level == Some(level))
    }

    /// Allocate a resolver for descent down to `target` level. The
    /// descent starts at the deepest tracked level at or below the
    /// target (searches above it would be discarded anyway).
    fn resolver(&mut self, target: usize) -> usize {
        let start = (0..=target).rev().find(|&l| self.tracked(l)).unwrap_or(0);
        let levels = (start..=target)
            .map(|l| {
                if self.tracked(l) {
                    ResLevel::Tracked
                } else {
                    let slot = self.n_fingers;
                    self.n_fingers += 1;
                    ResLevel::Search {
                        index: self.kernel.index_at_level(l),
                        slot,
                    }
                }
            })
            .collect();
        self.resolvers.push(ResolverSpec { start, levels });
        self.resolvers.len() - 1
    }

    /// Node resolution for an instruction touching the sparse leaves.
    fn node_res(&mut self) -> NodeRes {
        let leaf = self.kernel.csf_index_order().len() - 1;
        if (0..=leaf).all(|l| self.tracked(l)) {
            NodeRes::Tracked(leaf)
        } else {
            NodeRes::Resolver(self.resolver(leaf))
        }
    }

    /// Parent locator for a sparse loop header at `level`, derived from
    /// the loops enclosing it (call before pushing the loop's own ctx).
    fn parent_loc(&mut self, level: usize) -> ParentLoc {
        if level == 0 {
            ParentLoc::Root
        } else if self.tracked(level - 1) {
            ParentLoc::Tracked(level - 1)
        } else {
            ParentLoc::Resolver(self.resolver(level - 1))
        }
    }

    /// Term range covered by a node (mirror of the interpreter's).
    fn node_range(n: &LoopNode) -> (usize, usize) {
        match n {
            LoopNode::Leaf(t) => (*t, *t + 1),
            LoopNode::Loop(v) => (v.term_lo, v.term_hi),
        }
    }

    /// Compile a sibling list, baking in the Eq.-5 split-point zeroing
    /// the interpreter derives per visit.
    fn compile_siblings(&mut self, nodes: &[LoopNode], parent_hi: usize) -> Result<()> {
        for n in nodes {
            let (lo, hi) = Self::node_range(n);
            for t in lo..hi {
                if let Some(c) = self.path.terms[t].consumer {
                    if c >= hi && c < parent_hi {
                        self.instrs.push(Instr::Zero { term: t });
                    }
                }
            }
            match n {
                LoopNode::Leaf(t) => self.compile_leaf(*t)?,
                LoopNode::Loop(v) => self.compile_loop(v)?,
            }
        }
        Ok(())
    }

    fn compile_loop(&mut self, v: &LoopVertex) -> Result<()> {
        if self.try_blas(v)? {
            return Ok(());
        }
        let header = self.instrs.len();
        self.instrs.push(Instr::EndLoop); // placeholder, patched below
                                          // The parent locator sees only the loops *enclosing* v.
        let parent = match v.kind {
            VertexKind::Sparse { level } => Some(self.parent_loc(level)),
            VertexKind::Dense => None,
        };
        self.loops.push(LoopCtx {
            index: v.index,
            level: match v.kind {
                VertexKind::Sparse { level } => Some(level),
                VertexKind::Dense => None,
            },
            adv: Vec::new(),
        });
        self.compile_siblings(&v.children, v.term_hi)?;
        self.instrs.push(Instr::EndLoop);
        let end = self.instrs.len();
        let ctx = self.loops.pop().expect("loop ctx pushed above");
        let adv = self.flush_adv(ctx.adv);
        self.instrs[header] = match v.kind {
            VertexKind::Dense => Instr::Dense {
                index: v.index,
                dim: self.kernel.dim(v.index),
                adv,
                end,
            },
            VertexKind::Sparse { level } => Instr::Sparse {
                index: v.index,
                level,
                parent: parent.expect("sparse vertices computed a parent"),
                adv,
                end,
            },
        };
        Ok(())
    }

    fn flush_adv(&mut self, entries: Vec<AdvEntry>) -> AdvRange {
        let start = self.adv.len() as u32;
        self.adv.extend(entries);
        (start, self.adv.len() as u32)
    }

    /// Compile one scalar-leaf contraction.
    fn compile_leaf(&mut self, t: usize) -> Result<()> {
        let term = &self.path.terms[t];
        let (tl, tr) = (term.left, term.right);
        let left = self.read_operand(tl)?;
        let right = self.read_operand(tr)?;
        let tgt = if t + 1 == self.path.len() {
            if self.kernel.output_sparse {
                Write::SparseCell
            } else {
                let inds = self.kernel.output.indices.clone();
                let strides = self.out_strides.clone();
                Write::Cell {
                    out: true,
                    term: t,
                    cur: self.cursor(&inds, &strides, None, None)?,
                }
            }
        } else {
            let inds = self.buffer_inds[t].clone();
            let strides = self.buffer_strides[t].clone();
            Write::Cell {
                out: false,
                term: t,
                cur: self.cursor(&inds, &strides, None, None)?,
            }
        };
        let needs_node = matches!(left, Read::SparseVal)
            || matches!(right, Read::SparseVal)
            || matches!(tgt, Write::SparseCell);
        let res = if needs_node {
            self.node_res()
        } else {
            NodeRes::None
        };
        self.instrs.push(Instr::Leaf {
            left,
            right,
            tgt,
            res,
        });
        Ok(())
    }

    /// Compile a full-coordinate scalar read of an operand.
    fn read_operand(&mut self, op: Operand) -> Result<Read> {
        Ok(match op {
            Operand::Input(i) if i == self.kernel.sparse_input => Read::SparseVal,
            Operand::Input(i) => {
                let inds = self.kernel.inputs[i].indices.clone();
                let strides = self.factor_strides[i].clone();
                Read::Cursor {
                    buf: RBuf::Factor(i),
                    cur: self.cursor(&inds, &strides, None, None)?,
                }
            }
            Operand::Inter(u) => {
                let inds = self.buffer_inds[u].clone();
                let strides = self.buffer_strides[u].clone();
                Read::Cursor {
                    buf: RBuf::Inter(u),
                    cur: self.cursor(&inds, &strides, None, None)?,
                }
            }
        })
    }

    // ----- BLAS lowering (static mirror of the interpreter's probe) --

    /// Source metadata w.r.t. `q1` (and optionally `q2`), from index
    /// lists alone — no cursors are allocated until a dispatch commits.
    fn src_meta(&self, op: Operand, q1: IndexId, q2: Option<IndexId>) -> CMeta {
        let (buf, inds, strides): (RBuf, &[IndexId], &[usize]) = match op {
            Operand::Input(i) if i == self.kernel.sparse_input => return CMeta::SparseConst,
            Operand::Input(i) => (
                RBuf::Factor(i),
                &self.kernel.inputs[i].indices,
                &self.factor_strides[i],
            ),
            Operand::Inter(u) => (
                RBuf::Inter(u),
                &self.buffer_inds[u],
                &self.buffer_strides[u],
            ),
        };
        let (mut s1, mut has1, mut s2, mut has2) = (0usize, false, 0usize, false);
        for (pos, &ind) in inds.iter().enumerate() {
            if ind == q1 {
                s1 = strides[pos];
                has1 = true;
            } else if Some(ind) == q2 {
                s2 = strides[pos];
                has2 = true;
            }
        }
        if !has1 && !has2 {
            CMeta::Const {
                buf,
                inds: inds.to_vec(),
                strides: strides.to_vec(),
            }
        } else {
            CMeta::Var {
                buf,
                inds: inds.to_vec(),
                strides: strides.to_vec(),
                s1,
                has1,
                s2,
                has2,
            }
        }
    }

    /// Target metadata; `None` means dispatch is unsupported (sparse
    /// pattern-sharing output indexed by a loop index).
    fn tgt_meta(&self, t: usize, q1: IndexId, q2: Option<IndexId>) -> Option<CTgt> {
        let (out, inds, strides): (bool, &[IndexId], &[usize]) = if t + 1 == self.path.len() {
            if self.kernel.output_sparse {
                let oi = self.path.terms[t].out_inds;
                if oi.contains(q1) || q2.is_some_and(|q| oi.contains(q)) {
                    return None;
                }
                return Some(CTgt::CellSparse);
            }
            (true, &self.kernel.output.indices, &self.out_strides)
        } else {
            (false, &self.buffer_inds[t], &self.buffer_strides[t])
        };
        let (mut s1, mut has1, mut s2, mut has2) = (0usize, false, 0usize, false);
        for (pos, &ind) in inds.iter().enumerate() {
            if ind == q1 {
                s1 = strides[pos];
                has1 = true;
            } else if Some(ind) == q2 {
                s2 = strides[pos];
                has2 = true;
            }
        }
        if has1 || has2 {
            Some(CTgt::Var {
                out,
                inds: inds.to_vec(),
                strides: strides.to_vec(),
                s1,
                has1,
                s2,
                has2,
            })
        } else {
            Some(CTgt::CellDense {
                out,
                inds: inds.to_vec(),
                strides: strides.to_vec(),
            })
        }
    }

    /// Materialize a `Var` source as a microkernel vector operand.
    fn vec_src(
        &mut self,
        m: &CMeta,
        inc: usize,
        q1: IndexId,
        q2: Option<IndexId>,
    ) -> Result<VecSrc> {
        let CMeta::Var {
            buf, inds, strides, ..
        } = m
        else {
            unreachable!("vec_src takes Var metadata");
        };
        let (buf, inds, strides) = (*buf, inds.clone(), strides.clone());
        Ok(VecSrc {
            buf,
            cur: self.cursor(&inds, &strides, Some(q1), q2)?,
            inc,
        })
    }

    /// Materialize a loop-invariant source as a scalar read.
    fn const_src(&mut self, m: &CMeta) -> Result<Read> {
        match m {
            CMeta::SparseConst => Ok(Read::SparseVal),
            CMeta::Const { buf, inds, strides } => {
                let (buf, inds, strides) = (*buf, inds.clone(), strides.clone());
                Ok(Read::Cursor {
                    buf,
                    cur: self.cursor(&inds, &strides, None, None)?,
                })
            }
            CMeta::Var { .. } => unreachable!("const_src takes invariant metadata"),
        }
    }

    /// Materialize a cell target.
    fn cell_tgt(&mut self, tm: &CTgt, t: usize) -> Result<Write> {
        match tm {
            CTgt::CellSparse => Ok(Write::SparseCell),
            CTgt::CellDense { out, inds, strides } => {
                let (out, inds, strides) = (*out, inds.clone(), strides.clone());
                Ok(Write::Cell {
                    out,
                    term: t,
                    cur: self.cursor(&inds, &strides, None, None)?,
                })
            }
            CTgt::Var { .. } => unreachable!("cell_tgt takes cell metadata"),
        }
    }

    /// Materialize a strided target vector.
    fn vec_tgt(
        &mut self,
        tm: &CTgt,
        inc: usize,
        q1: IndexId,
        q2: Option<IndexId>,
    ) -> Result<VecTgt> {
        let CTgt::Var {
            out, inds, strides, ..
        } = tm
        else {
            unreachable!("vec_tgt takes Var metadata");
        };
        let (out, inds, strides) = (*out, inds.clone(), strides.clone());
        Ok(VecTgt {
            out,
            cur: self.cursor(&inds, &strides, Some(q1), q2)?,
            inc,
        })
    }

    /// Rank-specialization pin for a microkernel writing term `t`: a
    /// dense-output row's trip count is statically the kernel dim; a
    /// buffer's pin comes from its `BufferSpec` innermost dim
    /// ([`BufferSpec::rank_hint`]).
    fn tgt_hint(&self, out: bool, t: usize, n: usize) -> Option<usize> {
        if out {
            Some(n)
        } else {
            self.buffer_hint[t]
        }
    }

    /// Try to lower a vertex to one microkernel instruction; mirrors
    /// the interpreter's `try_blas` decisions exactly so both engines
    /// execute the same operation sequence.
    fn try_blas(&mut self, v: &LoopVertex) -> Result<bool> {
        if v.kind != VertexKind::Dense || v.term_hi - v.term_lo != 1 {
            return Ok(false);
        }
        let t = v.term_lo;
        match v.children.as_slice() {
            [LoopNode::Leaf(_)] => self.blas1(v.index, t),
            [LoopNode::Loop(v2)]
                if v2.kind == VertexKind::Dense
                    && v2.term_hi - v2.term_lo == 1
                    && matches!(v2.children.as_slice(), [LoopNode::Leaf(_)]) =>
            {
                self.blas2(v.index, v2.index, t)
            }
            _ => Ok(false),
        }
    }

    /// One dense loop over `q`, single term `t`: AXPY / elementwise /
    /// DOT lowering.
    fn blas1(&mut self, q: IndexId, t: usize) -> Result<bool> {
        let n = self.kernel.dim(q);
        let term = &self.path.terms[t];
        let (tl, tr) = (term.left, term.right);
        let lm = self.src_meta(tl, q, None);
        let rm = self.src_meta(tr, q, None);
        let Some(tm) = self.tgt_meta(t, q, None) else {
            return Ok(false);
        };
        match &tm {
            CTgt::CellSparse | CTgt::CellDense { .. } => {
                // Σ_q l[q]·r[q] into a scalar cell: DOT.
                let (CMeta::Var { s1: ls, .. }, CMeta::Var { s1: rs, .. }) = (&lm, &rm) else {
                    return Ok(false);
                };
                let (ls, rs) = (*ls, *rs);
                let x = self.vec_src(&lm, ls, q, None)?;
                let y = self.vec_src(&rm, rs, q, None)?;
                let tgt = self.cell_tgt(&tm, t)?;
                let res = if matches!(tgt, Write::SparseCell) {
                    self.node_res()
                } else {
                    NodeRes::None
                };
                let (kern, spec) = self.kernels.dot(n, x.inc == 1 && y.inc == 1);
                self.instrs.push(Instr::Dot {
                    n,
                    x,
                    y,
                    tgt,
                    res,
                    kern,
                    spec,
                });
                Ok(true)
            }
            CTgt::Var { s1: ts, .. } => {
                let ts = *ts;
                let y = self.vec_tgt(&tm, ts, q, None)?;
                match (&lm, &rm) {
                    (CMeta::Var { s1, .. }, CMeta::SparseConst | CMeta::Const { .. }) => {
                        let s1 = *s1;
                        let x = self.vec_src(&lm, s1, q, None)?;
                        let alpha = self.const_src(&rm)?;
                        let res = if matches!(alpha, Read::SparseVal) {
                            self.node_res()
                        } else {
                            NodeRes::None
                        };
                        let hint = self.tgt_hint(y.out, t, n);
                        let (kern, spec) = self.kernels.axpy(n, x.inc == 1 && y.inc == 1, hint);
                        self.instrs.push(Instr::Axpy {
                            n,
                            term: t,
                            alpha,
                            x,
                            y,
                            res,
                            kern,
                            spec,
                        });
                        Ok(true)
                    }
                    (CMeta::SparseConst | CMeta::Const { .. }, CMeta::Var { s1, .. }) => {
                        let s1 = *s1;
                        let x = self.vec_src(&rm, s1, q, None)?;
                        let alpha = self.const_src(&lm)?;
                        let res = if matches!(alpha, Read::SparseVal) {
                            self.node_res()
                        } else {
                            NodeRes::None
                        };
                        let hint = self.tgt_hint(y.out, t, n);
                        let (kern, spec) = self.kernels.axpy(n, x.inc == 1 && y.inc == 1, hint);
                        self.instrs.push(Instr::Axpy {
                            n,
                            term: t,
                            alpha,
                            x,
                            y,
                            res,
                            kern,
                            spec,
                        });
                        Ok(true)
                    }
                    (CMeta::Var { s1: ls, .. }, CMeta::Var { s1: rs, .. }) => {
                        let (ls, rs) = (*ls, *rs);
                        let x = self.vec_src(&lm, ls, q, None)?;
                        let z = self.vec_src(&rm, rs, q, None)?;
                        let kern = self.kernels.xmul();
                        self.instrs.push(Instr::Xmul {
                            n,
                            term: t,
                            x,
                            z,
                            y,
                            kern,
                        });
                        Ok(true)
                    }
                    _ => Ok(false),
                }
            }
        }
    }

    /// Two nested dense loops `(q1, q2)` over a single term: GER / GEMV
    /// lowering. The emitted call parameters match the interpreter's
    /// dispatch branch for branch.
    fn blas2(&mut self, q1: IndexId, q2: IndexId, t: usize) -> Result<bool> {
        let (m, n) = (self.kernel.dim(q1), self.kernel.dim(q2));
        let term = &self.path.terms[t];
        let (tl, tr) = (term.left, term.right);
        let lm = self.src_meta(tl, q1, Some(q2));
        let rm = self.src_meta(tr, q1, Some(q2));
        let Some(tm) = self.tgt_meta(t, q1, Some(q2)) else {
            return Ok(false);
        };
        let CTgt::Var {
            s1: t1,
            has1: th1,
            s2: t2,
            has2: th2,
            ..
        } = &tm
        else {
            return Ok(false);
        };
        let (t1, th1, t2, th2) = (*t1, *th1, *t2, *th2);
        let (
            CMeta::Var {
                s1: l1,
                has1: lh1,
                s2: l2,
                has2: lh2,
                ..
            },
            CMeta::Var {
                s1: r1,
                has1: rh1,
                s2: r2,
                has2: rh2,
                ..
            },
        ) = (&lm, &rm)
        else {
            return Ok(false);
        };
        let (l1, lh1, l2, lh2) = (*l1, *lh1, *l2, *lh2);
        let (r1, rh1, r2, rh2) = (*r1, *rh1, *r2, *rh2);

        if th1 && th2 {
            // Rank-1 update: x carries q1, y carries q2.
            if lh1 && !lh2 && !rh1 && rh2 {
                let x = self.vec_src(&lm, l1, q1, Some(q2))?;
                let y = self.vec_src(&rm, r2, q1, Some(q2))?;
                let a = self.mat_tgt(&tm, t1, t2, q1, q2)?;
                let hint = self.tgt_hint(a.out, t, n);
                let (kern, spec) = self.kernels.ger(n, a.cs == 1 && y.inc == 1, hint);
                self.instrs.push(Instr::Ger {
                    m,
                    n,
                    term: t,
                    x,
                    y,
                    a,
                    kern,
                    spec,
                });
                return Ok(true);
            }
            if !lh1 && lh2 && rh1 && !rh2 {
                let x = self.vec_src(&rm, r1, q1, Some(q2))?;
                let y = self.vec_src(&lm, l2, q1, Some(q2))?;
                let a = self.mat_tgt(&tm, t1, t2, q1, q2)?;
                let hint = self.tgt_hint(a.out, t, n);
                let (kern, spec) = self.kernels.ger(n, a.cs == 1 && y.inc == 1, hint);
                self.instrs.push(Instr::Ger {
                    m,
                    n,
                    term: t,
                    x,
                    y,
                    a,
                    kern,
                    spec,
                });
                return Ok(true);
            }
            return Ok(false);
        }
        if th1 && !th2 {
            // y[q1] += Σ_q2 A[q1,q2] · x[q2].
            if lh1 && lh2 && !rh1 && rh2 {
                let a = self.mat_src(&lm, l1, l2, q1, q2)?;
                let x = self.vec_src(&rm, r2, q1, Some(q2))?;
                let y = self.vec_tgt(&tm, t1, q1, Some(q2))?;
                let (kern, spec) = self.kernels.gemv(n, a.cs == 1 && x.inc == 1);
                self.instrs.push(Instr::Gemv {
                    m,
                    n,
                    term: t,
                    a,
                    x,
                    y,
                    kern,
                    spec,
                });
                return Ok(true);
            }
            if rh1 && rh2 && !lh1 && lh2 {
                let a = self.mat_src(&rm, r1, r2, q1, q2)?;
                let x = self.vec_src(&lm, l2, q1, Some(q2))?;
                let y = self.vec_tgt(&tm, t1, q1, Some(q2))?;
                let (kern, spec) = self.kernels.gemv(n, a.cs == 1 && x.inc == 1);
                self.instrs.push(Instr::Gemv {
                    m,
                    n,
                    term: t,
                    a,
                    x,
                    y,
                    kern,
                    spec,
                });
                return Ok(true);
            }
            return Ok(false);
        }
        if !th1 && th2 {
            // y[q2] += Σ_q1 A[q2,q1] · x[q1]  (m/n swapped in the call).
            if lh1 && lh2 && rh1 && !rh2 {
                let a = self.mat_src(&lm, l2, l1, q1, q2)?;
                let x = self.vec_src(&rm, r1, q1, Some(q2))?;
                let y = self.vec_tgt(&tm, t2, q1, Some(q2))?;
                // Row length of the emitted call is `m` (m/n swapped).
                let (kern, spec) = self.kernels.gemv(m, a.cs == 1 && x.inc == 1);
                self.instrs.push(Instr::Gemv {
                    m: n,
                    n: m,
                    term: t,
                    a,
                    x,
                    y,
                    kern,
                    spec,
                });
                return Ok(true);
            }
            if rh1 && rh2 && lh1 && !lh2 {
                let a = self.mat_src(&rm, r2, r1, q1, q2)?;
                let x = self.vec_src(&lm, l1, q1, Some(q2))?;
                let y = self.vec_tgt(&tm, t2, q1, Some(q2))?;
                // Row length of the emitted call is `m` (m/n swapped).
                let (kern, spec) = self.kernels.gemv(m, a.cs == 1 && x.inc == 1);
                self.instrs.push(Instr::Gemv {
                    m: n,
                    n: m,
                    term: t,
                    a,
                    x,
                    y,
                    kern,
                    spec,
                });
                return Ok(true);
            }
            return Ok(false);
        }
        Ok(false)
    }

    fn mat_src(
        &mut self,
        m: &CMeta,
        rs: usize,
        cs: usize,
        q1: IndexId,
        q2: IndexId,
    ) -> Result<MatSrc> {
        let CMeta::Var {
            buf, inds, strides, ..
        } = m
        else {
            unreachable!("mat_src takes Var metadata");
        };
        let (buf, inds, strides) = (*buf, inds.clone(), strides.clone());
        Ok(MatSrc {
            buf,
            cur: self.cursor(&inds, &strides, Some(q1), Some(q2))?,
            rs,
            cs,
        })
    }

    fn mat_tgt(
        &mut self,
        tm: &CTgt,
        rs: usize,
        cs: usize,
        q1: IndexId,
        q2: IndexId,
    ) -> Result<MatTgt> {
        let CTgt::Var {
            out, inds, strides, ..
        } = tm
        else {
            unreachable!("mat_tgt takes Var metadata");
        };
        let (out, inds, strides) = (*out, inds.clone(), strides.clone());
        Ok(MatTgt {
            out,
            cur: self.cursor(&inds, &strides, Some(q1), Some(q2))?,
            rs,
            cs,
        })
    }
}

/// Peephole pass fusing `Zero { t }` with an immediately following
/// microkernel that accumulates over term `t`'s **entire** buffer into
/// one assigning superinstruction (Eq.-5 zero point + first
/// accumulation in a single pass).
///
/// Soundness of the coverage tests: a `VecTgt` covers the buffer iff it
/// is not the output, has unit increment, and its trip count equals the
/// buffer's flat length — then the target cursor addresses offset 0 and
/// the kernel touches every element, so replacing "fill + accumulate"
/// with "assign" is exact. (The cursor *is* statically 0: full coverage
/// means no enclosing loop iterates any buffer index, so no advance
/// entry ever moves it.) A `MatTgt` additionally needs row-major
/// packing (`rs == n`, `m·n == len`). Adjacency guarantees the fused
/// instruction executes on exactly the control paths the `Zero` did.
///
/// Sources cannot alias the zeroed buffer: producer ordering means a
/// microkernel for term `t` only reads factors and buffers of earlier
/// terms (the verifier's `ProducerOrderViolation` rule).
///
/// Jump targets: removing the instruction at `i + 1` shifts everything
/// after it down by one. No loop `end` can point *at* `i + 1` or
/// `i + 2` — an `end` always lands one past an `EndLoop`, and neither
/// `i` (a `Zero`) nor `i + 1` (a microkernel) is one — so the blanket
/// `end > i + 1 → end -= 1` patch is exact.
fn fuse_zero_accum(instrs: &mut Vec<Instr>, buffer_lens: &[usize], kernels: &KernelSet) {
    let mut i = 0;
    while i + 1 < instrs.len() {
        let Instr::Zero { term } = instrs[i] else {
            i += 1;
            continue;
        };
        let fused = match instrs[i + 1] {
            Instr::Axpy {
                n,
                term: t,
                alpha,
                x,
                y,
                res,
                spec,
                ..
            } if t == term && !y.out && y.inc == 1 && n == buffer_lens[t] => {
                // The assigning twin must sit at exactly the recorded
                // specialization: a fixed-rank zaxpy would assert unit
                // source stride, which only the non-Gen spec implies.
                let (kern, zspec) = match spec.rank() {
                    Some(r) => kernels.zaxpy(r, true, Some(r)),
                    None => kernels.zaxpy(n, false, None),
                };
                debug_assert_eq!(zspec, spec);
                Some(Instr::ZeroAxpy {
                    n,
                    term: t,
                    alpha,
                    x,
                    y,
                    res,
                    kern,
                    spec: zspec,
                })
            }
            Instr::Xmul {
                n,
                term: t,
                x,
                z,
                y,
                ..
            } if t == term && !y.out && y.inc == 1 && n == buffer_lens[t] => {
                Some(Instr::ZeroXmul {
                    n,
                    term: t,
                    x,
                    z,
                    y,
                    kern: kernels.zxmul(),
                })
            }
            Instr::Ger {
                m,
                n,
                term: t,
                x,
                y,
                a,
                ..
            } if t == term && !a.out && a.cs == 1 && a.rs == n && m * n == buffer_lens[t] => {
                Some(Instr::ZeroGer {
                    m,
                    n,
                    term: t,
                    x,
                    y,
                    a,
                    kern: kernels.zger(),
                })
            }
            _ => None,
        };
        if let Some(f) = fused {
            instrs[i] = f;
            instrs.remove(i + 1);
            for ins in instrs.iter_mut() {
                if let Instr::Dense { end, .. } | Instr::Sparse { end, .. } = ins {
                    if *end > i + 1 {
                        *end -= 1;
                    }
                }
            }
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// Run a compiled tape over the whole tree into a caller-owned output,
/// reusing the workspace (see [`execute_tape_tile_into`] for the tiled
/// variant and the allocation contract).
pub fn execute_tape_into(
    tape: &CompiledTape,
    kernel: &Kernel,
    csf: &Csf,
    factors_by_slot: &[DenseTensor],
    ws: &mut Workspace,
    out: OutputMut<'_>,
) -> Result<()> {
    execute_tape_into_guarded(tape, kernel, csf, factors_by_slot, ws, out, None)
}

/// [`execute_tape_into`] with a cancellation/deadline guard, checked
/// once before the run and then at every root-frame advance — so
/// cancellation latency is bounded by one root subtree.
#[allow(clippy::too_many_arguments)]
pub fn execute_tape_into_guarded(
    tape: &CompiledTape,
    kernel: &Kernel,
    csf: &Csf,
    factors_by_slot: &[DenseTensor],
    ws: &mut Workspace,
    out: OutputMut<'_>,
    guard: Option<&RunGuard>,
) -> Result<()> {
    run_tape(
        tape,
        kernel,
        csf,
        csf.root_range(),
        0,
        csf.nnz(),
        Slots::Owned(factors_by_slot),
        ws,
        out,
        guard,
    )
}

/// Run a compiled tape over one [`CsfTile`], computing exactly the
/// tile's additive contribution (the tape analogue of
/// [`crate::execute_forest_tile_into`]).
///
/// After [`Workspace::prepare_tape`] ran, this performs zero heap
/// allocations and zero atomic operations on the success path; the
/// workspace's [`ExecStats`] describe this run and are folded into the
/// global [`crate::interp::stats`] shim once at the end.
pub fn execute_tape_tile_into(
    tape: &CompiledTape,
    kernel: &Kernel,
    csf: &Csf,
    tile: &CsfTile,
    factors_by_slot: &[DenseTensor],
    ws: &mut Workspace,
    out: OutputMut<'_>,
) -> Result<()> {
    execute_tape_tile_into_guarded(tape, kernel, csf, tile, factors_by_slot, ws, out, None)
}

/// [`execute_tape_tile_into`] with a cancellation/deadline guard (see
/// [`execute_tape_into_guarded`] for the checkpoint cadence).
#[allow(clippy::too_many_arguments)]
pub fn execute_tape_tile_into_guarded(
    tape: &CompiledTape,
    kernel: &Kernel,
    csf: &Csf,
    tile: &CsfTile,
    factors_by_slot: &[DenseTensor],
    ws: &mut Workspace,
    out: OutputMut<'_>,
    guard: Option<&RunGuard>,
) -> Result<()> {
    if tile.depth() != csf.order().max(1) {
        return Err(SpttnError::Execution(format!(
            "tile spans {} levels but the CSF has {} (tile built for a different tensor?)",
            tile.depth(),
            csf.order()
        )));
    }
    run_tape(
        tape,
        kernel,
        csf,
        tile.root_range(),
        tile.leaf_range().start,
        tile.leaf_nnz(),
        Slots::Owned(factors_by_slot),
        ws,
        out,
        guard,
    )
}

/// One-shot convenience mirroring [`crate::execute_forest`]: compile
/// the nest, allocate a fresh workspace and output, run the tape.
pub fn execute_tape(
    kernel: &Kernel,
    path: &ContractionPath,
    forest: &LoopForest,
    csf: &Csf,
    dense_factors: &[&DenseTensor],
) -> Result<ContractionOutput> {
    validate_operands(kernel, csf, dense_factors)?;
    let tape = CompiledTape::from_forest(kernel, path, forest)?;
    let dummy = DenseTensor::zeros(&[]);
    let mut refs: Vec<&DenseTensor> = Vec::with_capacity(kernel.inputs.len());
    let mut next = 0usize;
    for slot in 0..kernel.inputs.len() {
        if slot == kernel.sparse_input {
            refs.push(&dummy);
        } else {
            refs.push(dense_factors[next]);
            next += 1;
        }
    }
    let mut ws = Workspace::new(kernel, path, forest);
    ws.prepare_tape(&tape);
    if kernel.output_sparse {
        let mut vals = vec![0.0; csf.nnz()];
        run_tape(
            &tape,
            kernel,
            csf,
            csf.root_range(),
            0,
            csf.nnz(),
            Slots::Refs(&refs),
            &mut ws,
            OutputMut::Sparse(&mut vals),
            None,
        )?;
        Ok(ContractionOutput::Sparse(csf.to_coo().with_vals(vals)))
    } else {
        let mut out = DenseTensor::zeros(&kernel.ref_dims(&kernel.output));
        run_tape(
            &tape,
            kernel,
            csf,
            csf.root_range(),
            0,
            csf.nnz(),
            Slots::Refs(&refs),
            &mut ws,
            OutputMut::Dense(&mut out),
            None,
        )?;
        Ok(ContractionOutput::Dense(out))
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_tape(
    tape: &CompiledTape,
    kernel: &Kernel,
    csf: &Csf,
    root: Range<usize>,
    leaf_lo: usize,
    leaf_len: usize,
    factors: Slots<'_>,
    ws: &mut Workspace,
    out: OutputMut<'_>,
    guard: Option<&RunGuard>,
) -> Result<()> {
    validate_slots(kernel, csf, factors)?;
    validate_output(kernel, &out, leaf_len)?;
    if ws.buffers.len() != tape.n_terms || ws.forest_stamp != tape.forest_stamp {
        return Err(SpttnError::Execution(
            "workspace does not match the tape (build both from the same plan)".into(),
        ));
    }
    if csf.order() != tape.n_levels {
        return Err(SpttnError::Execution(format!(
            "tape was compiled for a {}-level CSF, got {}",
            tape.n_levels,
            csf.order()
        )));
    }
    // Preallocated in the normal bind path; the one-shot convenience
    // path pays this once.
    ws.prepare_tape(tape);
    ws.stats = ExecStats::default();
    let Workspace {
        buffers,
        scratch_dense,
        stats: run_stats,
        tape: tstate,
        ..
    } = ws;
    let st = tstate.as_mut().expect("prepared above");
    st.reset();
    let (out_dense, out_sparse): (&mut DenseTensor, &mut [f64]) = match out {
        OutputMut::Dense(d) => (d, &mut []),
        OutputMut::Sparse(v) => (scratch_dense, v),
    };
    let mut run = Run {
        tape,
        csf,
        root,
        leaf_lo,
        factors,
        buffers,
        out_dense,
        out_sparse,
        st,
        stats: run_stats,
        // A no-op guard costs a branch per root-frame advance; skip
        // even that for ungated runs.
        guard: guard.filter(|g| !g.is_noop()),
    };
    run.go()?;
    stats::fold(&ws.stats());
    Ok(())
}

struct Run<'a> {
    tape: &'a CompiledTape,
    csf: &'a Csf,
    root: Range<usize>,
    leaf_lo: usize,
    factors: Slots<'a>,
    buffers: &'a mut [DenseTensor],
    out_dense: &'a mut DenseTensor,
    out_sparse: &'a mut [f64],
    st: &'a mut TapeState,
    stats: &'a mut ExecStats,
    guard: Option<&'a RunGuard>,
}

/// Search `idx[from..hi]` (sorted, duplicate-free) for `target` by
/// galloping forward from `from`: exponential steps to bracket the
/// target, then binary search inside the bracket. `Ok(pos)` on a hit,
/// `Err(lower_bound)` on a miss (where the finger should rest so the
/// next, larger target continues forward). `probes` counts coordinate
/// comparisons.
fn gallop(
    idx: &[usize],
    from: usize,
    hi: usize,
    target: usize,
    probes: &mut u64,
) -> std::result::Result<usize, usize> {
    let mut lo = from; // invariant: everything before `lo` is < target
    let mut step = 1usize;
    let mut bound = from;
    loop {
        if bound >= hi {
            bound = hi;
            break;
        }
        *probes += 1;
        match idx[bound].cmp(&target) {
            std::cmp::Ordering::Equal => return Ok(bound),
            std::cmp::Ordering::Greater => break,
            std::cmp::Ordering::Less => {
                lo = bound + 1;
                bound = from + step;
                step *= 2;
            }
        }
    }
    let mut hi2 = bound;
    while lo < hi2 {
        let mid = lo + (hi2 - lo) / 2;
        *probes += 1;
        match idx[mid].cmp(&target) {
            std::cmp::Ordering::Equal => return Ok(mid),
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi2 = mid,
        }
    }
    Err(lo)
}

impl<'a> Run<'a> {
    fn go(&mut self) -> Result<()> {
        let instrs = &self.tape.instrs;
        let mut pc = 0usize;
        if let Some(g) = self.guard {
            g.check("tape")?;
        }
        while pc < instrs.len() {
            match instrs[pc] {
                Instr::Zero { term } => {
                    self.buffers[term].fill_zero();
                    pc += 1;
                }
                Instr::Dense {
                    index, dim, end, ..
                } => {
                    if dim == 0 {
                        pc = end;
                        continue;
                    }
                    self.st.coords[index] = 0;
                    self.push_frame(Frame {
                        instr: pc,
                        pos: 0,
                        end: dim,
                        prev: 0,
                    });
                    pc += 1;
                }
                Instr::Sparse {
                    index,
                    level,
                    parent,
                    adv,
                    end,
                } => {
                    let range = match self.parent_range(level, parent) {
                        Some(r) if !r.is_empty() => r,
                        // Empty fiber or off-pattern prefix: every
                        // covered contribution vanishes.
                        _ => {
                            pc = end;
                            continue;
                        }
                    };
                    let node = range.start;
                    let coord = self.csf.node_coord(level, node);
                    self.st.nodes[level] = node;
                    self.st.coords[index] = coord;
                    self.advance(adv, coord as isize);
                    self.push_frame(Frame {
                        instr: pc,
                        pos: node,
                        end: range.end,
                        prev: coord,
                    });
                    pc += 1;
                }
                Instr::EndLoop => {
                    let fi = self.st.fp - 1;
                    let f = self.st.frames[fi];
                    match instrs[f.instr] {
                        Instr::Dense {
                            index,
                            dim,
                            adv,
                            end,
                            ..
                        } => {
                            let x = f.pos + 1;
                            if x < dim {
                                // Root-frame advance = once per root
                                // subtree: the cancellation checkpoint.
                                if fi == 0 {
                                    if let Some(g) = self.guard {
                                        g.check("tape")?;
                                    }
                                }
                                self.st.frames[fi].pos = x;
                                self.st.coords[index] = x;
                                self.advance(adv, 1);
                                pc = f.instr + 1;
                            } else {
                                // Restore the coordinate-0 cursor state.
                                self.advance(adv, -(f.pos as isize));
                                self.st.coords[index] = 0;
                                self.st.fp = fi;
                                pc = end;
                            }
                        }
                        Instr::Sparse {
                            index,
                            level,
                            adv,
                            end,
                            ..
                        } => {
                            let node = f.pos + 1;
                            if node < f.end {
                                if fi == 0 {
                                    if let Some(g) = self.guard {
                                        g.check("tape")?;
                                    }
                                }
                                let coord = self.csf.node_coord(level, node);
                                self.st.nodes[level] = node;
                                self.st.coords[index] = coord;
                                self.advance(adv, coord as isize - f.prev as isize);
                                self.st.frames[fi].pos = node;
                                self.st.frames[fi].prev = coord;
                                pc = f.instr + 1;
                            } else {
                                self.advance(adv, -(f.prev as isize));
                                self.st.coords[index] = 0;
                                self.st.fp = fi;
                                pc = end;
                            }
                        }
                        _ => unreachable!("frame points at a loop header"),
                    }
                }
                Instr::Leaf {
                    left,
                    right,
                    tgt,
                    res,
                } => {
                    let node = self.node_of(res);
                    let v = self.read(left, node) * self.read(right, node);
                    self.cell(tgt, node, v);
                    pc += 1;
                }
                Instr::Dot {
                    n,
                    x,
                    y,
                    tgt,
                    res,
                    kern,
                    ..
                } => {
                    let node = self.node_of(res);
                    let v = {
                        let (xs, xi) = self.rslice(x);
                        let (ys, yi) = self.rslice(y);
                        kern(n, xs, xi, ys, yi)
                    };
                    self.stats.dot += 1;
                    self.stats.dot_elems += n as u64;
                    self.cell(tgt, node, v);
                    pc += 1;
                }
                Instr::Axpy {
                    n,
                    term,
                    alpha,
                    x,
                    y,
                    res,
                    kern,
                    ..
                }
                | Instr::ZeroAxpy {
                    n,
                    term,
                    alpha,
                    x,
                    y,
                    res,
                    kern,
                    ..
                } => {
                    let node = self.node_of(res);
                    let a = self.read(alpha, node);
                    let Run {
                        factors,
                        buffers,
                        out_dense,
                        st,
                        stats,
                        ..
                    } = self;
                    let (reads, tgt) = tgt_split(buffers, out_dense, &st.cursors, term, y);
                    let (xs, xi) = vec_in(*factors, reads, &st.cursors, x);
                    kern(n, a, xs, xi, tgt, y.inc);
                    stats.axpy += 1;
                    stats.axpy_elems += n as u64;
                    pc += 1;
                }
                Instr::Xmul {
                    n,
                    term,
                    x,
                    z,
                    y,
                    kern,
                }
                | Instr::ZeroXmul {
                    n,
                    term,
                    x,
                    z,
                    y,
                    kern,
                } => {
                    let Run {
                        factors,
                        buffers,
                        out_dense,
                        st,
                        stats,
                        ..
                    } = self;
                    let (reads, tgt) = tgt_split(buffers, out_dense, &st.cursors, term, y);
                    let (xs, xi) = vec_in(*factors, reads, &st.cursors, x);
                    let (zs, zi) = vec_in(*factors, reads, &st.cursors, z);
                    kern(n, 1.0, xs, xi, zs, zi, tgt, y.inc);
                    stats.xmul += 1;
                    stats.xmul_elems += n as u64;
                    pc += 1;
                }
                Instr::Ger {
                    m,
                    n,
                    term,
                    x,
                    y,
                    a,
                    kern,
                    ..
                }
                | Instr::ZeroGer {
                    m,
                    n,
                    term,
                    x,
                    y,
                    a,
                    kern,
                } => {
                    let Run {
                        factors,
                        buffers,
                        out_dense,
                        st,
                        stats,
                        ..
                    } = self;
                    let av = VecTgt {
                        out: a.out,
                        cur: a.cur,
                        inc: 0,
                    };
                    let (reads, tgt) = tgt_split(buffers, out_dense, &st.cursors, term, av);
                    let (xs, xi) = vec_in(*factors, reads, &st.cursors, x);
                    let (ys, yi) = vec_in(*factors, reads, &st.cursors, y);
                    kern(m, n, 1.0, xs, xi, ys, yi, tgt, a.rs, a.cs);
                    stats.ger += 1;
                    stats.ger_elems += (m * n) as u64;
                    pc += 1;
                }
                Instr::Gemv {
                    m,
                    n,
                    term,
                    a,
                    x,
                    y,
                    kern,
                    ..
                } => {
                    let Run {
                        factors,
                        buffers,
                        out_dense,
                        st,
                        stats,
                        ..
                    } = self;
                    let (reads, tgt) = tgt_split(buffers, out_dense, &st.cursors, term, y);
                    let (as_, ai) = mat_in(*factors, reads, &st.cursors, a);
                    let (xs, xi) = vec_in(*factors, reads, &st.cursors, x);
                    kern(m, n, 1.0, as_, ai.0, ai.1, xs, xi, tgt, y.inc);
                    stats.gemv += 1;
                    stats.gemv_elems += (m * n) as u64;
                    pc += 1;
                }
            }
        }
        debug_assert_eq!(self.st.fp, 0, "all loops exited");
        Ok(())
    }

    #[inline]
    fn push_frame(&mut self, f: Frame) {
        self.st.frames[self.st.fp] = f;
        self.st.fp += 1;
    }

    /// Apply one coordinate delta to every cursor a loop advances.
    #[inline]
    fn advance(&mut self, adv: AdvRange, delta: isize) {
        if delta == 0 {
            return;
        }
        for e in &self.tape.adv[adv.0 as usize..adv.1 as usize] {
            let c = &mut self.st.cursors[e.cur];
            *c = c.wrapping_add_signed(delta * e.stride as isize);
        }
    }

    /// Node range a sparse loop at `level` iterates; `None` when the
    /// enclosing coordinates are off-pattern.
    #[inline]
    fn parent_range(&mut self, level: usize, parent: ParentLoc) -> Option<Range<usize>> {
        match parent {
            ParentLoc::Root => Some(self.root.clone()),
            ParentLoc::Tracked(l) => Some(self.csf.children(l, self.st.nodes[l])),
            ParentLoc::Resolver(r) => {
                let node = self.resolve(r)?;
                Some(self.csf.children(level - 1, node))
            }
        }
    }

    /// CSF node for an instruction's sparse accesses.
    #[inline]
    fn node_of(&mut self, res: NodeRes) -> Option<usize> {
        match res {
            NodeRes::None => None,
            NodeRes::Tracked(l) => Some(self.st.nodes[l]),
            NodeRes::Resolver(r) => self.resolve(r),
        }
    }

    /// Run a resolver's descent program: tracked levels are direct
    /// reads, searched levels gallop forward from their finger.
    fn resolve(&mut self, rid: usize) -> Option<usize> {
        let spec = &self.tape.resolvers[rid];
        let mut node = usize::MAX;
        for (off, lev) in spec.levels.iter().enumerate() {
            let l = spec.start + off;
            match *lev {
                ResLevel::Tracked => node = self.st.nodes[l],
                ResLevel::Search { index, slot } => {
                    let (range, pkey) = if l == 0 {
                        (self.root.clone(), PARENT_ROOT)
                    } else {
                        (self.csf.children(l - 1, node), node)
                    };
                    let target = self.st.coords[index];
                    let mut fg = self.st.fingers[slot];
                    // A new parent invalidates the range; a decreased
                    // target means the enclosing dense sweep restarted.
                    // Either way the finger rewinds — monotonicity is
                    // an accelerant, not an assumption.
                    if fg.parent != pkey || target < fg.target {
                        fg.pos = range.start;
                    }
                    fg.parent = pkey;
                    fg.target = target;
                    self.stats.node_searches += 1;
                    let idx = &self.csf.level(l).idx;
                    let from = fg.pos.max(range.start);
                    match gallop(idx, from, range.end, target, &mut self.stats.search_probes) {
                        Ok(pos) => {
                            fg.pos = pos;
                            self.st.fingers[slot] = fg;
                            node = pos;
                        }
                        Err(lower) => {
                            fg.pos = lower;
                            self.st.fingers[slot] = fg;
                            return None;
                        }
                    }
                }
            }
        }
        Some(node)
    }

    /// Read a loop-invariant scalar source.
    #[inline]
    fn read(&self, r: Read, node: Option<usize>) -> f64 {
        match r {
            Read::Cursor { buf, cur } => {
                let off = self.st.cursors[cur];
                match buf {
                    RBuf::Factor(i) => self.factors.get(i).as_slice()[off],
                    RBuf::Inter(u) => self.buffers[u].as_slice()[off],
                }
            }
            Read::SparseVal => node.map_or(0.0, |n| self.csf.leaf_val(n)),
        }
    }

    /// Accumulate into a cell target.
    #[inline]
    fn cell(&mut self, tgt: Write, node: Option<usize>, v: f64) {
        match tgt {
            Write::Cell { out, term, cur } => {
                let off = self.st.cursors[cur];
                if out {
                    self.out_dense.as_mut_slice()[off] += v;
                } else {
                    self.buffers[term].as_mut_slice()[off] += v;
                }
            }
            Write::SparseCell => match node {
                Some(n) => self.out_sparse[n - self.leaf_lo] += v,
                // Off-pattern cell of a pattern-sharing output: exactly
                // zero by lineage pruning.
                None => debug_assert_eq!(v, 0.0),
            },
        }
    }

    /// Borrow a vector source slice (no mutable target in play).
    #[inline]
    fn rslice(&self, v: VecSrc) -> (&[f64], usize) {
        let off = self.st.cursors[v.cur];
        match v.buf {
            RBuf::Factor(i) => (&self.factors.get(i).as_slice()[off..], v.inc),
            RBuf::Inter(u) => (&self.buffers[u].as_slice()[off..], v.inc),
        }
    }
}

/// Split the buffers at `term` and borrow the mutable target slice
/// (the dense output, or `term`'s buffer); sources always live in
/// earlier buffers or factors, so the split is safe by the path's
/// producer-before-consumer order.
#[inline]
fn tgt_split<'b>(
    buffers: &'b mut [DenseTensor],
    out_dense: &'b mut DenseTensor,
    cursors: &[usize],
    term: usize,
    y: VecTgt,
) -> (&'b [DenseTensor], &'b mut [f64]) {
    let off = cursors[y.cur];
    let (reads, tail) = buffers.split_at_mut(term);
    let tgt: &'b mut [f64] = if y.out {
        &mut out_dense.as_mut_slice()[off..]
    } else {
        &mut tail[0].as_mut_slice()[off..]
    };
    (reads, tgt)
}

/// Borrow a vector source from the factor slots or the read-side
/// buffer split.
#[inline]
fn vec_in<'b>(
    factors: Slots<'b>,
    reads: &'b [DenseTensor],
    cursors: &[usize],
    v: VecSrc,
) -> (&'b [f64], usize) {
    let off = cursors[v.cur];
    match v.buf {
        RBuf::Factor(i) => (&factors.get(i).as_slice()[off..], v.inc),
        RBuf::Inter(u) => (&reads[u].as_slice()[off..], v.inc),
    }
}

/// Borrow a matrix source (returns the slice plus `(rs, cs)`).
#[inline]
fn mat_in<'b>(
    factors: Slots<'b>,
    reads: &'b [DenseTensor],
    cursors: &[usize],
    m: MatSrc,
) -> (&'b [f64], (usize, usize)) {
    let off = cursors[m.cur];
    match m.buf {
        RBuf::Factor(i) => (&factors.get(i).as_slice()[off..], (m.rs, m.cs)),
        RBuf::Inter(u) => (&reads[u].as_slice()[off..], (m.rs, m.cs)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gallop_finds_and_brackets() {
        let idx = [2usize, 3, 5, 8, 13, 21, 34];
        let mut probes = 0u64;
        // Hits from various fingers.
        assert_eq!(gallop(&idx, 0, idx.len(), 2, &mut probes), Ok(0));
        assert_eq!(gallop(&idx, 0, idx.len(), 34, &mut probes), Ok(6));
        assert_eq!(gallop(&idx, 3, idx.len(), 13, &mut probes), Ok(4));
        // Misses return the lower bound.
        assert_eq!(gallop(&idx, 0, idx.len(), 4, &mut probes), Err(2));
        assert_eq!(gallop(&idx, 2, idx.len(), 40, &mut probes), Err(7));
        assert_eq!(gallop(&idx, 0, 0, 1, &mut probes), Err(0));
        assert!(probes > 0);
        // A forward sweep from a finger is cheaper than cold binary
        // search: the next element costs exactly one probe.
        let mut p2 = 0u64;
        assert_eq!(gallop(&idx, 4, idx.len(), 13, &mut p2), Ok(4));
        assert_eq!(p2, 1);
    }

    #[test]
    fn gallop_restricted_range() {
        let idx = [1usize, 4, 7, 1, 3, 9]; // two sibling ranges
        let mut probes = 0u64;
        assert_eq!(gallop(&idx, 3, 6, 3, &mut probes), Ok(4));
        assert_eq!(gallop(&idx, 3, 6, 7, &mut probes), Err(5));
    }
}
