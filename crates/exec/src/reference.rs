//! Naive dense einsum reference evaluator.
//!
//! Evaluates a [`Kernel`] by brute force over the full cartesian index
//! space — `O(Π dims)` time, no sparsity, no fusion. It is the oracle
//! the loop-forest interpreter is validated against: for any kernel and
//! any planned nest, executing the nest must match this evaluator to
//! floating-point accumulation tolerance.

use spttn_core::{Result, SpttnError};
use spttn_ir::Kernel;
use spttn_tensor::DenseTensor;

/// Evaluate the kernel densely. `inputs` holds one dense tensor per
/// kernel input, in input order — densify the sparse operand with
/// [`spttn_tensor::CooTensor::to_dense`] first.
pub fn naive_einsum(kernel: &Kernel, inputs: &[&DenseTensor]) -> Result<DenseTensor> {
    if inputs.len() != kernel.inputs.len() {
        return Err(SpttnError::Execution(format!(
            "naive_einsum needs {} inputs, got {}",
            kernel.inputs.len(),
            inputs.len()
        )));
    }
    for (r, t) in kernel.inputs.iter().zip(inputs) {
        let want = kernel.ref_dims(r);
        if t.dims() != want.as_slice() {
            return Err(SpttnError::Shape(format!(
                "input '{}' has dims {:?}, expected {:?}",
                r.name,
                t.dims(),
                want
            )));
        }
    }
    let m = kernel.num_indices();
    let dims: Vec<usize> = (0..m).map(|i| kernel.dim(i)).collect();
    let mut out = DenseTensor::zeros(&kernel.ref_dims(&kernel.output));
    let mut coord = vec![0usize; m];
    let mut opc: Vec<usize> = Vec::new();
    loop {
        let mut prod = 1.0;
        for (r, t) in kernel.inputs.iter().zip(inputs) {
            opc.clear();
            opc.extend(r.indices.iter().map(|&i| coord[i]));
            prod *= t.get(&opc);
        }
        opc.clear();
        opc.extend(kernel.output.indices.iter().map(|&i| coord[i]));
        out.add(&opc, prod);
        // Advance the odometer over all kernel indices.
        let mut k = m;
        loop {
            if k == 0 {
                return Ok(out);
            }
            k -= 1;
            coord[k] += 1;
            if coord[k] < dims[k] {
                break;
            }
            coord[k] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spttn_ir::parse_kernel;

    #[test]
    fn matrix_multiply_matches_manual() {
        let k = parse_kernel("C(i,j) = A(i,l) * B(l,j)", &[("i", 2), ("j", 2), ("l", 2)]).unwrap();
        let a = DenseTensor::from_data(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = DenseTensor::from_data(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
        let c = naive_einsum(&k, &[&a, &b]).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let k = parse_kernel("C(i) = A(i,l) * B(l)", &[("i", 2), ("l", 3)]).unwrap();
        let a = DenseTensor::zeros(&[2, 3]);
        let b_bad = DenseTensor::zeros(&[2]);
        assert!(matches!(
            naive_einsum(&k, &[&a, &b_bad]),
            Err(SpttnError::Shape(_))
        ));
        assert!(matches!(
            naive_einsum(&k, &[&a]),
            Err(SpttnError::Execution(_))
        ));
    }
}
