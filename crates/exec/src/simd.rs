//! Explicit-SIMD microkernels with bind-time selection.
//!
//! The compiled tape ([`crate::tape`]) removed every per-visit
//! *decision* from the hot loops; what remains is per-element *work*
//! inside the scalar microkernels of [`crate::blas`]. This module
//! supplies vectorized twins of those kernels and a [`KernelSet`] that
//! picks an implementation **once, at bind time** — the chosen function
//! pointers are stored in the tape instructions themselves, so
//! execution never asks "which kernel?" again.
//!
//! ## Implementations
//!
//! | [`KernelSel`] | when                                              |
//! |---------------|---------------------------------------------------|
//! | `Scalar`      | always available — exactly [`crate::blas`]        |
//! | `Avx2Fma`     | x86_64 with AVX2+FMA detected at runtime          |
//! | `Neon`        | aarch64 (NEON is baseline for the target)         |
//! | `Portable`    | `portable-simd` cargo feature (nightly `std::simd`) |
//!
//! Selection is *host state*, not *program shape*: two hosts binding
//! the same plan with the same [`Microkernels`] option compile tapes
//! with identical instruction streams (same fusion, same rank
//! specialization) and differ only in which function pointers the
//! instructions carry.
//!
//! ## Rank specialization
//!
//! Tensor-network ranks are small and fixed (the benches use R ∈
//! {8, 16, 32}); when a kernel's trip count is statically one of those
//! — known at bind time from the `BufferSpec` dims — the tape records a
//! monomorphized, fully-unrolled body ([`RankSpec::R8`]/`R16`/`R32`)
//! instead of the generic loop.
//!
//! ## Determinism contract
//!
//! - Scalar kernels accumulate strictly left-to-right, exactly like
//!   [`crate::blas`]; forcing [`Microkernels::Scalar`] reproduces the
//!   pre-SIMD tape **bitwise**.
//! - SIMD reductions use a *fixed lane tree*: lane-striped partial
//!   accumulators combined in a fixed order, then a strictly sequential
//!   scalar tail. The shape depends only on the kernel width, so
//!   results are run-to-run bitwise stable at a fixed (thread count,
//!   kernel selection) — but differ from strict scalar ordering by
//!   floating-point reassociation (and FMA contraction), bounded by the
//!   ≤1e-9 differential tolerance the test suite enforces.
//!
//! The `SPTTN_MICROKERNELS` environment variable overrides the
//! programmatic option at bind time: `scalar` forces the scalar path,
//! `portable` prefers `std::simd` when compiled in, anything else (or
//! unset) behaves as `auto`.

use crate::blas;

/// Microkernel policy for bound executors (facade `ExecOptions` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Microkernels {
    /// Vectorize when the host supports it: superinstruction fusion and
    /// rank specialization on, kernel implementations chosen by runtime
    /// CPU feature detection (scalar where nothing better exists).
    #[default]
    Auto,
    /// Force the scalar [`crate::blas`] kernels with no fusion — the
    /// tape is bitwise-identical to the pre-SIMD engine.
    Scalar,
}

/// Which kernel implementation family a bind selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelSel {
    /// Sequential scalar kernels ([`crate::blas`] semantics).
    Scalar,
    /// AVX2 + FMA `std::arch` intrinsics (4 × f64 lanes).
    #[cfg(target_arch = "x86_64")]
    Avx2Fma,
    /// AVX-512F `std::arch` intrinsics (8 × f64 lanes) for the
    /// element-parallel kernels (AXPY/GER/XMUL families, which have no
    /// reduction order); DOT and GEMV keep the AVX2 fixed lane tree so
    /// reduction shapes never depend on which x86 tier was detected.
    /// Requires AVX2+FMA as well (for those fallback kernels).
    #[cfg(target_arch = "x86_64")]
    Avx512,
    /// NEON `std::arch` intrinsics (2 × f64 lanes).
    #[cfg(target_arch = "aarch64")]
    Neon,
    /// Portable `std::simd` (4 × f64 lanes), nightly-gated behind the
    /// `portable-simd` cargo feature.
    #[cfg(feature = "portable-simd")]
    Portable,
}

/// Bind-time rank specialization recorded on a tape instruction.
///
/// `R8`/`R16`/`R32` promise a contiguous trip count statically equal to
/// 8/16/32 and dispatch to a fully-unrolled monomorphized body; `Gen`
/// is the generic strided kernel. The tape verifier checks the promise
/// against the recorded extents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankSpec {
    /// Generic trip count (runtime `n`, any stride).
    Gen,
    /// Contiguous, `n == 8`.
    R8,
    /// Contiguous, `n == 16`.
    R16,
    /// Contiguous, `n == 32`.
    R32,
}

impl RankSpec {
    /// The promised trip count, or `None` for the generic kernel.
    pub fn rank(self) -> Option<usize> {
        match self {
            RankSpec::Gen => None,
            RankSpec::R8 => Some(8),
            RankSpec::R16 => Some(16),
            RankSpec::R32 => Some(32),
        }
    }

    /// Specialization decision: `n` must be one of the supported fixed
    /// ranks, the access contiguous, and the trip count statically
    /// pinned (`hint == Some(n)` — the output row length or the
    /// `BufferSpec`'s innermost dim).
    fn of(n: usize, contig: bool, hint: Option<usize>) -> RankSpec {
        if !contig || hint != Some(n) {
            return RankSpec::Gen;
        }
        match n {
            8 => RankSpec::R8,
            16 => RankSpec::R16,
            32 => RankSpec::R32,
            _ => RankSpec::Gen,
        }
    }
}

/// `y[i*incy] += alpha * x[i*incx]` — signature of [`blas::axpy`].
pub type AxpyFn = fn(usize, f64, &[f64], usize, &mut [f64], usize);
/// `Σ x[i*incx] * y[i*incy]` — signature of [`blas::dot`].
pub type DotFn = fn(usize, &[f64], usize, &[f64], usize) -> f64;
/// `y[i*incy] += alpha * x[i*incx] * z[i*incz]` — signature of
/// [`blas::xmul`].
pub type XmulFn = fn(usize, f64, &[f64], usize, &[f64], usize, &mut [f64], usize);
/// `A[i,j] += alpha * x[i] * y[j]` — signature of [`blas::ger`].
pub type GerFn = fn(usize, usize, f64, &[f64], usize, &[f64], usize, &mut [f64], usize, usize);
/// `y[i] += alpha * Σ_j A[i,j] * x[j]` — signature of [`blas::gemv`].
pub type GemvFn = fn(usize, usize, f64, &[f64], usize, usize, &[f64], usize, &mut [f64], usize);

/// A bind-time kernel selection: which implementation family to draw
/// function pointers from, and whether the tape compiler may emit
/// superinstructions (`ZeroAccum` fusion, rank specialization).
///
/// Program shape (`fuse`) depends only on the [`Microkernels`] option;
/// implementation (`sel`) additionally on the host CPU. Copying the set
/// into the tape makes the selection permanent for that tape's
/// lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSet {
    sel: KernelSel,
    fuse: bool,
}

impl KernelSet {
    /// Resolve the policy against the environment override and the
    /// host CPU. Called once per tape compile (bind time).
    pub fn resolve(opt: Microkernels) -> KernelSet {
        let env = std::env::var("SPTTN_MICROKERNELS").ok();
        let env = env.as_deref().map(str::trim);
        if opt == Microkernels::Scalar || env.is_some_and(|v| v.eq_ignore_ascii_case("scalar")) {
            return KernelSet::scalar();
        }
        let prefer_portable = env.is_some_and(|v| v.eq_ignore_ascii_case("portable"));
        KernelSet {
            sel: detect(prefer_portable),
            fuse: true,
        }
    }

    /// The always-available scalar set: [`crate::blas`] pointers, no
    /// fusion, no specialization — the pre-SIMD tape, bit for bit.
    pub fn scalar() -> KernelSet {
        KernelSet {
            sel: KernelSel::Scalar,
            fuse: false,
        }
    }

    /// The set [`Microkernels::Auto`] resolves to when no environment
    /// override is present: fusion on, implementation by host
    /// detection. Differential tests and benches use this to exercise
    /// the vectorized path even while `SPTTN_MICROKERNELS=scalar` is
    /// forcing the rest of the suite scalar.
    pub fn auto_detected() -> KernelSet {
        KernelSet {
            sel: detect(false),
            fuse: true,
        }
    }

    /// Which implementation family this set draws from.
    pub fn selection(&self) -> KernelSel {
        self.sel
    }

    /// Whether the tape compiler may fuse `Zero` + first accumulation
    /// into `ZeroAccum` superinstructions and rank-specialize.
    pub fn superinstructions(&self) -> bool {
        self.fuse
    }

    /// Human-readable name of the selection (bench/CLI reporting).
    pub fn name(&self) -> &'static str {
        match self.sel {
            KernelSel::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            KernelSel::Avx2Fma => "avx2+fma",
            #[cfg(target_arch = "x86_64")]
            KernelSel::Avx512 => "avx512f",
            #[cfg(target_arch = "aarch64")]
            KernelSel::Neon => "neon",
            #[cfg(feature = "portable-simd")]
            KernelSel::Portable => "portable",
        }
    }

    /// f64 lanes per vector register for the selection (1 for scalar;
    /// the widest register the selection uses — AVX-512 reductions
    /// still run 4-wide, see [`KernelSel::Avx512`]).
    pub fn width(&self) -> usize {
        match self.sel {
            KernelSel::Scalar => 1,
            #[cfg(target_arch = "x86_64")]
            KernelSel::Avx2Fma => 4,
            #[cfg(target_arch = "x86_64")]
            KernelSel::Avx512 => 8,
            #[cfg(target_arch = "aarch64")]
            KernelSel::Neon => 2,
            #[cfg(feature = "portable-simd")]
            KernelSel::Portable => 4,
        }
    }

    /// AXPY kernel for trip count `n`; `contig` means both increments
    /// are 1, `hint` pins the trip count for rank specialization.
    pub fn axpy(&self, n: usize, contig: bool, hint: Option<usize>) -> (AxpyFn, RankSpec) {
        let spec = self.spec(n, contig, hint);
        let kern: AxpyFn = match (self.sel, spec) {
            (KernelSel::Scalar, RankSpec::Gen) => blas::axpy,
            (KernelSel::Scalar, RankSpec::R8) => scalar_fixed::axpy::<8>,
            (KernelSel::Scalar, RankSpec::R16) => scalar_fixed::axpy::<16>,
            (KernelSel::Scalar, RankSpec::R32) => scalar_fixed::axpy::<32>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma, RankSpec::Gen) => x86::axpy,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma, RankSpec::R8) => x86::axpy_fixed::<8>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma, RankSpec::R16) => x86::axpy_fixed::<16>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma, RankSpec::R32) => x86::axpy_fixed::<32>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx512, RankSpec::Gen) => x86_512::axpy,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx512, RankSpec::R8) => x86_512::axpy_fixed::<8>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx512, RankSpec::R16) => x86_512::axpy_fixed::<16>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx512, RankSpec::R32) => x86_512::axpy_fixed::<32>,
            #[cfg(target_arch = "aarch64")]
            (KernelSel::Neon, _) => neon::axpy,
            #[cfg(feature = "portable-simd")]
            (KernelSel::Portable, _) => portable::axpy,
        };
        (kern, spec)
    }

    /// Assigning AXPY (`y = alpha * x`) for `ZeroAccum` fusion. Never
    /// skips the write — `alpha == 0` must still zero the target.
    pub fn zaxpy(&self, n: usize, contig: bool, hint: Option<usize>) -> (AxpyFn, RankSpec) {
        let spec = self.spec(n, contig, hint);
        let kern: AxpyFn = match (self.sel, spec) {
            (KernelSel::Scalar, RankSpec::Gen) => scalar_zero::zaxpy,
            (KernelSel::Scalar, RankSpec::R8) => scalar_fixed::zaxpy::<8>,
            (KernelSel::Scalar, RankSpec::R16) => scalar_fixed::zaxpy::<16>,
            (KernelSel::Scalar, RankSpec::R32) => scalar_fixed::zaxpy::<32>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma, RankSpec::Gen) => x86::zaxpy,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma, RankSpec::R8) => x86::zaxpy_fixed::<8>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma, RankSpec::R16) => x86::zaxpy_fixed::<16>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma, RankSpec::R32) => x86::zaxpy_fixed::<32>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx512, RankSpec::Gen) => x86_512::zaxpy,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx512, RankSpec::R8) => x86_512::zaxpy_fixed::<8>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx512, RankSpec::R16) => x86_512::zaxpy_fixed::<16>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx512, RankSpec::R32) => x86_512::zaxpy_fixed::<32>,
            #[cfg(target_arch = "aarch64")]
            (KernelSel::Neon, _) => neon::zaxpy,
            #[cfg(feature = "portable-simd")]
            (KernelSel::Portable, _) => portable::zaxpy,
        };
        (kern, spec)
    }

    /// DOT kernel for trip count `n` (`contig`: both increments 1).
    pub fn dot(&self, n: usize, contig: bool) -> (DotFn, RankSpec) {
        let spec = self.spec(n, contig, Some(n));
        let kern: DotFn = match (self.sel, spec) {
            (KernelSel::Scalar, _) => blas::dot,
            // AVX-512 keeps the 4-wide fixed lane tree for reductions.
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma | KernelSel::Avx512, RankSpec::Gen) => x86::dot,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma | KernelSel::Avx512, RankSpec::R8) => x86::dot_fixed::<8>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma | KernelSel::Avx512, RankSpec::R16) => x86::dot_fixed::<16>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma | KernelSel::Avx512, RankSpec::R32) => x86::dot_fixed::<32>,
            #[cfg(target_arch = "aarch64")]
            (KernelSel::Neon, _) => neon::dot,
            #[cfg(feature = "portable-simd")]
            (KernelSel::Portable, _) => portable::dot,
        };
        (kern, spec)
    }

    /// XMUL (elementwise ternary) kernel. No rank-specialized variants:
    /// the generic body is already a single fused multiply pass.
    pub fn xmul(&self) -> XmulFn {
        match self.sel {
            KernelSel::Scalar => blas::xmul,
            #[cfg(target_arch = "x86_64")]
            KernelSel::Avx2Fma => x86::xmul,
            #[cfg(target_arch = "x86_64")]
            KernelSel::Avx512 => x86_512::xmul,
            #[cfg(target_arch = "aarch64")]
            KernelSel::Neon => neon::xmul,
            #[cfg(feature = "portable-simd")]
            KernelSel::Portable => portable::xmul,
        }
    }

    /// Assigning XMUL (`y = alpha * x ∘ z`) for `ZeroAccum` fusion.
    pub fn zxmul(&self) -> XmulFn {
        match self.sel {
            KernelSel::Scalar => scalar_zero::zxmul,
            #[cfg(target_arch = "x86_64")]
            KernelSel::Avx2Fma => x86::zxmul,
            #[cfg(target_arch = "x86_64")]
            KernelSel::Avx512 => x86_512::zxmul,
            #[cfg(target_arch = "aarch64")]
            KernelSel::Neon => neon::zxmul,
            #[cfg(feature = "portable-simd")]
            KernelSel::Portable => portable::zxmul,
        }
    }

    /// GER (rank-1 update) kernel; `n` is the row length, `contig`
    /// means unit column stride and unit `y` increment.
    pub fn ger(&self, n: usize, contig: bool, hint: Option<usize>) -> (GerFn, RankSpec) {
        let spec = self.spec(n, contig, hint);
        let kern: GerFn = match (self.sel, spec) {
            (KernelSel::Scalar, RankSpec::Gen) => blas::ger,
            (KernelSel::Scalar, RankSpec::R8) => scalar_fixed::ger::<8>,
            (KernelSel::Scalar, RankSpec::R16) => scalar_fixed::ger::<16>,
            (KernelSel::Scalar, RankSpec::R32) => scalar_fixed::ger::<32>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma, RankSpec::Gen) => x86::ger,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma, RankSpec::R8) => x86::ger_fixed::<8>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma, RankSpec::R16) => x86::ger_fixed::<16>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma, RankSpec::R32) => x86::ger_fixed::<32>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx512, RankSpec::Gen) => x86_512::ger,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx512, RankSpec::R8) => x86_512::ger_fixed::<8>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx512, RankSpec::R16) => x86_512::ger_fixed::<16>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx512, RankSpec::R32) => x86_512::ger_fixed::<32>,
            #[cfg(target_arch = "aarch64")]
            (KernelSel::Neon, _) => neon::ger,
            #[cfg(feature = "portable-simd")]
            (KernelSel::Portable, _) => portable::ger,
        };
        (kern, spec)
    }

    /// Assigning GER (`A = alpha * x ⊗ y`) for `ZeroAccum` fusion.
    pub fn zger(&self) -> GerFn {
        match self.sel {
            KernelSel::Scalar => scalar_zero::zger,
            #[cfg(target_arch = "x86_64")]
            KernelSel::Avx2Fma => x86::zger,
            #[cfg(target_arch = "x86_64")]
            KernelSel::Avx512 => x86_512::zger,
            #[cfg(target_arch = "aarch64")]
            KernelSel::Neon => neon::zger,
            #[cfg(feature = "portable-simd")]
            KernelSel::Portable => portable::zger,
        }
    }

    /// GEMV kernel; `n` is the row length, `contig` means unit column
    /// stride and unit `x` increment.
    pub fn gemv(&self, n: usize, contig: bool) -> (GemvFn, RankSpec) {
        let spec = self.spec(n, contig, Some(n));
        let kern: GemvFn = match (self.sel, spec) {
            (KernelSel::Scalar, _) => blas::gemv,
            // AVX-512 keeps the 4-wide fixed lane tree for reductions.
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma | KernelSel::Avx512, RankSpec::Gen) => x86::gemv,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma | KernelSel::Avx512, RankSpec::R8) => x86::gemv_fixed::<8>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma | KernelSel::Avx512, RankSpec::R16) => x86::gemv_fixed::<16>,
            #[cfg(target_arch = "x86_64")]
            (KernelSel::Avx2Fma | KernelSel::Avx512, RankSpec::R32) => x86::gemv_fixed::<32>,
            #[cfg(target_arch = "aarch64")]
            (KernelSel::Neon, _) => neon::gemv,
            #[cfg(feature = "portable-simd")]
            (KernelSel::Portable, _) => portable::gemv,
        };
        (kern, spec)
    }

    fn spec(&self, n: usize, contig: bool, hint: Option<usize>) -> RankSpec {
        if self.fuse {
            RankSpec::of(n, contig, hint)
        } else {
            RankSpec::Gen
        }
    }
}

/// Pick the best implementation the host supports. Under Miri the
/// vendor intrinsics are unsupported, so everything falls back to
/// scalar (program shape — fusion, specialization — is unaffected).
fn detect(prefer_portable: bool) -> KernelSel {
    #[cfg(miri)]
    {
        let _ = prefer_portable;
        return KernelSel::Scalar;
    }
    #[cfg(not(miri))]
    {
        #[cfg(feature = "portable-simd")]
        if prefer_portable {
            return KernelSel::Portable;
        }
        #[cfg(not(feature = "portable-simd"))]
        let _ = prefer_portable;
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return KernelSel::Avx512;
            }
            return KernelSel::Avx2Fma;
        }
        #[cfg(target_arch = "aarch64")]
        {
            return KernelSel::Neon;
        }
        #[cfg(feature = "portable-simd")]
        {
            return KernelSel::Portable;
        }
        #[allow(unreachable_code)]
        KernelSel::Scalar
    }
}

/// Comma-separated CPU features relevant to kernel selection that the
/// host actually has — recorded in bench artifacts so numbers carry
/// their provenance.
pub fn detected_cpu_features() -> String {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        let mut feats = Vec::new();
        for (name, have) in [
            ("sse2", std::arch::is_x86_feature_detected!("sse2")),
            ("avx", std::arch::is_x86_feature_detected!("avx")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
        ] {
            if have {
                feats.push(name);
            }
        }
        feats.join(",")
    }
    #[cfg(all(target_arch = "aarch64", not(miri)))]
    {
        "neon".to_string()
    }
    #[cfg(any(miri, not(any(target_arch = "x86_64", target_arch = "aarch64"))))]
    {
        String::new()
    }
}

/// Scalar assigning twins used by `ZeroAccum` superinstructions when
/// the scalar implementation family is selected (old hosts, Miri).
/// Unlike [`blas::axpy`]/[`blas::ger`] these must **not** early-return
/// on `alpha == 0`: the fused instruction owns the Eq.-5 zero point,
/// so the target must be overwritten unconditionally.
mod scalar_zero {
    /// `y[i*incy] = alpha * x[i*incx]`.
    pub fn zaxpy(n: usize, alpha: f64, x: &[f64], incx: usize, y: &mut [f64], incy: usize) {
        if incx == 1 && incy == 1 {
            let (x, y) = (&x[..n], &mut y[..n]);
            for i in 0..n {
                y[i] = alpha * x[i];
            }
        } else {
            for i in 0..n {
                y[i * incy] = alpha * x[i * incx];
            }
        }
    }

    /// `y[i*incy] = alpha * x[i*incx] * z[i*incz]`.
    #[allow(clippy::too_many_arguments)]
    pub fn zxmul(
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        z: &[f64],
        incz: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        if incx == 1 && incz == 1 && incy == 1 {
            let (x, z, y) = (&x[..n], &z[..n], &mut y[..n]);
            for i in 0..n {
                y[i] = alpha * x[i] * z[i];
            }
        } else {
            for i in 0..n {
                y[i * incy] = alpha * x[i * incx] * z[i * incz];
            }
        }
    }

    /// `A[i*rs + j*cs] = alpha * x[i*incx] * y[j*incy]`.
    #[allow(clippy::too_many_arguments)]
    pub fn zger(
        m: usize,
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &[f64],
        incy: usize,
        a: &mut [f64],
        rs: usize,
        cs: usize,
    ) {
        if cs == 1 && incy == 1 {
            let yv = &y[..n];
            for i in 0..m {
                let xi = alpha * x[i * incx];
                let row = &mut a[i * rs..i * rs + n];
                for j in 0..n {
                    row[j] = xi * yv[j];
                }
            }
        } else {
            for i in 0..m {
                let xi = alpha * x[i * incx];
                for j in 0..n {
                    a[i * rs + j * cs] = xi * y[j * incy];
                }
            }
        }
    }
}

/// Scalar rank-specialized bodies: monomorphized over the trip count so
/// the compiler fully unrolls. Semantics match [`blas`] element for
/// element (strictly sequential), so a fuse-enabled tape on a host
/// without SIMD stays bitwise-equal to the generic scalar tape.
mod scalar_fixed {
    /// Unrolled `y[..N] += alpha * x[..N]` (contiguous, `n == N`).
    pub fn axpy<const N: usize>(
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        assert!(
            n == N && incx == 1 && incy == 1,
            "rank-specialized axpy misuse"
        );
        if alpha == 0.0 {
            return;
        }
        let (x, y) = (&x[..N], &mut y[..N]);
        for i in 0..N {
            y[i] += alpha * x[i];
        }
    }

    /// Unrolled `y[..N] = alpha * x[..N]` (assigning twin).
    pub fn zaxpy<const N: usize>(
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        assert!(
            n == N && incx == 1 && incy == 1,
            "rank-specialized zaxpy misuse"
        );
        let (x, y) = (&x[..N], &mut y[..N]);
        for i in 0..N {
            y[i] = alpha * x[i];
        }
    }

    /// Unrolled rank-1 update with row length `N` (`cs == 1`,
    /// `incy == 1`).
    #[allow(clippy::too_many_arguments)]
    pub fn ger<const N: usize>(
        m: usize,
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &[f64],
        incy: usize,
        a: &mut [f64],
        rs: usize,
        cs: usize,
    ) {
        assert!(
            n == N && cs == 1 && incy == 1,
            "rank-specialized ger misuse"
        );
        if alpha == 0.0 {
            return;
        }
        let yv = &y[..N];
        for i in 0..m {
            let xi = alpha * x[i * incx];
            let row = &mut a[i * rs..i * rs + N];
            for j in 0..N {
                row[j] += xi * yv[j];
            }
        }
    }
}

/// AVX2+FMA kernels (x86_64). Every body is a safe
/// `#[target_feature]` function over length-checked slices with a
/// single internal `unsafe` block for the vendor intrinsics; the
/// wrappers are the only call sites and each carries the SAFETY
/// argument for why the required CPU features are present.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::blas;
    use core::arch::x86_64::{
        _mm256_add_pd, _mm256_castpd256_pd128, _mm256_extractf128_pd, _mm256_fmadd_pd,
        _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd, _mm256_storeu_pd,
        _mm_add_pd, _mm_cvtsd_f64, _mm_unpackhi_pd,
    };

    /// `y[..len] += alpha * x[..len]`, 4 lanes, 4× unrolled.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn axpy_body(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        debug_assert_eq!(n, y.len());
        let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
        // SAFETY: every load/store below addresses `x[i..i+4]` or
        // `y[i..i+4]` with `i + 4 <= n` (the scalar tail stays `< n`),
        // inside the slices whose lengths were checked above.
        unsafe {
            let a = _mm256_set1_pd(alpha);
            let mut i = 0;
            while i + 16 <= n {
                let y0 = _mm256_fmadd_pd(a, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
                let y1 = _mm256_fmadd_pd(
                    a,
                    _mm256_loadu_pd(xp.add(i + 4)),
                    _mm256_loadu_pd(yp.add(i + 4)),
                );
                let y2 = _mm256_fmadd_pd(
                    a,
                    _mm256_loadu_pd(xp.add(i + 8)),
                    _mm256_loadu_pd(yp.add(i + 8)),
                );
                let y3 = _mm256_fmadd_pd(
                    a,
                    _mm256_loadu_pd(xp.add(i + 12)),
                    _mm256_loadu_pd(yp.add(i + 12)),
                );
                _mm256_storeu_pd(yp.add(i), y0);
                _mm256_storeu_pd(yp.add(i + 4), y1);
                _mm256_storeu_pd(yp.add(i + 8), y2);
                _mm256_storeu_pd(yp.add(i + 12), y3);
                i += 16;
            }
            while i + 4 <= n {
                let yv = _mm256_fmadd_pd(a, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
                _mm256_storeu_pd(yp.add(i), yv);
                i += 4;
            }
            while i < n {
                *yp.add(i) += alpha * *xp.add(i);
                i += 1;
            }
        }
    }

    /// `y[..len] = alpha * x[..len]` (assigning twin of [`axpy_body`]).
    #[target_feature(enable = "avx2", enable = "fma")]
    fn zaxpy_body(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        debug_assert_eq!(n, y.len());
        let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
        // SAFETY: all accesses stay in `x[..n]` / `y[..n]` as in
        // `axpy_body` (vector steps gated by `i + 4 <= n`, tail `< n`).
        unsafe {
            let a = _mm256_set1_pd(alpha);
            let mut i = 0;
            while i + 4 <= n {
                _mm256_storeu_pd(yp.add(i), _mm256_mul_pd(a, _mm256_loadu_pd(xp.add(i))));
                i += 4;
            }
            while i < n {
                *yp.add(i) = alpha * *xp.add(i);
                i += 1;
            }
        }
    }

    /// Lane-striped dot product with the fixed reduction tree
    /// `(acc0 + acc1) → (low128 + high128) → (lane0 + lane1)` followed
    /// by a strictly sequential scalar tail — the tree shape depends
    /// only on the 4-lane width, never on `n`, so results are
    /// run-to-run bitwise stable.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn dot_body(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        debug_assert_eq!(n, y.len());
        let (xp, yp) = (x.as_ptr(), y.as_ptr());
        // SAFETY: vector loads read `x[i..i+4]` / `y[i..i+4]` only
        // while `i + 4 <= n` (8-wide steps check `i + 8 <= n`); the
        // scalar tail indexes `< n`. All within the checked slices.
        unsafe {
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            let mut i = 0;
            while i + 8 <= n {
                acc0 =
                    _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), acc0);
                acc1 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(xp.add(i + 4)),
                    _mm256_loadu_pd(yp.add(i + 4)),
                    acc1,
                );
                i += 8;
            }
            if i + 4 <= n {
                acc0 =
                    _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), acc0);
                i += 4;
            }
            let s = _mm256_add_pd(acc0, acc1);
            let lo = _mm256_castpd256_pd128(s);
            let hi = _mm256_extractf128_pd::<1>(s);
            let pair = _mm_add_pd(lo, hi);
            let mut acc = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
            while i < n {
                acc += *xp.add(i) * *yp.add(i);
                i += 1;
            }
            acc
        }
    }

    /// `y[..len] += alpha * x[..len] ∘ z[..len]`.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn xmul_body(alpha: f64, x: &[f64], z: &[f64], y: &mut [f64]) {
        let n = x.len();
        debug_assert!(n == z.len() && n == y.len());
        let (xp, zp, yp) = (x.as_ptr(), z.as_ptr(), y.as_mut_ptr());
        // SAFETY: vector accesses gated by `i + 4 <= n`, scalar tail by
        // `i < n`; all inside the three length-checked slices.
        unsafe {
            let a = _mm256_set1_pd(alpha);
            let mut i = 0;
            while i + 4 <= n {
                let t = _mm256_mul_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(zp.add(i)));
                _mm256_storeu_pd(yp.add(i), _mm256_fmadd_pd(a, t, _mm256_loadu_pd(yp.add(i))));
                i += 4;
            }
            while i < n {
                *yp.add(i) += alpha * *xp.add(i) * *zp.add(i);
                i += 1;
            }
        }
    }

    /// `y[..len] = alpha * x[..len] ∘ z[..len]` (assigning twin).
    #[target_feature(enable = "avx2", enable = "fma")]
    fn zxmul_body(alpha: f64, x: &[f64], z: &[f64], y: &mut [f64]) {
        let n = x.len();
        debug_assert!(n == z.len() && n == y.len());
        let (xp, zp, yp) = (x.as_ptr(), z.as_ptr(), y.as_mut_ptr());
        // SAFETY: same bounds discipline as `xmul_body`.
        unsafe {
            let a = _mm256_set1_pd(alpha);
            let mut i = 0;
            while i + 4 <= n {
                let t = _mm256_mul_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(zp.add(i)));
                _mm256_storeu_pd(yp.add(i), _mm256_mul_pd(a, t));
                i += 4;
            }
            while i < n {
                *yp.add(i) = alpha * *xp.add(i) * *zp.add(i);
                i += 1;
            }
        }
    }

    /// Whole-matrix GER row loop inside one `#[target_feature]`
    /// region: the per-row AXPY bodies inline here (same feature set,
    /// so the calls are safe and inlinable), which lets LLVM keep the
    /// invariant `y` vector in registers across rows instead of
    /// reloading it past an opaque call boundary per row.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    fn ger_rows_body(
        m: usize,
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        a: &mut [f64],
        rs: usize,
        y: &[f64],
    ) {
        let yv = &y[..n];
        for i in 0..m {
            axpy_body(alpha * x[i * incx], yv, &mut a[i * rs..i * rs + n]);
        }
    }

    /// Assigning twin of [`ger_rows_body`].
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    fn zger_rows_body(
        m: usize,
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        a: &mut [f64],
        rs: usize,
        y: &[f64],
    ) {
        let yv = &y[..n];
        for i in 0..m {
            zaxpy_body(alpha * x[i * incx], yv, &mut a[i * rs..i * rs + n]);
        }
    }

    /// Whole-matrix GEMV row loop inside one `#[target_feature]`
    /// region (same rationale as [`ger_rows_body`]: the shared `x`
    /// vector stays resident across the inlined per-row DOTs).
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    fn gemv_rows_body(
        m: usize,
        n: usize,
        alpha: f64,
        a: &[f64],
        rs: usize,
        x: &[f64],
        y: &mut [f64],
        incy: usize,
    ) {
        let xv = &x[..n];
        for i in 0..m {
            y[i * incy] += alpha * dot_body(&a[i * rs..i * rs + n], xv);
        }
    }

    /// [`blas::axpy`]-shaped wrapper: vectorize the contiguous case,
    /// delegate strided calls to the scalar kernel.
    pub(super) fn axpy(n: usize, alpha: f64, x: &[f64], incx: usize, y: &mut [f64], incy: usize) {
        if alpha == 0.0 {
            return; // match blas::axpy: even NaN inputs leave y alone
        }
        if incx == 1 && incy == 1 {
            // SAFETY: this function is only installed in a tape by a
            // `KernelSet` whose `detect()` observed AVX2 and FMA via
            // `is_x86_feature_detected!` on this host at bind time.
            unsafe { axpy_body(alpha, &x[..n], &mut y[..n]) }
        } else {
            blas::axpy(n, alpha, x, incx, y, incy);
        }
    }

    /// Assigning AXPY wrapper (never skips the write).
    pub(super) fn zaxpy(n: usize, alpha: f64, x: &[f64], incx: usize, y: &mut [f64], incy: usize) {
        if incx == 1 && incy == 1 {
            // SAFETY: reachable only via a `KernelSet` that detected
            // AVX2+FMA at bind time (see `axpy` above).
            unsafe { zaxpy_body(alpha, &x[..n], &mut y[..n]) }
        } else {
            super::scalar_zero::zaxpy(n, alpha, x, incx, y, incy);
        }
    }

    /// [`blas::dot`]-shaped wrapper.
    pub(super) fn dot(n: usize, x: &[f64], incx: usize, y: &[f64], incy: usize) -> f64 {
        if incx == 1 && incy == 1 {
            // SAFETY: reachable only via a `KernelSet` that detected
            // AVX2+FMA at bind time (see `axpy` above).
            unsafe { dot_body(&x[..n], &y[..n]) }
        } else {
            blas::dot(n, x, incx, y, incy)
        }
    }

    /// [`blas::xmul`]-shaped wrapper.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn xmul(
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        z: &[f64],
        incz: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        if incx == 1 && incz == 1 && incy == 1 {
            // SAFETY: reachable only via a `KernelSet` that detected
            // AVX2+FMA at bind time (see `axpy` above).
            unsafe { xmul_body(alpha, &x[..n], &z[..n], &mut y[..n]) }
        } else {
            blas::xmul(n, alpha, x, incx, z, incz, y, incy);
        }
    }

    /// Assigning XMUL wrapper.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn zxmul(
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        z: &[f64],
        incz: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        if incx == 1 && incz == 1 && incy == 1 {
            // SAFETY: reachable only via a `KernelSet` that detected
            // AVX2+FMA at bind time (see `axpy` above).
            unsafe { zxmul_body(alpha, &x[..n], &z[..n], &mut y[..n]) }
        } else {
            super::scalar_zero::zxmul(n, alpha, x, incx, z, incz, y, incy);
        }
    }

    /// [`blas::ger`]-shaped wrapper: each row is one vector AXPY.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn ger(
        m: usize,
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &[f64],
        incy: usize,
        a: &mut [f64],
        rs: usize,
        cs: usize,
    ) {
        if alpha == 0.0 {
            return; // match blas::ger
        }
        if cs == 1 && incy == 1 {
            // SAFETY: reachable only via a `KernelSet` that detected
            // AVX2+FMA at bind time (see `axpy` above).
            unsafe { ger_rows_body(m, n, alpha, x, incx, a, rs, y) }
        } else {
            blas::ger(m, n, alpha, x, incx, y, incy, a, rs, cs);
        }
    }

    /// Assigning GER wrapper: each row is one assigning vector AXPY.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn zger(
        m: usize,
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &[f64],
        incy: usize,
        a: &mut [f64],
        rs: usize,
        cs: usize,
    ) {
        if cs == 1 && incy == 1 {
            // SAFETY: reachable only via a `KernelSet` that detected
            // AVX2+FMA at bind time (see `axpy` above).
            unsafe { zger_rows_body(m, n, alpha, x, incx, a, rs, y) }
        } else {
            super::scalar_zero::zger(m, n, alpha, x, incx, y, incy, a, rs, cs);
        }
    }

    /// [`blas::gemv`]-shaped wrapper: each row is one vector DOT.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn gemv(
        m: usize,
        n: usize,
        alpha: f64,
        a: &[f64],
        rs: usize,
        cs: usize,
        x: &[f64],
        incx: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        if cs == 1 && incx == 1 {
            // SAFETY: reachable only via a `KernelSet` that detected
            // AVX2+FMA at bind time (see `axpy` above).
            unsafe { gemv_rows_body(m, n, alpha, a, rs, x, y, incy) }
        } else {
            blas::gemv(m, n, alpha, a, rs, cs, x, incx, y, incy);
        }
    }

    /// Rank-specialized AXPY: contiguous, trip count statically `N`.
    /// The monomorphized body lets LLVM fully unroll `N/4` vector ops.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn axpy_fixed_body<const N: usize>(alpha: f64, x: &[f64], y: &mut [f64]) {
        debug_assert!(N.is_multiple_of(4) && x.len() == N && y.len() == N);
        let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
        // SAFETY: `N` is a multiple of 4 and both slices have exactly
        // `N` elements (wrapper slices to `..N`); every access is
        // `[i, i+4)` with `i + 4 <= N`.
        unsafe {
            let a = _mm256_set1_pd(alpha);
            let mut i = 0;
            while i < N {
                let yv = _mm256_fmadd_pd(a, _mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)));
                _mm256_storeu_pd(yp.add(i), yv);
                i += 4;
            }
        }
    }

    /// Rank-specialized assigning AXPY body.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn zaxpy_fixed_body<const N: usize>(alpha: f64, x: &[f64], y: &mut [f64]) {
        debug_assert!(N.is_multiple_of(4) && x.len() == N && y.len() == N);
        let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
        // SAFETY: as in `axpy_fixed_body` — `N % 4 == 0`, slices of
        // exactly `N`, accesses `[i, i+4)` with `i + 4 <= N`.
        unsafe {
            let a = _mm256_set1_pd(alpha);
            let mut i = 0;
            while i < N {
                _mm256_storeu_pd(yp.add(i), _mm256_mul_pd(a, _mm256_loadu_pd(xp.add(i))));
                i += 4;
            }
        }
    }

    /// Rank-specialized DOT body: `N/4` unrolled FMAs into lane-striped
    /// accumulators, reduced by the same fixed tree as [`dot_body`].
    #[target_feature(enable = "avx2", enable = "fma")]
    fn dot_fixed_body<const N: usize>(x: &[f64], y: &[f64]) -> f64 {
        debug_assert!(N.is_multiple_of(8) && x.len() == N && y.len() == N);
        let (xp, yp) = (x.as_ptr(), y.as_ptr());
        // SAFETY: `N % 8 == 0` and both slices hold exactly `N`
        // elements, so loads at `i` and `i + 4` with `i + 8 <= N` stay
        // in bounds.
        unsafe {
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            let mut i = 0;
            while i < N {
                acc0 =
                    _mm256_fmadd_pd(_mm256_loadu_pd(xp.add(i)), _mm256_loadu_pd(yp.add(i)), acc0);
                acc1 = _mm256_fmadd_pd(
                    _mm256_loadu_pd(xp.add(i + 4)),
                    _mm256_loadu_pd(yp.add(i + 4)),
                    acc1,
                );
                i += 8;
            }
            let s = _mm256_add_pd(acc0, acc1);
            let lo = _mm256_castpd256_pd128(s);
            let hi = _mm256_extractf128_pd::<1>(s);
            let pair = _mm_add_pd(lo, hi);
            _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair))
        }
    }

    /// Rank-specialized whole-matrix GER: `y` is hoisted into at most
    /// eight ymm registers once, then every row is `N/4` fully
    /// unrolled FMAs against the resident vector. This is the hot
    /// kernel of rank-specialized TTMc.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn ger_rows_fixed_body<const N: usize>(
        m: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        a: &mut [f64],
        rs: usize,
        y: &[f64],
    ) {
        debug_assert!(N.is_multiple_of(4) && N <= 32);
        if m == 0 {
            return;
        }
        assert!(y.len() >= N && x.len() > (m - 1) * incx && a.len() >= (m - 1) * rs + N);
        let (xp, yp, ap) = (x.as_ptr(), y.as_ptr(), a.as_mut_ptr());
        // SAFETY: the asserts above bound every access — `y` loads read
        // `[4k, 4k+4) ⊆ [0, N)`, `x` reads `i * incx ≤ (m-1) * incx`,
        // and row accesses touch `[i*rs, i*rs + N) ⊆ [0, (m-1)*rs + N)`.
        unsafe {
            let mut yv = [_mm256_setzero_pd(); 8];
            for (k, lane) in yv.iter_mut().enumerate().take(N / 4) {
                *lane = _mm256_loadu_pd(yp.add(4 * k));
            }
            for i in 0..m {
                let xi = _mm256_set1_pd(alpha * *xp.add(i * incx));
                let row = ap.add(i * rs);
                for (k, lane) in yv.iter().enumerate().take(N / 4) {
                    let acc = _mm256_fmadd_pd(xi, *lane, _mm256_loadu_pd(row.add(4 * k)));
                    _mm256_storeu_pd(row.add(4 * k), acc);
                }
            }
        }
    }

    /// Rank-specialized whole-matrix GEMV: `x` hoisted into registers
    /// once; each row reduces through the same fixed lane tree as
    /// [`dot_fixed_body`] (acc0 takes offsets `0, 8, …`, acc1 takes
    /// `4, 12, …`), so results stay bitwise identical to the per-row
    /// formulation.
    #[target_feature(enable = "avx2", enable = "fma")]
    fn gemv_rows_fixed_body<const N: usize>(
        m: usize,
        alpha: f64,
        a: &[f64],
        rs: usize,
        x: &[f64],
        y: &mut [f64],
        incy: usize,
    ) {
        debug_assert!(N.is_multiple_of(8) && N <= 32);
        if m == 0 {
            return;
        }
        assert!(x.len() >= N && y.len() > (m - 1) * incy && a.len() >= (m - 1) * rs + N);
        let (xp, ap, yp) = (x.as_ptr(), a.as_ptr(), y.as_mut_ptr());
        // SAFETY: bounded by the asserts above exactly as in
        // `ger_rows_fixed_body`; `y` writes touch `i * incy` only.
        unsafe {
            let mut xv = [_mm256_setzero_pd(); 8];
            for (k, lane) in xv.iter_mut().enumerate().take(N / 4) {
                *lane = _mm256_loadu_pd(xp.add(4 * k));
            }
            for i in 0..m {
                let row = ap.add(i * rs);
                let mut acc0 = _mm256_setzero_pd();
                let mut acc1 = _mm256_setzero_pd();
                let mut k = 0;
                while k < N / 4 {
                    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(row.add(4 * k)), xv[k], acc0);
                    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(row.add(4 * k + 4)), xv[k + 1], acc1);
                    k += 2;
                }
                let s = _mm256_add_pd(acc0, acc1);
                let lo = _mm256_castpd256_pd128(s);
                let hi = _mm256_extractf128_pd::<1>(s);
                let pair = _mm_add_pd(lo, hi);
                let acc = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
                *yp.add(i * incy) += alpha * acc;
            }
        }
    }

    /// Rank-specialized AXPY wrapper (`n == N`, unit strides enforced).
    pub(super) fn axpy_fixed<const N: usize>(
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        assert!(
            n == N && incx == 1 && incy == 1,
            "rank-specialized axpy misuse"
        );
        if alpha == 0.0 {
            return; // match blas::axpy
        }
        // SAFETY: reachable only via a `KernelSet` that detected
        // AVX2+FMA at bind time (see `axpy` above).
        unsafe { axpy_fixed_body::<N>(alpha, &x[..N], &mut y[..N]) }
    }

    /// Rank-specialized assigning AXPY wrapper.
    pub(super) fn zaxpy_fixed<const N: usize>(
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        assert!(
            n == N && incx == 1 && incy == 1,
            "rank-specialized zaxpy misuse"
        );
        // SAFETY: reachable only via a `KernelSet` that detected
        // AVX2+FMA at bind time (see `axpy` above).
        unsafe { zaxpy_fixed_body::<N>(alpha, &x[..N], &mut y[..N]) }
    }

    /// Rank-specialized DOT wrapper.
    pub(super) fn dot_fixed<const N: usize>(
        n: usize,
        x: &[f64],
        incx: usize,
        y: &[f64],
        incy: usize,
    ) -> f64 {
        assert!(
            n == N && incx == 1 && incy == 1,
            "rank-specialized dot misuse"
        );
        // SAFETY: reachable only via a `KernelSet` that detected
        // AVX2+FMA at bind time (see `axpy` above).
        unsafe { dot_fixed_body::<N>(&x[..N], &y[..N]) }
    }

    /// Rank-specialized GER wrapper: row length statically `N`.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn ger_fixed<const N: usize>(
        m: usize,
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &[f64],
        incy: usize,
        a: &mut [f64],
        rs: usize,
        cs: usize,
    ) {
        assert!(
            n == N && cs == 1 && incy == 1,
            "rank-specialized ger misuse"
        );
        if alpha == 0.0 {
            return; // match blas::ger
        }
        // SAFETY: reachable only via a `KernelSet` that detected
        // AVX2+FMA at bind time (see `axpy` above).
        unsafe { ger_rows_fixed_body::<N>(m, alpha, x, incx, a, rs, y) }
    }

    /// Rank-specialized GEMV wrapper: row length statically `N`.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn gemv_fixed<const N: usize>(
        m: usize,
        n: usize,
        alpha: f64,
        a: &[f64],
        rs: usize,
        cs: usize,
        x: &[f64],
        incx: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        assert!(
            n == N && cs == 1 && incx == 1,
            "rank-specialized gemv misuse"
        );
        // SAFETY: reachable only via a `KernelSet` that detected
        // AVX2+FMA at bind time (see `axpy` above).
        unsafe { gemv_rows_fixed_body::<N>(m, alpha, a, rs, x, y, incy) }
    }
}

/// AVX-512F kernels (x86_64, 8 × f64 lanes) for the element-parallel
/// families only: AXPY, GER, and XMUL assign each output element from
/// exactly one FMA, so widening the vector changes no reduction order
/// and the results stay bitwise independent of the detected x86 tier.
/// DOT and GEMV are *not* duplicated here — [`KernelSet`] routes them
/// to the AVX2 bodies so the fixed 4-lane reduction tree is the same
/// on every x86 host.
#[cfg(target_arch = "x86_64")]
mod x86_512 {
    use super::blas;
    use core::arch::x86_64::{
        _mm512_fmadd_pd, _mm512_loadu_pd, _mm512_mul_pd, _mm512_set1_pd, _mm512_setzero_pd,
        _mm512_storeu_pd,
    };

    /// `y[..len] += alpha * x[..len]`, 8 lanes per step, 16-wide
    /// unrolled main loop, strictly sequential scalar tail.
    #[target_feature(enable = "avx512f")]
    fn axpy_body(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        debug_assert_eq!(n, y.len());
        let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
        // SAFETY: vector accesses read/write `[i, i+8)` only while
        // `i + 8 <= n` (16-wide steps check `i + 16 <= n`); the scalar
        // tail indexes `< n`. All within the length-checked slices.
        unsafe {
            let a = _mm512_set1_pd(alpha);
            let mut i = 0;
            while i + 16 <= n {
                let y0 = _mm512_fmadd_pd(a, _mm512_loadu_pd(xp.add(i)), _mm512_loadu_pd(yp.add(i)));
                let y1 = _mm512_fmadd_pd(
                    a,
                    _mm512_loadu_pd(xp.add(i + 8)),
                    _mm512_loadu_pd(yp.add(i + 8)),
                );
                _mm512_storeu_pd(yp.add(i), y0);
                _mm512_storeu_pd(yp.add(i + 8), y1);
                i += 16;
            }
            if i + 8 <= n {
                let yv = _mm512_fmadd_pd(a, _mm512_loadu_pd(xp.add(i)), _mm512_loadu_pd(yp.add(i)));
                _mm512_storeu_pd(yp.add(i), yv);
                i += 8;
            }
            while i < n {
                *yp.add(i) += alpha * *xp.add(i);
                i += 1;
            }
        }
    }

    /// `y[..len] = alpha * x[..len]` (assigning twin of [`axpy_body`]).
    #[target_feature(enable = "avx512f")]
    fn zaxpy_body(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        debug_assert_eq!(n, y.len());
        let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
        // SAFETY: accesses bounded exactly as in `axpy_body`.
        unsafe {
            let a = _mm512_set1_pd(alpha);
            let mut i = 0;
            while i + 8 <= n {
                _mm512_storeu_pd(yp.add(i), _mm512_mul_pd(a, _mm512_loadu_pd(xp.add(i))));
                i += 8;
            }
            while i < n {
                *yp.add(i) = alpha * *xp.add(i);
                i += 1;
            }
        }
    }

    /// Whole-matrix GER row loop (see `x86::ger_rows_body` for the
    /// rationale: one `#[target_feature]` region keeps `y` resident).
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    fn ger_rows_body(
        m: usize,
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        a: &mut [f64],
        rs: usize,
        y: &[f64],
    ) {
        let yv = &y[..n];
        for i in 0..m {
            axpy_body(alpha * x[i * incx], yv, &mut a[i * rs..i * rs + n]);
        }
    }

    /// Assigning twin of [`ger_rows_body`].
    #[target_feature(enable = "avx512f")]
    #[allow(clippy::too_many_arguments)]
    fn zger_rows_body(
        m: usize,
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        a: &mut [f64],
        rs: usize,
        y: &[f64],
    ) {
        let yv = &y[..n];
        for i in 0..m {
            zaxpy_body(alpha * x[i * incx], yv, &mut a[i * rs..i * rs + n]);
        }
    }

    /// `y[..len] += alpha * x[..len] ∘ z[..len]`.
    #[target_feature(enable = "avx512f")]
    fn xmul_body(alpha: f64, x: &[f64], z: &[f64], y: &mut [f64]) {
        let n = x.len();
        debug_assert!(n == z.len() && n == y.len());
        let (xp, zp, yp) = (x.as_ptr(), z.as_ptr(), y.as_mut_ptr());
        // SAFETY: vector accesses gated by `i + 8 <= n`, scalar tail by
        // `i < n`; all inside the three length-checked slices.
        unsafe {
            let a = _mm512_set1_pd(alpha);
            let mut i = 0;
            while i + 8 <= n {
                let t = _mm512_mul_pd(_mm512_loadu_pd(xp.add(i)), _mm512_loadu_pd(zp.add(i)));
                _mm512_storeu_pd(yp.add(i), _mm512_fmadd_pd(a, t, _mm512_loadu_pd(yp.add(i))));
                i += 8;
            }
            while i < n {
                *yp.add(i) += alpha * *xp.add(i) * *zp.add(i);
                i += 1;
            }
        }
    }

    /// `y[..len] = alpha * x[..len] ∘ z[..len]` (assigning twin).
    #[target_feature(enable = "avx512f")]
    fn zxmul_body(alpha: f64, x: &[f64], z: &[f64], y: &mut [f64]) {
        let n = x.len();
        debug_assert!(n == z.len() && n == y.len());
        let (xp, zp, yp) = (x.as_ptr(), z.as_ptr(), y.as_mut_ptr());
        // SAFETY: same bounds discipline as `xmul_body`.
        unsafe {
            let a = _mm512_set1_pd(alpha);
            let mut i = 0;
            while i + 8 <= n {
                let t = _mm512_mul_pd(_mm512_loadu_pd(xp.add(i)), _mm512_loadu_pd(zp.add(i)));
                _mm512_storeu_pd(yp.add(i), _mm512_mul_pd(a, t));
                i += 8;
            }
            while i < n {
                *yp.add(i) = alpha * *xp.add(i) * *zp.add(i);
                i += 1;
            }
        }
    }

    /// Rank-specialized whole-matrix GER: `y` hoisted into at most
    /// four zmm registers once, each row is `N/8` fully unrolled FMAs.
    #[target_feature(enable = "avx512f")]
    fn ger_rows_fixed_body<const N: usize>(
        m: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        a: &mut [f64],
        rs: usize,
        y: &[f64],
    ) {
        debug_assert!(N.is_multiple_of(8) && N <= 32);
        if m == 0 {
            return;
        }
        assert!(y.len() >= N && x.len() > (m - 1) * incx && a.len() >= (m - 1) * rs + N);
        let (xp, yp, ap) = (x.as_ptr(), y.as_ptr(), a.as_mut_ptr());
        // SAFETY: the asserts above bound every access — `y` loads read
        // `[8k, 8k+8) ⊆ [0, N)`, `x` reads `i * incx ≤ (m-1) * incx`,
        // and row accesses touch `[i*rs, i*rs + N) ⊆ [0, (m-1)*rs + N)`.
        unsafe {
            let mut yv = [_mm512_setzero_pd(); 4];
            for (k, lane) in yv.iter_mut().enumerate().take(N / 8) {
                *lane = _mm512_loadu_pd(yp.add(8 * k));
            }
            for i in 0..m {
                let xi = _mm512_set1_pd(alpha * *xp.add(i * incx));
                let row = ap.add(i * rs);
                for (k, lane) in yv.iter().enumerate().take(N / 8) {
                    let acc = _mm512_fmadd_pd(xi, *lane, _mm512_loadu_pd(row.add(8 * k)));
                    _mm512_storeu_pd(row.add(8 * k), acc);
                }
            }
        }
    }

    /// [`blas::axpy`]-shaped wrapper: vectorize the contiguous case,
    /// delegate strided calls to the scalar kernel.
    pub(super) fn axpy(n: usize, alpha: f64, x: &[f64], incx: usize, y: &mut [f64], incy: usize) {
        if alpha == 0.0 {
            return; // match blas::axpy: even NaN inputs leave y alone
        }
        if incx == 1 && incy == 1 {
            // SAFETY: this function is only installed in a tape by a
            // `KernelSet` whose `detect()` observed AVX-512F via
            // `is_x86_feature_detected!` on this host at bind time.
            unsafe { axpy_body(alpha, &x[..n], &mut y[..n]) }
        } else {
            blas::axpy(n, alpha, x, incx, y, incy);
        }
    }

    /// Assigning AXPY wrapper (never skips the write).
    pub(super) fn zaxpy(n: usize, alpha: f64, x: &[f64], incx: usize, y: &mut [f64], incy: usize) {
        if incx == 1 && incy == 1 {
            // SAFETY: reachable only via a `KernelSet` that detected
            // AVX-512F at bind time (see `axpy` above).
            unsafe { zaxpy_body(alpha, &x[..n], &mut y[..n]) }
        } else {
            super::scalar_zero::zaxpy(n, alpha, x, incx, y, incy);
        }
    }

    /// [`blas::xmul`]-shaped wrapper.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn xmul(
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        z: &[f64],
        incz: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        if incx == 1 && incz == 1 && incy == 1 {
            // SAFETY: reachable only via a `KernelSet` that detected
            // AVX-512F at bind time (see `axpy` above).
            unsafe { xmul_body(alpha, &x[..n], &z[..n], &mut y[..n]) }
        } else {
            blas::xmul(n, alpha, x, incx, z, incz, y, incy);
        }
    }

    /// Assigning XMUL wrapper.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn zxmul(
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        z: &[f64],
        incz: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        if incx == 1 && incz == 1 && incy == 1 {
            // SAFETY: reachable only via a `KernelSet` that detected
            // AVX-512F at bind time (see `axpy` above).
            unsafe { zxmul_body(alpha, &x[..n], &z[..n], &mut y[..n]) }
        } else {
            super::scalar_zero::zxmul(n, alpha, x, incx, z, incz, y, incy);
        }
    }

    /// [`blas::ger`]-shaped wrapper.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn ger(
        m: usize,
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &[f64],
        incy: usize,
        a: &mut [f64],
        rs: usize,
        cs: usize,
    ) {
        if alpha == 0.0 {
            return; // match blas::ger
        }
        if cs == 1 && incy == 1 {
            // SAFETY: reachable only via a `KernelSet` that detected
            // AVX-512F at bind time (see `axpy` above).
            unsafe { ger_rows_body(m, n, alpha, x, incx, a, rs, y) }
        } else {
            blas::ger(m, n, alpha, x, incx, y, incy, a, rs, cs);
        }
    }

    /// Assigning GER wrapper.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn zger(
        m: usize,
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &[f64],
        incy: usize,
        a: &mut [f64],
        rs: usize,
        cs: usize,
    ) {
        if cs == 1 && incy == 1 {
            // SAFETY: reachable only via a `KernelSet` that detected
            // AVX-512F at bind time (see `axpy` above).
            unsafe { zger_rows_body(m, n, alpha, x, incx, a, rs, y) }
        } else {
            super::scalar_zero::zger(m, n, alpha, x, incx, y, incy, a, rs, cs);
        }
    }

    /// Rank-specialized AXPY wrapper (`n == N`, unit strides enforced).
    pub(super) fn axpy_fixed<const N: usize>(
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        assert!(
            n == N && incx == 1 && incy == 1,
            "rank-specialized axpy misuse"
        );
        if alpha == 0.0 {
            return; // match blas::axpy
        }
        // SAFETY: reachable only via a `KernelSet` that detected
        // AVX-512F at bind time (see `axpy` above).
        unsafe { axpy_body(alpha, &x[..N], &mut y[..N]) }
    }

    /// Rank-specialized assigning AXPY wrapper.
    pub(super) fn zaxpy_fixed<const N: usize>(
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        assert!(
            n == N && incx == 1 && incy == 1,
            "rank-specialized zaxpy misuse"
        );
        // SAFETY: reachable only via a `KernelSet` that detected
        // AVX-512F at bind time (see `axpy` above).
        unsafe { zaxpy_body(alpha, &x[..N], &mut y[..N]) }
    }

    /// Rank-specialized GER wrapper: row length statically `N`.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn ger_fixed<const N: usize>(
        m: usize,
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &[f64],
        incy: usize,
        a: &mut [f64],
        rs: usize,
        cs: usize,
    ) {
        assert!(
            n == N && cs == 1 && incy == 1,
            "rank-specialized ger misuse"
        );
        if alpha == 0.0 {
            return; // match blas::ger
        }
        // SAFETY: reachable only via a `KernelSet` that detected
        // AVX-512F at bind time (see `axpy` above).
        unsafe { ger_rows_fixed_body::<N>(m, alpha, x, incx, a, rs, y) }
    }
}

/// NEON kernels (aarch64, 2 × f64 lanes). NEON is baseline for the
/// aarch64 targets we build, so no runtime detection is needed; the
/// bodies still follow the same slice-checked + single-unsafe-block
/// discipline as the x86 module.
#[cfg(target_arch = "aarch64")]
mod neon {
    use super::blas;
    use core::arch::aarch64::{
        vaddq_f64, vdupq_n_f64, vfmaq_f64, vgetq_lane_f64, vld1q_f64, vmulq_f64, vst1q_f64,
    };

    /// `y[..len] += alpha * x[..len]`, 2 lanes.
    #[target_feature(enable = "neon")]
    fn axpy_body(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        debug_assert_eq!(n, y.len());
        let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
        // SAFETY: vector steps gated by `i + 2 <= n`, tail by `i < n`;
        // all inside the length-checked slices.
        unsafe {
            let a = vdupq_n_f64(alpha);
            let mut i = 0;
            while i + 2 <= n {
                let yv = vfmaq_f64(vld1q_f64(yp.add(i)), a, vld1q_f64(xp.add(i)));
                vst1q_f64(yp.add(i), yv);
                i += 2;
            }
            while i < n {
                *yp.add(i) += alpha * *xp.add(i);
                i += 1;
            }
        }
    }

    /// `y[..len] = alpha * x[..len]` (assigning twin).
    #[target_feature(enable = "neon")]
    fn zaxpy_body(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len();
        debug_assert_eq!(n, y.len());
        let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
        // SAFETY: same bounds discipline as `axpy_body`.
        unsafe {
            let a = vdupq_n_f64(alpha);
            let mut i = 0;
            while i + 2 <= n {
                vst1q_f64(yp.add(i), vmulq_f64(a, vld1q_f64(xp.add(i))));
                i += 2;
            }
            while i < n {
                *yp.add(i) = alpha * *xp.add(i);
                i += 1;
            }
        }
    }

    /// Lane-striped dot with fixed tree `(acc0 + acc1) → lane0 + lane1`
    /// and a sequential scalar tail (run-to-run bitwise stable).
    #[target_feature(enable = "neon")]
    fn dot_body(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len();
        debug_assert_eq!(n, y.len());
        let (xp, yp) = (x.as_ptr(), y.as_ptr());
        // SAFETY: vector loads gated by `i + 4 <= n` / `i + 2 <= n`,
        // tail by `i < n`; all inside the length-checked slices.
        unsafe {
            let mut acc0 = vdupq_n_f64(0.0);
            let mut acc1 = vdupq_n_f64(0.0);
            let mut i = 0;
            while i + 4 <= n {
                acc0 = vfmaq_f64(acc0, vld1q_f64(xp.add(i)), vld1q_f64(yp.add(i)));
                acc1 = vfmaq_f64(acc1, vld1q_f64(xp.add(i + 2)), vld1q_f64(yp.add(i + 2)));
                i += 4;
            }
            if i + 2 <= n {
                acc0 = vfmaq_f64(acc0, vld1q_f64(xp.add(i)), vld1q_f64(yp.add(i)));
                i += 2;
            }
            let s = vaddq_f64(acc0, acc1);
            let mut acc = vgetq_lane_f64::<0>(s) + vgetq_lane_f64::<1>(s);
            while i < n {
                acc += *xp.add(i) * *yp.add(i);
                i += 1;
            }
            acc
        }
    }

    /// `y[..len] += alpha * x[..len] ∘ z[..len]`.
    #[target_feature(enable = "neon")]
    fn xmul_body(alpha: f64, x: &[f64], z: &[f64], y: &mut [f64]) {
        let n = x.len();
        debug_assert!(n == z.len() && n == y.len());
        let (xp, zp, yp) = (x.as_ptr(), z.as_ptr(), y.as_mut_ptr());
        // SAFETY: same bounds discipline as `axpy_body`, three slices.
        unsafe {
            let a = vdupq_n_f64(alpha);
            let mut i = 0;
            while i + 2 <= n {
                let t = vmulq_f64(vld1q_f64(xp.add(i)), vld1q_f64(zp.add(i)));
                vst1q_f64(yp.add(i), vfmaq_f64(vld1q_f64(yp.add(i)), a, t));
                i += 2;
            }
            while i < n {
                *yp.add(i) += alpha * *xp.add(i) * *zp.add(i);
                i += 1;
            }
        }
    }

    /// `y[..len] = alpha * x[..len] ∘ z[..len]` (assigning twin).
    #[target_feature(enable = "neon")]
    fn zxmul_body(alpha: f64, x: &[f64], z: &[f64], y: &mut [f64]) {
        let n = x.len();
        debug_assert!(n == z.len() && n == y.len());
        let (xp, zp, yp) = (x.as_ptr(), z.as_ptr(), y.as_mut_ptr());
        // SAFETY: same bounds discipline as `xmul_body`.
        unsafe {
            let a = vdupq_n_f64(alpha);
            let mut i = 0;
            while i + 2 <= n {
                let t = vmulq_f64(vld1q_f64(xp.add(i)), vld1q_f64(zp.add(i)));
                vst1q_f64(yp.add(i), vmulq_f64(a, t));
                i += 2;
            }
            while i < n {
                *yp.add(i) = alpha * *xp.add(i) * *zp.add(i);
                i += 1;
            }
        }
    }

    /// [`blas::axpy`]-shaped wrapper.
    pub(super) fn axpy(n: usize, alpha: f64, x: &[f64], incx: usize, y: &mut [f64], incy: usize) {
        if alpha == 0.0 {
            return; // match blas::axpy
        }
        if incx == 1 && incy == 1 {
            // SAFETY: NEON is baseline on every aarch64 target this
            // crate builds for (`target_feature = "neon"` is always
            // enabled by the ABI).
            unsafe { axpy_body(alpha, &x[..n], &mut y[..n]) }
        } else {
            blas::axpy(n, alpha, x, incx, y, incy);
        }
    }

    /// Assigning AXPY wrapper.
    pub(super) fn zaxpy(n: usize, alpha: f64, x: &[f64], incx: usize, y: &mut [f64], incy: usize) {
        if incx == 1 && incy == 1 {
            // SAFETY: NEON is baseline on aarch64 (see `axpy` above).
            unsafe { zaxpy_body(alpha, &x[..n], &mut y[..n]) }
        } else {
            super::scalar_zero::zaxpy(n, alpha, x, incx, y, incy);
        }
    }

    /// [`blas::dot`]-shaped wrapper.
    pub(super) fn dot(n: usize, x: &[f64], incx: usize, y: &[f64], incy: usize) -> f64 {
        if incx == 1 && incy == 1 {
            // SAFETY: NEON is baseline on aarch64 (see `axpy` above).
            unsafe { dot_body(&x[..n], &y[..n]) }
        } else {
            blas::dot(n, x, incx, y, incy)
        }
    }

    /// [`blas::xmul`]-shaped wrapper.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn xmul(
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        z: &[f64],
        incz: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        if incx == 1 && incz == 1 && incy == 1 {
            // SAFETY: NEON is baseline on aarch64 (see `axpy` above).
            unsafe { xmul_body(alpha, &x[..n], &z[..n], &mut y[..n]) }
        } else {
            blas::xmul(n, alpha, x, incx, z, incz, y, incy);
        }
    }

    /// Assigning XMUL wrapper.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn zxmul(
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        z: &[f64],
        incz: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        if incx == 1 && incz == 1 && incy == 1 {
            // SAFETY: NEON is baseline on aarch64 (see `axpy` above).
            unsafe { zxmul_body(alpha, &x[..n], &z[..n], &mut y[..n]) }
        } else {
            super::scalar_zero::zxmul(n, alpha, x, incx, z, incz, y, incy);
        }
    }

    /// [`blas::ger`]-shaped wrapper (row-wise vector AXPY).
    #[allow(clippy::too_many_arguments)]
    pub(super) fn ger(
        m: usize,
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &[f64],
        incy: usize,
        a: &mut [f64],
        rs: usize,
        cs: usize,
    ) {
        if alpha == 0.0 {
            return; // match blas::ger
        }
        if cs == 1 && incy == 1 {
            let yv = &y[..n];
            for i in 0..m {
                let xi = alpha * x[i * incx];
                // SAFETY: NEON is baseline on aarch64 (see `axpy`).
                unsafe { axpy_body(xi, yv, &mut a[i * rs..i * rs + n]) }
            }
        } else {
            blas::ger(m, n, alpha, x, incx, y, incy, a, rs, cs);
        }
    }

    /// Assigning GER wrapper.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn zger(
        m: usize,
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &[f64],
        incy: usize,
        a: &mut [f64],
        rs: usize,
        cs: usize,
    ) {
        if cs == 1 && incy == 1 {
            let yv = &y[..n];
            for i in 0..m {
                let xi = alpha * x[i * incx];
                // SAFETY: NEON is baseline on aarch64 (see `axpy`).
                unsafe { zaxpy_body(xi, yv, &mut a[i * rs..i * rs + n]) }
            }
        } else {
            super::scalar_zero::zger(m, n, alpha, x, incx, y, incy, a, rs, cs);
        }
    }

    /// [`blas::gemv`]-shaped wrapper (row-wise vector DOT).
    #[allow(clippy::too_many_arguments)]
    pub(super) fn gemv(
        m: usize,
        n: usize,
        alpha: f64,
        a: &[f64],
        rs: usize,
        cs: usize,
        x: &[f64],
        incx: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        if cs == 1 && incx == 1 {
            let xv = &x[..n];
            for i in 0..m {
                // SAFETY: NEON is baseline on aarch64 (see `axpy`).
                let acc = unsafe { dot_body(&a[i * rs..i * rs + n], xv) };
                y[i * incy] += alpha * acc;
            }
        } else {
            blas::gemv(m, n, alpha, a, rs, cs, x, incx, y, incy);
        }
    }
}

/// Portable `std::simd` kernels (nightly-gated `portable-simd`
/// feature): 4 × f64 lanes, entirely safe code, same fixed lane-tree
/// reduction as the vendor-intrinsic modules.
#[cfg(feature = "portable-simd")]
mod portable {
    use super::blas;
    use std::simd::f64x4;

    const LANES: usize = 4;

    /// [`blas::axpy`]-shaped wrapper.
    pub(super) fn axpy(n: usize, alpha: f64, x: &[f64], incx: usize, y: &mut [f64], incy: usize) {
        if alpha == 0.0 {
            return; // match blas::axpy
        }
        if incx == 1 && incy == 1 {
            let (x, y) = (&x[..n], &mut y[..n]);
            let a = f64x4::splat(alpha);
            let mut i = 0;
            while i + LANES <= n {
                let yv = f64x4::from_slice(&y[i..]) + a * f64x4::from_slice(&x[i..]);
                yv.copy_to_slice(&mut y[i..i + LANES]);
                i += LANES;
            }
            while i < n {
                y[i] += alpha * x[i];
                i += 1;
            }
        } else {
            blas::axpy(n, alpha, x, incx, y, incy);
        }
    }

    /// Assigning AXPY wrapper.
    pub(super) fn zaxpy(n: usize, alpha: f64, x: &[f64], incx: usize, y: &mut [f64], incy: usize) {
        if incx == 1 && incy == 1 {
            let (x, y) = (&x[..n], &mut y[..n]);
            let a = f64x4::splat(alpha);
            let mut i = 0;
            while i + LANES <= n {
                (a * f64x4::from_slice(&x[i..])).copy_to_slice(&mut y[i..i + LANES]);
                i += LANES;
            }
            while i < n {
                y[i] = alpha * x[i];
                i += 1;
            }
        } else {
            super::scalar_zero::zaxpy(n, alpha, x, incx, y, incy);
        }
    }

    /// [`blas::dot`]-shaped wrapper with the fixed lane-tree reduction.
    pub(super) fn dot(n: usize, x: &[f64], incx: usize, y: &[f64], incy: usize) -> f64 {
        if incx == 1 && incy == 1 {
            let (x, y) = (&x[..n], &y[..n]);
            let mut acc0 = f64x4::splat(0.0);
            let mut acc1 = f64x4::splat(0.0);
            let mut i = 0;
            while i + 2 * LANES <= n {
                acc0 += f64x4::from_slice(&x[i..]) * f64x4::from_slice(&y[i..]);
                acc1 += f64x4::from_slice(&x[i + LANES..]) * f64x4::from_slice(&y[i + LANES..]);
                i += 2 * LANES;
            }
            if i + LANES <= n {
                acc0 += f64x4::from_slice(&x[i..]) * f64x4::from_slice(&y[i..]);
                i += LANES;
            }
            // Fixed tree: (acc0 + acc1) → (lane0+lane2, lane1+lane3) →
            // final pair, then the sequential scalar tail.
            let s = (acc0 + acc1).to_array();
            let mut acc = (s[0] + s[2]) + (s[1] + s[3]);
            while i < n {
                acc += x[i] * y[i];
                i += 1;
            }
            acc
        } else {
            blas::dot(n, x, incx, y, incy)
        }
    }

    /// [`blas::xmul`]-shaped wrapper.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn xmul(
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        z: &[f64],
        incz: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        if incx == 1 && incz == 1 && incy == 1 {
            let (x, z, y) = (&x[..n], &z[..n], &mut y[..n]);
            let a = f64x4::splat(alpha);
            let mut i = 0;
            while i + LANES <= n {
                let t = f64x4::from_slice(&x[i..]) * f64x4::from_slice(&z[i..]);
                (f64x4::from_slice(&y[i..]) + a * t).copy_to_slice(&mut y[i..i + LANES]);
                i += LANES;
            }
            while i < n {
                y[i] += alpha * x[i] * z[i];
                i += 1;
            }
        } else {
            blas::xmul(n, alpha, x, incx, z, incz, y, incy);
        }
    }

    /// Assigning XMUL wrapper.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn zxmul(
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        z: &[f64],
        incz: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        if incx == 1 && incz == 1 && incy == 1 {
            let (x, z, y) = (&x[..n], &z[..n], &mut y[..n]);
            let a = f64x4::splat(alpha);
            let mut i = 0;
            while i + LANES <= n {
                let t = f64x4::from_slice(&x[i..]) * f64x4::from_slice(&z[i..]);
                (a * t).copy_to_slice(&mut y[i..i + LANES]);
                i += LANES;
            }
            while i < n {
                y[i] = alpha * x[i] * z[i];
                i += 1;
            }
        } else {
            super::scalar_zero::zxmul(n, alpha, x, incx, z, incz, y, incy);
        }
    }

    /// [`blas::ger`]-shaped wrapper (row-wise vector AXPY).
    #[allow(clippy::too_many_arguments)]
    pub(super) fn ger(
        m: usize,
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &[f64],
        incy: usize,
        a: &mut [f64],
        rs: usize,
        cs: usize,
    ) {
        if alpha == 0.0 {
            return; // match blas::ger
        }
        if cs == 1 && incy == 1 {
            for i in 0..m {
                let xi = alpha * x[i * incx];
                axpy(n, xi, y, 1, &mut a[i * rs..i * rs + n], 1);
            }
        } else {
            blas::ger(m, n, alpha, x, incx, y, incy, a, rs, cs);
        }
    }

    /// Assigning GER wrapper.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn zger(
        m: usize,
        n: usize,
        alpha: f64,
        x: &[f64],
        incx: usize,
        y: &[f64],
        incy: usize,
        a: &mut [f64],
        rs: usize,
        cs: usize,
    ) {
        if cs == 1 && incy == 1 {
            for i in 0..m {
                let xi = alpha * x[i * incx];
                zaxpy(n, xi, y, 1, &mut a[i * rs..i * rs + n], 1);
            }
        } else {
            super::scalar_zero::zger(m, n, alpha, x, incx, y, incy, a, rs, cs);
        }
    }

    /// [`blas::gemv`]-shaped wrapper (row-wise vector DOT).
    #[allow(clippy::too_many_arguments)]
    pub(super) fn gemv(
        m: usize,
        n: usize,
        alpha: f64,
        a: &[f64],
        rs: usize,
        cs: usize,
        x: &[f64],
        incx: usize,
        y: &mut [f64],
        incy: usize,
    ) {
        if cs == 1 && incx == 1 {
            for i in 0..m {
                let acc = dot(n, &a[i * rs..i * rs + n], 1, x, 1);
                y[i * incy] += alpha * acc;
            }
        } else {
            blas::gemv(m, n, alpha, a, rs, cs, x, incx, y, incy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_scalar_disables_fusion() {
        let ks = KernelSet::resolve(Microkernels::Scalar);
        assert_eq!(ks.selection(), KernelSel::Scalar);
        assert!(!ks.superinstructions());
        assert_eq!(ks.width(), 1);
        assert_eq!(ks.name(), "scalar");
        // No specialization without fusion: even a perfect hint stays
        // on the generic blas kernel.
        let (_, spec) = ks.axpy(8, true, Some(8));
        assert_eq!(spec, RankSpec::Gen);
    }

    #[test]
    fn auto_specializes_only_on_pinned_contiguous_ranks() {
        // `auto_detected`, not `resolve(Auto)`: the scalar-forced CI
        // leg exports SPTTN_MICROKERNELS=scalar, which would turn
        // resolve's answer scalar and void the assertions below.
        let ks = KernelSet::auto_detected();
        assert!(ks.superinstructions());
        assert_eq!(ks.axpy(8, true, Some(8)).1, RankSpec::R8);
        assert_eq!(ks.axpy(16, true, Some(16)).1, RankSpec::R16);
        assert_eq!(ks.axpy(32, true, Some(32)).1, RankSpec::R32);
        // Not a supported rank / not contiguous / hint mismatch → Gen.
        assert_eq!(ks.axpy(12, true, Some(12)).1, RankSpec::Gen);
        assert_eq!(ks.axpy(16, false, Some(16)).1, RankSpec::Gen);
        assert_eq!(ks.axpy(16, true, None).1, RankSpec::Gen);
        assert_eq!(ks.axpy(16, true, Some(8)).1, RankSpec::Gen);
    }

    #[test]
    fn zero_twins_overwrite_even_with_zero_alpha() {
        // The fused kernels own the Eq.-5 zero point: alpha == 0 must
        // still clear stale target data (blas::axpy would early-return).
        for ks in [KernelSet::scalar(), KernelSet::auto_detected()] {
            let x = [1.0_f64; 8];
            let mut y = [f64::NAN; 8];
            let (zk, _) = ks.zaxpy(8, true, Some(8));
            zk(8, 0.0, &x, 1, &mut y, 1);
            assert_eq!(y, [0.0; 8], "{} zaxpy must assign", ks.name());

            let mut a = [f64::NAN; 6];
            ks.zger()(2, 3, 0.0, &[1.0, 2.0], 1, &[3.0, 4.0, 5.0], 1, &mut a, 3, 1);
            assert_eq!(a, [0.0; 6], "{} zger must assign", ks.name());
        }
    }
}
