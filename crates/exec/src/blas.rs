//! BLAS-style microkernels.
//!
//! The paper offloads innermost dense loops to BLAS (Sec. 5, Fig. 6:
//! xAXPY for rank-1 updates along one mode, xGER for two). These are
//! pure-Rust equivalents: strided in general, with contiguous fast paths
//! written so the compiler auto-vectorizes them. They also back the
//! pairwise baseline's dense contractions and the examples' small dense
//! linear algebra.

/// `y[i*incy] += alpha * x[i*incx]` for `i in 0..n` (xAXPY).
#[inline]
pub fn axpy(n: usize, alpha: f64, x: &[f64], incx: usize, y: &mut [f64], incy: usize) {
    if alpha == 0.0 {
        return;
    }
    if incx == 1 && incy == 1 {
        let (x, y) = (&x[..n], &mut y[..n]);
        for i in 0..n {
            y[i] += alpha * x[i];
        }
    } else {
        for i in 0..n {
            y[i * incy] += alpha * x[i * incx];
        }
    }
}

/// `Σ x[i*incx] * y[i*incy]` (xDOT).
#[inline]
pub fn dot(n: usize, x: &[f64], incx: usize, y: &[f64], incy: usize) -> f64 {
    if incx == 1 && incy == 1 {
        let (x, y) = (&x[..n], &y[..n]);
        let mut acc = 0.0;
        for i in 0..n {
            acc += x[i] * y[i];
        }
        acc
    } else {
        let mut acc = 0.0;
        for i in 0..n {
            acc += x[i * incx] * y[i * incy];
        }
        acc
    }
}

/// `y[i*incy] += alpha * x[i*incx] * z[i*incz]` — the pointwise ternary
/// loop SpTTN leaves need when an index lives in all three tensors.
#[inline]
#[allow(clippy::too_many_arguments)] // BLAS-conventional signature
pub fn xmul(
    n: usize,
    alpha: f64,
    x: &[f64],
    incx: usize,
    z: &[f64],
    incz: usize,
    y: &mut [f64],
    incy: usize,
) {
    if incx == 1 && incz == 1 && incy == 1 {
        let (x, z, y) = (&x[..n], &z[..n], &mut y[..n]);
        for i in 0..n {
            y[i] += alpha * x[i] * z[i];
        }
    } else {
        for i in 0..n {
            y[i * incy] += alpha * x[i * incx] * z[i * incz];
        }
    }
}

/// `x[i*incx] *= alpha` (xSCAL).
#[inline]
pub fn scal(n: usize, alpha: f64, x: &mut [f64], incx: usize) {
    if incx == 1 {
        for v in &mut x[..n] {
            *v *= alpha;
        }
    } else {
        for i in 0..n {
            x[i * incx] *= alpha;
        }
    }
}

/// Rank-1 update `a[i*rs + j*cs] += alpha * x[i*incx] * y[j*incy]`
/// for `i in 0..m, j in 0..n` (xGER).
#[inline]
#[allow(clippy::too_many_arguments)] // BLAS-conventional signature
pub fn ger(
    m: usize,
    n: usize,
    alpha: f64,
    x: &[f64],
    incx: usize,
    y: &[f64],
    incy: usize,
    a: &mut [f64],
    rs: usize,
    cs: usize,
) {
    if alpha == 0.0 {
        return;
    }
    if cs == 1 && incy == 1 {
        for i in 0..m {
            let xi = alpha * x[i * incx];
            let row = &mut a[i * rs..i * rs + n];
            let yv = &y[..n];
            for j in 0..n {
                row[j] += xi * yv[j];
            }
        }
    } else {
        for i in 0..m {
            let xi = alpha * x[i * incx];
            for j in 0..n {
                a[i * rs + j * cs] += xi * y[j * incy];
            }
        }
    }
}

/// `y[i] += alpha * Σ_j a[i*rs + j*cs] * x[j*incx]` (xGEMV, row-major
/// when `cs == 1`).
#[inline]
#[allow(clippy::too_many_arguments)] // BLAS-conventional signature
pub fn gemv(
    m: usize,
    n: usize,
    alpha: f64,
    a: &[f64],
    rs: usize,
    cs: usize,
    x: &[f64],
    incx: usize,
    y: &mut [f64],
    incy: usize,
) {
    for i in 0..m {
        let mut acc = 0.0;
        if cs == 1 && incx == 1 {
            let row = &a[i * rs..i * rs + n];
            let xv = &x[..n];
            for j in 0..n {
                acc += row[j] * xv[j];
            }
        } else {
            for j in 0..n {
                acc += a[i * rs + j * cs] * x[j * incx];
            }
        }
        y[i * incy] += alpha * acc;
    }
}

/// `c[i,j] += alpha * Σ_k a[i,k] * b[k,j]`, all row-major dense
/// (xGEMM, ijk-blocked enough for the example workloads).
pub fn gemm(m: usize, n: usize, k: usize, alpha: f64, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert!(a.len() >= m * k && b.len() >= k * n && c.len() >= m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (l, &av) in arow.iter().enumerate() {
            let brow = &b[l * n..(l + 1) * n];
            let f = alpha * av;
            if f != 0.0 {
                for j in 0..n {
                    crow[j] += f * brow[j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_contiguous_and_strided() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 4];
        axpy(4, 2.0, &x, 1, &mut y, 1);
        assert_eq!(y, [2.0, 4.0, 6.0, 8.0]);
        let mut y2 = [0.0; 8];
        axpy(4, 1.0, &x, 1, &mut y2, 2);
        assert_eq!(y2, [1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0]);
        axpy(2, 1.0, &x, 2, &mut y2, 1);
        assert_eq!(y2[0], 2.0);
        assert_eq!(y2[1], 3.0);
    }

    #[test]
    fn axpy_zero_alpha_noop() {
        let x = [f64::NAN; 3];
        let mut y = [1.0; 3];
        axpy(3, 0.0, &x, 1, &mut y, 1);
        assert_eq!(y, [1.0; 3]);
    }

    #[test]
    fn dot_matches_manual() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0];
        assert_eq!(dot(3, &x, 1, &y, 1), 32.0);
        assert_eq!(dot(2, &x, 2, &y, 2), 1.0 * 4.0 + 3.0 * 6.0);
    }

    #[test]
    fn xmul_pointwise() {
        let x = [1.0, 2.0];
        let z = [3.0, 4.0];
        let mut y = [10.0, 10.0];
        xmul(2, 2.0, &x, 1, &z, 1, &mut y, 1);
        assert_eq!(y, [16.0, 26.0]);
    }

    #[test]
    fn scal_scales() {
        let mut x = [1.0, 2.0, 3.0];
        scal(3, 3.0, &mut x, 1);
        assert_eq!(x, [3.0, 6.0, 9.0]);
    }

    #[test]
    fn ger_rank1() {
        let x = [1.0, 2.0];
        let y = [3.0, 4.0, 5.0];
        let mut a = [0.0; 6];
        ger(2, 3, 1.0, &x, 1, &y, 1, &mut a, 3, 1);
        assert_eq!(a, [3.0, 4.0, 5.0, 6.0, 8.0, 10.0]);
        // Strided (column-major-ish) path.
        let mut a2 = [0.0; 6];
        ger(2, 3, 1.0, &x, 1, &y, 1, &mut a2, 1, 2);
        assert_eq!(a2[0], 3.0); // (0,0)
        assert_eq!(a2[2], 4.0); // (0,1)
        assert_eq!(a2[1], 6.0); // (1,0)
    }

    #[test]
    fn gemv_matches_manual() {
        // a = [[1,2],[3,4],[5,6]] row-major; x = [1,1].
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [1.0, 1.0];
        let mut y = [0.0; 3];
        gemv(3, 2, 1.0, &a, 2, 1, &x, 1, &mut y, 1);
        assert_eq!(y, [3.0, 7.0, 11.0]);
    }

    #[test]
    fn gemm_small() {
        // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]].
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        gemm(2, 2, 2, 1.0, &a, &b, &mut c);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }
}
