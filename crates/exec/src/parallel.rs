//! Parallel tiled execution of planned loop nests.
//!
//! The CSF root level splits into contiguous tiles of complete root
//! subtrees ([`spttn_tensor::Csf::partition`]), and the contraction is
//! linear in the sparse tensor, so each tile's execution is an
//! independent additive contribution to the output. This module fans
//! those tiles out across threads:
//!
//! - [`execute_forest_parallel`] is the one-shot path: it partitions,
//!   allocates one [`Workspace`] and one private dense partial per
//!   tile, and runs the fan-out on [`std::thread::scope`].
//! - [`ParallelExecutor`] is the plan-once/execute-many path: it owns
//!   the tiles, per-thread workspaces, per-thread partial outputs, and
//!   a persistent worker pool, so repeated
//!   [`ParallelExecutor::execute_into`] calls perform **zero heap
//!   allocations** — the same contract the serial
//!   [`crate::execute_forest_into`] honors.
//!
//! **Determinism.** The tile partition is a deterministic function of
//! the tree and the thread count; each tile executes sequentially; and
//! dense partial outputs are combined by a fixed-shape pairwise *tree
//! reduction* in tile order ([`tree_reduce_partials`]). Two runs at the
//! same thread count are therefore bitwise identical. Pattern-sharing
//! sparse outputs (TTTP-like) need no reduction at all: tiles write
//! disjoint leaf ranges of the value array.

use crate::faults;
use crate::guard::RunGuard;
use crate::interp::{
    execute_forest_tile_into_guarded, execute_slots, validate_operands, validate_output,
    ContractionOutput, ExecStats, OutputMut, Slots, Workspace,
};
use crate::tape::{execute_tape_tile_into_guarded, CompiledTape};
use spttn_core::{Result, SpttnError};
use spttn_ir::{BufferSpec, ContractionPath, Kernel, LoopForest};
use spttn_tensor::{Csf, CsfTile, DenseTensor};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Best-effort text of a panic payload, for [`SpttnError::WorkerPanic`].
fn panic_payload(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Deterministic pairwise tree reduction of per-tile partial outputs.
///
/// Combines `partials[i] += partials[i + gap]` for gaps 1, 2, 4, … in
/// ascending tile order, leaving the reduced sum in `partials[0]`. The
/// reduction shape depends only on `partials.len()`, so a fixed tile
/// count gives a bitwise-reproducible floating-point sum run to run.
pub fn tree_reduce_partials(partials: &mut [DenseTensor]) {
    let n = partials.len();
    let mut gap = 1usize;
    while gap < n {
        let mut i = 0usize;
        while i + gap < n {
            let (head, tail) = partials.split_at_mut(i + gap);
            let dst = head[i].as_mut_slice();
            let src = tail[0].as_slice();
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
            i += gap * 2;
        }
        gap *= 2;
    }
}

/// Execute a fused loop forest across `n_threads` scoped threads,
/// allocating fresh per-thread workspaces and outputs (the one-shot
/// convenience mirroring [`crate::execute_forest`]).
///
/// The CSF is partitioned into at most `n_threads` leaf-balanced root
/// tiles; each scoped thread executes one tile into a private output,
/// and the partials are combined with [`tree_reduce_partials`] (dense)
/// or written to disjoint leaf ranges (pattern-sharing sparse).
/// Reuse-heavy callers should hold a [`ParallelExecutor`] instead.
pub fn execute_forest_parallel(
    kernel: &Kernel,
    path: &ContractionPath,
    forest: &LoopForest,
    csf: &Csf,
    dense_factors: &[&DenseTensor],
    n_threads: usize,
) -> Result<ContractionOutput> {
    validate_operands(kernel, csf, dense_factors)?;
    // Slot-ordered references (no tensor data copied), shared by every
    // thread.
    let dummy = DenseTensor::zeros(&[]);
    let mut refs: Vec<&DenseTensor> = Vec::with_capacity(kernel.inputs.len());
    let mut next = 0usize;
    for slot in 0..kernel.inputs.len() {
        if slot == kernel.sparse_input {
            refs.push(&dummy);
        } else {
            refs.push(dense_factors[next]);
            next += 1;
        }
    }
    let tiles = csf.partition(n_threads.max(1));
    let mut workspaces: Vec<Workspace> = tiles
        .iter()
        .map(|_| Workspace::new(kernel, path, forest))
        .collect();

    if kernel.output_sparse {
        let mut vals = vec![0.0; csf.nnz()];
        // Disjoint leaf-range chunks, one per tile, in tile order.
        let mut chunks: Vec<&mut [f64]> = Vec::with_capacity(tiles.len());
        let mut rest: &mut [f64] = &mut vals;
        for tile in &tiles {
            let (chunk, tail) = rest.split_at_mut(tile.leaf_nnz());
            chunks.push(chunk);
            rest = tail;
        }
        run_scoped(kernel, path, forest, csf, &refs, &tiles, &mut workspaces, {
            chunks.into_iter().map(OutputMut::Sparse).collect()
        })?;
        Ok(ContractionOutput::Sparse(csf.to_coo().with_vals(vals)))
    } else {
        let odims = kernel.ref_dims(&kernel.output);
        let mut partials: Vec<DenseTensor> =
            tiles.iter().map(|_| DenseTensor::zeros(&odims)).collect();
        run_scoped(kernel, path, forest, csf, &refs, &tiles, &mut workspaces, {
            partials.iter_mut().map(OutputMut::Dense).collect()
        })?;
        tree_reduce_partials(&mut partials);
        // SAFETY-style invariant: `Csf::partition(n.max(1))` always
        // yields at least one tile, so `partials` is never empty.
        debug_assert!(!partials.is_empty(), "partition yields >= 1 tile");
        partials
            .into_iter()
            .next()
            .map(ContractionOutput::Dense)
            .ok_or_else(|| SpttnError::Execution("partition produced no tiles".into()))
    }
}

/// Scoped fan-out: one thread per tile, each with exclusive borrows of
/// its workspace and output. Safe code throughout — the disjointness is
/// expressed with iterators, not pointers.
#[allow(clippy::too_many_arguments)]
fn run_scoped(
    kernel: &Kernel,
    path: &ContractionPath,
    forest: &LoopForest,
    csf: &Csf,
    refs: &[&DenseTensor],
    tiles: &[CsfTile],
    workspaces: &mut [Workspace],
    outs: Vec<OutputMut<'_>>,
) -> Result<()> {
    let results: Vec<Result<()>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(tiles.len());
        for ((tile, ws), out) in tiles.iter().zip(workspaces.iter_mut()).zip(outs) {
            handles.push(scope.spawn(move || {
                execute_slots(
                    kernel,
                    path,
                    forest,
                    csf,
                    tile.root_range(),
                    tile.leaf_range().start,
                    tile.leaf_nnz(),
                    Slots::Refs(refs),
                    ws,
                    out,
                    None,
                )
            }));
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(tile, h)| match h.join() {
                Ok(r) => r,
                // A panicked tile fails only this execution, with the
                // same typed error the persistent pool produces.
                Err(p) => Err(SpttnError::WorkerPanic {
                    worker: tile,
                    payload: panic_payload(p.as_ref()),
                }),
            })
            .collect()
    });
    results.into_iter().collect()
}

// ---------------------------------------------------------------------
// Persistent worker pool (the zero-allocation execute-many path)
// ---------------------------------------------------------------------

/// Where a worker writes its tile's contribution.
#[derive(Clone, Copy)]
enum JobOut {
    /// Private dense partial for the tile; the worker zeroes it before
    /// executing.
    Dense(*mut DenseTensor),
    /// The tile's disjoint leaf-range chunk of the shared sparse output
    /// (pointer + length). Not zeroed: `+=` accumulation is preserved.
    Sparse(*mut f64, usize),
}

/// One tile execution, packaged as plain pointers so submitting it to a
/// waiting worker stores a fixed-size value — no closure boxing, no
/// allocation.
#[derive(Clone, Copy)]
struct Job {
    kernel: *const Kernel,
    path: *const ContractionPath,
    forest: *const LoopForest,
    /// Compiled tape program shared by every worker; null selects the
    /// recursive interpreter.
    tape: *const CompiledTape,
    csf: *const Csf,
    tile: *const CsfTile,
    factors: *const DenseTensor,
    factors_len: usize,
    ws: *mut Workspace,
    out: JobOut,
    /// Cancellation/deadline guard shared by every tile of one
    /// execution; null means unguarded.
    guard: *const RunGuard,
}

// SAFETY: jobs are only created by `ParallelExecutor::execute_into`,
// which blocks on `WorkerPool::wait_all` before returning, so every
// pointer outlives the job; each `*mut` target (workspace, partial,
// sparse chunk) belongs to exactly one job, and the shared `*const`
// targets (incl. the guard — `RunGuard: Sync`, its only interior
// mutability an atomic flag) are safe to read from every worker.
unsafe impl Send for Job {}

fn run_job(job: Job) -> Result<()> {
    // SAFETY: see the `Send` impl for `Job` — pointers are valid for the
    // whole job and mutable targets are exclusive to it.
    unsafe {
        let kernel = &*job.kernel;
        let path = &*job.path;
        let forest = &*job.forest;
        let tape: Option<&CompiledTape> = job.tape.as_ref();
        let csf = &*job.csf;
        let tile = &*job.tile;
        let factors = std::slice::from_raw_parts(job.factors, job.factors_len);
        let ws = &mut *job.ws;
        let guard: Option<&RunGuard> = job.guard.as_ref();
        let run = |ws: &mut Workspace, out: OutputMut<'_>| match tape {
            Some(t) => {
                execute_tape_tile_into_guarded(t, kernel, csf, tile, factors, ws, out, guard)
            }
            None => execute_forest_tile_into_guarded(
                kernel, path, forest, csf, tile, factors, ws, out, guard,
            ),
        };
        match job.out {
            JobOut::Dense(p) => {
                let partial = &mut *p;
                partial.fill_zero();
                run(ws, OutputMut::Dense(partial))
            }
            JobOut::Sparse(p, len) => run(
                ws,
                OutputMut::Sparse(std::slice::from_raw_parts_mut(p, len)),
            ),
        }
    }
}

struct WorkerState {
    job: Option<Job>,
    /// Jobs handed to this worker so far.
    submitted: u64,
    /// Jobs this worker has finished; idle iff `finished == submitted`.
    finished: u64,
    /// Outcome of the most recent job.
    result: Result<()>,
    shutdown: bool,
    /// Set by a worker about to exit its thread (under the same lock
    /// that publishes its final result), so `respawn_dead` observes the
    /// death deterministically — `JoinHandle::is_finished` alone races
    /// with the OS-level thread teardown.
    dead: bool,
}

struct WorkerShared {
    state: Mutex<WorkerState>,
    cv: Condvar,
}

/// Lock a worker slot, shedding mutex poisoning instead of panicking.
///
/// SAFETY-style invariant: the slot holds plain data (an `Option<Job>`
/// of `Copy` pointers plus counters), and every critical section is a
/// handful of field assignments — no invariant can be left half-updated
/// by an unwinding holder. Discarding the poison flag is exactly what
/// keeps one panicking execution from bricking the pool for the next.
fn lock_worker(sh: &WorkerShared) -> MutexGuard<'_, WorkerState> {
    sh.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fixed set of persistent worker threads, one job slot each.
///
/// Created once (at bind time); each execution submits one pre-packaged
/// [`Job`] per worker and waits for all of them. The job slot is a
/// plain `Option<Job>` behind a mutex, so the submit/wait cycle touches
/// no heap.
struct WorkerPool {
    shared: Vec<Arc<WorkerShared>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    fn new(n_workers: usize) -> WorkerPool {
        let mut shared = Vec::with_capacity(n_workers);
        let mut handles = Vec::with_capacity(n_workers);
        for slot in 0..n_workers {
            let sh = Arc::new(WorkerShared {
                state: Mutex::new(WorkerState {
                    job: None,
                    submitted: 0,
                    finished: 0,
                    result: Ok(()),
                    shutdown: false,
                    dead: false,
                }),
                cv: Condvar::new(),
            });
            handles.push(Self::spawn_worker(&sh, slot));
            shared.push(sh);
        }
        WorkerPool { shared, handles }
    }

    fn spawn_worker(sh: &Arc<WorkerShared>, slot: usize) -> std::thread::JoinHandle<()> {
        let worker_sh = Arc::clone(sh);
        std::thread::spawn(move || worker_loop(&worker_sh, slot))
    }

    fn len(&self) -> usize {
        self.shared.len()
    }

    /// Replace workers whose threads have exited (an injected thread
    /// death, or a real one via an abort-on-unwind payload that escaped
    /// `catch_unwind`). The slot state is reset to idle before the new
    /// thread starts, so a stale result can never leak into the next
    /// execution. Returns the number of workers replaced.
    fn respawn_dead(&mut self) -> usize {
        let mut replaced = 0usize;
        for (slot, h) in self.handles.iter_mut().enumerate() {
            let sh = &self.shared[slot];
            // `dead` is published under the slot lock before the thread
            // exits, so a just-died worker is seen even while the OS is
            // still tearing its thread down; `is_finished` covers any
            // exit path that never reached the flag.
            if !lock_worker(sh).dead && !h.is_finished() {
                continue;
            }
            {
                let mut st = lock_worker(sh);
                st.job = None;
                st.finished = st.submitted;
                st.result = Ok(());
                st.shutdown = false;
                st.dead = false;
            }
            let fresh = Self::spawn_worker(sh, slot);
            let dead = std::mem::replace(h, fresh);
            let _ = dead.join();
            replaced += 1;
        }
        replaced
    }

    /// Hand a job to an idle worker. Debug-asserts idleness: the
    /// executor submits exactly one job per worker per execution.
    fn submit(&self, worker: usize, job: Job) {
        let sh = &self.shared[worker];
        let mut st = lock_worker(sh);
        debug_assert!(
            st.job.is_none() && st.finished == st.submitted,
            "worker {worker} still busy"
        );
        st.job = Some(job);
        st.submitted += 1;
        sh.cv.notify_all();
    }

    /// Block until every submitted job has finished; the first error in
    /// worker order wins (deterministic, matching the reduction order).
    fn wait_all(&self) -> Result<()> {
        let mut first_err: Option<SpttnError> = None;
        for sh in &self.shared {
            let mut st = lock_worker(sh);
            while st.finished != st.submitted {
                st = sh.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            if first_err.is_none() {
                if let Err(e) = std::mem::replace(&mut st.result, Ok(())) {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for sh in &self.shared {
            lock_worker(sh).shutdown = true;
            sh.cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &WorkerShared, slot: usize) {
    // Errors report the *tile* index; pool slot `s` runs tile `s + 1`
    // (tile 0 stays on the calling thread).
    let tile_id = slot + 1;
    loop {
        let job = {
            let mut st = lock_worker(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(j) = st.job.take() {
                    break j;
                }
                st = shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Deterministic fault injection (tests/faults.rs). `die` also
        // exits this thread after reporting, exercising `respawn_dead`.
        let die = faults::claim_worker_fault(slot);
        // A panic inside the engines must not kill the worker (the
        // submitter would deadlock waiting for `finished`); surface it
        // as a structured `WorkerPanic` that fails only this execution.
        let res = catch_unwind(AssertUnwindSafe(|| {
            if die.is_some() {
                panic!("injected fault: worker panic");
            }
            run_job(job)
        }))
        .unwrap_or_else(|p| {
            Err(SpttnError::WorkerPanic {
                worker: tile_id,
                payload: panic_payload(p.as_ref()),
            })
        });
        let mut st = lock_worker(shared);
        st.result = res;
        st.finished = st.submitted;
        if die == Some(true) {
            // Simulated thread death: publish the death under the same
            // lock as the result, so the submitter is never left
            // waiting and the next execution's `respawn_dead` cannot
            // miss the still-tearing-down thread.
            st.dead = true;
        }
        shared.cv.notify_all();
        drop(st);
        if die == Some(true) {
            return;
        }
    }
}

/// The plan-once/execute-many parallel engine: leaf-balanced CSF root
/// tiles, one preallocated [`Workspace`] and private dense partial per
/// tile, and a persistent worker pool of `tiles − 1` threads (the
/// caller's thread executes tile 0).
///
/// After construction, [`ParallelExecutor::execute_into`] performs zero
/// heap allocations on the success path, and its output is
/// run-to-run deterministic at a fixed thread count (see the
/// [module docs](self)). The `spttn` facade's `Executor` owns one of
/// these when a plan is bound with more than one thread.
pub struct ParallelExecutor {
    tiles: Vec<CsfTile>,
    workspaces: Vec<Workspace>,
    /// One private dense partial per tile; empty for pattern-sharing
    /// sparse outputs, which reduce by disjoint leaf ranges instead.
    partials: Vec<DenseTensor>,
    pool: WorkerPool,
    /// Compiled tape engine shared by every tile (one immutable program,
    /// per-tile mutable state in each workspace); `None` runs the
    /// recursive interpreter.
    tape: Option<Arc<CompiledTape>>,
    /// Per-level node counts of the CSF the tiles were computed from:
    /// a cheap structural guard (O(order) to compare, allocation-free)
    /// that rejects execution against a tensor the tiling does not
    /// cover. Same-shape value updates (the supported rebinding) keep
    /// these counts; same-nnz pattern changes are caught here.
    level_nnz: Vec<usize>,
    /// Aggregated microkernel stats of the most recent execution.
    stats: ExecStats,
}

impl std::fmt::Debug for ParallelExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelExecutor")
            .field("tiles", &self.tiles.len())
            .field("workers", &self.pool.len())
            .field("level_nnz", &self.level_nnz)
            .finish()
    }
}

impl ParallelExecutor {
    /// Partition `csf` into at most `n_threads` leaf-balanced tiles and
    /// preallocate every per-tile resource (workspaces from the plan's
    /// buffer specs, dense partials from the kernel's output shape) plus
    /// the persistent worker pool.
    pub fn new(
        kernel: &Kernel,
        path: &ContractionPath,
        forest: &LoopForest,
        specs: &[BufferSpec],
        csf: &Csf,
        n_threads: usize,
    ) -> ParallelExecutor {
        let tiles = csf.partition(n_threads.max(1));
        let workspaces: Vec<Workspace> = tiles
            .iter()
            .map(|_| Workspace::from_specs(kernel, path, forest, specs))
            .collect();
        let partials: Vec<DenseTensor> = if kernel.output_sparse {
            Vec::new()
        } else {
            let odims = kernel.ref_dims(&kernel.output);
            tiles.iter().map(|_| DenseTensor::zeros(&odims)).collect()
        };
        let pool = WorkerPool::new(tiles.len().saturating_sub(1));
        ParallelExecutor {
            tiles,
            workspaces,
            partials,
            pool,
            tape: None,
            level_nnz: (0..csf.order()).map(|k| csf.level_nnz(k)).collect(),
            stats: ExecStats::default(),
        }
    }

    /// Switch this executor to the tape engine (builder style): every
    /// tile runs `tape` instead of the interpreter, and each per-tile
    /// workspace preallocates its tape state here so executions stay
    /// allocation-free. The tape must be compiled from the same plan
    /// the workspaces were built from.
    pub fn with_tape(mut self, tape: Arc<CompiledTape>) -> ParallelExecutor {
        for ws in &mut self.workspaces {
            ws.prepare_tape(&tape);
        }
        self.tape = Some(tape);
        self
    }

    /// The compiled tape this executor runs, when on the tape engine.
    pub fn tape(&self) -> Option<&Arc<CompiledTape>> {
        self.tape.as_ref()
    }

    /// Number of tiles (= executing threads, counting the caller's).
    pub fn n_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// The root tiles, in execution/reduction order.
    pub fn tiles(&self) -> &[CsfTile] {
        &self.tiles
    }

    /// The per-tile workspaces (exposed so callers can assert buffer
    /// stability across executions).
    pub fn workspaces(&self) -> &[Workspace] {
        &self.workspaces
    }

    /// Microkernel dispatch counters of the most recent execution,
    /// aggregated across all tiles/threads.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Execute the plan across the pool, **accumulating** into `out`
    /// (zero it first for `=` semantics). Tiles 1… run on the persistent
    /// workers while tile 0 runs on the calling thread; dense partials
    /// are then tree-reduced in fixed tile order and added into `out`,
    /// while sparse outputs were already written to disjoint leaf
    /// ranges. Zero heap allocations on the success path.
    pub fn execute_into(
        &mut self,
        kernel: &Kernel,
        path: &ContractionPath,
        forest: &LoopForest,
        csf: &Csf,
        factors_by_slot: &[DenseTensor],
        out: OutputMut<'_>,
    ) -> Result<()> {
        self.execute_into_guarded(kernel, path, forest, csf, factors_by_slot, out, None)
    }

    /// [`ParallelExecutor::execute_into`] with a cancellation/deadline
    /// guard shared by every tile: each worker checks it at its own
    /// root-iteration boundaries, so the whole fan-out stops within one
    /// root subtree per thread.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_into_guarded(
        &mut self,
        kernel: &Kernel,
        path: &ContractionPath,
        forest: &LoopForest,
        csf: &Csf,
        factors_by_slot: &[DenseTensor],
        out: OutputMut<'_>,
        guard: Option<&RunGuard>,
    ) -> Result<()> {
        // Replace any workers that died since the last execution (a
        // no-op — `JoinHandle::is_finished` per worker — on the healthy
        // path, so the zero-allocation contract holds there).
        self.pool.respawn_dead();
        if csf.order() != self.level_nnz.len()
            || (0..csf.order()).any(|k| csf.level_nnz(k) != self.level_nnz[k])
        {
            return Err(SpttnError::Execution(
                "parallel executor was tiled for a CSF with a different structure; \
                 rebuild it for the new tensor (only same-pattern value updates reuse a tiling)"
                    .into(),
            ));
        }
        // Validate the caller's output up front, so a shape error leaves
        // the partials untouched and no worker starts.
        validate_output(kernel, &out, csf.nnz())?;
        let n = self.tiles.len();
        debug_assert_eq!(self.pool.len() + 1, n.max(1));
        // Raw bases for the per-tile exclusive targets; all derived
        // before any job is submitted so the borrows stay disjoint.
        let ws_base = self.workspaces.as_mut_ptr();
        let shared = Job {
            kernel,
            path,
            forest,
            tape: self.tape.as_ref().map_or(std::ptr::null(), Arc::as_ptr),
            csf,
            tile: std::ptr::null(),
            factors: factors_by_slot.as_ptr(),
            factors_len: factors_by_slot.len(),
            ws: std::ptr::null_mut(),
            out: JobOut::Sparse(std::ptr::null_mut(), 0),
            guard: guard.map_or(std::ptr::null(), |g| g as *const RunGuard),
        };
        match out {
            OutputMut::Dense(d) => {
                let part_base = self.partials.as_mut_ptr();
                for i in 1..n {
                    // SAFETY: each job gets a distinct workspace/partial.
                    let job = Job {
                        tile: &self.tiles[i],
                        ws: unsafe { ws_base.add(i) },
                        out: JobOut::Dense(unsafe { part_base.add(i) }),
                        ..shared
                    };
                    self.pool.submit(i - 1, job);
                }
                let job0 = Job {
                    tile: &self.tiles[0],
                    ws: ws_base,
                    out: JobOut::Dense(part_base),
                    ..shared
                };
                let r0 = run_tile0(&self.pool, job0);
                let rw = self.pool.wait_all();
                r0?;
                rw?;
                tree_reduce_partials(&mut self.partials);
                for (dv, sv) in d.as_mut_slice().iter_mut().zip(self.partials[0].as_slice()) {
                    *dv += sv;
                }
            }
            OutputMut::Sparse(v) => {
                let vp = v.as_mut_ptr();
                for i in 1..n {
                    let tile = &self.tiles[i];
                    // SAFETY: leaf ranges of distinct tiles are disjoint.
                    let job = Job {
                        tile,
                        ws: unsafe { ws_base.add(i) },
                        out: JobOut::Sparse(
                            unsafe { vp.add(tile.leaf_range().start) },
                            tile.leaf_nnz(),
                        ),
                        ..shared
                    };
                    self.pool.submit(i - 1, job);
                }
                let t0 = &self.tiles[0];
                // SAFETY: tile 0's leaf range starts inside `v` and is
                // disjoint from every range handed to the workers above.
                let job0 = Job {
                    tile: t0,
                    ws: ws_base,
                    out: JobOut::Sparse(unsafe { vp.add(t0.leaf_range().start) }, t0.leaf_nnz()),
                    ..shared
                };
                let r0 = run_tile0(&self.pool, job0);
                let rw = self.pool.wait_all();
                r0?;
                rw?;
            }
        }
        self.stats = ExecStats::default();
        for ws in &self.workspaces {
            let s = ws.stats();
            self.stats.merge(&s);
        }
        Ok(())
    }
}

/// Run tile 0's job on the calling thread, panic-safely: a panic here
/// must still wait for the in-flight workers (whose jobs point into the
/// executor's buffers) before control leaves the executor, and then
/// surfaces as a structured [`SpttnError::WorkerPanic`] (worker 0 = the
/// calling thread) instead of unwinding through the caller.
fn run_tile0(pool: &WorkerPool, job: Job) -> Result<()> {
    match catch_unwind(AssertUnwindSafe(|| {
        if faults::claim_tile0_fault() {
            panic!("injected fault: tile-0 panic");
        }
        run_job(job)
    })) {
        Ok(r) => r,
        Err(p) => {
            let _ = pool.wait_all();
            Err(SpttnError::WorkerPanic {
                worker: 0,
                payload: panic_payload(p.as_ref()),
            })
        }
    }
}

impl Clone for ParallelExecutor {
    /// Clones tiles, workspaces, and partials, and spawns a **fresh**
    /// worker pool of the same size (threads are not shareable state).
    fn clone(&self) -> ParallelExecutor {
        ParallelExecutor {
            tiles: self.tiles.clone(),
            workspaces: self.workspaces.clone(),
            partials: self.partials.clone(),
            pool: WorkerPool::new(self.pool.len()),
            tape: self.tape.clone(),
            level_nnz: self.level_nnz.clone(),
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_reduce_is_a_sum() {
        for n in 1..=9usize {
            let mut partials: Vec<DenseTensor> = (0..n)
                .map(|i| {
                    let mut t = DenseTensor::zeros(&[3]);
                    t.fill((i + 1) as f64);
                    t
                })
                .collect();
            tree_reduce_partials(&mut partials);
            let want = (n * (n + 1) / 2) as f64;
            assert_eq!(partials[0].as_slice(), &[want, want, want]);
        }
    }

    #[test]
    fn pool_survives_reuse_and_drop() {
        // No public job API to exercise directly here (jobs need a full
        // plan); creating and dropping pools must not hang or leak.
        let pool = WorkerPool::new(3);
        assert_eq!(pool.len(), 3);
        drop(pool);
        let pool = WorkerPool::new(0);
        assert!(pool.wait_all().is_ok());
    }
}
