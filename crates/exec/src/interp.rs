//! Loop-forest interpreter.
//!
//! Executes a planned fused loop nest ([`LoopForest`]) over a CSF sparse
//! tensor and dense factor operands, producing the kernel output. The
//! interpreter realizes the paper's execution model directly:
//!
//! - **Sparse vertices** iterate the children of the current CSF node at
//!   their level; the descent is tracked per level, and when a sparse
//!   loop sits below a *densely* iterated sparse mode the node is
//!   re-resolved by binary search (absent coordinates contribute exactly
//!   zero, by the lineage-pruning argument of Sec. 4).
//! - **Dense vertices** iterate the full index dimension. Innermost
//!   dense loops covering a single term are dispatched to the
//!   [`crate::blas`] microkernels (AXPY/DOT/elementwise for one loop,
//!   GER/GEMV for two), mirroring the paper's Sec. 5 runtime.
//! - **Intermediate buffers** follow Eq. 5: each non-final term owns the
//!   dense buffer computed by [`spttn_ir::buffers_for_forest`]; the
//!   buffer is zeroed exactly at its split vertex — once per iteration
//!   of the deepest loop shared by producer and consumer — and indexed
//!   by the stored (non-ancestor) coordinates only.
//!
//! Execution is split into a *preallocation* stage and a *run* stage so
//! iterative algorithms (CP-ALS, HOOI) can execute the same nest many
//! times without touching the heap: a [`Workspace`] holds every
//! intermediate buffer plus the interpreter's cursor state, sized purely
//! from the plan (no operand data), and [`execute_forest_into`]
//! accumulates into a caller-owned output through [`OutputMut`]. The
//! one-shot [`execute_forest`] remains as a convenience wrapper that
//! allocates a fresh workspace and output per call.

use crate::blas;
use crate::guard::RunGuard;
use spttn_core::{Result, SpttnError};
use spttn_ir::{
    buffers_for_forest, BufferSpec, ContractionPath, IndexId, Kernel, LoopForest, LoopNode,
    LoopVertex, Operand, VertexKind,
};
use spttn_tensor::{CooTensor, Csf, CsfTile, DenseTensor};

/// Per-execution counters of microkernel dispatches and sparse-node
/// searches.
///
/// One instance lives in every [`Workspace`]; [`execute_forest_into`]
/// resets it at the start of each run, so after a call the workspace's
/// stats describe exactly that execution. Parallel runs aggregate one
/// instance per worker with [`ExecStats::merge`]. The counters are
/// plain `u64`s bumped on the executing thread — the hot loops touch
/// **no atomics**; the process-global [`stats::snapshot`] shim is fed
/// once per execution, at fold time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// AXPY dispatches.
    pub axpy: u64,
    /// DOT dispatches.
    pub dot: u64,
    /// Elementwise ternary dispatches.
    pub xmul: u64,
    /// GER dispatches.
    pub ger: u64,
    /// GEMV dispatches.
    pub gemv: u64,
    /// Sparse-node re-resolutions: one per CSF level that had to be
    /// searched (rather than tracked by an enclosing sparse loop).
    pub node_searches: u64,
    /// Coordinate comparisons performed by those searches — binary
    /// search depth on the interpreter, galloping finger probes on the
    /// tape engine (see [`crate::tape`]).
    pub search_probes: u64,
    /// Elements processed by AXPY dispatches (Σ n per call).
    pub axpy_elems: u64,
    /// Elements processed by DOT dispatches (Σ n per call).
    pub dot_elems: u64,
    /// Elements processed by elementwise ternary dispatches.
    pub xmul_elems: u64,
    /// Elements processed by GER dispatches (Σ m·n per call).
    pub ger_elems: u64,
    /// Elements processed by GEMV dispatches (Σ m·n per call).
    pub gemv_elems: u64,
}

impl ExecStats {
    /// Add another counter set into this one (aggregation across
    /// parallel workers).
    pub fn merge(&mut self, other: &ExecStats) {
        self.axpy += other.axpy;
        self.dot += other.dot;
        self.xmul += other.xmul;
        self.ger += other.ger;
        self.gemv += other.gemv;
        self.node_searches += other.node_searches;
        self.search_probes += other.search_probes;
        self.axpy_elems += other.axpy_elems;
        self.dot_elems += other.dot_elems;
        self.xmul_elems += other.xmul_elems;
        self.ger_elems += other.ger_elems;
        self.gemv_elems += other.gemv_elems;
    }

    /// Total microkernel dispatches (searches are not dispatches and
    /// are excluded).
    pub fn total(&self) -> u64 {
        self.axpy + self.dot + self.xmul + self.ger + self.gemv
    }

    /// Total elements processed across all microkernel dispatches —
    /// the per-call work the call counts in [`ExecStats::total`] hide.
    pub fn elems(&self) -> u64 {
        self.axpy_elems + self.dot_elems + self.xmul_elems + self.ger_elems + self.gemv_elems
    }

    /// Floating-point operations implied by the element counters (two
    /// flops — one multiply, one add — per element for every kernel;
    /// XMUL's extra multiply makes it three).
    pub fn flops(&self) -> u64 {
        2 * (self.axpy_elems + self.dot_elems + self.ger_elems + self.gemv_elems)
            + 3 * self.xmul_elems
    }
}

/// Process-wide counters of microkernel dispatches, for tests and
/// perf diagnostics. Monotonically increasing; read with
/// [`stats::snapshot`] and compare before/after deltas. This is the
/// compat shim over atomic totals — per-execution numbers live in
/// [`ExecStats`] (see [`Workspace::stats`]).
///
/// The shim is fed by an internal fold, called exactly once per
/// (serial or per-tile) execution after the run completes. Hot loops
/// never touch these atomics; [`stats::rmw_ops`] counts the individual
/// atomic read-modify-write operations so tests can assert the
/// fold-only contract (a handful of RMWs per execution, independent of
/// how many microkernels dispatched).
pub mod stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    pub(crate) static AXPY: AtomicU64 = AtomicU64::new(0);
    pub(crate) static DOT: AtomicU64 = AtomicU64::new(0);
    pub(crate) static XMUL: AtomicU64 = AtomicU64::new(0);
    pub(crate) static GER: AtomicU64 = AtomicU64::new(0);
    pub(crate) static GEMV: AtomicU64 = AtomicU64::new(0);
    /// Meta-counter of atomic RMWs performed on the dispatch counters.
    static RMW_OPS: AtomicU64 = AtomicU64::new(0);

    /// Cumulative dispatch counts since process start.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Snapshot {
        /// AXPY dispatches.
        pub axpy: u64,
        /// DOT dispatches.
        pub dot: u64,
        /// Elementwise ternary dispatches.
        pub xmul: u64,
        /// GER dispatches.
        pub ger: u64,
        /// GEMV dispatches.
        pub gemv: u64,
    }

    /// Read the counters.
    pub fn snapshot() -> Snapshot {
        Snapshot {
            axpy: AXPY.load(Ordering::Relaxed),
            dot: DOT.load(Ordering::Relaxed),
            xmul: XMUL.load(Ordering::Relaxed),
            ger: GER.load(Ordering::Relaxed),
            gemv: GEMV.load(Ordering::Relaxed),
        }
    }

    /// Number of atomic read-modify-writes ever performed on the
    /// dispatch counters. A fold performs at most five (one per
    /// nonzero counter), so over any execution window this grows by
    /// `O(executions)`, never `O(dispatches)` — the no-alloc test
    /// asserts exactly that.
    pub fn rmw_ops() -> u64 {
        RMW_OPS.load(Ordering::Relaxed)
    }

    /// Fold one execution's counters into the global shim (called once
    /// per serial execution / per parallel tile, after the run).
    pub(crate) fn fold(s: &super::ExecStats) {
        let add = |c: &AtomicU64, v: u64| {
            if v != 0 {
                c.fetch_add(v, Ordering::Relaxed);
                RMW_OPS.fetch_add(1, Ordering::Relaxed);
            }
        };
        add(&AXPY, s.axpy);
        add(&DOT, s.dot);
        add(&XMUL, s.xmul);
        add(&GER, s.ger);
        add(&GEMV, s.gemv);
    }
}

/// Output of a contraction: dense, or sharing the sparse input's pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum ContractionOutput {
    /// Dense output tensor (MTTKRP, TTMc, ...).
    Dense(DenseTensor),
    /// Pattern-sharing sparse output (TTTP / SDDMM-like), in COO form
    /// with the sparse input's coordinates.
    Sparse(CooTensor),
}

impl ContractionOutput {
    /// Densify (cheap for dense, materializes for sparse outputs).
    pub fn to_dense(&self) -> DenseTensor {
        match self {
            ContractionOutput::Dense(t) => t.clone(),
            ContractionOutput::Sparse(c) => c.to_dense(),
        }
    }

    /// Borrow the dense output, if this is one.
    pub fn as_dense(&self) -> Option<&DenseTensor> {
        match self {
            ContractionOutput::Dense(t) => Some(t),
            ContractionOutput::Sparse(_) => None,
        }
    }
}

/// Slot-ordered factor access: the executor hands an owned slice, the
/// one-shot wrapper hands borrowed references — neither path copies
/// tensor data. The sparse slot's entry is never read.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Slots<'a> {
    /// One owned tensor per kernel input slot.
    Owned(&'a [DenseTensor]),
    /// One borrowed tensor per kernel input slot.
    Refs(&'a [&'a DenseTensor]),
}

impl<'a> Slots<'a> {
    #[inline]
    pub(crate) fn get(self, slot: usize) -> &'a DenseTensor {
        match self {
            Slots::Owned(s) => &s[slot],
            Slots::Refs(r) => r[slot],
        }
    }

    #[inline]
    fn len(self) -> usize {
        match self {
            Slots::Owned(s) => s.len(),
            Slots::Refs(r) => r.len(),
        }
    }
}

/// Check that the CSF's per-level dimensions match the kernel's written
/// index order. Shared by every operand validator so they cannot drift.
fn validate_csf_dims(kernel: &Kernel, csf: &Csf) -> Result<()> {
    let sparse_ref = kernel.sparse_ref();
    if csf.order() != sparse_ref.indices.len() {
        return Err(SpttnError::Shape(format!(
            "sparse tensor '{}' has {} modes in the kernel but the CSF has {}",
            sparse_ref.name,
            sparse_ref.indices.len(),
            csf.order()
        )));
    }
    for level in 0..csf.order() {
        let want = kernel.dim(kernel.index_at_level(level));
        let got = csf.dims()[csf.mode_order()[level]];
        if want != got {
            return Err(SpttnError::Shape(format!(
                "sparse mode at CSF level {level} has dimension {got}, kernel expects {want}"
            )));
        }
    }
    Ok(())
}

/// Check one dense factor against its kernel reference, allocation-free
/// on the success path.
fn validate_factor(kernel: &Kernel, r: &spttn_ir::TensorRef, t: &DenseTensor) -> Result<()> {
    if t.order() != r.indices.len()
        || r.indices
            .iter()
            .enumerate()
            .any(|(pos, &i)| t.dims()[pos] != kernel.dim(i))
    {
        return Err(SpttnError::Shape(format!(
            "factor '{}' has dims {:?}, kernel expects {:?}",
            r.name,
            t.dims(),
            kernel.ref_dims(r)
        )));
    }
    Ok(())
}

/// Validate bound operands against a kernel: factor count, per-level
/// CSF dimensions (the CSF must be stored in the kernel's written index
/// order for the sparse tensor), and dense factor shapes. Shared by the
/// executor and the `spttn` facade so the two cannot drift.
pub fn validate_operands(kernel: &Kernel, csf: &Csf, dense_factors: &[&DenseTensor]) -> Result<()> {
    let n_dense = kernel.inputs.len() - 1;
    if dense_factors.len() != n_dense {
        return Err(SpttnError::Execution(format!(
            "expected {n_dense} dense factors, got {}",
            dense_factors.len()
        )));
    }
    validate_csf_dims(kernel, csf)?;
    let mut next = 0usize;
    for (slot, r) in kernel.inputs.iter().enumerate() {
        if slot == kernel.sparse_input {
            continue;
        }
        validate_factor(kernel, r, dense_factors[next])?;
        next += 1;
    }
    Ok(())
}

pub(crate) fn validate_slots(kernel: &Kernel, csf: &Csf, slots: Slots<'_>) -> Result<()> {
    if slots.len() != kernel.inputs.len() {
        return Err(SpttnError::Execution(format!(
            "expected {} slot-ordered factors, got {}",
            kernel.inputs.len(),
            slots.len()
        )));
    }
    validate_csf_dims(kernel, csf)?;
    for (slot, r) in kernel.inputs.iter().enumerate() {
        if slot == kernel.sparse_input {
            continue;
        }
        validate_factor(kernel, r, slots.get(slot))?;
    }
    Ok(())
}

/// Validate *slot-ordered* operands against a kernel: one tensor per
/// kernel input slot (the sparse slot holds an ignored placeholder).
/// Allocation-free on the success path so it can run per execution.
pub fn validate_slotted_operands(
    kernel: &Kernel,
    csf: &Csf,
    factors_by_slot: &[DenseTensor],
) -> Result<()> {
    validate_slots(kernel, csf, Slots::Owned(factors_by_slot))
}

/// Preallocated mutable state for repeated executions of one plan.
///
/// Holds every Eq.-5 intermediate buffer plus the interpreter's cursor
/// arrays, sized purely from `(kernel, path, forest)` — no operand data
/// is needed, so a workspace can be built before any tensor is bound.
/// After construction, [`execute_forest_into`] performs no heap
/// allocation.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// Per term: the Eq.-5 buffer (scalar placeholder for the final term).
    pub(crate) buffers: Vec<DenseTensor>,
    /// Stored index ids of each term's buffer (producer loop order).
    pub(crate) buffer_inds: Vec<Vec<IndexId>>,
    /// Current coordinate per kernel index.
    coords: Vec<usize>,
    /// Current CSF node per tree level (set by enclosing sparse loops).
    nodes: Vec<Option<usize>>,
    /// Dummy dense target used when the kernel's output is sparse.
    pub(crate) scratch_dense: DenseTensor,
    /// Microkernel dispatch counters of the most recent execution.
    pub(crate) stats: ExecStats,
    /// Fingerprint of the forest the buffers were sized for, so
    /// [`execute_forest_into`] can reject a workspace built for a
    /// different nest (whose buffer shapes would silently disagree).
    pub(crate) forest_stamp: u64,
    /// Preallocated mutable state of the tape engine, present once
    /// [`Workspace::prepare_tape`] ran (the executors do this at bind
    /// time so tape executions stay allocation-free).
    pub(crate) tape: Option<crate::tape::TapeState>,
}

/// Structural fingerprint of a loop forest (allocation-free).
pub(crate) fn forest_stamp(forest: &LoopForest) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    forest.hash(&mut h);
    h.finish()
}

impl Workspace {
    /// Build a workspace for a planned nest, inferring buffer specs via
    /// [`buffers_for_forest`].
    pub fn new(kernel: &Kernel, path: &ContractionPath, forest: &LoopForest) -> Self {
        Self::from_specs(
            kernel,
            path,
            forest,
            &buffers_for_forest(kernel, path, forest),
        )
    }

    /// Build a workspace from precomputed buffer specs (e.g. the specs a
    /// symbolic plan carries); `forest` must be the nest the specs were
    /// computed for.
    pub fn from_specs(
        kernel: &Kernel,
        path: &ContractionPath,
        forest: &LoopForest,
        specs: &[BufferSpec],
    ) -> Self {
        let mut buffers: Vec<DenseTensor> =
            (0..path.len()).map(|_| DenseTensor::zeros(&[])).collect();
        let mut buffer_inds: Vec<Vec<IndexId>> = vec![Vec::new(); path.len()];
        for spec in specs {
            buffers[spec.producer] = DenseTensor::zeros(&spec.dims);
            buffer_inds[spec.producer] = spec.inds.clone();
        }
        Workspace {
            buffers,
            buffer_inds,
            coords: vec![0; kernel.num_indices()],
            nodes: vec![None; kernel.csf_index_order().len()],
            scratch_dense: DenseTensor::zeros(&[]),
            stats: ExecStats::default(),
            forest_stamp: forest_stamp(forest),
            tape: None,
        }
    }

    /// Preallocate the mutable runtime state of a compiled tape (see
    /// [`crate::tape::CompiledTape`]) inside this workspace, so tape
    /// executions after this call perform zero heap allocations. The
    /// workspace must have been built for the same plan the tape was
    /// compiled from. Idempotent for a matching tape; a state prepared
    /// for a different tape is replaced.
    pub fn prepare_tape(&mut self, tape: &crate::tape::CompiledTape) {
        if !self.tape.as_ref().is_some_and(|s| s.matches(tape)) {
            self.tape = Some(tape.new_state());
        }
    }

    /// Microkernel dispatch counters of the most recent execution run
    /// with this workspace.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// The intermediate buffers, one per path term (final term holds a
    /// scalar placeholder). Exposed so callers can assert allocation
    /// stability across executions.
    pub fn buffers(&self) -> &[DenseTensor] {
        &self.buffers
    }

    /// Total preallocated intermediate elements.
    pub fn total_elems(&self) -> usize {
        self.buffers.iter().map(DenseTensor::len).sum()
    }
}

/// A caller-owned output target for [`execute_forest_into`].
#[derive(Debug)]
pub enum OutputMut<'a> {
    /// Dense output tensor, shaped like the kernel output.
    Dense(&'a mut DenseTensor),
    /// Values of a pattern-sharing sparse output, parallel with the
    /// CSF's leaves.
    Sparse(&'a mut [f64]),
}

/// Execute a fused loop forest into a caller-owned output, reusing a
/// preallocated [`Workspace`].
///
/// `factors_by_slot` holds one tensor per kernel input slot; the entry
/// at `kernel.sparse_input` is never read (pass any placeholder).
/// Contributions are **accumulated** into `out` — the caller zeroes it
/// first for plain `=` semantics, or leaves existing values in place for
/// `+=` accumulation. After the workspace exists, this function performs
/// zero heap allocations on the success path.
pub fn execute_forest_into(
    kernel: &Kernel,
    path: &ContractionPath,
    forest: &LoopForest,
    csf: &Csf,
    factors_by_slot: &[DenseTensor],
    ws: &mut Workspace,
    out: OutputMut<'_>,
) -> Result<()> {
    execute_forest_into_guarded(kernel, path, forest, csf, factors_by_slot, ws, out, None)
}

/// [`execute_forest_into`] with a cancellation/deadline guard, checked
/// once up front and then at every root-loop iteration, so cancellation
/// latency is bounded by one root subtree.
#[allow(clippy::too_many_arguments)]
pub fn execute_forest_into_guarded(
    kernel: &Kernel,
    path: &ContractionPath,
    forest: &LoopForest,
    csf: &Csf,
    factors_by_slot: &[DenseTensor],
    ws: &mut Workspace,
    out: OutputMut<'_>,
    guard: Option<&RunGuard>,
) -> Result<()> {
    execute_slots(
        kernel,
        path,
        forest,
        csf,
        csf.root_range(),
        0,
        csf.nnz(),
        Slots::Owned(factors_by_slot),
        ws,
        out,
        guard,
    )
}

/// Execute a fused loop forest over one [`CsfTile`] of the sparse
/// tensor, reusing a preallocated [`Workspace`].
///
/// Identical to [`execute_forest_into`] but restricted to the tile's
/// root subtrees: only the tile's root fibers are iterated (and binary
/// searches for densely-iterated sparse root modes are confined to the
/// tile), so the call computes exactly the tile's additive contribution
/// to the full contraction. A dense `out` receives that partial sum; a
/// sparse `out` must be the slice of output values covering exactly the
/// tile's [`CsfTile::leaf_range`] (tiles write disjoint leaf ranges, so
/// pattern-sharing outputs need no cross-tile reduction). Executing
/// every tile of a [`Csf::partition`] and summing dense partials in a
/// fixed order reproduces the full result deterministically.
#[allow(clippy::too_many_arguments)]
pub fn execute_forest_tile_into(
    kernel: &Kernel,
    path: &ContractionPath,
    forest: &LoopForest,
    csf: &Csf,
    tile: &CsfTile,
    factors_by_slot: &[DenseTensor],
    ws: &mut Workspace,
    out: OutputMut<'_>,
) -> Result<()> {
    execute_forest_tile_into_guarded(
        kernel,
        path,
        forest,
        csf,
        tile,
        factors_by_slot,
        ws,
        out,
        None,
    )
}

/// [`execute_forest_tile_into`] with a cancellation/deadline guard (see
/// [`execute_forest_into_guarded`] for the checkpoint cadence).
#[allow(clippy::too_many_arguments)]
pub fn execute_forest_tile_into_guarded(
    kernel: &Kernel,
    path: &ContractionPath,
    forest: &LoopForest,
    csf: &Csf,
    tile: &CsfTile,
    factors_by_slot: &[DenseTensor],
    ws: &mut Workspace,
    out: OutputMut<'_>,
    guard: Option<&RunGuard>,
) -> Result<()> {
    if tile.depth() != csf.order().max(1) {
        return Err(SpttnError::Execution(format!(
            "tile spans {} levels but the CSF has {} (tile built for a different tensor?)",
            tile.depth(),
            csf.order()
        )));
    }
    execute_slots(
        kernel,
        path,
        forest,
        csf,
        tile.root_range(),
        tile.leaf_range().start,
        tile.leaf_nnz(),
        Slots::Owned(factors_by_slot),
        ws,
        out,
        guard,
    )
}

/// Validate an output target against a kernel: dense/sparse kind, the
/// dense dimensions, or the sparse value count (`leaf_len` nonzeros —
/// the whole tensor for a full execution, one tile's leaves for a tiled
/// one). Allocation-free on the success path; shared by the serial core
/// and the parallel executor so the two cannot drift.
pub(crate) fn validate_output(kernel: &Kernel, out: &OutputMut<'_>, leaf_len: usize) -> Result<()> {
    match out {
        OutputMut::Dense(d) => {
            if kernel.output_sparse {
                return Err(SpttnError::Execution(
                    "kernel output shares the sparse pattern; pass OutputMut::Sparse".into(),
                ));
            }
            let oinds = &kernel.output.indices;
            if d.order() != oinds.len()
                || oinds
                    .iter()
                    .enumerate()
                    .any(|(pos, &i)| d.dims()[pos] != kernel.dim(i))
            {
                return Err(SpttnError::Shape(format!(
                    "output has dims {:?}, kernel expects {:?}",
                    d.dims(),
                    kernel.ref_dims(&kernel.output)
                )));
            }
        }
        OutputMut::Sparse(v) => {
            if !kernel.output_sparse {
                return Err(SpttnError::Execution(
                    "kernel output is dense; pass OutputMut::Dense".into(),
                ));
            }
            if v.len() != leaf_len {
                return Err(SpttnError::Shape(format!(
                    "sparse output has {} values, the executed range has {} nonzeros",
                    v.len(),
                    leaf_len
                )));
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn execute_slots(
    kernel: &Kernel,
    path: &ContractionPath,
    forest: &LoopForest,
    csf: &Csf,
    root_range: std::ops::Range<usize>,
    leaf_lo: usize,
    leaf_len: usize,
    slots: Slots<'_>,
    ws: &mut Workspace,
    out: OutputMut<'_>,
    guard: Option<&RunGuard>,
) -> Result<()> {
    validate_slots(kernel, csf, slots)?;
    validate_output(kernel, &out, leaf_len)?;
    if ws.buffers.len() != path.len()
        || ws.coords.len() != kernel.num_indices()
        || ws.forest_stamp != forest_stamp(forest)
    {
        return Err(SpttnError::Execution(
            "workspace does not match the plan (build it from the same kernel/path/forest)".into(),
        ));
    }
    ws.stats = ExecStats::default();
    let Workspace {
        buffers,
        buffer_inds,
        coords,
        nodes,
        scratch_dense,
        stats,
        ..
    } = ws;
    let (out_dense, out_sparse): (&mut DenseTensor, &mut [f64]) = match out {
        OutputMut::Dense(d) => (d, &mut []),
        OutputMut::Sparse(v) => (scratch_dense, v),
    };
    let mut exec = Exec {
        kernel,
        path,
        forest,
        csf,
        root_range,
        leaf_lo,
        factors: slots,
        buffers,
        buffer_inds,
        coords,
        nodes,
        out_dense,
        out_sparse,
        stats,
        node_searches: std::cell::Cell::new(0),
        search_probes: std::cell::Cell::new(0),
        // A no-op guard costs a branch per root iteration; skip it.
        guard: guard.filter(|g| !g.is_noop()),
    };
    let res = exec.run();
    exec.stats.node_searches += exec.node_searches.get();
    exec.stats.search_probes += exec.search_probes.get();
    if res.is_ok() {
        // Feed the global compat shim exactly once per execution — the
        // hot loops above touched no atomics.
        stats::fold(&ws.stats());
    }
    res
}

/// Execute a fused loop forest, allocating a fresh workspace and output.
///
/// `dense_factors` holds one tensor per *non-sparse* kernel input, in
/// input order (the sparse slot is skipped); `csf` is the sparse input,
/// stored in the mode order the kernel's written index order declares.
/// This is the one-shot convenience path; reuse-heavy callers should
/// hold a [`Workspace`] and call [`execute_forest_into`] instead.
pub fn execute_forest(
    kernel: &Kernel,
    path: &ContractionPath,
    forest: &LoopForest,
    csf: &Csf,
    dense_factors: &[&DenseTensor],
) -> Result<ContractionOutput> {
    validate_operands(kernel, csf, dense_factors)?;
    // Slot-ordered *references* — no tensor data is copied.
    let dummy = DenseTensor::zeros(&[]);
    let mut refs: Vec<&DenseTensor> = Vec::with_capacity(kernel.inputs.len());
    let mut next = 0usize;
    for slot in 0..kernel.inputs.len() {
        if slot == kernel.sparse_input {
            refs.push(&dummy);
        } else {
            refs.push(dense_factors[next]);
            next += 1;
        }
    }
    let mut ws = Workspace::new(kernel, path, forest);
    if kernel.output_sparse {
        let mut vals = vec![0.0; csf.nnz()];
        execute_slots(
            kernel,
            path,
            forest,
            csf,
            csf.root_range(),
            0,
            csf.nnz(),
            Slots::Refs(&refs),
            &mut ws,
            OutputMut::Sparse(&mut vals),
            None,
        )?;
        Ok(ContractionOutput::Sparse(csf.to_coo().with_vals(vals)))
    } else {
        let mut out = DenseTensor::zeros(&kernel.ref_dims(&kernel.output));
        execute_slots(
            kernel,
            path,
            forest,
            csf,
            csf.root_range(),
            0,
            csf.nnz(),
            Slots::Refs(&refs),
            &mut ws,
            OutputMut::Dense(&mut out),
            None,
        )?;
        Ok(ContractionOutput::Dense(out))
    }
}

/// Offset of the current coordinates within a tensor addressed by
/// `inds` (one index id per tensor mode, matching `strides`).
fn offset_in(inds: &[IndexId], strides: &[usize], coords: &[usize]) -> usize {
    inds.iter().zip(strides).map(|(&i, &s)| coords[i] * s).sum()
}

/// Which backing store a strided source lives in.
#[derive(Debug, Clone, Copy)]
enum BufSel {
    /// Dense factor input (kernel input slot).
    Factor(usize),
    /// Intermediate buffer of a term.
    Inter(usize),
}

/// Source operand metadata for microkernel dispatch, relative to one or
/// two candidate loop indices.
#[derive(Debug, Clone, Copy)]
enum SrcMeta {
    /// Constant under both loops (includes the sparse leaf value).
    Const(f64),
    /// Strided access: `data[base + i*s1 + j*s2]`.
    Var {
        buf: BufSel,
        base: usize,
        s1: usize,
        has1: bool,
        s2: usize,
        has2: bool,
    },
}

/// Target metadata for microkernel dispatch.
#[derive(Debug, Clone, Copy)]
enum TgtMeta {
    /// Scalar accumulation cell (loop indices contracted away).
    Cell,
    /// Strided target in the dense output or a term buffer.
    Var {
        out: bool,
        base: usize,
        s1: usize,
        has1: bool,
        s2: usize,
        has2: bool,
    },
}

struct Exec<'a> {
    kernel: &'a Kernel,
    path: &'a ContractionPath,
    forest: &'a LoopForest,
    csf: &'a Csf,
    /// Root fibers this execution covers (the whole tree for the serial
    /// path, one tile's subrange under parallel execution).
    root_range: std::ops::Range<usize>,
    /// First leaf of the covered root subtrees; sparse-output writes are
    /// offset by this so a tile writes its disjoint slice.
    leaf_lo: usize,
    /// Per kernel-input slot; the sparse slot holds an unread placeholder.
    factors: Slots<'a>,
    /// Per term; placeholder scalar for the final term.
    buffers: &'a mut [DenseTensor],
    /// Stored index ids of each term's buffer (producer loop order).
    buffer_inds: &'a [Vec<IndexId>],
    /// Current coordinate per kernel index.
    coords: &'a mut [usize],
    /// Current CSF node per tree level (set by enclosing sparse loops).
    nodes: &'a mut [Option<usize>],
    /// Dense output target (workspace scratch when the output is sparse).
    out_dense: &'a mut DenseTensor,
    /// Sparse output values (empty when the output is dense), covering
    /// leaves `leaf_lo..leaf_lo + out_sparse.len()`.
    out_sparse: &'a mut [f64],
    /// Per-execution microkernel dispatch counters (workspace-owned).
    stats: &'a mut ExecStats,
    /// Search counters, in `Cell`s because [`Exec::resolve_node`] runs
    /// under shared borrows; folded into `stats` after the run.
    node_searches: std::cell::Cell<u64>,
    search_probes: std::cell::Cell<u64>,
    /// Cancellation/deadline checkpoints, consulted at root-loop
    /// iterations only (`None` disables checking entirely).
    guard: Option<&'a RunGuard>,
}

/// Binary search for `target` in a sorted, duplicate-free slice,
/// counting the coordinate comparisons performed (the interpreter's
/// per-visit search depth, reported as [`ExecStats::search_probes`]).
fn binary_search_counting(idx: &[usize], target: usize, probes: &mut u64) -> Option<usize> {
    let (mut lo, mut hi) = (0usize, idx.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        *probes += 1;
        match idx[mid].cmp(&target) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Some(mid),
        }
    }
    None
}

impl<'a> Exec<'a> {
    fn run(&mut self) -> Result<()> {
        if let Some(g) = self.guard {
            g.check("interp")?;
        }
        let roots = &self.forest.roots;
        self.exec_siblings(roots, self.path.len(), true)
    }

    /// Term range covered by a node.
    fn node_range(n: &LoopNode) -> (usize, usize) {
        match n {
            LoopNode::Leaf(t) => (*t, *t + 1),
            LoopNode::Loop(v) => (v.term_lo, v.term_hi),
        }
    }

    /// Execute a sibling list whose parent covers terms ending at
    /// `parent_hi`, zeroing each buffer at its split point: a buffer
    /// splits here when its producer is inside a child and its consumer
    /// is a later sibling (Eq. 5's common-ancestor rule).
    fn exec_siblings(&mut self, nodes: &[LoopNode], parent_hi: usize, at_root: bool) -> Result<()> {
        for n in nodes {
            let (lo, hi) = Self::node_range(n);
            for t in lo..hi {
                if let Some(c) = self.path.terms[t].consumer {
                    if c >= hi && c < parent_hi {
                        self.buffers[t].fill_zero();
                    }
                }
            }
            self.exec_node(n, at_root)?;
        }
        Ok(())
    }

    fn exec_node(&mut self, n: &LoopNode, at_root: bool) -> Result<()> {
        match n {
            LoopNode::Leaf(t) => {
                let term = &self.path.terms[*t];
                let l = self.read_operand(term.left);
                let r = self.read_operand(term.right);
                self.accumulate_cell(*t, l * r);
                Ok(())
            }
            LoopNode::Loop(v) => self.exec_loop(v, at_root),
        }
    }

    fn exec_loop(&mut self, v: &LoopVertex, at_root: bool) -> Result<()> {
        if self.try_blas(v)? {
            return Ok(());
        }
        match v.kind {
            VertexKind::Dense => {
                for x in 0..self.kernel.dim(v.index) {
                    // Root-loop iteration = the cancellation checkpoint:
                    // once per root subtree, never on inner loops.
                    if at_root {
                        if let Some(g) = self.guard {
                            g.check("interp")?;
                        }
                    }
                    self.coords[v.index] = x;
                    self.exec_siblings(&v.children, v.term_hi, false)?;
                }
            }
            VertexKind::Sparse { level } => {
                let Some(range) = self.level_range(level) else {
                    // Coordinate prefix absent from the pattern: every
                    // covered term is prunable, contributions vanish.
                    return Ok(());
                };
                for node in range {
                    if at_root {
                        if let Some(g) = self.guard {
                            g.check("interp")?;
                        }
                    }
                    self.coords[v.index] = self.csf.node_coord(level, node);
                    self.nodes[level] = Some(node);
                    self.exec_siblings(&v.children, v.term_hi, false)?;
                }
                self.nodes[level] = None;
            }
        }
        Ok(())
    }

    /// Node range a sparse loop at `level` iterates, under the current
    /// descent; `None` when the enclosing coordinates are off-pattern.
    /// Level 0 is confined to the executed root range, so a tiled run
    /// sees only its own subtrees.
    fn level_range(&self, level: usize) -> Option<std::ops::Range<usize>> {
        if level == 0 {
            Some(self.root_range.clone())
        } else {
            let parent = self.resolve_node(level - 1)?;
            Some(self.csf.children(level - 1, parent))
        }
    }

    /// CSF node at `level` for the current coordinates: tracked nodes
    /// where an enclosing sparse loop set them, binary search where a
    /// sparse mode was iterated densely (confined to the executed root
    /// range at level 0 — roots outside the tile contribute zero here,
    /// and exactly once in the tile that owns them).
    fn resolve_node(&self, level: usize) -> Option<usize> {
        let mut node: Option<usize> = None;
        for l in 0..=level {
            if let Some(n) = self.nodes[l] {
                node = Some(n);
                continue;
            }
            let range = if l == 0 {
                self.root_range.clone()
            } else {
                self.csf.children(l - 1, node?)
            };
            let target = self.coords[self.kernel.index_at_level(l)];
            let idx = &self.csf.level(l).idx[range.clone()];
            self.node_searches.set(self.node_searches.get() + 1);
            let mut probes = self.search_probes.get();
            let found = binary_search_counting(idx, target, &mut probes);
            self.search_probes.set(probes);
            match found {
                Some(pos) => node = Some(range.start + pos),
                None => return None,
            }
        }
        node
    }

    /// Read an operand's value at the current coordinates.
    fn read_operand(&self, op: Operand) -> f64 {
        match op {
            Operand::Input(i) if i == self.kernel.sparse_input => self
                .resolve_node(self.csf.order() - 1)
                .map_or(0.0, |n| self.csf.leaf_val(n)),
            Operand::Input(i) => {
                let f = self.factors.get(i);
                let off = offset_in(&self.kernel.inputs[i].indices, f.strides(), self.coords);
                f.as_slice()[off]
            }
            Operand::Inter(u) => {
                let b = &self.buffers[u];
                let off = offset_in(&self.buffer_inds[u], b.strides(), self.coords);
                b.as_slice()[off]
            }
        }
    }

    /// Accumulate a term's contribution at the current coordinates.
    fn accumulate_cell(&mut self, t: usize, v: f64) {
        if t + 1 == self.path.len() {
            if self.kernel.output_sparse {
                match self.resolve_node(self.csf.order() - 1) {
                    Some(n) => self.out_sparse[n - self.leaf_lo] += v,
                    // Off-pattern cell of a pattern-sharing output: the
                    // contribution is exactly zero by lineage pruning.
                    None => debug_assert_eq!(v, 0.0),
                }
            } else {
                let off = offset_in(
                    &self.kernel.output.indices,
                    self.out_dense.strides(),
                    self.coords,
                );
                self.out_dense.as_mut_slice()[off] += v;
            }
        } else {
            let off = offset_in(&self.buffer_inds[t], self.buffers[t].strides(), self.coords);
            self.buffers[t].as_mut_slice()[off] += v;
        }
    }

    // ----- BLAS microkernel dispatch ---------------------------------

    /// Dispatch an innermost dense loop (or dense loop pair) covering a
    /// single term to a BLAS microkernel. Returns `false` when the shape
    /// does not match a kernel; the generic interpreter then handles it
    /// (and inner vertices get their own dispatch chance).
    fn try_blas(&mut self, v: &LoopVertex) -> Result<bool> {
        if v.kind != VertexKind::Dense || v.term_hi - v.term_lo != 1 {
            return Ok(false);
        }
        let t = v.term_lo;
        match v.children.as_slice() {
            [LoopNode::Leaf(_)] => self.blas1(v.index, t),
            [LoopNode::Loop(v2)]
                if v2.kind == VertexKind::Dense
                    && v2.term_hi - v2.term_lo == 1
                    && matches!(v2.children.as_slice(), [LoopNode::Leaf(_)]) =>
            {
                self.blas2(v.index, v2.index, t)
            }
            _ => Ok(false),
        }
    }

    /// Source metadata w.r.t. loop indices `q1` (and optionally `q2`).
    fn src_meta(&self, op: Operand, q1: IndexId, q2: Option<IndexId>) -> SrcMeta {
        let (buf, inds, strides): (BufSel, &[IndexId], &[usize]) = match op {
            Operand::Input(i) if i == self.kernel.sparse_input => {
                return SrcMeta::Const(self.read_operand(op));
            }
            Operand::Input(i) => {
                let f = self.factors.get(i);
                (
                    BufSel::Factor(i),
                    &self.kernel.inputs[i].indices,
                    f.strides(),
                )
            }
            Operand::Inter(u) => (
                BufSel::Inter(u),
                &self.buffer_inds[u],
                self.buffers[u].strides(),
            ),
        };
        let mut base = 0usize;
        let (mut s1, mut has1, mut s2, mut has2) = (0usize, false, 0usize, false);
        for (pos, &ind) in inds.iter().enumerate() {
            if ind == q1 {
                s1 = strides[pos];
                has1 = true;
            } else if Some(ind) == q2 {
                s2 = strides[pos];
                has2 = true;
            } else {
                base += self.coords[ind] * strides[pos];
            }
        }
        if !has1 && !has2 {
            SrcMeta::Const(self.read_operand(op))
        } else {
            SrcMeta::Var {
                buf,
                base,
                s1,
                has1,
                s2,
                has2,
            }
        }
    }

    /// Target metadata; `None` means dispatch is unsupported (sparse
    /// pattern-sharing output indexed by a loop index).
    fn tgt_meta(&self, t: usize, q1: IndexId, q2: Option<IndexId>) -> Option<TgtMeta> {
        let (out, inds, strides): (bool, &[IndexId], &[usize]) = if t + 1 == self.path.len() {
            if self.kernel.output_sparse {
                let oi = self.path.terms[t].out_inds;
                if oi.contains(q1) || q2.is_some_and(|q| oi.contains(q)) {
                    return None;
                }
                return Some(TgtMeta::Cell);
            }
            (true, &self.kernel.output.indices, self.out_dense.strides())
        } else {
            (false, &self.buffer_inds[t], self.buffers[t].strides())
        };
        let mut base = 0usize;
        let (mut s1, mut has1, mut s2, mut has2) = (0usize, false, 0usize, false);
        for (pos, &ind) in inds.iter().enumerate() {
            if ind == q1 {
                s1 = strides[pos];
                has1 = true;
            } else if Some(ind) == q2 {
                s2 = strides[pos];
                has2 = true;
            } else {
                base += self.coords[ind] * strides[pos];
            }
        }
        if has1 || has2 {
            Some(TgtMeta::Var {
                out,
                base,
                s1,
                has1,
                s2,
                has2,
            })
        } else {
            Some(TgtMeta::Cell)
        }
    }

    /// One dense loop over `q`, single term `t`: AXPY / elementwise /
    /// DOT dispatch.
    fn blas1(&mut self, q: IndexId, t: usize) -> Result<bool> {
        let n = self.kernel.dim(q);
        let term = &self.path.terms[t];
        let lm = self.src_meta(term.left, q, None);
        let rm = self.src_meta(term.right, q, None);
        let Some(tm) = self.tgt_meta(t, q, None) else {
            return Ok(false);
        };
        match tm {
            TgtMeta::Cell => {
                // Σ_q l[q]·r[q] into a scalar cell: DOT.
                if let (
                    SrcMeta::Var {
                        buf: lb,
                        base: lbase,
                        s1: ls,
                        ..
                    },
                    SrcMeta::Var {
                        buf: rb,
                        base: rbase,
                        s1: rs,
                        ..
                    },
                ) = (lm, rm)
                {
                    let v = {
                        let (reads, _) = self.buffers.split_at(t);
                        let x = slice_of(self.factors, reads, lb, lbase);
                        let y = slice_of(self.factors, reads, rb, rbase);
                        blas::dot(n, x, ls, y, rs)
                    };
                    self.stats.dot += 1;
                    self.stats.dot_elems += n as u64;
                    self.accumulate_cell(t, v);
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
            TgtMeta::Var {
                out,
                base: tbase,
                s1: ts,
                ..
            } => {
                let factors = self.factors;
                let Exec {
                    buffers,
                    out_dense,
                    stats: run_stats,
                    ..
                } = self;
                let (reads, tail) = buffers.split_at_mut(t);
                let tgt: &mut [f64] = if out {
                    &mut out_dense.as_mut_slice()[tbase..]
                } else {
                    &mut tail[0].as_mut_slice()[tbase..]
                };
                match (lm, rm) {
                    (SrcMeta::Var { buf, base, s1, .. }, SrcMeta::Const(c))
                    | (SrcMeta::Const(c), SrcMeta::Var { buf, base, s1, .. }) => {
                        let x = slice_of(factors, reads, buf, base);
                        blas::axpy(n, c, x, s1, tgt, ts);
                        run_stats.axpy += 1;
                        run_stats.axpy_elems += n as u64;
                        Ok(true)
                    }
                    (
                        SrcMeta::Var {
                            buf: lb,
                            base: lbase,
                            s1: ls,
                            ..
                        },
                        SrcMeta::Var {
                            buf: rb,
                            base: rbase,
                            s1: rs,
                            ..
                        },
                    ) => {
                        let x = slice_of(factors, reads, lb, lbase);
                        let z = slice_of(factors, reads, rb, rbase);
                        blas::xmul(n, 1.0, x, ls, z, rs, tgt, ts);
                        run_stats.xmul += 1;
                        run_stats.xmul_elems += n as u64;
                        Ok(true)
                    }
                    (SrcMeta::Const(_), SrcMeta::Const(_)) => Ok(false),
                }
            }
        }
    }

    /// Two nested dense loops `(q1, q2)` over a single term: GER / GEMV
    /// dispatch.
    fn blas2(&mut self, q1: IndexId, q2: IndexId, t: usize) -> Result<bool> {
        let (m, n) = (self.kernel.dim(q1), self.kernel.dim(q2));
        let term = &self.path.terms[t];
        let lm = self.src_meta(term.left, q1, Some(q2));
        let rm = self.src_meta(term.right, q1, Some(q2));
        let Some(TgtMeta::Var {
            out,
            base: tbase,
            s1: t1,
            has1: th1,
            s2: t2,
            has2: th2,
        }) = self.tgt_meta(t, q1, Some(q2))
        else {
            return Ok(false);
        };
        let (SrcMeta::Var { .. }, SrcMeta::Var { .. }) = (lm, rm) else {
            return Ok(false);
        };
        // Destructure both Vars.
        let (lb, lbase, l1, lh1, l2, lh2) = match lm {
            SrcMeta::Var {
                buf,
                base,
                s1,
                has1,
                s2,
                has2,
            } => (buf, base, s1, has1, s2, has2),
            SrcMeta::Const(_) => unreachable!(),
        };
        let (rb, rbase, r1, rh1, r2, rh2) = match rm {
            SrcMeta::Var {
                buf,
                base,
                s1,
                has1,
                s2,
                has2,
            } => (buf, base, s1, has1, s2, has2),
            SrcMeta::Const(_) => unreachable!(),
        };

        let factors = self.factors;
        let Exec {
            buffers,
            out_dense,
            stats: run_stats,
            ..
        } = self;
        let (reads, tail) = buffers.split_at_mut(t);
        let tgt: &mut [f64] = if out {
            &mut out_dense.as_mut_slice()[tbase..]
        } else {
            &mut tail[0].as_mut_slice()[tbase..]
        };

        if th1 && th2 {
            // Rank-1 update: x carries q1, y carries q2.
            if lh1 && !lh2 && !rh1 && rh2 {
                let x = slice_of(factors, reads, lb, lbase);
                let y = slice_of(factors, reads, rb, rbase);
                blas::ger(m, n, 1.0, x, l1, y, r2, tgt, t1, t2);
                run_stats.ger += 1;
                run_stats.ger_elems += (m * n) as u64;
                return Ok(true);
            }
            if !lh1 && lh2 && rh1 && !rh2 {
                let x = slice_of(factors, reads, rb, rbase);
                let y = slice_of(factors, reads, lb, lbase);
                blas::ger(m, n, 1.0, x, r1, y, l2, tgt, t1, t2);
                run_stats.ger += 1;
                run_stats.ger_elems += (m * n) as u64;
                return Ok(true);
            }
            return Ok(false);
        }
        if th1 && !th2 {
            // y[q1] += Σ_q2 A[q1,q2] · x[q2].
            if lh1 && lh2 && !rh1 && rh2 {
                let a = slice_of(factors, reads, lb, lbase);
                let x = slice_of(factors, reads, rb, rbase);
                blas::gemv(m, n, 1.0, a, l1, l2, x, r2, tgt, t1);
                run_stats.gemv += 1;
                run_stats.gemv_elems += (m * n) as u64;
                return Ok(true);
            }
            if rh1 && rh2 && !lh1 && lh2 {
                let a = slice_of(factors, reads, rb, rbase);
                let x = slice_of(factors, reads, lb, lbase);
                blas::gemv(m, n, 1.0, a, r1, r2, x, l2, tgt, t1);
                run_stats.gemv += 1;
                run_stats.gemv_elems += (m * n) as u64;
                return Ok(true);
            }
            return Ok(false);
        }
        if !th1 && th2 {
            // y[q2] += Σ_q1 A[q2,q1] · x[q1].
            if lh1 && lh2 && rh1 && !rh2 {
                let a = slice_of(factors, reads, lb, lbase);
                let x = slice_of(factors, reads, rb, rbase);
                blas::gemv(n, m, 1.0, a, l2, l1, x, r1, tgt, t2);
                run_stats.gemv += 1;
                run_stats.gemv_elems += (m * n) as u64;
                return Ok(true);
            }
            if rh1 && rh2 && lh1 && !lh2 {
                let a = slice_of(factors, reads, rb, rbase);
                let x = slice_of(factors, reads, lb, lbase);
                blas::gemv(n, m, 1.0, a, r2, r1, x, l1, tgt, t2);
                run_stats.gemv += 1;
                run_stats.gemv_elems += (m * n) as u64;
                return Ok(true);
            }
            return Ok(false);
        }
        Ok(false)
    }
}

/// Borrow the backing slice of a source, offset by `base`.
fn slice_of<'b>(
    factors: Slots<'b>,
    read_buffers: &'b [DenseTensor],
    sel: BufSel,
    base: usize,
) -> &'b [f64] {
    match sel {
        BufSel::Factor(i) => &factors.get(i).as_slice()[base..],
        BufSel::Inter(u) => &read_buffers[u].as_slice()[base..],
    }
}
