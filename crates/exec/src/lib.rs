//! # spttn-exec
//!
//! Execution subsystem for SpTTN loop nests: a loop-forest interpreter
//! that walks a planned [`spttn_ir::LoopForest`] over a CSF sparse
//! tensor and dense factors, dispatching innermost dense loops to the
//! BLAS-style microkernels in [`blas`] (paper Sec. 5).
//!
//! Two entry points:
//!
//! - [`execute_forest_into`]: the reuse path — all Eq.-5 intermediate
//!   buffers live in a caller-held [`Workspace`] and the result is
//!   accumulated into a caller-owned output ([`OutputMut`]); zero heap
//!   allocation per call.
//! - [`execute_forest`]: one-shot convenience that allocates a fresh
//!   workspace and output.
//!
//! The execution core is **tiled**: [`execute_forest_tile_into`] runs a
//! nest over one [`spttn_tensor::CsfTile`] (a contiguous slice of root
//! subtrees), and the [`parallel`] module fans tiles out across threads
//! — [`ParallelExecutor`] keeps a persistent worker pool with one
//! workspace and private output per thread so repeated executions stay
//! allocation-free, and partial outputs combine through a deterministic
//! tree reduction ([`tree_reduce_partials`]).
//!
//! Two engines execute a plan:
//!
//! - the recursive **interpreter** above ([`execute_forest_into`]),
//!   which re-derives per-visit decisions from the forest — kept as the
//!   differential-testing oracle; and
//! - the **tape engine** ([`tape`]): [`tape::CompiledTape`] lowers the
//!   nest once into a flat instruction program (loop dispatch,
//!   microkernel selection, and operand addressing all resolved at
//!   compile time; densely-iterated sparse modes re-resolved by a
//!   monotone finger search instead of cold binary search), and an
//!   iterative driver replays it per tile with zero allocations and
//!   zero atomics on the hot path.
//!
//! A brute-force dense einsum oracle ([`naive_einsum`]) backs the
//! correctness tests, and [`tape::verify`] statically proves every
//! compiled tape well-formed (loop structure, cursor bounds, Eq.-5
//! zero placement, resolver shape) before it ever runs.
//!
//! The [`simd`] module supplies explicit-SIMD microkernels (AVX2/FMA,
//! NEON, portable `std::simd`) selected **once at bind time** and
//! recorded in the tape as function pointers, plus the fused
//! `ZeroAccum` superinstructions and rank-specialized kernel variants
//! the tape compiler emits under [`Microkernels::Auto`].
//!
//! The [`guard`] module hardens all of this for long-lived services:
//! a [`CancelToken`]/[`RunGuard`] pair gives every engine cooperative
//! cancellation and deadlines with checkpoints at root-iteration
//! boundaries, the worker pool isolates panicking jobs behind
//! `catch_unwind` and respawns dead workers, and [`faults`] injects
//! deterministic worker panics and thread deaths so the recovery paths
//! stay tested.

// Unsafe code in the workspace lives in [`parallel`] (scoped-thread
// lifetime erasure) and [`simd`] (vendor SIMD intrinsics behind
// bind-time feature detection); every unsafe operation inside an
// unsafe fn must carry its own block.
#![deny(unsafe_op_in_unsafe_fn)]
#![cfg_attr(feature = "portable-simd", feature(portable_simd))]

pub mod blas;
pub mod faults;
pub mod guard;
pub mod interp;
pub mod parallel;
pub mod reference;
pub mod simd;
pub mod tape;

pub use guard::{CancelToken, RunGuard};
pub use interp::{
    execute_forest, execute_forest_into, execute_forest_into_guarded, execute_forest_tile_into,
    execute_forest_tile_into_guarded, validate_operands, validate_slotted_operands,
    ContractionOutput, ExecStats, OutputMut, Workspace,
};
pub use parallel::{execute_forest_parallel, tree_reduce_partials, ParallelExecutor};
pub use reference::naive_einsum;
pub use simd::{detected_cpu_features, KernelSel, KernelSet, Microkernels, RankSpec};
pub use tape::verify::{TapeInvariantError, TapeReport};
pub use tape::{
    execute_tape, execute_tape_into, execute_tape_into_guarded, execute_tape_tile_into,
    execute_tape_tile_into_guarded, CompiledTape, TapeState,
};
