//! # spttn-exec
//!
//! Execution subsystem for SpTTN loop nests: a loop-forest interpreter
//! ([`execute_forest`]) that walks a planned [`spttn_ir::LoopForest`]
//! over a CSF sparse tensor and dense factors, allocating the Eq.-5
//! intermediate buffers and dispatching innermost dense loops to the
//! BLAS-style microkernels in [`blas`] (paper Sec. 5). A brute-force
//! dense einsum oracle ([`naive_einsum`]) backs the correctness tests.

pub mod blas;
pub mod interp;
pub mod reference;

pub use interp::{execute_forest, validate_operands, ContractionOutput};
pub use reference::naive_einsum;
