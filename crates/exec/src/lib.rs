//! # spttn-exec
//!
//! Execution subsystem for SpTTN loop nests: a loop-forest interpreter
//! that walks a planned [`spttn_ir::LoopForest`] over a CSF sparse
//! tensor and dense factors, dispatching innermost dense loops to the
//! BLAS-style microkernels in [`blas`] (paper Sec. 5).
//!
//! Two entry points:
//!
//! - [`execute_forest_into`]: the reuse path — all Eq.-5 intermediate
//!   buffers live in a caller-held [`Workspace`] and the result is
//!   accumulated into a caller-owned output ([`OutputMut`]); zero heap
//!   allocation per call.
//! - [`execute_forest`]: one-shot convenience that allocates a fresh
//!   workspace and output.
//!
//! A brute-force dense einsum oracle ([`naive_einsum`]) backs the
//! correctness tests.

pub mod blas;
pub mod interp;
pub mod reference;

pub use interp::{
    execute_forest, execute_forest_into, validate_operands, validate_slotted_operands,
    ContractionOutput, OutputMut, Workspace,
};
pub use reference::naive_einsum;
