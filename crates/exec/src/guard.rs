//! Cooperative cancellation and deadlines for running executions.
//!
//! Executions in this workspace are long, allocation-free loop nests;
//! nothing short of killing the thread can stop one from the outside.
//! This module adds the cooperative alternative: a [`CancelToken`] the
//! caller can flip from any thread, and a [`RunGuard`] built once per
//! execution that bundles the token with an optional deadline. The
//! drivers consult the guard at their natural iteration boundaries —
//! the compiled tape at root-frame advances, the interpreter at
//! root-loop iterations, the network executor between contraction
//! steps — so cancellation latency is bounded by one root subtree, not
//! one whole execution.
//!
//! A fired guard surfaces as [`SpttnError::Cancelled`] and the
//! execution's output is left untouched by the caller-visible contract:
//! every execution re-zeroes its workspaces and output on entry, so a
//! cancelled-then-retried executor produces results bitwise identical
//! to a fresh run.
//!
//! Both types are allocation-free to construct apart from the token's
//! one shared flag, and [`RunGuard::check`] on the not-cancelled path
//! is a relaxed atomic load plus (when a deadline is set) one
//! monotonic-clock read — cheap enough for per-root-iteration use
//! without violating the zero-allocation execute contract.

use spttn_core::{Result, SpttnError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation flag. Clone it freely: all clones observe
/// the same flag, so a server can hand one clone to the execution and
/// keep another to fire on client disconnect.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Running executions observe it at their
    /// next checkpoint and return [`SpttnError::Cancelled`].
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Clear the flag so the same token (and the plans holding it) can
    /// be reused for a fresh execution.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

/// Tokens compare by identity: two tokens are equal when they share
/// one flag, which is what plan-cache option comparison needs — a
/// cached plan is reusable iff it would observe the same cancellations.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.flag, &other.flag)
    }
}

impl Eq for CancelToken {}

/// Per-execution stop conditions: an optional [`CancelToken`] and an
/// optional deadline, stamped with the execution's start instant.
///
/// Built once at the top of an execution and passed by reference down
/// the drivers (including across the worker pool — the guard holds no
/// interior mutability beyond the token's atomic, so `&RunGuard` is
/// freely shared between threads). [`RunGuard::check`] is the single
/// checkpoint primitive every engine calls.
#[derive(Debug, Clone)]
pub struct RunGuard {
    cancel: Option<CancelToken>,
    deadline: Option<Instant>,
    started: Instant,
}

impl RunGuard {
    /// A guard starting now, with an optional token and an optional
    /// timeout measured from this call. A timeout too large to
    /// represent as an `Instant` means "no deadline".
    pub fn new(cancel: Option<CancelToken>, timeout: Option<Duration>) -> Self {
        let started = Instant::now();
        let deadline = timeout.and_then(|t| started.checked_add(t));
        RunGuard {
            cancel,
            deadline,
            started,
        }
    }

    /// Whether the guard can ever fire. Drivers skip checkpoint work
    /// entirely for no-op guards.
    pub fn is_noop(&self) -> bool {
        self.cancel.is_none() && self.deadline.is_none()
    }

    /// Wall time since the guard (= the execution) started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The checkpoint: `Ok(())` to keep running, or
    /// [`SpttnError::Cancelled`] naming `phase` once the token fired
    /// or the deadline passed.
    #[inline]
    pub fn check(&self, phase: &'static str) -> Result<()> {
        if let Some(c) = &self.cancel {
            if c.is_cancelled() {
                return Err(SpttnError::Cancelled {
                    phase,
                    elapsed: self.elapsed(),
                });
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return Err(SpttnError::Cancelled {
                    phase,
                    elapsed: self.elapsed(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_fires_across_clones_and_resets() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
        u.reset();
        assert!(!t.is_cancelled());
    }

    #[test]
    fn tokens_compare_by_identity() {
        let t = CancelToken::new();
        assert_eq!(t, t.clone());
        assert_ne!(t, CancelToken::new());
    }

    #[test]
    fn guard_passes_then_fails_on_cancel() {
        let t = CancelToken::new();
        let g = RunGuard::new(Some(t.clone()), None);
        assert!(g.check("tape").is_ok());
        t.cancel();
        match g.check("tape") {
            Err(SpttnError::Cancelled { phase, .. }) => assert_eq!(phase, "tape"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn zero_timeout_expires_immediately() {
        let g = RunGuard::new(None, Some(Duration::ZERO));
        assert!(matches!(
            g.check("interp"),
            Err(SpttnError::Cancelled {
                phase: "interp",
                ..
            })
        ));
    }

    #[test]
    fn noop_guard_never_fires() {
        let g = RunGuard::new(None, None);
        assert!(g.is_noop());
        assert!(g.check("tape").is_ok());
        // An absurd timeout saturates to "no deadline" rather than
        // wrapping into the past.
        let h = RunGuard::new(None, Some(Duration::from_secs(u64::MAX)));
        assert!(h.check("tape").is_ok());
    }

    // &RunGuard crosses the worker-pool boundary; keep that provable.
    const _: () = {
        const fn assert_sync<T: Sync + Send>() {}
        assert_sync::<RunGuard>();
        assert_sync::<CancelToken>();
    };
}
