//! Interpreter golden tests: every fused loop nest must reproduce the
//! naive dense einsum oracle, across the paper's listings and output
//! flavors (dense, pattern-sharing), fused and unfused forests, and the
//! BLAS dispatch paths (AXPY, DOT, elementwise, GER, GEMV).

use rand::prelude::*;
use spttn_exec::{execute_forest, naive_einsum, ContractionOutput};
use spttn_ir::{build_forest, parse_kernel, path_from_picks, Kernel, NestSpec};
use spttn_tensor::{random_coo, random_dense, CooTensor, Csf, DenseTensor};

const TOL: f64 = 1e-9;

/// Densify every input (sparse first-slot included) for the oracle.
fn oracle(kernel: &Kernel, coo: &CooTensor, factors: &[DenseTensor]) -> DenseTensor {
    let sparse_dense = coo.to_dense();
    let mut all: Vec<&DenseTensor> = Vec::new();
    let mut next = 0usize;
    for slot in 0..kernel.inputs.len() {
        if slot == kernel.sparse_input {
            all.push(&sparse_dense);
        } else {
            all.push(&factors[next]);
            next += 1;
        }
    }
    naive_einsum(kernel, &all).unwrap()
}

fn run(
    kernel: &Kernel,
    picks: &[(usize, usize)],
    orders: Vec<Vec<usize>>,
    coo: &CooTensor,
    factors: &[DenseTensor],
) -> ContractionOutput {
    let path = path_from_picks(kernel, picks);
    let spec = NestSpec { orders };
    let forest = build_forest(kernel, &path, &spec).unwrap();
    let order: Vec<usize> = (0..coo.order()).collect();
    let csf = Csf::from_coo(coo, &order).unwrap();
    let refs: Vec<&DenseTensor> = factors.iter().collect();
    execute_forest(kernel, &path, &forest, &csf, &refs).unwrap()
}

fn ttmc_setup(seed: u64) -> (Kernel, CooTensor, Vec<DenseTensor>) {
    let k = parse_kernel(
        "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
        &[("i", 8), ("j", 9), ("k", 10), ("r", 4), ("s", 5)],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let coo = random_coo(&[8, 9, 10], 120, &mut rng).unwrap();
    let u = random_dense(&[9, 4], &mut rng);
    let v = random_dense(&[10, 5], &mut rng);
    (k, coo, vec![u, v])
}

/// Listing 3: 1-d buffer, sparse k loop, trailing dense s (AXPY path).
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn ttmc_listing3_matches_oracle() {
    let (k, coo, f) = ttmc_setup(1);
    let before = spttn_exec::interp::stats::snapshot();
    let got = run(
        &k,
        &[(0, 2), (0, 1)],
        vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
        &coo,
        &f,
    );
    let after = spttn_exec::interp::stats::snapshot();
    assert!(after.axpy > before.axpy, "AXPY microkernel should dispatch");
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// Listing 4: scalar buffer, dense s above sparse k (DOT-free generic).
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn ttmc_listing4_matches_oracle() {
    let (k, coo, f) = ttmc_setup(2);
    let got = run(
        &k,
        &[(0, 2), (0, 1)],
        vec![vec![0, 1, 4, 2], vec![0, 1, 4, 3]],
        &coo,
        &f,
    );
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// Listing 2 (unfused): 3-d materialized buffer; the consumer
/// re-descends the CSF below its own dense s loop.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn ttmc_unfused_matches_oracle() {
    let (k, coo, f) = ttmc_setup(3);
    let got = run(
        &k,
        &[(0, 2), (0, 1)],
        vec![vec![0, 1, 2, 4], vec![4, 0, 1, 3]],
        &coo,
        &f,
    );
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// Fig. 1d: dense-first path (U·V materialized, then contracted with T).
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn ttmc_dense_first_path_matches_oracle() {
    let (k, coo, f) = ttmc_setup(4);
    let got = run(
        &k,
        &[(1, 2), (0, 1)],
        vec![vec![1, 3, 2, 4], vec![0, 1, 2, 3, 4]],
        &coo,
        &f,
    );
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// MTTKRP fused factorize schedule (paper Sec. 2.4.2).
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn mttkrp_factorized_matches_oracle() {
    let k = parse_kernel(
        "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)",
        &[("i", 7), ("j", 8), ("k", 9), ("a", 5)],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let coo = random_coo(&[7, 8, 9], 100, &mut rng).unwrap();
    let b = random_dense(&[8, 5], &mut rng);
    let c = random_dense(&[9, 5], &mut rng);
    let f = vec![b, c];
    // Path (T*C) -> X(i,j,a); (X*B) -> A.
    let got = run(
        &k,
        &[(0, 2), (0, 1)],
        vec![vec![0, 1, 2, 3], vec![0, 1, 3]],
        &coo,
        &f,
    );
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// TTTP: pattern-sharing output, pre-sparse dense term fused under the
/// sparse descent.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn tttp_sparse_output_matches_oracle() {
    let k = parse_kernel(
        "S(i,j,k) = T(i,j,k) * U(i,r) * V(j,r) * W(k,r)",
        &[("i", 6), ("j", 7), ("k", 8), ("r", 3)],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    let coo = random_coo(&[6, 7, 8], 80, &mut rng).unwrap();
    let f = vec![
        random_dense(&[6, 3], &mut rng),
        random_dense(&[7, 3], &mut rng),
        random_dense(&[8, 3], &mut rng),
    ];
    // Path: (U*V)->X0(i,j,r); (W*X0)->X1(i,j,k,r); (T*X1)->S.
    let got = run(
        &k,
        &[(1, 2), (1, 2), (0, 1)],
        vec![vec![0, 1, 3], vec![0, 1, 2, 3], vec![0, 1, 2]],
        &coo,
        &f,
    );
    let ContractionOutput::Sparse(out) = &got else {
        panic!("TTTP output must share the sparse pattern");
    };
    assert_eq!(out.nnz(), coo.nnz());
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// Rank-1 outer product intermediate: exercises the GER dispatch.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn ger_dispatch_matches_oracle() {
    let k = parse_kernel(
        "S(i,r,s) = T(i) * U(r) * V(s)",
        &[("i", 6), ("r", 5), ("s", 4)],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let coo = random_coo(&[6], 4, &mut rng).unwrap();
    let f = vec![random_dense(&[5], &mut rng), random_dense(&[4], &mut rng)];
    // Path (U*V) -> X0(r,s) [GER]; (T*X0) -> S.
    let before = spttn_exec::interp::stats::snapshot();
    let got = run(
        &k,
        &[(1, 2), (0, 1)],
        vec![vec![1, 2], vec![0, 1, 2]],
        &coo,
        &f,
    );
    let after = spttn_exec::interp::stats::snapshot();
    assert!(after.ger > before.ger, "GER microkernel should dispatch");
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// Matrix-times-vector intermediate: exercises the GEMV dispatch.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn gemv_dispatch_matches_oracle() {
    let k = parse_kernel(
        "C(i) = T(k) * A(i,j) * B(j)",
        &[("i", 6), ("j", 7), ("k", 5)],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    let coo = random_coo(&[5], 3, &mut rng).unwrap();
    let f = vec![
        random_dense(&[6, 7], &mut rng),
        random_dense(&[7], &mut rng),
    ];
    // Path (A*B) -> X0(i) [GEMV]; (T*X0) -> C. Index ids follow the
    // sparse tensor first: k=0, i=1, j=2.
    let before = spttn_exec::interp::stats::snapshot();
    let got = run(
        &k,
        &[(1, 2), (0, 1)],
        vec![vec![1, 2], vec![0, 1]],
        &coo,
        &f,
    );
    let after = spttn_exec::interp::stats::snapshot();
    assert!(after.gemv > before.gemv, "GEMV microkernel should dispatch");
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// Shape validation: wrong factor dims and wrong CSF order are rejected.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn executor_validates_shapes() {
    let (k, coo, f) = ttmc_setup(9);
    let path = path_from_picks(&k, &[(0, 2), (0, 1)]);
    let spec = NestSpec {
        orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
    };
    let forest = build_forest(&k, &path, &spec).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    // Swap the factors: dims no longer match the kernel.
    let refs: Vec<&DenseTensor> = vec![&f[1], &f[0]];
    assert!(execute_forest(&k, &path, &forest, &csf, &refs).is_err());
    // Too few factors.
    let refs2: Vec<&DenseTensor> = vec![&f[0]];
    assert!(execute_forest(&k, &path, &forest, &csf, &refs2).is_err());
    // CSF built in a different mode order than the kernel declares.
    let bad_csf = Csf::from_coo(&coo, &[2, 1, 0]).unwrap();
    let refs3: Vec<&DenseTensor> = f.iter().collect();
    assert!(execute_forest(&k, &path, &forest, &bad_csf, &refs3).is_err());
}

/// Order-4 TTMc with the Fig. 6 nest: two buffers, deep fusion.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn order4_ttmc_fig6_matches_oracle() {
    let k = parse_kernel(
        "S(i,r,s,t) = T(i,j,k,l) * U(j,r) * V(k,s) * W(l,t)",
        &[
            ("i", 5),
            ("j", 5),
            ("k", 5),
            ("l", 5),
            ("r", 3),
            ("s", 3),
            ("t", 3),
        ],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(10);
    let coo = random_coo(&[5, 5, 5, 5], 60, &mut rng).unwrap();
    let f = vec![
        random_dense(&[5, 3], &mut rng),
        random_dense(&[5, 3], &mut rng),
        random_dense(&[5, 3], &mut rng),
    ];
    let got = run(
        &k,
        &[(0, 3), (1, 2), (0, 1)],
        vec![
            vec![0, 1, 2, 3, 6],
            vec![0, 1, 2, 5, 6],
            vec![0, 1, 4, 5, 6],
        ],
        &coo,
        &f,
    );
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// A reused workspace must produce identical results across executions
/// (stale intermediate/cursor state fully overwritten), and the
/// accumulate contract of `execute_forest_into` must hold: contributions
/// add on top of whatever the caller left in the output.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn workspace_reuse_is_deterministic_and_accumulating() {
    use spttn_exec::{execute_forest_into, OutputMut, Workspace};

    let (k, coo, factors) = ttmc_setup(77);
    let path = path_from_picks(&k, &[(0, 2), (0, 1)]);
    let spec = NestSpec {
        orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
    };
    let forest = build_forest(&k, &path, &spec).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();

    let mut slots: Vec<DenseTensor> = vec![DenseTensor::zeros(&[])];
    slots.extend(factors.iter().cloned());
    let mut ws = Workspace::new(&k, &path, &forest);
    let want = oracle(&k, &coo, &factors);

    let mut out = DenseTensor::zeros(&k.ref_dims(&k.output));
    execute_forest_into(
        &k,
        &path,
        &forest,
        &csf,
        &slots,
        &mut ws,
        OutputMut::Dense(&mut out),
    )
    .unwrap();
    assert!(out.approx_eq(&want, TOL), "first execution diverged");

    // Second run into the same (non-zeroed) output accumulates: 2×.
    execute_forest_into(
        &k,
        &path,
        &forest,
        &csf,
        &slots,
        &mut ws,
        OutputMut::Dense(&mut out),
    )
    .unwrap();
    let mut twice = want.clone();
    for (d, s) in twice.as_mut_slice().iter_mut().zip(want.as_slice()) {
        *d += s;
    }
    assert!(out.approx_eq(&twice, TOL), "accumulation diverged");

    // Zeroed output, reused workspace: back to the oracle exactly.
    out.fill_zero();
    execute_forest_into(
        &k,
        &path,
        &forest,
        &csf,
        &slots,
        &mut ws,
        OutputMut::Dense(&mut out),
    )
    .unwrap();
    assert!(out.approx_eq(&want, TOL), "reused workspace diverged");

    // Mismatched output flavor is rejected.
    let mut vals = vec![0.0; csf.nnz()];
    let e = execute_forest_into(
        &k,
        &path,
        &forest,
        &csf,
        &slots,
        &mut ws,
        OutputMut::Sparse(&mut vals),
    );
    assert!(e.is_err(), "dense kernel accepted a sparse output");
}

/// A workspace built for one forest must be rejected when driven with a
/// different forest of the same kernel/path — its buffer shapes would
/// silently disagree.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn workspace_from_other_forest_is_rejected() {
    use spttn_exec::{execute_forest_into, OutputMut, Workspace};

    let (k, coo, factors) = ttmc_setup(78);
    let path = path_from_picks(&k, &[(0, 2), (0, 1)]);
    let fused = build_forest(
        &k,
        &path,
        &NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
        },
    )
    .unwrap();
    let unfused = build_forest(
        &k,
        &path,
        &NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![4, 0, 1, 3]],
        },
    )
    .unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let mut slots: Vec<DenseTensor> = vec![DenseTensor::zeros(&[])];
    slots.extend(factors.iter().cloned());
    let mut out = DenseTensor::zeros(&k.ref_dims(&k.output));

    let mut ws = Workspace::new(&k, &path, &unfused);
    let e = execute_forest_into(
        &k,
        &path,
        &fused,
        &csf,
        &slots,
        &mut ws,
        OutputMut::Dense(&mut out),
    );
    assert!(e.is_err(), "mismatched workspace was accepted");
}
