//! Microkernel checks against naive triple-loop references.

use rand::prelude::*;
use spttn_exec::blas;
use spttn_tensor::random_vec as rand_vec;

#[test]
fn gemm_matches_triple_loop() {
    let mut rng = StdRng::seed_from_u64(101);
    for (m, n, k) in [(1, 1, 1), (2, 3, 4), (5, 5, 5), (7, 3, 9)] {
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let alpha = 1.5;
        let mut c = rand_vec(m * n, &mut rng);
        let mut want = c.clone();
        for i in 0..m {
            for j in 0..n {
                for l in 0..k {
                    want[i * n + j] += alpha * a[i * k + l] * b[l * n + j];
                }
            }
        }
        blas::gemm(m, n, k, alpha, &a, &b, &mut c);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-12, "gemm {m}x{n}x{k}: {x} vs {y}");
        }
    }
}

#[test]
fn gemv_matches_triple_loop() {
    let mut rng = StdRng::seed_from_u64(102);
    // Row-major (cs=1) and strided (column-major-ish) layouts.
    for (m, n, rs, cs) in [(4, 3, 3, 1), (4, 3, 1, 4), (6, 6, 6, 1)] {
        let a = rand_vec(m * n, &mut rng);
        let x = rand_vec(n, &mut rng);
        let alpha = -0.75;
        let mut y = rand_vec(m, &mut rng);
        let mut want = y.clone();
        for i in 0..m {
            let mut acc = 0.0;
            for j in 0..n {
                acc += a[i * rs + j * cs] * x[j];
            }
            want[i] += alpha * acc;
        }
        blas::gemv(m, n, alpha, &a, rs, cs, &x, 1, &mut y, 1);
        for (u, v) in y.iter().zip(&want) {
            assert!((u - v).abs() < 1e-12, "gemv rs={rs} cs={cs}: {u} vs {v}");
        }
    }
}

#[test]
fn ger_matches_triple_loop() {
    let mut rng = StdRng::seed_from_u64(103);
    for (m, n, rs, cs) in [(3, 4, 4, 1), (3, 4, 1, 3), (5, 2, 2, 1)] {
        let x = rand_vec(m, &mut rng);
        let y = rand_vec(n, &mut rng);
        let alpha = 2.25;
        let mut a = rand_vec(m * n, &mut rng);
        let mut want = a.clone();
        for i in 0..m {
            for j in 0..n {
                want[i * rs + j * cs] += alpha * x[i] * y[j];
            }
        }
        blas::ger(m, n, alpha, &x, 1, &y, 1, &mut a, rs, cs);
        for (u, v) in a.iter().zip(&want) {
            assert!((u - v).abs() < 1e-12, "ger rs={rs} cs={cs}: {u} vs {v}");
        }
    }
}

#[test]
fn gemv_strided_vectors() {
    // incx = 2, incy = 3 exercise the generic path.
    let a = [1.0, 2.0, 3.0, 4.0]; // 2x2 row-major
    let x = [1.0, 9.0, 2.0]; // logical [1, 2] at stride 2
    let mut y = [0.0; 6];
    blas::gemv(2, 2, 1.0, &a, 2, 1, &x, 2, &mut y, 3);
    assert_eq!(y[0], 1.0 * 1.0 + 2.0 * 2.0);
    assert_eq!(y[3], 3.0 * 1.0 + 4.0 * 2.0);
}
