//! Differential sweep: every explicit-SIMD microkernel against its
//! scalar twin, on randomized lengths crossing every tail-handling
//! boundary (lane multiples, non-multiples, below one lane, the
//! 16-wide unroll edge), both contiguous and strided, within ≤1e-9 —
//! plus bitwise run-to-run determinism of each SIMD kernel on fixed
//! inputs (the fixed lane-tree reduction order must make repeat calls
//! reproduce every bit).
//!
//! Kernels come from `KernelSet::auto_detected()` (the host's best
//! implementation, ignoring the `SPTTN_MICROKERNELS` environment
//! override) and `KernelSet::scalar()`. On a host with no SIMD support
//! the two sets coincide and the sweep degenerates to self-comparison
//! — still valid, just vacuous.

use rand::prelude::*;
use spttn_exec::KernelSet;
use spttn_tensor::random_vec;

const TOL: f64 = 1e-9;

/// Trip counts crossing the 4-lane, 8-step, and 16-wide boundaries of
/// the widest kernels, plus empty and sub-lane lengths.
const LENS: &[usize] = &[
    0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 100, 257,
];

/// Strides exercised for the strided (non-contiguous) call shapes.
const STRIDES: &[usize] = &[2, 3];

/// The specialization ranks `RankSpec` pins at compile time.
const RANKS: &[usize] = &[8, 16, 32];

fn buf(n: usize, inc: usize, rng: &mut StdRng) -> Vec<f64> {
    random_vec(n.saturating_sub(1) * inc + 1, rng)
}

fn assert_close(got: &[f64], want: &[f64], what: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            (g - w).abs() <= TOL,
            "{what}: element {i} differs: {g} vs {w}"
        );
    }
}

fn assert_bitwise(a: &[f64], b: &[f64], what: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} not bitwise stable: {x} vs {y}"
        );
    }
}

#[test]
fn axpy_matches_scalar_twin() {
    let auto = KernelSet::auto_detected();
    let scalar = KernelSet::scalar();
    let mut rng = StdRng::seed_from_u64(11);
    for &n in LENS {
        for &(ix, iy) in &[(1usize, 1usize), (STRIDES[0], 1), (1, STRIDES[1])] {
            let contig = ix == 1 && iy == 1;
            let (kern, _) = auto.axpy(n, contig, None);
            let (skern, _) = scalar.axpy(n, contig, None);
            for alpha in [1.37, 0.0, -2.5] {
                let x = buf(n, ix, &mut rng);
                let y0 = buf(n, iy, &mut rng);
                let (mut ya, mut yb, mut yc) = (y0.clone(), y0.clone(), y0);
                kern(n, alpha, &x, ix, &mut ya, iy);
                skern(n, alpha, &x, ix, &mut yb, iy);
                assert_close(&ya, &yb, &format!("axpy n={n} ix={ix} iy={iy} a={alpha}"));
                kern(n, alpha, &x, ix, &mut yc, iy);
                assert_bitwise(&ya, &yc, &format!("axpy n={n} ix={ix} iy={iy}"));
            }
        }
    }
}

#[test]
fn rank_specialized_axpy_matches_scalar_twin() {
    let auto = KernelSet::auto_detected();
    let scalar = KernelSet::scalar();
    let mut rng = StdRng::seed_from_u64(12);
    for &r in RANKS {
        // Pinned trip count, contiguous: the auto set takes the
        // fixed-rank path; the scalar set keeps the generic pre-SIMD
        // shape (it never fuses or specializes, by contract), so this
        // doubles as fixed-vs-generic differential coverage.
        let (kern, spec) = auto.axpy(r, true, Some(r));
        let (skern, sspec) = scalar.axpy(r, true, Some(r));
        assert_eq!(spec.rank(), Some(r), "auto set must pin the rank");
        assert_eq!(sspec.rank(), None, "scalar set keeps the generic shape");
        let x = buf(r, 1, &mut rng);
        let y0 = buf(r, 1, &mut rng);
        let (mut ya, mut yb) = (y0.clone(), y0);
        kern(r, 0.77, &x, 1, &mut ya, 1);
        skern(r, 0.77, &x, 1, &mut yb, 1);
        assert_close(&ya, &yb, &format!("axpy_fixed r={r}"));
    }
}

#[test]
fn zaxpy_assigns_and_matches_scalar_twin() {
    let auto = KernelSet::auto_detected();
    let scalar = KernelSet::scalar();
    let mut rng = StdRng::seed_from_u64(13);
    for &n in LENS {
        for alpha in [1.1, 0.0] {
            let (kern, _) = auto.zaxpy(n, true, None);
            let (skern, _) = scalar.zaxpy(n, true, None);
            let x = buf(n, 1, &mut rng);
            // NaN targets: the assigning twin owns the zero point, so
            // every covered element must be overwritten — even at
            // alpha == 0, where an accumulating AXPY may early-return.
            let mut ya = vec![f64::NAN; n.max(1)];
            let mut yb = vec![f64::NAN; n.max(1)];
            kern(n, alpha, &x, 1, &mut ya, 1);
            skern(n, alpha, &x, 1, &mut yb, 1);
            assert!(
                ya[..n].iter().all(|v| !v.is_nan()),
                "zaxpy n={n} a={alpha}: NaN survived the assigning pass"
            );
            assert_close(&ya[..n], &yb[..n], &format!("zaxpy n={n} a={alpha}"));
        }
    }
}

#[test]
fn dot_matches_scalar_twin() {
    let auto = KernelSet::auto_detected();
    let scalar = KernelSet::scalar();
    let mut rng = StdRng::seed_from_u64(17);
    for &n in LENS {
        for &(ix, iy) in &[(1usize, 1usize), (STRIDES[0], STRIDES[1])] {
            let contig = ix == 1 && iy == 1;
            let (kern, _) = auto.dot(n, contig);
            let (skern, _) = scalar.dot(n, contig);
            let x = buf(n, ix, &mut rng);
            let y = buf(n, iy, &mut rng);
            let a = kern(n, &x, ix, &y, iy);
            let b = skern(n, &x, ix, &y, iy);
            assert!(
                (a - b).abs() <= TOL,
                "dot n={n} ix={ix} iy={iy}: {a} vs {b}"
            );
            // Fixed lane-tree reduction: repeat calls are bitwise equal.
            let a2 = kern(n, &x, ix, &y, iy);
            assert_eq!(a.to_bits(), a2.to_bits(), "dot n={n} not bitwise stable");
        }
    }
    // Rank-pinned dots (no tail loop at all).
    for &r in RANKS {
        let (kern, _) = auto.dot(r, true);
        let (skern, _) = scalar.dot(r, true);
        let x = buf(r, 1, &mut rng);
        let y = buf(r, 1, &mut rng);
        let (a, b) = (kern(r, &x, 1, &y, 1), skern(r, &x, 1, &y, 1));
        assert!((a - b).abs() <= TOL, "dot_fixed r={r}: {a} vs {b}");
    }
}

#[test]
fn xmul_matches_scalar_twin() {
    let auto = KernelSet::auto_detected();
    let scalar = KernelSet::scalar();
    let mut rng = StdRng::seed_from_u64(19);
    for &n in LENS {
        for &(ix, iz, iy) in &[(1usize, 1usize, 1usize), (STRIDES[0], 1, STRIDES[1])] {
            let x = buf(n, ix, &mut rng);
            let z = buf(n, iz, &mut rng);
            let y0 = buf(n, iy, &mut rng);
            let (mut ya, mut yb, mut yc) = (y0.clone(), y0.clone(), y0);
            auto.xmul()(n, 1.0, &x, ix, &z, iz, &mut ya, iy);
            scalar.xmul()(n, 1.0, &x, ix, &z, iz, &mut yb, iy);
            assert_close(&ya, &yb, &format!("xmul n={n} ix={ix} iz={iz} iy={iy}"));
            auto.xmul()(n, 1.0, &x, ix, &z, iz, &mut yc, iy);
            assert_bitwise(&ya, &yc, &format!("xmul n={n}"));
        }
        // Assigning twin over NaN targets.
        let x = buf(n, 1, &mut rng);
        let z = buf(n, 1, &mut rng);
        let mut ya = vec![f64::NAN; n.max(1)];
        let mut yb = vec![f64::NAN; n.max(1)];
        auto.zxmul()(n, 1.0, &x, 1, &z, 1, &mut ya, 1);
        scalar.zxmul()(n, 1.0, &x, 1, &z, 1, &mut yb, 1);
        assert!(
            ya[..n].iter().all(|v| !v.is_nan()),
            "zxmul n={n}: NaN survived the assigning pass"
        );
        assert_close(&ya[..n], &yb[..n], &format!("zxmul n={n}"));
    }
}

#[test]
fn ger_matches_scalar_twin() {
    let auto = KernelSet::auto_detected();
    let scalar = KernelSet::scalar();
    let mut rng = StdRng::seed_from_u64(23);
    for &m in &[1usize, 2, 5, 16] {
        for &n in &[1usize, 3, 8, 33] {
            // Contiguous row-major target.
            let x = buf(m, 1, &mut rng);
            let y = buf(n, 1, &mut rng);
            let a0 = random_vec(m * n, &mut rng);
            let (kern, _) = auto.ger(n, true, None);
            let (skern, _) = scalar.ger(n, true, None);
            let (mut aa, mut ab, mut ac) = (a0.clone(), a0.clone(), a0);
            kern(m, n, 1.0, &x, 1, &y, 1, &mut aa, n, 1);
            skern(m, n, 1.0, &x, 1, &y, 1, &mut ab, n, 1);
            assert_close(&aa, &ab, &format!("ger {m}x{n}"));
            kern(m, n, 1.0, &x, 1, &y, 1, &mut ac, n, 1);
            assert_bitwise(&aa, &ac, &format!("ger {m}x{n}"));

            // Strided target (column stride 2).
            let a0 = random_vec(m * n * 2, &mut rng);
            let (kern, _) = auto.ger(n, false, None);
            let (skern, _) = scalar.ger(n, false, None);
            let (mut aa, mut ab) = (a0.clone(), a0);
            kern(m, n, 1.0, &x, 1, &y, 1, &mut aa, 2 * n, 2);
            skern(m, n, 1.0, &x, 1, &y, 1, &mut ab, 2 * n, 2);
            assert_close(&aa, &ab, &format!("strided ger {m}x{n}"));

            // Assigning twin over NaN targets.
            let mut aa = vec![f64::NAN; m * n];
            let mut ab = vec![f64::NAN; m * n];
            auto.zger()(m, n, 1.0, &x, 1, &y, 1, &mut aa, n, 1);
            scalar.zger()(m, n, 1.0, &x, 1, &y, 1, &mut ab, n, 1);
            assert!(
                aa.iter().all(|v| !v.is_nan()),
                "zger {m}x{n}: NaN survived the assigning pass"
            );
            assert_close(&aa, &ab, &format!("zger {m}x{n}"));
        }
    }
    // Rank-pinned GER rows.
    for &r in RANKS {
        let m = 5;
        let x = buf(m, 1, &mut rng);
        let y = buf(r, 1, &mut rng);
        let a0 = random_vec(m * r, &mut rng);
        let (kern, _) = auto.ger(r, true, Some(r));
        let (skern, _) = scalar.ger(r, true, Some(r));
        let (mut aa, mut ab) = (a0.clone(), a0);
        kern(m, r, 1.0, &x, 1, &y, 1, &mut aa, r, 1);
        skern(m, r, 1.0, &x, 1, &y, 1, &mut ab, r, 1);
        assert_close(&aa, &ab, &format!("ger_fixed {m}x{r}"));
    }
}

#[test]
fn gemv_matches_scalar_twin() {
    let auto = KernelSet::auto_detected();
    let scalar = KernelSet::scalar();
    let mut rng = StdRng::seed_from_u64(29);
    for &m in &[1usize, 4, 9] {
        for &n in &[1usize, 3, 8, 16, 33] {
            let a = random_vec(m * n, &mut rng);
            let x = buf(n, 1, &mut rng);
            let y0 = buf(m, 1, &mut rng);
            let (kern, _) = auto.gemv(n, true);
            let (skern, _) = scalar.gemv(n, true);
            let (mut ya, mut yb, mut yc) = (y0.clone(), y0.clone(), y0);
            kern(m, n, 1.0, &a, n, 1, &x, 1, &mut ya, 1);
            skern(m, n, 1.0, &a, n, 1, &x, 1, &mut yb, 1);
            assert_close(&ya, &yb, &format!("gemv {m}x{n}"));
            kern(m, n, 1.0, &a, n, 1, &x, 1, &mut yc, 1);
            assert_bitwise(&ya, &yc, &format!("gemv {m}x{n}"));

            // Transposed-walk shape: column-major A (rs = 1, cs = m),
            // the layout the swapped tape call sites emit.
            let (kern, _) = auto.gemv(n, false);
            let (skern, _) = scalar.gemv(n, false);
            let a = random_vec(n * m, &mut rng);
            let y0 = buf(m, 1, &mut rng);
            let (mut ya, mut yb) = (y0.clone(), y0);
            kern(m, n, 1.0, &a, 1, m, &x, 1, &mut ya, 1);
            skern(m, n, 1.0, &a, 1, m, &x, 1, &mut yb, 1);
            assert_close(&ya, &yb, &format!("gemv^T {m}x{n}"));
        }
    }
}
