//! Concurrency proofs for the worker-pool handshake in
//! [`spttn_exec::parallel`].
//!
//! The pool's protocol is small: each worker owns a `WorkerState`
//! (job slot + `submitted`/`finished` counters) behind a `Mutex` with a
//! `Condvar`. The submitter publishes a `Job` carrying raw pointers to
//! a workspace and an output region it promises not to touch until
//! `wait_all` observes `finished == submitted`; the worker takes the
//! job, writes through those pointers, then republishes the counters.
//! Soundness of the `unsafe impl Send for Job` rests entirely on this
//! handshake: the mutex/condvar pair must make the worker's writes
//! *happen-before* the submitter's reads.
//!
//! This file proves that claim two ways:
//!
//! - under `--cfg loom` (CI's `loom` job, which adds the `loom` dev
//!   dependency), [`loom::model`] exhaustively explores every
//!   interleaving of a faithful replica of the protocol — same state
//!   fields, same wait conditions, with the raw-pointer payload modeled
//!   by `loom::cell::UnsafeCell`;
//! - under plain `cargo test`, the same replicas run as std stress
//!   tests so the protocol shape is continuously exercised even where
//!   loom is unavailable.
//!
//! The replica is deliberately line-for-line parallel to
//! `WorkerPool::{submit, wait_all}` and `worker_loop`; if the real
//! protocol changes, change it here in lockstep.

#![allow(unexpected_cfgs)] // `--cfg loom` is injected by CI, not a feature

#[cfg(loom)]
use loom::{
    cell::UnsafeCell,
    sync::{Arc, Condvar, Mutex},
    thread,
};
#[cfg(not(loom))]
use std::{
    cell::UnsafeCell,
    sync::{Arc, Condvar, Mutex},
    thread,
};

/// Replica of `parallel::WorkerState`, with the job's pointer payload
/// reduced to the index of the cell the worker must write.
struct SlotState {
    job: Option<usize>,
    submitted: u64,
    finished: u64,
    shutdown: bool,
}

/// Replica of `parallel::WorkerShared` plus the memory the job's raw
/// pointers would target: one cell per possible job. The cells are
/// accessed without the mutex held — exactly like the real workspace
/// and partial-output writes — so loom will fail the model if the
/// handshake alone does not order them.
struct SlotShared {
    state: Mutex<SlotState>,
    cv: Condvar,
    cells: Vec<UnsafeCell<u64>>,
}

// SAFETY: each cell is written only by the worker that took the job
// naming it, strictly between `submit` and the `finished == submitted`
// republish; the submitter reads it only after observing that
// republish. This is precisely the discipline `Job`'s Send impl
// documents — the models below exist to prove it sound.
unsafe impl Sync for SlotShared {}

#[cfg(loom)]
fn cell_write(c: &UnsafeCell<u64>, v: u64) {
    c.with_mut(|p| {
        // SAFETY: exclusive by the handshake (see `Sync` impl above).
        unsafe { *p = v }
    });
}
#[cfg(loom)]
fn cell_read(c: &UnsafeCell<u64>) -> u64 {
    // SAFETY: the worker's republish happened-before this read.
    c.with(|p| unsafe { *p })
}
#[cfg(not(loom))]
fn cell_write(c: &UnsafeCell<u64>, v: u64) {
    // SAFETY: exclusive by the handshake (see `Sync` impl above).
    unsafe { *c.get() = v }
}
#[cfg(not(loom))]
fn cell_read(c: &UnsafeCell<u64>) -> u64 {
    // SAFETY: the worker's republish happened-before this read.
    unsafe { *c.get() }
}

fn new_shared(n_cells: usize) -> Arc<SlotShared> {
    Arc::new(SlotShared {
        state: Mutex::new(SlotState {
            job: None,
            submitted: 0,
            finished: 0,
            shutdown: false,
        }),
        cv: Condvar::new(),
        cells: (0..n_cells).map(|_| UnsafeCell::new(0)).collect(),
    })
}

/// Mirror of `WorkerPool::submit`.
fn submit(sh: &SlotShared, cell: usize) {
    let mut st = sh.state.lock().unwrap();
    assert!(st.job.is_none() && st.finished == st.submitted);
    st.job = Some(cell);
    st.submitted += 1;
    sh.cv.notify_all();
}

/// Mirror of one worker's slice of `WorkerPool::wait_all`.
fn wait_idle(sh: &SlotShared) {
    let mut st = sh.state.lock().unwrap();
    while st.finished != st.submitted {
        st = sh.cv.wait(st).unwrap();
    }
}

fn shut_down(sh: &SlotShared) {
    sh.state.lock().unwrap().shutdown = true;
    sh.cv.notify_all();
}

/// Mirror of `parallel::worker_loop`: block for a job, run it (here:
/// write `job_index + 1` into the job's cell, unlocked), republish.
fn worker_loop(sh: &SlotShared) {
    loop {
        let cell = {
            let mut st = sh.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(j) = st.job.take() {
                    break j;
                }
                st = sh.cv.wait(st).unwrap();
            }
        };
        cell_write(&sh.cells[cell], cell as u64 + 1);
        let mut st = sh.state.lock().unwrap();
        st.finished = st.submitted;
        sh.cv.notify_all();
    }
}

/// One publish/consume round trip: submit, wait, read the cell the
/// worker wrote without holding the lock. Loom proves the handshake
/// orders the unlocked write before the unlocked read; the stress
/// variant asserts the value over many iterations.
fn publish_consume_round(rounds: usize) {
    let sh = new_shared(rounds);
    let w = {
        let sh = Arc::clone(&sh);
        thread::spawn(move || worker_loop(&sh))
    };
    for r in 0..rounds {
        submit(&sh, r);
        wait_idle(&sh);
        assert_eq!(cell_read(&sh.cells[r]), r as u64 + 1, "lost worker write");
    }
    shut_down(&sh);
    w.join().unwrap();
}

/// Two workers race their private partials; the submitter reduces in
/// deterministic pair order only after both republish, mirroring
/// `execute_into`'s `wait_all` → `tree_reduce_partials` sequence.
fn reduce_after_wait_round() {
    let shs: Vec<Arc<SlotShared>> = (0..2).map(|_| new_shared(1)).collect();
    let handles: Vec<_> = shs
        .iter()
        .map(|sh| {
            let sh = Arc::clone(sh);
            thread::spawn(move || worker_loop(&sh))
        })
        .collect();
    for sh in &shs {
        submit(sh, 0);
    }
    // `wait_all`: worker order, each to quiescence, before any read.
    for sh in &shs {
        wait_idle(sh);
    }
    // The deterministic pairwise reduction: partials[0] += partials[1].
    let total: u64 = shs.iter().map(|sh| cell_read(&sh.cells[0])).sum();
    assert_eq!(total, 2, "reduction read a stale partial");
    for sh in &shs {
        shut_down(sh);
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[cfg(loom)]
mod models {
    /// Exhaustive interleavings of one submit → run → wait cycle.
    #[test]
    fn loom_job_slot_publish_consume() {
        loom::model(|| super::publish_consume_round(1));
    }

    /// Two consecutive jobs through the same slot: the republish of
    /// round 1 must not satisfy round 2's wait.
    #[test]
    fn loom_job_slot_two_rounds() {
        loom::model(|| super::publish_consume_round(2));
    }

    /// Both workers' partial writes happen-before the reduction reads.
    #[test]
    fn loom_tree_reduce_sees_all_partials() {
        loom::model(super::reduce_after_wait_round);
    }
}

#[cfg(not(loom))]
mod stress {
    /// Std stand-in for the loom publish/consume model: many round
    /// trips through one slot, each asserting the worker's unlocked
    /// write is visible after `wait_idle`.
    #[test]
    fn job_slot_publish_consume_stress() {
        // Miri checks every iteration for data races; a handful is
        // plenty there, while native runs hammer the interleavings.
        let (iters, rounds) = if cfg!(miri) { (2, 3) } else { (64, 8) };
        for _ in 0..iters {
            super::publish_consume_round(rounds);
        }
    }

    /// Std stand-in for the loom reduction model.
    #[test]
    fn tree_reduce_sees_all_partials_stress() {
        let iters = if cfg!(miri) { 4 } else { 256 };
        for _ in 0..iters {
            super::reduce_after_wait_round();
        }
    }

    /// The real `tree_reduce_partials` on partials produced by real
    /// parallel execution is deterministic: same inputs, same thread
    /// count, bitwise-identical outputs across repeats.
    #[test]
    #[cfg_attr(miri, ignore)] // covered by parallel_exec's determinism test
    fn parallel_execution_is_deterministic() {
        use rand::{rngs::StdRng, SeedableRng};
        use spttn_exec::execute_forest_parallel;
        use spttn_ir::{build_forest, parse_kernel, path_from_picks, NestSpec};
        use spttn_tensor::{random_coo, random_dense, Csf, DenseTensor};

        let k = parse_kernel(
            "A(i,r) = T(i,j,k) * B(j,r) * C(k,r)",
            &[("i", 12), ("j", 10), ("k", 11), ("r", 6)],
        )
        .unwrap();
        let path = path_from_picks(&k, &[(0, 1), (0, 1)]);
        let spec = NestSpec {
            orders: vec![vec![0, 1, 2, 3], vec![0, 3, 2]],
        };
        let forest = build_forest(&k, &path, &spec).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let coo = random_coo(&[12, 10, 11], 180, &mut rng).unwrap();
        let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
        let factors = [
            random_dense(&[10, 6], &mut rng),
            random_dense(&[11, 6], &mut rng),
        ];
        let refs: Vec<&DenseTensor> = factors.iter().collect();
        let base = execute_forest_parallel(&k, &path, &forest, &csf, &refs, 3).unwrap();
        for _ in 0..4 {
            let again = execute_forest_parallel(&k, &path, &forest, &csf, &refs, 3).unwrap();
            match (&base, &again) {
                (
                    spttn_exec::ContractionOutput::Dense(a),
                    spttn_exec::ContractionOutput::Dense(b),
                ) => {
                    assert_eq!(a.as_slice(), b.as_slice(), "nondeterministic reduction")
                }
                _ => panic!("expected dense outputs"),
            }
        }
    }
}
