//! Exec-level parallel golden tests: the scoped one-shot fan-out and
//! the persistent [`ParallelExecutor`] must match the serial
//! interpreter on dense- and sparse-output nests, at every thread
//! count, bitwise-deterministically.

use rand::prelude::*;
use spttn_exec::{
    execute_forest, execute_forest_parallel, ContractionOutput, OutputMut, ParallelExecutor,
    Workspace,
};
use spttn_ir::{buffers_for_forest, build_forest, parse_kernel, path_from_picks, NestSpec};
use spttn_tensor::{random_coo, random_dense, Csf, DenseTensor};

const TOL: f64 = 1e-9;

struct Fixture {
    kernel: spttn_ir::Kernel,
    path: spttn_ir::ContractionPath,
    forest: spttn_ir::LoopForest,
    csf: Csf,
    factors: Vec<DenseTensor>,
}

/// TTMc (Listing 3 orders): dense output, AXPY-heavy.
fn ttmc_fixture(seed: u64) -> Fixture {
    let kernel = parse_kernel(
        "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
        &[("i", 20), ("j", 9), ("k", 10), ("r", 4), ("s", 5)],
    )
    .unwrap();
    let path = path_from_picks(&kernel, &[(0, 2), (0, 1)]);
    let spec = NestSpec {
        orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
    };
    let forest = build_forest(&kernel, &path, &spec).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let coo = random_coo(&[20, 9, 10], 300, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let factors = vec![
        random_dense(&[9, 4], &mut rng),
        random_dense(&[10, 5], &mut rng),
    ];
    Fixture {
        kernel,
        path,
        forest,
        csf,
        factors,
    }
}

/// TTTP-like: output shares the sparse pattern (disjoint-range path).
fn tttp_fixture(seed: u64) -> Fixture {
    let kernel = parse_kernel(
        "S(i,j,k) = T(i,j,k) * U(i,r) * V(j,r) * W(k,r)",
        &[("i", 18), ("j", 8), ("k", 9), ("r", 4)],
    )
    .unwrap();
    // Path: (U*V)->X0(i,j,r); (W*X0)->X1(i,j,k,r); (T*X1)->S.
    let path = path_from_picks(&kernel, &[(1, 2), (1, 2), (0, 1)]);
    let spec = NestSpec {
        orders: vec![vec![0, 1, 3], vec![0, 1, 2, 3], vec![0, 1, 2]],
    };
    let forest = build_forest(&kernel, &path, &spec).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let coo = random_coo(&[18, 8, 9], 220, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let factors = vec![
        random_dense(&[18, 4], &mut rng),
        random_dense(&[8, 4], &mut rng),
        random_dense(&[9, 4], &mut rng),
    ];
    Fixture {
        kernel,
        path,
        forest,
        csf,
        factors,
    }
}

fn serial(f: &Fixture) -> ContractionOutput {
    let refs: Vec<&DenseTensor> = f.factors.iter().collect();
    execute_forest(&f.kernel, &f.path, &f.forest, &f.csf, &refs).unwrap()
}

#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn scoped_parallel_matches_serial() {
    for fixture in [ttmc_fixture(11), tttp_fixture(12)] {
        let want = serial(&fixture).to_dense();
        let refs: Vec<&DenseTensor> = fixture.factors.iter().collect();
        for threads in [1, 2, 3, 4, 7, 64] {
            let got = execute_forest_parallel(
                &fixture.kernel,
                &fixture.path,
                &fixture.forest,
                &fixture.csf,
                &refs,
                threads,
            )
            .unwrap();
            assert!(
                got.to_dense().approx_eq(&want, TOL),
                "threads = {threads} diverged from serial"
            );
        }
    }
}

/// Slot-ordered factors (placeholder in the sparse slot), as the
/// persistent executor consumes them.
fn slotted(f: &Fixture) -> Vec<DenseTensor> {
    let mut slots = vec![DenseTensor::zeros(&[])];
    slots.extend(f.factors.iter().cloned());
    slots
}

#[test]
fn parallel_executor_matches_serial_and_is_deterministic() {
    let fixture = ttmc_fixture(21);
    let want = serial(&fixture).to_dense();
    let slots = slotted(&fixture);
    let specs = buffers_for_forest(&fixture.kernel, &fixture.path, &fixture.forest);
    for threads in [2, 4, 7] {
        let mut par = ParallelExecutor::new(
            &fixture.kernel,
            &fixture.path,
            &fixture.forest,
            &specs,
            &fixture.csf,
            threads,
        );
        let mut run = || {
            let mut out = DenseTensor::zeros(&[20, 4, 5]);
            par.execute_into(
                &fixture.kernel,
                &fixture.path,
                &fixture.forest,
                &fixture.csf,
                &slots,
                OutputMut::Dense(&mut out),
            )
            .unwrap();
            out
        };
        let first = run();
        assert!(first.approx_eq(&want, TOL), "threads = {threads}");
        // Bitwise determinism across repeated executions.
        let second = run();
        assert_eq!(first.as_slice(), second.as_slice());
    }
}

#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn parallel_executor_sparse_output_disjoint_ranges() {
    let fixture = tttp_fixture(22);
    let want = serial(&fixture).to_dense();
    let slots = slotted(&fixture);
    let specs = buffers_for_forest(&fixture.kernel, &fixture.path, &fixture.forest);
    let mut par = ParallelExecutor::new(
        &fixture.kernel,
        &fixture.path,
        &fixture.forest,
        &specs,
        &fixture.csf,
        4,
    );
    let mut vals = vec![0.0; fixture.csf.nnz()];
    par.execute_into(
        &fixture.kernel,
        &fixture.path,
        &fixture.forest,
        &fixture.csf,
        &slots,
        OutputMut::Sparse(&mut vals),
    )
    .unwrap();
    let got = fixture.csf.to_coo().with_vals(vals.clone()).to_dense();
    assert!(got.approx_eq(&want, TOL));
    // Exact equality with the serial path: every leaf is written by
    // exactly one tile, with the same per-leaf accumulation order.
    let ContractionOutput::Sparse(serial_coo) = serial(&fixture) else {
        panic!("TTTP output must be sparse");
    };
    assert_eq!(vals, serial_coo.vals());
    // Stats aggregate across tiles to the serial counts.
    let mut ws = Workspace::new(&fixture.kernel, &fixture.path, &fixture.forest);
    let mut serial_vals = vec![0.0; fixture.csf.nnz()];
    spttn_exec::execute_forest_into(
        &fixture.kernel,
        &fixture.path,
        &fixture.forest,
        &fixture.csf,
        &slots,
        &mut ws,
        OutputMut::Sparse(&mut serial_vals),
    )
    .unwrap();
    assert_eq!(par.stats(), ws.stats());
}

/// A tiling is valid only for the structure it was computed from: a
/// same-nnz tensor with a different pattern must be rejected, not
/// silently half-executed.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn parallel_executor_rejects_different_structure() {
    let fixture = ttmc_fixture(31);
    let slots = slotted(&fixture);
    let specs = buffers_for_forest(&fixture.kernel, &fixture.path, &fixture.forest);
    let mut par = ParallelExecutor::new(
        &fixture.kernel,
        &fixture.path,
        &fixture.forest,
        &specs,
        &fixture.csf,
        4,
    );
    // Same dims and nnz, different pattern (different seed).
    let mut rng = StdRng::seed_from_u64(99);
    let other = Csf::from_coo(
        &random_coo(&[20, 9, 10], 300, &mut rng).unwrap(),
        &[0, 1, 2],
    )
    .unwrap();
    assert_eq!(other.nnz(), fixture.csf.nnz());
    let mut out = DenseTensor::zeros(&[20, 4, 5]);
    let err = par
        .execute_into(
            &fixture.kernel,
            &fixture.path,
            &fixture.forest,
            &other,
            &slots,
            OutputMut::Dense(&mut out),
        )
        .unwrap_err();
    assert!(
        format!("{err}").contains("different structure"),
        "unexpected error: {err}"
    );
    // Same-pattern value updates still execute fine.
    let mut same = fixture.csf.clone();
    same.vals_mut().iter_mut().for_each(|v| *v *= 2.0);
    par.execute_into(
        &fixture.kernel,
        &fixture.path,
        &fixture.forest,
        &same,
        &slots,
        OutputMut::Dense(&mut out),
    )
    .unwrap();
}

#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn tile_partials_sum_to_full_output() {
    let fixture = ttmc_fixture(23);
    let want = serial(&fixture).to_dense();
    let slots = slotted(&fixture);
    let tiles = fixture.csf.partition(3);
    let mut acc = DenseTensor::zeros(&[20, 4, 5]);
    for tile in &tiles {
        let mut ws = Workspace::new(&fixture.kernel, &fixture.path, &fixture.forest);
        let mut partial = DenseTensor::zeros(&[20, 4, 5]);
        spttn_exec::execute_forest_tile_into(
            &fixture.kernel,
            &fixture.path,
            &fixture.forest,
            &fixture.csf,
            tile,
            &slots,
            &mut ws,
            OutputMut::Dense(&mut partial),
        )
        .unwrap();
        for (a, p) in acc.as_mut_slice().iter_mut().zip(partial.as_slice()) {
            *a += p;
        }
    }
    assert!(acc.approx_eq(&want, TOL));
}
