//! Tape-engine golden tests: every compiled tape must reproduce both
//! the naive dense einsum oracle and the recursive interpreter —
//! across fused and unfused forests, dense and pattern-sharing
//! outputs, all five microkernel lowerings, and (crucially) the nests
//! that force sparse-node re-resolution, where the tape's finger
//! search replaces the interpreter's per-visit binary search.

use rand::prelude::*;
use spttn_exec::tape::{execute_tape, execute_tape_into, CompiledTape};
use spttn_exec::{execute_forest, naive_einsum, ContractionOutput, OutputMut, Workspace};
use spttn_ir::{build_forest, parse_kernel, path_from_picks, Kernel, NestSpec};
use spttn_tensor::{random_coo, random_dense, CooTensor, Csf, DenseTensor};

const TOL: f64 = 1e-9;

/// Densify every input (sparse first-slot included) for the oracle.
fn oracle(kernel: &Kernel, coo: &CooTensor, factors: &[DenseTensor]) -> DenseTensor {
    let sparse_dense = coo.to_dense();
    let mut all: Vec<&DenseTensor> = Vec::new();
    let mut next = 0usize;
    for slot in 0..kernel.inputs.len() {
        if slot == kernel.sparse_input {
            all.push(&sparse_dense);
        } else {
            all.push(&factors[next]);
            next += 1;
        }
    }
    naive_einsum(kernel, &all).unwrap()
}

/// Run one nest through both engines, asserting bitwise agreement
/// (the tape mirrors the interpreter's operation order exactly), and
/// return the tape's output for the oracle check.
fn run_both(
    kernel: &Kernel,
    picks: &[(usize, usize)],
    orders: Vec<Vec<usize>>,
    coo: &CooTensor,
    factors: &[DenseTensor],
) -> ContractionOutput {
    let path = path_from_picks(kernel, picks);
    let spec = NestSpec { orders };
    let forest = build_forest(kernel, &path, &spec).unwrap();
    let order: Vec<usize> = (0..coo.order()).collect();
    let csf = Csf::from_coo(coo, &order).unwrap();
    let refs: Vec<&DenseTensor> = factors.iter().collect();
    // Every golden nest's compiled program must also pass the static
    // verifier before we trust its output.
    CompiledTape::from_forest(kernel, &path, &forest)
        .unwrap()
        .verify()
        .expect("golden tape verifies clean");
    let interp = execute_forest(kernel, &path, &forest, &csf, &refs).unwrap();
    let tape = execute_tape(kernel, &path, &forest, &csf, &refs).unwrap();
    match (&interp, &tape) {
        (ContractionOutput::Dense(a), ContractionOutput::Dense(b)) => {
            assert_eq!(a.as_slice(), b.as_slice(), "tape != interp bitwise");
        }
        (ContractionOutput::Sparse(a), ContractionOutput::Sparse(b)) => {
            assert_eq!(a.vals(), b.vals(), "tape != interp bitwise (sparse)");
        }
        _ => panic!("engines disagree on output flavor"),
    }
    tape
}

fn ttmc_setup(seed: u64) -> (Kernel, CooTensor, Vec<DenseTensor>) {
    let k = parse_kernel(
        "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
        &[("i", 8), ("j", 9), ("k", 10), ("r", 4), ("s", 5)],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let coo = random_coo(&[8, 9, 10], 120, &mut rng).unwrap();
    let u = random_dense(&[9, 4], &mut rng);
    let v = random_dense(&[10, 5], &mut rng);
    (k, coo, vec![u, v])
}

/// Listing 3: 1-d buffer, sparse k loop, trailing dense s (AXPY path),
/// all CSF levels tracked — no searches at all on either engine.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn ttmc_listing3_matches_oracle() {
    let (k, coo, f) = ttmc_setup(1);
    let got = run_both(
        &k,
        &[(0, 2), (0, 1)],
        vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
        &coo,
        &f,
    );
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// Listing 4: dense s *above* sparse k — the sparse loop re-resolves
/// its parent per s iteration. This is the finger-search path.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn ttmc_listing4_finger_search_matches_oracle() {
    let (k, coo, f) = ttmc_setup(2);
    let got = run_both(
        &k,
        &[(0, 2), (0, 1)],
        vec![vec![0, 1, 4, 2], vec![0, 1, 4, 3]],
        &coo,
        &f,
    );
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// Listing 2 (unfused): the consumer re-descends the CSF below its own
/// dense s loop — multi-level finger resolution.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn ttmc_unfused_redescent_matches_oracle() {
    let (k, coo, f) = ttmc_setup(3);
    let got = run_both(
        &k,
        &[(0, 2), (0, 1)],
        vec![vec![0, 1, 2, 4], vec![4, 0, 1, 3]],
        &coo,
        &f,
    );
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// Fig. 1d: dense-first path (U·V materialized, then contracted with T).
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn ttmc_dense_first_path_matches_oracle() {
    let (k, coo, f) = ttmc_setup(4);
    let got = run_both(
        &k,
        &[(1, 2), (0, 1)],
        vec![vec![1, 3, 2, 4], vec![0, 1, 2, 3, 4]],
        &coo,
        &f,
    );
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// MTTKRP fused factorize schedule (AXPY/XMUL lowerings).
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn mttkrp_factorized_matches_oracle() {
    let k = parse_kernel(
        "A(i,a) = T(i,j,k) * B(j,a) * C(k,a)",
        &[("i", 7), ("j", 8), ("k", 9), ("a", 5)],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let coo = random_coo(&[7, 8, 9], 100, &mut rng).unwrap();
    let b = random_dense(&[8, 5], &mut rng);
    let c = random_dense(&[9, 5], &mut rng);
    let f = vec![b, c];
    let got = run_both(
        &k,
        &[(0, 2), (0, 1)],
        vec![vec![0, 1, 2, 3], vec![0, 1, 3]],
        &coo,
        &f,
    );
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// TTTP: pattern-sharing output written through the tape's resolved
/// leaf nodes.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn tttp_sparse_output_matches_oracle() {
    let k = parse_kernel(
        "S(i,j,k) = T(i,j,k) * U(i,r) * V(j,r) * W(k,r)",
        &[("i", 6), ("j", 7), ("k", 8), ("r", 3)],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    let coo = random_coo(&[6, 7, 8], 80, &mut rng).unwrap();
    let f = vec![
        random_dense(&[6, 3], &mut rng),
        random_dense(&[7, 3], &mut rng),
        random_dense(&[8, 3], &mut rng),
    ];
    let got = run_both(
        &k,
        &[(1, 2), (1, 2), (0, 1)],
        vec![vec![0, 1, 3], vec![0, 1, 2, 3], vec![0, 1, 2]],
        &coo,
        &f,
    );
    let ContractionOutput::Sparse(out) = &got else {
        panic!("TTTP output must share the sparse pattern");
    };
    assert_eq!(out.nnz(), coo.nnz());
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// Rank-1 outer product intermediate: the GER lowering.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn ger_lowering_matches_oracle() {
    let k = parse_kernel(
        "S(i,r,s) = T(i) * U(r) * V(s)",
        &[("i", 6), ("r", 5), ("s", 4)],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    let coo = random_coo(&[6], 4, &mut rng).unwrap();
    let f = vec![random_dense(&[5], &mut rng), random_dense(&[4], &mut rng)];
    let got = run_both(
        &k,
        &[(1, 2), (0, 1)],
        vec![vec![1, 2], vec![0, 1, 2]],
        &coo,
        &f,
    );
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// Matrix-times-vector intermediate: the GEMV lowering.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn gemv_lowering_matches_oracle() {
    let k = parse_kernel(
        "C(i) = T(k) * A(i,j) * B(j)",
        &[("i", 6), ("j", 7), ("k", 5)],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    let coo = random_coo(&[5], 3, &mut rng).unwrap();
    let f = vec![
        random_dense(&[6, 7], &mut rng),
        random_dense(&[7], &mut rng),
    ];
    let got = run_both(
        &k,
        &[(1, 2), (0, 1)],
        vec![vec![1, 2], vec![0, 1]],
        &coo,
        &f,
    );
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// Order-4 TTMc with the Fig. 6 nest: two buffers, deep fusion.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn order4_ttmc_fig6_matches_oracle() {
    let k = parse_kernel(
        "S(i,r,s,t) = T(i,j,k,l) * U(j,r) * V(k,s) * W(l,t)",
        &[
            ("i", 5),
            ("j", 5),
            ("k", 5),
            ("l", 5),
            ("r", 3),
            ("s", 3),
            ("t", 3),
        ],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(10);
    let coo = random_coo(&[5, 5, 5, 5], 60, &mut rng).unwrap();
    let f = vec![
        random_dense(&[5, 3], &mut rng),
        random_dense(&[5, 3], &mut rng),
        random_dense(&[5, 3], &mut rng),
    ];
    let got = run_both(
        &k,
        &[(0, 3), (1, 2), (0, 1)],
        vec![
            vec![0, 1, 2, 3, 6],
            vec![0, 1, 2, 5, 6],
            vec![0, 1, 4, 5, 6],
        ],
        &coo,
        &f,
    );
    let want = oracle(&k, &coo, &f);
    assert!(got.to_dense().approx_eq(&want, TOL));
}

/// Randomized sweep: every (path, spec) the order-3 TTMc admits on a
/// few seeds, so loop shapes beyond the handcrafted listings hit both
/// engines (the tape must never diverge, whatever the nest).
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn randomized_nests_agree_with_interpreter() {
    use spttn_ir::{enumerate_paths, NestSpecIter};
    let (k, coo, f) = ttmc_setup(42);
    let order: Vec<usize> = (0..coo.order()).collect();
    let csf = Csf::from_coo(&coo, &order).unwrap();
    let refs: Vec<&DenseTensor> = f.iter().collect();
    let want = oracle(&k, &coo, &f);
    let mut checked = 0usize;
    for path in enumerate_paths(&k) {
        for spec in NestSpecIter::new(&k, &path).take(12) {
            let Ok(forest) = build_forest(&k, &path, &spec) else {
                continue;
            };
            let interp = execute_forest(&k, &path, &forest, &csf, &refs).unwrap();
            let tape = execute_tape(&k, &path, &forest, &csf, &refs).unwrap();
            assert_eq!(
                interp.to_dense().as_slice(),
                tape.to_dense().as_slice(),
                "engines diverged on {}",
                forest.render(&k, &path)
            );
            assert!(tape.to_dense().approx_eq(&want, TOL));
            checked += 1;
        }
    }
    assert!(checked > 10, "sweep exercised only {checked} nests");
}

/// The tape reports finger probes where the interpreter reports binary
/// search depth, and on a monotone dense sweep the finger does
/// strictly fewer comparisons.
///
/// The Sec.-4 forest builder keeps every CSF level of the sparse term
/// tracked (dense iteration over the sparse term's modes is rejected
/// as `BrokenDescent`), so planner-built nests never re-resolve — the
/// resolution path is the *executor-level* contract for forests that
/// iterate a sparse mode densely, which both engines support: absent
/// coordinates read zero by lineage pruning. Build such a forest
/// directly by flipping the root vertex of Listing 3 to dense.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn finger_search_beats_binary_search_probes() {
    use spttn_ir::{LoopNode, VertexKind};
    let k = parse_kernel(
        "S(i,r,s) = T(i,j,k) * U(j,r) * V(k,s)",
        &[("i", 40), ("j", 20), ("k", 30), ("r", 3), ("s", 4)],
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(11);
    let coo = random_coo(&[40, 20, 30], 2500, &mut rng).unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let u = random_dense(&[20, 3], &mut rng);
    let v = random_dense(&[30, 4], &mut rng);
    let path = path_from_picks(&k, &[(0, 2), (0, 1)]);
    let spec = NestSpec {
        orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
    };
    let mut forest = build_forest(&k, &path, &spec).unwrap();
    // Iterate the root sparse mode densely: every deeper sparse loop
    // (and every leaf-value read) must now re-resolve level 0.
    let LoopNode::Loop(iv) = &mut forest.roots[0] else {
        panic!("listing 3 has a root loop");
    };
    assert_eq!(iv.kind, VertexKind::Sparse { level: 0 });
    iv.kind = VertexKind::Dense;

    let refs: Vec<&DenseTensor> = vec![&u, &v];
    // Interpreter: run through a workspace to read its stats.
    let mut ws = Workspace::new(&k, &path, &forest);
    let mut slots: Vec<DenseTensor> = vec![DenseTensor::zeros(&[])];
    slots.extend([u.clone(), v.clone()]);
    let mut out = DenseTensor::zeros(&k.ref_dims(&k.output));
    spttn_exec::execute_forest_into(
        &k,
        &path,
        &forest,
        &csf,
        &slots,
        &mut ws,
        OutputMut::Dense(&mut out),
    )
    .unwrap();
    let interp_stats = ws.stats();

    let tape = CompiledTape::from_forest(&k, &path, &forest).unwrap();
    assert!(tape.num_fingers() > 0, "nest must need re-resolution");
    // The finger-search program (the only resolver-bearing tape in the
    // suite) must satisfy the verifier's monotone-descent rules.
    tape.verify().expect("resolver tape verifies clean");
    let mut ws2 = Workspace::new(&k, &path, &forest);
    ws2.prepare_tape(&tape);
    let mut out2 = DenseTensor::zeros(&k.ref_dims(&k.output));
    execute_tape_into(
        &tape,
        &k,
        &csf,
        &slots,
        &mut ws2,
        OutputMut::Dense(&mut out2),
    )
    .unwrap();
    let tape_stats = ws2.stats();

    assert_eq!(out.as_slice(), out2.as_slice());
    let want = oracle(&k, &coo, &[u.clone(), v.clone()]);
    assert!(
        out.approx_eq(&want, TOL),
        "dense iteration over a sparse mode diverged from the oracle"
    );
    // The tape skips searches the interpreter performs and discards
    // (shallow levels below a tracked one), and its finger turns the
    // remaining ones into near-constant forward probes.
    assert!(interp_stats.node_searches > 0);
    assert!(tape_stats.node_searches > 0);
    assert!(
        tape_stats.node_searches <= interp_stats.node_searches,
        "tape searched more sites ({}) than the interpreter ({})",
        tape_stats.node_searches,
        interp_stats.node_searches
    );
    assert!(
        tape_stats.search_probes < interp_stats.search_probes,
        "finger probes {} should beat binary probes {}",
        tape_stats.search_probes,
        interp_stats.search_probes
    );
    let _ = execute_tape(&k, &path, &forest, &csf, &refs).unwrap();
}

/// A workspace built for a different forest is rejected by the tape
/// runner, mirroring the interpreter's stamp check.
#[test]
#[cfg_attr(miri, ignore)] // too slow under the interpreter
fn tape_rejects_mismatched_workspace() {
    let (k, coo, factors) = ttmc_setup(78);
    let path = path_from_picks(&k, &[(0, 2), (0, 1)]);
    let fused = build_forest(
        &k,
        &path,
        &NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![0, 1, 4, 3]],
        },
    )
    .unwrap();
    let unfused = build_forest(
        &k,
        &path,
        &NestSpec {
            orders: vec![vec![0, 1, 2, 4], vec![4, 0, 1, 3]],
        },
    )
    .unwrap();
    let csf = Csf::from_coo(&coo, &[0, 1, 2]).unwrap();
    let mut slots: Vec<DenseTensor> = vec![DenseTensor::zeros(&[])];
    slots.extend(factors.iter().cloned());
    let mut out = DenseTensor::zeros(&k.ref_dims(&k.output));
    let tape = CompiledTape::from_forest(&k, &path, &fused).unwrap();
    let mut ws = Workspace::new(&k, &path, &unfused);
    let e = execute_tape_into(&tape, &k, &csf, &slots, &mut ws, OutputMut::Dense(&mut out));
    assert!(e.is_err(), "mismatched workspace was accepted");
}
