#!/usr/bin/env bash
# unsafe_audit.sh — fail if any `unsafe` in the workspace lacks a SAFETY comment.
#
# Policy (enforced in CI's lint job):
#   * every line of Rust source that introduces `unsafe` (a block, fn,
#     or impl) must have a `// SAFETY:` comment within the WINDOW lines
#     immediately above it (attributes and blank lines don't reset it);
#   * `#![forbid(unsafe_code)]` crates are audited too — any `unsafe`
#     there is a bug the compiler will also catch, but the audit names
#     the line before a full build does.
#
# Usage: tools/unsafe_audit.sh [ROOT]   (ROOT defaults to the repo root)
set -euo pipefail

root="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
window=6
fail=0

# All Rust sources under the workspace, excluding build output.
mapfile -t files < <(find "$root/src" "$root/crates" -name '*.rs' -not -path '*/target/*' | sort)

for f in "${files[@]}"; do
  # Lines that mention `unsafe` outside of comments and string-ish
  # contexts. We strip line comments first, then match the keyword.
  while IFS=: read -r lineno _; do
    [ -n "$lineno" ] || continue
    ok=0
    start=$((lineno > window ? lineno - window : 1))
    # Accept a SAFETY marker on the unsafe line itself or in the
    # preceding window.
    if sed -n "${start},${lineno}p" "$f" | grep -q 'SAFETY:'; then
      ok=1
    fi
    if [ "$ok" -eq 0 ]; then
      echo "MISSING SAFETY: $f:$lineno"
      sed -n "${lineno}p" "$f" | sed 's/^/    /'
      fail=1
    fi
  done < <(sed 's|//.*||' "$f" | grep -n '\bunsafe\b' | cut -d: -f1 | while read -r n; do echo "$n:"; done)
done

if [ "$fail" -ne 0 ]; then
  echo
  echo "unsafe audit FAILED: annotate each unsafe site with a '// SAFETY:' comment"
  echo "within $window lines above it explaining why the invariants hold."
  exit 1
fi
echo "unsafe audit OK: every unsafe site carries a SAFETY comment"
