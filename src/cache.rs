//! Keyed storage of symbolic plans.
//!
//! The Sec. 5 planner (path enumeration + Algorithm-1 DP, times the
//! number of candidate CSF orders under
//! [`ModeOrderPolicy::Auto`](crate::cost::ModeOrderPolicy)) is the
//! expensive stage of the pipeline, and its output depends only on the
//! kernel structure, the index dimensions, the sparsity information,
//! and the planning options — never on tensor values. [`PlanKey`]
//! captures exactly those inputs, so a [`PlanCache`] can hand back a
//! shared [`Plan`] for every repeated build (CP-ALS sweeps, request
//! traffic for a hot kernel) instead of re-running the DP.
//!
//! Keys are honest: two contractions get the same key **iff** the
//! planner would make identical decisions for both. That includes the
//! mode-order policy and — for pattern-backed sparsity, where the
//! search scores orders on exact per-order fiber counts — a fingerprint
//! of the coordinates themselves, since two patterns with identical
//! natural-order profiles can crown different orders. The one lossy
//! field is `tier_slack: f64` on [`PlanOptions`], which is quantized to
//! parts per million so the key stays `Eq + Hash` without comparing raw
//! floats.
//!
//! Lookups are **single-flight**: when several threads miss on the same
//! key at once, exactly one runs the planner while the rest block on
//! the winner's slot and share its result — [`PlanCache::misses`]
//! counts one planner run, not one per racing thread.

use crate::contraction::{Contraction, CostModel, Plan, PlanOptions, Shapes, SparsitySource};
use crate::Result;
use spttn_cost::ModeOrderPolicy;
use spttn_ir::Kernel;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Hashable fingerprint of the sparsity information the planner ran on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum SparsityKey {
    /// Exact profile: dims, mode order, per-level prefix nnz.
    Profile(Vec<usize>, Vec<usize>, Vec<u64>),
    /// Exact pattern: dims, written-position → COO-mode map, nonzero
    /// count, and the pattern fingerprint (a hash of the flat
    /// coordinates, computed once when the pattern entered the
    /// `Shapes`/CSF — not per lookup). The fingerprint is what keeps
    /// keys honest under order search — the per-order exact counts the
    /// search compares are a function of the full pattern, not of any
    /// single profile.
    Pattern {
        dims: Vec<usize>,
        base: Vec<usize>,
        nnz: usize,
        coord_hash: u64,
    },
    /// Uniform model: modeled nonzero count (dimensions are already in
    /// the key's `dims`).
    Uniform(u64),
}

impl SparsityKey {
    fn of(source: &SparsitySource) -> SparsityKey {
        match source {
            SparsitySource::Profile(p) => {
                let (dims, order, prefix) = p.signature();
                SparsityKey::Profile(dims, order, prefix)
            }
            SparsitySource::Pattern { coo, base, fp } => SparsityKey::Pattern {
                dims: coo.dims().to_vec(),
                base: base.clone(),
                nnz: coo.nnz(),
                coord_hash: *fp,
            },
            SparsitySource::Uniform { nnz } => SparsityKey::Uniform(*nnz),
        }
    }
}

/// Everything the planner's decisions depend on, in hashable form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Canonical einsum rendering of the kernel (names + index order).
    kernel: String,
    /// Dimension of every kernel index, in index-id order.
    dims: Vec<usize>,
    /// Which input slot holds the sparse tensor.
    sparse_input: usize,
    /// Whether the output shares the sparse pattern.
    output_sparse: bool,
    /// Sparsity information summary (profile, pattern, or model).
    sparsity: SparsityKey,
    /// Cost model (integral parameters only — derives `Hash` directly).
    cost_model: CostModel,
    /// CSF mode-order policy (structural data — derives `Hash`).
    mode_order: ModeOrderPolicy,
    /// Search limits.
    max_paths_per_tier: usize,
    max_tiers: usize,
    /// `tier_slack` quantized to parts per million (after the planner's
    /// own clamp to ≥ 1.0), keeping the raw `f64` out of the key.
    tier_slack_ppm: u64,
    /// `=` vs `+=` execution semantics.
    accumulate: bool,
}

impl PlanKey {
    /// Build the key for fully-resolved planning inputs.
    pub fn new(
        kernel: &Kernel,
        profile: &spttn_tensor::SparsityProfile,
        accumulate: bool,
        opts: &PlanOptions,
    ) -> Self {
        Self::from_source(
            kernel,
            &SparsitySource::Profile(profile.clone()),
            accumulate,
            opts,
        )
    }

    /// Build the key for a resolved sparsity source.
    pub(crate) fn from_source(
        kernel: &Kernel,
        source: &SparsitySource,
        accumulate: bool,
        opts: &PlanOptions,
    ) -> Self {
        PlanKey {
            kernel: kernel.to_einsum(),
            dims: (0..kernel.num_indices()).map(|i| kernel.dim(i)).collect(),
            sparse_input: kernel.sparse_input,
            output_sparse: kernel.output_sparse,
            sparsity: SparsityKey::of(source),
            cost_model: opts.cost_model,
            mode_order: opts.mode_order.clone(),
            max_paths_per_tier: opts.max_paths_per_tier,
            max_tiers: opts.max_tiers,
            tier_slack_ppm: (opts.tier_slack.max(1.0) * 1e6).round() as u64,
            accumulate,
        }
    }
}

/// One keyed slot: completed with a shared plan (or the planning error
/// for the threads that waited on a failed flight).
type PlanSlot = Arc<OnceLock<Result<Arc<Plan>>>>;

/// A thread-safe, keyed store of symbolic plans with single-flight
/// lookups.
///
/// ```
/// use spttn::{Contraction, PlanCache, PlanOptions, Shapes};
///
/// let cache = PlanCache::new();
/// let shapes = Shapes::new()
///     .with_dims(&[("i", 30), ("j", 20), ("k", 25), ("r", 8)])
///     .with_nnz(200);
/// let opts = PlanOptions::default();
/// let expr = "T[i,j,k]*A[j,r]*B[k,r]->O[i,r]";
///
/// let p1 = cache.plan(Contraction::parse(expr).unwrap(), &shapes, &opts).unwrap();
/// let p2 = cache.plan(Contraction::parse(expr).unwrap(), &shapes, &opts).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&p1, &p2)); // second build hit the cache
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, PlanSlot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve a contraction against `shapes` and return its plan,
    /// running the Sec. 5 DP only when no plan with the same [`PlanKey`]
    /// is stored yet.
    pub fn plan(
        &self,
        contraction: Contraction,
        shapes: &Shapes,
        opts: &PlanOptions,
    ) -> Result<Arc<Plan>> {
        let (kernel, accumulate) = contraction.resolve_symbolic(shapes)?;
        let source = shapes.resolve_source(&kernel)?;
        self.plan_from_parts(kernel, source, accumulate, opts)
    }

    /// Get-or-plan on fully-resolved parts, single-flight per key: of
    /// any number of threads racing a cold key, exactly one runs the DP
    /// (counted as one miss) while the others block on its slot and
    /// share the resulting `Arc` (each counted as a hit). A failed
    /// flight hands its error to every waiter but is not retained, so
    /// later lookups retry planning.
    pub(crate) fn plan_from_parts(
        &self,
        kernel: Kernel,
        source: SparsitySource,
        accumulate: bool,
        opts: &PlanOptions,
    ) -> Result<Arc<Plan>> {
        let key = PlanKey::from_source(&kernel, &source, accumulate, opts);
        let slot: PlanSlot = self
            .plans
            .lock()
            .expect("cache lock")
            .entry(key.clone())
            .or_default()
            .clone();
        let mut leader = false;
        let res = slot
            .get_or_init(|| {
                leader = true;
                Plan::build(kernel, source, accumulate, opts).map(Arc::new)
            })
            .clone();
        if res.is_err() {
            // Drop the failed slot (if it is still the one we raced
            // on) so the error is not cached. Every observer attempts
            // this, not just the leader — a thread that joins the map
            // entry after the flight failed but before the leader's
            // removal would otherwise leave the stale error pinned.
            let mut map = self.plans.lock().expect("cache lock");
            if map.get(&key).is_some_and(|cur| Arc::ptr_eq(cur, &slot)) {
                map.remove(&key);
            }
        }
        if leader {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else if res.is_ok() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        // The symbolic nest is identical for every thread count,
        // engine, and microkernel policy, so `ExecOptions` stay out of
        // the key — but the caller's options must win over whatever
        // the flight leader planned with: re-apply them on a mismatch
        // (hits with matching options keep sharing the cached `Arc`
        // untouched). `ExecOptions` derives `PartialEq` over every
        // field, so a new field (engine, verify, microkernels…)
        // is re-applied here automatically.
        res.map(|plan| {
            if plan.exec() == opts.exec {
                plan
            } else {
                Arc::new((*plan).clone().with_exec(opts.exec.clone()))
            }
        })
    }

    /// Number of cached plans (completed successful flights).
    pub fn len(&self) -> usize {
        self.plans
            .lock()
            .expect("cache lock")
            .values()
            .filter(|slot| matches!(slot.get(), Some(Ok(_))))
            .count()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached plan (counters are kept). In-flight planner
    /// runs complete on their private slots and are dropped.
    pub fn clear(&self) {
        self.plans.lock().expect("cache lock").clear();
    }

    /// Lookups answered from the cache since construction — including
    /// threads that blocked on another thread's in-flight planner run.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Planner runs (one per cold key, however many threads raced it).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}
