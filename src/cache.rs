//! Keyed storage of symbolic plans.
//!
//! The Sec. 5 planner (path enumeration + Algorithm-1 DP) is the
//! expensive stage of the pipeline, and its output depends only on the
//! kernel structure, the index dimensions, the sparsity profile, and
//! the cost model — never on tensor values. [`PlanKey`] captures
//! exactly those inputs, so a [`PlanCache`] can hand back a shared
//! [`Plan`] for every repeated build (CP-ALS sweeps, request traffic
//! for a hot kernel) instead of re-running the DP.
//!
//! Keys are honest: two contractions get the same key **iff** the
//! planner would make identical decisions for both. The one lossy field
//! is `tier_slack: f64` on [`PlanOptions`], which is quantized to parts
//! per million so the key stays `Eq + Hash` without comparing raw
//! floats.

use crate::contraction::{Contraction, CostModel, Plan, PlanOptions, Shapes};
use crate::Result;
use spttn_ir::Kernel;
use spttn_tensor::SparsityProfile;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Everything the planner's decisions depend on, in hashable form.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Canonical einsum rendering of the kernel (names + index order).
    kernel: String,
    /// Dimension of every kernel index, in index-id order.
    dims: Vec<usize>,
    /// Which input slot holds the sparse tensor.
    sparse_input: usize,
    /// Whether the output shares the sparse pattern.
    output_sparse: bool,
    /// Sparsity-profile summary: dims, mode order, per-level prefix nnz.
    profile: (Vec<usize>, Vec<usize>, Vec<u64>),
    /// Cost model (integral parameters only — derives `Hash` directly).
    cost_model: CostModel,
    /// Search limits.
    max_paths_per_tier: usize,
    max_tiers: usize,
    /// `tier_slack` quantized to parts per million (after the planner's
    /// own clamp to ≥ 1.0), keeping the raw `f64` out of the key.
    tier_slack_ppm: u64,
    /// `=` vs `+=` execution semantics.
    accumulate: bool,
}

impl PlanKey {
    /// Build the key for fully-resolved planning inputs.
    pub fn new(
        kernel: &Kernel,
        profile: &SparsityProfile,
        accumulate: bool,
        opts: &PlanOptions,
    ) -> Self {
        PlanKey {
            kernel: kernel.to_einsum(),
            dims: (0..kernel.num_indices()).map(|i| kernel.dim(i)).collect(),
            sparse_input: kernel.sparse_input,
            output_sparse: kernel.output_sparse,
            profile: profile.signature(),
            cost_model: opts.cost_model,
            max_paths_per_tier: opts.max_paths_per_tier,
            max_tiers: opts.max_tiers,
            tier_slack_ppm: (opts.tier_slack.max(1.0) * 1e6).round() as u64,
            accumulate,
        }
    }
}

/// A thread-safe, keyed store of symbolic plans.
///
/// ```
/// use spttn::{Contraction, PlanCache, PlanOptions, Shapes};
///
/// let cache = PlanCache::new();
/// let shapes = Shapes::new()
///     .with_dims(&[("i", 30), ("j", 20), ("k", 25), ("r", 8)])
///     .with_nnz(200);
/// let opts = PlanOptions::default();
/// let expr = "T[i,j,k]*A[j,r]*B[k,r]->O[i,r]";
///
/// let p1 = cache.plan(Contraction::parse(expr).unwrap(), &shapes, &opts).unwrap();
/// let p2 = cache.plan(Contraction::parse(expr).unwrap(), &shapes, &opts).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&p1, &p2)); // second build hit the cache
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// ```
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<PlanKey, Arc<Plan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve a contraction against `shapes` and return its plan,
    /// running the Sec. 5 DP only when no plan with the same [`PlanKey`]
    /// is stored yet.
    pub fn plan(
        &self,
        contraction: Contraction,
        shapes: &Shapes,
        opts: &PlanOptions,
    ) -> Result<Arc<Plan>> {
        let (kernel, accumulate) = contraction.resolve_symbolic(shapes)?;
        let profile = shapes.resolve_profile(&kernel)?;
        self.plan_from_parts(kernel, profile, accumulate, opts)
    }

    /// Get-or-plan on fully-resolved parts. The DP runs outside the
    /// lock; when two threads race on the same key, the first insert
    /// wins and both get the same `Arc`.
    pub(crate) fn plan_from_parts(
        &self,
        kernel: Kernel,
        profile: SparsityProfile,
        accumulate: bool,
        opts: &PlanOptions,
    ) -> Result<Arc<Plan>> {
        let key = PlanKey::new(&kernel, &profile, accumulate, opts);
        if let Some(plan) = self.plans.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(plan.clone());
        }
        let plan = Arc::new(Plan::build(kernel, profile, accumulate, opts)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let stored = self
            .plans
            .lock()
            .expect("cache lock")
            .entry(key)
            .or_insert(plan)
            .clone();
        Ok(stored)
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.plans.lock().expect("cache lock").len()
    }

    /// True when no plan is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached plan (counters are kept).
    pub fn clear(&self) {
        self.plans.lock().expect("cache lock").clear();
    }

    /// Lookups answered from the cache since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the planner.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}
