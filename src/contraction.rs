//! The `Contraction` facade: parse → bind → plan → execute.
//!
//! One front door for the whole SpTTN pipeline. An einsum-style
//! expression is parsed into its tensor structure; operands are bound
//! (one CSF sparse input, dense factors by name); dimensions are
//! inferred from the bound tensors; [`Contraction::plan`] runs the
//! Sec. 5 planner under a selectable tree-separable cost model; and
//! [`Plan::execute`] interprets the fused loop forest, returning the
//! output tensor.
//!
//! Two expression syntaxes are accepted:
//!
//! - paper style: `"A(i,a) = T(i,j,k) * B(j,a) * C(k,a)"`
//! - arrow style: `"T[i,j,k]*B[j,a]*C[k,a]->A[i,a]"`
//!
//! In both, the **first right-hand-side tensor is the sparse input**,
//! and its written index order must match the CSF storage order of the
//! bound tensor. When the output's index set equals the sparse input's,
//! the output shares the sparse pattern (TTTP-like) and
//! [`Plan::execute`] returns [`ContractionOutput::Sparse`].

use crate::{Result, SpttnError};
use spttn_cost::{
    plan as cost_plan, BlasAware, CacheMiss, MaxBufferDim, MaxBufferSize, PlannedNest, TreeCost,
};
use spttn_exec::{execute_forest, ContractionOutput};
use spttn_ir::{
    buffers_for_forest, build_forest, BufferSpec, ContractionPath, Kernel, KernelBuilder,
    KernelError, LoopForest, NestSpec,
};
use spttn_tensor::{Csf, DenseTensor, SparsityProfile};
use std::collections::HashMap;

/// Cost model driving the planner (paper Defs. 4.5, 4.6 and Sec. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostModel {
    /// Minimize the maximum intermediate-buffer dimensionality (Def. 4.5).
    MaxBufferDim,
    /// Minimize the maximum intermediate-buffer element count (Def. 4.5).
    MaxBufferSize,
    /// Minimize modeled cache misses with footprint exponent `d` (Def. 4.6).
    CacheMiss {
        /// Cache-footprint exponent.
        d: usize,
    },
    /// Maximize BLAS-offloadable dense loops under a buffer-dimension
    /// bound (Sec. 5; the paper's experiments use bound 2).
    BlasAware {
        /// Maximum allowed buffer dimensionality.
        buffer_dim_bound: usize,
    },
}

/// Options for [`Contraction::plan`].
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Cost model selecting among loop nests.
    pub cost_model: CostModel,
    /// Maximum contraction paths the DP runs on per cost tier.
    pub max_paths_per_tier: usize,
    /// Maximum asymptotic-cost tiers to explore before giving up.
    pub max_tiers: usize,
    /// Paths within this factor of the tier leader share the tier.
    pub tier_slack: f64,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            cost_model: CostModel::BlasAware {
                buffer_dim_bound: 2,
            },
            max_paths_per_tier: 64,
            max_tiers: 16,
            tier_slack: 1.0,
        }
    }
}

impl PlanOptions {
    /// Options with a specific cost model and default search limits.
    pub fn with_cost_model(cost_model: CostModel) -> Self {
        PlanOptions {
            cost_model,
            ..Default::default()
        }
    }

    fn search(&self) -> spttn_cost::PlanOptions {
        spttn_cost::PlanOptions {
            max_paths_per_tier: self.max_paths_per_tier,
            max_tiers: self.max_tiers,
            tier_slack: self.tier_slack,
        }
    }
}

/// One tensor reference parsed from the expression.
#[derive(Debug, Clone)]
struct RawRef {
    name: String,
    indices: Vec<String>,
}

/// A contraction being assembled: parsed structure plus bound operands.
#[derive(Debug, Clone, Default)]
pub struct Contraction {
    output: Option<RawRef>,
    inputs: Vec<RawRef>,
    /// Pre-built kernel (bypasses parsing and dimension inference).
    kernel: Option<Kernel>,
    sparse: Option<Csf>,
    factors: HashMap<String, DenseTensor>,
}

impl Contraction {
    /// Parse an einsum-style SpTTN expression (structure only;
    /// dimensions are inferred from the tensors bound later).
    pub fn parse(expr: &str) -> Result<Self> {
        let (output, inputs) = parse_expression(expr)?;
        if inputs.is_empty() {
            return Err(KernelError::NoInputs.into());
        }
        Ok(Contraction {
            output: Some(output),
            inputs,
            ..Default::default()
        })
    }

    /// Start from an existing [`Kernel`] (e.g. one of
    /// [`spttn_ir::stdkernels`]); bound tensors are validated against
    /// the kernel's declared dimensions.
    pub fn from_kernel(kernel: Kernel) -> Self {
        let as_raw = |r: &spttn_ir::TensorRef| RawRef {
            name: r.name.clone(),
            indices: r
                .indices
                .iter()
                .map(|&i| kernel.index_name(i).to_string())
                .collect(),
        };
        Contraction {
            output: Some(as_raw(&kernel.output)),
            inputs: kernel.inputs.iter().map(as_raw).collect(),
            kernel: Some(kernel),
            ..Default::default()
        }
    }

    /// Bind the sparse input (the first right-hand-side tensor). The
    /// CSF's storage order must match the expression's written index
    /// order for that tensor.
    pub fn with_sparse_input(mut self, csf: Csf) -> Self {
        self.sparse = Some(csf);
        self
    }

    /// Bind a dense factor by tensor name.
    pub fn with_factor(mut self, name: &str, tensor: DenseTensor) -> Self {
        self.factors.insert(name.to_string(), tensor);
        self
    }

    /// Run the planner: choose a contraction path and loop orders
    /// minimizing the configured cost model, with tier fallback
    /// (paper Sec. 5), and prepare the executable [`Plan`].
    pub fn plan(mut self, opts: PlanOptions) -> Result<Plan> {
        let Some(csf) = self.sparse.take() else {
            return Err(SpttnError::Planning(
                "no sparse input bound; call with_sparse_input".into(),
            ));
        };
        let output = self
            .output
            .clone()
            .ok_or_else(|| SpttnError::Planning("no expression parsed".into()))?;

        let kernel = match self.kernel.take() {
            Some(k) => k,
            None => infer_kernel(&output, &self.inputs, &csf, &self.factors)?,
        };

        // Collect dense factors in input order, moving each binding out
        // of the map (no clone); a name appearing in several input slots
        // reuses the first tensor taken.
        let mut factors: Vec<DenseTensor> = Vec::new();
        let mut taken: HashMap<String, usize> = HashMap::new();
        for (slot, r) in kernel.inputs.iter().enumerate() {
            if slot == kernel.sparse_input {
                continue;
            }
            let t = match self.factors.remove(&r.name) {
                Some(t) => t,
                None => match taken.get(&r.name) {
                    Some(&at) => factors[at].clone(),
                    None => {
                        return Err(SpttnError::Planning(format!(
                            "dense factor '{}' not bound; call with_factor(\"{}\", ...)",
                            r.name, r.name
                        )))
                    }
                },
            };
            taken.insert(r.name.clone(), factors.len());
            factors.push(t);
        }
        if let Some(name) = self.factors.keys().next() {
            return Err(SpttnError::Planning(format!(
                "bound factor '{name}' does not appear in the expression"
            )));
        }

        // Validate the CSF and factor shapes with the same rules the
        // executor applies.
        let refs: Vec<&DenseTensor> = factors.iter().collect();
        spttn_exec::validate_operands(&kernel, &csf, &refs)?;
        drop(refs);

        let profile = SparsityProfile::from_csf(&csf);
        let planned = run_planner(&kernel, &profile, &opts)?;
        let forest = build_forest(&kernel, &planned.path, &planned.spec)?;
        let buffers = buffers_for_forest(&kernel, &planned.path, &forest);

        Ok(Plan {
            kernel,
            path: planned.path,
            spec: planned.spec,
            forest,
            buffers,
            flops: planned.flops,
            tier: planned.tier,
            cost: planned.cost,
            csf,
            factors,
        })
    }
}

/// Type-erased planner output.
struct Planned {
    path: ContractionPath,
    spec: NestSpec,
    flops: u128,
    tier: usize,
    cost: String,
}

fn erase<V: std::fmt::Debug>(p: PlannedNest<V>) -> Planned {
    Planned {
        cost: format!("{:?}", p.value),
        path: p.path,
        spec: p.spec,
        flops: p.flops,
        tier: p.tier,
    }
}

fn run_planner(kernel: &Kernel, profile: &SparsityProfile, opts: &PlanOptions) -> Result<Planned> {
    fn go<C: TreeCost>(
        kernel: &Kernel,
        profile: &SparsityProfile,
        cost: &C,
        opts: &PlanOptions,
    ) -> Result<Planned>
    where
        C::Value: std::fmt::Debug,
    {
        cost_plan(kernel, profile, cost, &opts.search())
            .map(erase)
            .ok_or_else(|| SpttnError::Planning("no feasible loop nest found".into()))
    }
    match opts.cost_model {
        CostModel::MaxBufferDim => go(kernel, profile, &MaxBufferDim, opts),
        CostModel::MaxBufferSize => go(kernel, profile, &MaxBufferSize, opts),
        CostModel::CacheMiss { d } => go(kernel, profile, &CacheMiss { d }, opts),
        CostModel::BlasAware { buffer_dim_bound } => {
            go(kernel, profile, &BlasAware { buffer_dim_bound }, opts)
        }
    }
}

/// A planned, executable contraction.
#[derive(Debug, Clone)]
pub struct Plan {
    kernel: Kernel,
    path: ContractionPath,
    spec: NestSpec,
    forest: LoopForest,
    buffers: Vec<BufferSpec>,
    /// Leading-order scalar-operation count of the chosen path.
    pub flops: u128,
    /// Asymptotic-cost tier the path came from (0 = optimal).
    pub tier: usize,
    /// Debug rendering of the chosen nest's cost value.
    pub cost: String,
    csf: Csf,
    factors: Vec<DenseTensor>,
}

impl Plan {
    /// Execute the fused loop nest over the bound operands.
    pub fn execute(&self) -> Result<ContractionOutput> {
        let refs: Vec<&DenseTensor> = self.factors.iter().collect();
        execute_forest(&self.kernel, &self.path, &self.forest, &self.csf, &refs)
    }

    /// The validated kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The chosen contraction path.
    pub fn path(&self) -> &ContractionPath {
        &self.path
    }

    /// The chosen loop orders.
    pub fn spec(&self) -> &NestSpec {
        &self.spec
    }

    /// The fused loop forest the executor walks.
    pub fn forest(&self) -> &LoopForest {
        &self.forest
    }

    /// Intermediate buffers of the nest (Eq. 5).
    pub fn buffers(&self) -> &[BufferSpec] {
        &self.buffers
    }

    /// Human-readable summary: kernel, path, orders, loop nest, buffers.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("kernel: {}\n", self.kernel.to_einsum()));
        s.push_str(&format!("path:   {}\n", self.path.describe(&self.kernel)));
        s.push_str(&format!("orders: {}\n", self.spec.describe(&self.kernel)));
        s.push_str(&format!(
            "cost:   {} (tier {}, ~{} flops)\n",
            self.cost, self.tier, self.flops
        ));
        for b in &self.buffers {
            let names: Vec<&str> = b.inds.iter().map(|&i| self.kernel.index_name(i)).collect();
            s.push_str(&format!(
                "buffer: X{} [{}] = {} elems\n",
                b.producer,
                names.join(","),
                b.size()
            ));
        }
        s.push_str("nest:\n");
        s.push_str(&self.forest.render(&self.kernel, &self.path));
        s
    }
}

/// Parse either expression syntax into (output, inputs).
fn parse_expression(expr: &str) -> Result<(RawRef, Vec<RawRef>)> {
    let e = expr.replace('[', "(").replace(']', ")");
    let (lhs, rhs) = if let Some((ins, out)) = e.split_once("->") {
        (out.trim().to_string(), ins.trim().to_string())
    } else if let Some(pos) = e.find("+=") {
        (e[..pos].trim().to_string(), e[pos + 2..].trim().to_string())
    } else if let Some(pos) = e.find('=') {
        (e[..pos].trim().to_string(), e[pos + 1..].trim().to_string())
    } else {
        return Err(SpttnError::Kernel(KernelError::Parse(
            "expected '=' or '->' in contraction expression".into(),
        )));
    };
    let output = parse_ref(&lhs)?;
    let mut inputs = Vec::new();
    for part in split_top_level(&rhs, '*') {
        inputs.push(parse_ref(&part)?);
    }
    Ok((output, inputs))
}

fn parse_ref(s: &str) -> Result<RawRef> {
    let s = s.trim();
    let err = |m: String| SpttnError::Kernel(KernelError::Parse(m));
    let open = s
        .find('(')
        .ok_or_else(|| err(format!("expected '(' or '[' in tensor reference '{s}'")))?;
    if !s.ends_with(')') {
        return Err(err(format!("unterminated tensor reference '{s}'")));
    }
    let name = s[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return Err(err(format!("bad tensor name in '{s}'")));
    }
    let inner = &s[open + 1..s.len() - 1];
    let indices: Vec<String> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner.split(',').map(|x| x.trim().to_string()).collect()
    };
    for i in &indices {
        if i.is_empty() || !i.chars().all(|c| c.is_alphanumeric() || c == '_') {
            return Err(err(format!("bad index name '{i}' in '{s}'")));
        }
    }
    Ok(RawRef {
        name: name.to_string(),
        indices,
    })
}

fn split_top_level(s: &str, sep: char) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            c if c == sep && depth == 0 => out.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// Infer every index dimension from the bound tensors and build the
/// validated kernel.
fn infer_kernel(
    output: &RawRef,
    inputs: &[RawRef],
    csf: &Csf,
    factors: &HashMap<String, DenseTensor>,
) -> Result<Kernel> {
    let mut dims: HashMap<String, usize> = HashMap::new();
    let mut learn = |name: &str, dim: usize| -> Result<()> {
        match dims.get(name) {
            Some(&d) if d != dim => Err(SpttnError::Shape(format!(
                "index '{name}' bound to both dimension {d} and {dim}"
            ))),
            Some(_) => Ok(()),
            None => {
                dims.insert(name.to_string(), dim);
                Ok(())
            }
        }
    };

    // Sparse input: written order == CSF storage order.
    let sparse = &inputs[0];
    if csf.order() != sparse.indices.len() {
        return Err(SpttnError::Shape(format!(
            "sparse tensor '{}' is written with {} indices but the CSF has {} modes",
            sparse.name,
            sparse.indices.len(),
            csf.order()
        )));
    }
    for (level, idx) in sparse.indices.iter().enumerate() {
        learn(idx, csf.dims()[csf.mode_order()[level]])?;
    }
    for r in &inputs[1..] {
        let t = factors.get(&r.name).ok_or_else(|| {
            SpttnError::Planning(format!(
                "dense factor '{}' not bound; call with_factor(\"{}\", ...)",
                r.name, r.name
            ))
        })?;
        if t.order() != r.indices.len() {
            return Err(SpttnError::Shape(format!(
                "factor '{}' is written with {} indices but the tensor has {} modes",
                r.name,
                r.indices.len(),
                t.order()
            )));
        }
        for (pos, idx) in r.indices.iter().enumerate() {
            learn(idx, t.dims()[pos])?;
        }
    }
    for idx in &output.indices {
        if !dims.contains_key(idx) {
            return Err(SpttnError::Kernel(KernelError::UnboundOutputIndex(
                idx.clone(),
            )));
        }
    }

    let mut b = KernelBuilder::new();
    // Declare indices in first-appearance order (sparse modes first).
    for r in inputs {
        for idx in &r.indices {
            b = b.index(idx, dims[idx]);
        }
    }
    let oinds: Vec<&str> = output.indices.iter().map(String::as_str).collect();
    b = b.output(&output.name, &oinds);
    for r in inputs {
        let iinds: Vec<&str> = r.indices.iter().map(String::as_str).collect();
        b = b.input(&r.name, &iinds);
    }
    // Pattern-sharing output: index set equals the sparse input's.
    let mut oset: Vec<&String> = output.indices.iter().collect();
    let mut sset: Vec<&String> = sparse.indices.iter().collect();
    oset.sort();
    oset.dedup();
    sset.sort();
    sset.dedup();
    if oset == sset {
        b = b.sparse_output();
    }
    Ok(b.build()?)
}
